//! Cross-crate integration: the two-tier controller driving the full
//! simulated testbed on real workloads, checked against the paper's
//! qualitative claims.

use greengpu::baselines::{
    run_best_performance, run_best_performance_with, run_division_only, run_greengpu, run_scaling_only, run_with_config,
};
use greengpu::GreenGpuConfig;
use greengpu_runtime::{CommMode, RunConfig};
use greengpu_workloads::hotspot::Hotspot;
use greengpu_workloads::kmeans::KMeans;
use greengpu_workloads::registry;
use greengpu_workloads::streamcluster::StreamCluster;

#[test]
fn greengpu_never_changes_functional_results() {
    // Energy management must be functionally transparent for every
    // divisible workload: same digests as the unmanaged run.
    for name in ["kmeans", "hotspot", "nbody", "QG", "streamcluster", "srad_v2"] {
        let mut unmanaged = registry::by_name_small(name, 5).expect("registered");
        let mut managed = registry::by_name_small(name, 5).expect("registered");
        let base = run_best_performance(unmanaged.as_mut());
        let green = run_greengpu(managed.as_mut());
        let rel = ((green.digest - base.digest) / base.digest.abs().max(1e-12)).abs();
        assert!(rel < 1e-9, "{name}: digest drifted by {rel}");
    }
}

#[test]
fn holistic_beats_default_across_division_workloads() {
    for name in ["kmeans", "hotspot", "streamcluster"] {
        let mut a = registry::by_name_small(name, 6).unwrap();
        let mut b = registry::by_name_small(name, 6).unwrap();
        let green = run_greengpu(a.as_mut()).total_energy_j();
        let base = run_best_performance(b.as_mut()).total_energy_j();
        assert!(green < base, "{name}: green {green} >= base {base}");
    }
}

#[test]
fn tier_composition_is_consistent() {
    // GreenGPU (both tiers) must beat or match each single tier on the
    // paper's two division workloads.
    for seed in [1, 9] {
        let green = run_greengpu(&mut Hotspot::paper(seed)).total_energy_j();
        let division = run_division_only(&mut Hotspot::paper(seed)).total_energy_j();
        let scaling = run_scaling_only(&mut Hotspot::paper(seed)).total_energy_j();
        assert!(
            green <= division * 1.001,
            "seed {seed}: green {green} vs division {division}"
        );
        assert!(
            green <= scaling * 1.001,
            "seed {seed}: green {green} vs scaling {scaling}"
        );
    }
}

#[test]
fn division_share_stays_on_the_step_grid() {
    let report = run_division_only(&mut KMeans::paper(2));
    for it in &report.iterations {
        let steps = it.cpu_share / 0.05;
        assert!(
            (steps - steps.round()).abs() < 1e-9,
            "share {} off the 5% grid",
            it.cpu_share
        );
        assert!((0.0..=0.90).contains(&it.cpu_share));
    }
}

#[test]
fn energy_accounting_is_consistent_between_report_and_meters() {
    let report = run_greengpu(&mut KMeans::small(4));
    let end = greengpu_sim::SimTime::ZERO + report.total_time;
    let meter_total = report.platform.total_energy_j(greengpu_sim::SimTime::ZERO, end);
    assert!((report.total_energy_j() - meter_total).abs() < 1e-6);
    // Per-iteration energies partition the whole run (iterations are
    // back-to-back).
    let sum: f64 = report.iterations.iter().map(|i| i.energy_j).sum();
    assert!(
        (sum - meter_total).abs() / meter_total < 1e-9,
        "iteration energies {sum} != meter total {meter_total}"
    );
}

#[test]
fn async_comm_mode_lets_ondemand_throttle_the_cpu() {
    // In synchronized-spin mode the governor is defeated (paper §VII-A);
    // with async communication the waiting CPU falls below the down
    // threshold and steps down.
    let spin = run_with_config(
        &mut StreamCluster::paper(8),
        GreenGpuConfig::scaling_only(),
        RunConfig::sweep(),
    );
    assert_eq!(
        spin.platform.cpu().domain().current_level(),
        3,
        "spin mode must keep the CPU at the peak P-state"
    );

    let mut async_cfg = RunConfig::sweep();
    async_cfg.comm_mode = CommMode::Async;
    let idle = run_with_config(&mut StreamCluster::paper(8), GreenGpuConfig::scaling_only(), async_cfg);
    assert!(
        idle.platform.cpu().domain().current_level() < 3,
        "async mode should let ondemand throttle"
    );
    assert!(
        idle.cpu_energy_j < spin.cpu_energy_j,
        "async CPU energy {} should undercut spin {}",
        idle.cpu_energy_j,
        spin.cpu_energy_j
    );
}

#[test]
fn wall_time_equals_slower_side_every_iteration() {
    let report = run_division_only(&mut Hotspot::paper(3));
    for it in &report.iterations {
        let wall = it.duration_s();
        let slower = it.tc_s.max(it.tg_s);
        assert!(
            (wall - slower).abs() < 1e-3,
            "iteration {}: wall {wall} vs slower side {slower}",
            it.index
        );
    }
}

#[test]
fn non_divisible_workloads_ignore_the_division_tier() {
    let mut wl = registry::by_name_small("bfs", 1).unwrap();
    let report = run_greengpu(wl.as_mut());
    for it in &report.iterations {
        assert_eq!(it.cpu_share, 0.0, "bfs must never receive CPU work");
        assert_eq!(it.tc_s, 0.0);
    }
}

#[test]
fn full_suite_runs_under_every_policy_without_panic() {
    for name in registry::TABLE2_NAMES {
        for cfg in [
            GreenGpuConfig::holistic(),
            GreenGpuConfig::division_only(),
            GreenGpuConfig::scaling_only(),
        ] {
            let mut wl = registry::by_name_small(name, 3).unwrap();
            let report = run_with_config(wl.as_mut(), cfg, RunConfig::sweep());
            assert!(report.total_energy_j() > 0.0, "{name}: zero energy");
            assert!(report.total_time.as_secs_f64() > 0.0);
        }
        let mut wl = registry::by_name_small(name, 3).unwrap();
        let report = run_best_performance_with(wl.as_mut(), RunConfig::sweep());
        assert!(report.total_energy_j() > 0.0);
    }
}
