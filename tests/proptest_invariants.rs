//! Property-based invariants spanning the whole stack: arbitrary phase
//! costs, division sequences, and utilization traces must never violate
//! the physical and algorithmic invariants the reproduction rests on.

use greengpu::division::{DivisionController, DivisionParams};
use greengpu::wma::{WmaParams, WmaScaler};
use greengpu_hw::calib::{geforce_8800_gtx, phenom_ii_x2};
use greengpu_hw::Platform;
use greengpu_runtime::{FixedController, HeteroRuntime, RunConfig};
use greengpu_sim::SimTime;
use greengpu_workloads::model::{phase_cpu_time_s, phase_gpu_timing};
use greengpu_workloads::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
use proptest::prelude::*;

/// A synthetic workload generated from arbitrary (but valid) phase costs.
#[derive(Debug)]
struct ArbWorkload {
    profile: WorkloadProfile,
    phases: Vec<PhaseCost>,
    iters: usize,
    acc: f64,
}

impl Workload for ArbWorkload {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }
    fn iterations(&self) -> usize {
        self.iters
    }
    fn phases(&self, _iter: usize) -> Vec<PhaseCost> {
        self.phases.clone()
    }
    fn execute(&mut self, iter: usize, cpu_share: f64) -> f64 {
        self.acc += (iter as f64 + 1.0) * (1.0 + cpu_share);
        self.acc
    }
    fn digest(&self) -> f64 {
        self.acc
    }
    fn reset(&mut self) {
        self.acc = 0.0;
    }
}

fn arb_phase() -> impl Strategy<Value = PhaseCost> {
    (
        1e9..1e13f64, // gpu ops
        1e8..1e12f64, // gpu bytes
        0.1..1.0f64,  // eff compute
        0.1..1.0f64,  // eff mem
        0.0..20.0f64, // host floor seconds
        1.0..6.0f64,  // mem busy factor
        1e9..1e13f64, // cpu ops
        0.2..1.0f64,  // cpu eff
    )
        .prop_map(|(ops, bytes, ec, em, floor, busy, cops, ceff)| PhaseCost {
            gpu: GpuPhase::new("arb", ops, bytes, ec, em, floor).with_mem_busy_factor(busy),
            cpu: CpuSlice {
                ops: cops,
                bytes: 0.0,
                eff: ceff,
            },
        })
}

fn arb_workload() -> impl Strategy<Value = ArbWorkload> {
    (proptest::collection::vec(arb_phase(), 1..4), 1usize..5).prop_map(|(phases, iters)| ArbWorkload {
        profile: WorkloadProfile {
            name: "arb",
            enlargement: String::new(),
            description: "property-generated",
            core_class: UtilClass::Medium,
            mem_class: UtilClass::Medium,
            divisible: true,
        },
        phases,
        iters,
        acc: 0.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_energy_equals_meter_integral(wl in arb_workload(), share in 0.0..0.9f64) {
        let mut workload = wl;
        let mut ctl = FixedController::new(share);
        let report = HeteroRuntime::new(Platform::best_performance_testbed(), RunConfig::sweep())
            .run(&mut workload, &mut ctl);
        let end = SimTime::ZERO + report.total_time;
        let meters = report.platform.total_energy_j(SimTime::ZERO, end);
        prop_assert!((report.total_energy_j() - meters).abs() < 1e-6);
        // Power is bounded by the hardware envelope.
        let max_w = report.platform.gpu().spec().peak_power_w()
            + report.platform.cpu().spec().peak_power_w();
        prop_assert!(report.mean_power_w() <= max_w + 1e-9);
        let min_w = report.platform.gpu().spec().floor_power_w()
            + report.platform.cpu().spec().p_box_w;
        prop_assert!(report.mean_power_w() >= min_w - 1e-9, "mean {} < floor {}", report.mean_power_w(), min_w);
    }

    #[test]
    fn engine_wall_time_is_max_of_sides_per_iteration(wl in arb_workload(), share in 0.05..0.9f64) {
        let mut workload = wl;
        let mut ctl = FixedController::new(share);
        let report = HeteroRuntime::new(Platform::best_performance_testbed(), RunConfig::sweep())
            .run(&mut workload, &mut ctl);
        for it in &report.iterations {
            let wall = it.duration_s();
            let slower = it.tc_s.max(it.tg_s);
            // µs quantization can skew long iterations by a few steps.
            prop_assert!((wall - slower).abs() < 1e-3 + wall * 1e-6,
                "wall {wall} vs slower {slower}");
        }
    }

    #[test]
    fn gpu_phase_timing_is_monotone_in_clocks(ops in 1e9..1e13f64, bytes in 1e8..1e12f64,
                                              floor in 0.0..10.0f64) {
        let spec = geforce_8800_gtx();
        let phase = GpuPhase::new("m", ops, bytes, 0.5, 0.5, floor);
        let mut last_wall = f64::INFINITY;
        for lvl in 0..6 {
            let t = phase_gpu_timing(&phase, &spec, spec.core_levels_mhz[lvl], spec.mem_levels_mhz[lvl]);
            prop_assert!(t.wall_s <= last_wall + 1e-12, "wall must not grow with clocks");
            prop_assert!(t.u_core >= 0.0 && t.u_core <= 1.0);
            prop_assert!(t.u_mem >= 0.0 && t.u_mem <= 1.0);
            prop_assert!(t.wall_s >= floor - 1e-12, "wall below host floor");
            last_wall = t.wall_s;
        }
    }

    #[test]
    fn cpu_time_is_monotone_in_pstate(ops in 1e9..1e13f64, eff in 0.2..1.0f64) {
        let spec = phenom_ii_x2();
        let slice = CpuSlice { ops, bytes: 0.0, eff };
        let mut last = f64::INFINITY;
        for lvl in 0..4 {
            let t = phase_cpu_time_s(&slice, &spec, spec.levels_mhz[lvl]);
            prop_assert!(t <= last + 1e-12);
            last = t;
        }
    }

    #[test]
    fn wma_always_returns_valid_levels(us in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..200)) {
        let mut scaler = WmaScaler::new(6, 6, WmaParams::default());
        for (uc, um) in us {
            let (i, j) = scaler.observe(uc, um);
            prop_assert!(i < 6 && j < 6);
            for a in 0..6 {
                for b in 0..6 {
                    let w = scaler.weight(a, b);
                    prop_assert!(w.is_finite() && (0.0..=1.0 + 1e-12).contains(&w));
                }
            }
        }
    }

    #[test]
    fn wma_stationary_input_converges_to_covering_level(uc in 0.0..1.0f64, um in 0.0..1.0f64) {
        let mut scaler = WmaScaler::new(6, 6, WmaParams::default());
        let mut pair = (0, 0);
        for _ in 0..30 {
            pair = scaler.observe(uc, um);
        }
        // The chosen umean must sit at or above the observed utilization
        // (perf-biased loss), within one level of the ceiling grid point.
        let ceil_core = (uc * 5.0).ceil() as usize;
        let ceil_mem = (um * 5.0).ceil() as usize;
        prop_assert!(pair.0 >= ceil_core.saturating_sub(1) && pair.0 <= (ceil_core + 1).min(5),
            "core level {} for u {}", pair.0, uc);
        prop_assert!(pair.1 >= ceil_mem.saturating_sub(1) && pair.1 <= (ceil_mem + 1).min(5),
            "mem level {} for u {}", pair.1, um);
    }

    #[test]
    fn division_share_always_valid_and_settles(c in 0.1..20.0f64, g in 0.1..20.0f64,
                                               initial_steps in 0usize..19) {
        let params = DivisionParams::default();
        let mut ctl = DivisionController::new(initial_steps as f64 * 0.05, params);
        let mut shares = Vec::new();
        for _ in 0..60 {
            let r = ctl.share();
            prop_assert!((0.0..=0.90 + 1e-12).contains(&r));
            let next = ctl.update(r * c, (1.0 - r) * g);
            let steps = next / 0.05;
            prop_assert!((steps - steps.round()).abs() < 1e-9, "share off grid: {next}");
            shares.push(next);
        }
        // The tail must be stable (settled or safeguard-held).
        let tail = &shares[40..];
        prop_assert!(tail.windows(2).all(|w| w[0] == w[1]), "tail still moving: {tail:?}");
    }

    #[test]
    fn division_settles_near_the_balance_point(c in 0.5..10.0f64, g in 0.5..10.0f64) {
        let mut ctl = DivisionController::new(0.30, DivisionParams::default());
        for _ in 0..60 {
            let r = ctl.share();
            ctl.update(r * c, (1.0 - r) * g);
        }
        let r_star = g / (c + g); // exact balance of the linear testbed
        let settled = ctl.share();
        let clamped = r_star.clamp(0.0, 0.90);
        prop_assert!((settled - clamped).abs() <= 0.051,
            "settled {settled} vs balance {clamped} (c={c}, g={g})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_two_tier_controller_keeps_every_invariant(wl in arb_workload(), initial_steps in 0usize..19) {
        use greengpu::{GreenGpuConfig, GreenGpuController};
        let cfg = GreenGpuConfig {
            initial_share: initial_steps as f64 * 0.05,
            ..GreenGpuConfig::holistic()
        };
        let mut controller = GreenGpuController::for_testbed(cfg);
        let mut workload = wl;
        let report = HeteroRuntime::new(Platform::default_testbed(), RunConfig::sweep())
            .run(&mut workload, &mut controller);
        // Levels always valid, shares always on the grid, energy consistent.
        prop_assert!(report.platform.gpu().core().current_level() < 6);
        prop_assert!(report.platform.gpu().mem().current_level() < 6);
        prop_assert!(report.platform.cpu().domain().current_level() < 4);
        for it in &report.iterations {
            let steps = it.cpu_share / 0.05;
            prop_assert!((steps - steps.round()).abs() < 1e-9, "share off grid: {}", it.cpu_share);
            prop_assert!(it.energy_j > 0.0);
            prop_assert!(it.tc_s >= 0.0 && it.tg_s >= 0.0);
        }
        let end = SimTime::ZERO + report.total_time;
        let meters = report.platform.total_energy_j(SimTime::ZERO, end);
        prop_assert!((report.total_energy_j() - meters).abs() < 1e-6);
        // GreenGPU may never lose to itself: re-running is identical.
        let mut controller2 = GreenGpuController::for_testbed(cfg);
        let mut workload2 = ArbWorkload {
            profile: workload.profile().clone(),
            phases: workload.phases(0),
            iters: workload.iterations(),
            acc: 0.0,
        };
        // Note: phases(0) suffices because arb workloads are iteration-invariant.
        let report2 = HeteroRuntime::new(Platform::default_testbed(), RunConfig::sweep())
            .run(&mut workload2, &mut controller2);
        prop_assert_eq!(report.total_time, report2.total_time);
        prop_assert_eq!(report.total_energy_j(), report2.total_energy_j());
    }
}
