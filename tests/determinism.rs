//! Bit-reproducibility: identical inputs must give identical outputs, no
//! matter the policy — the property the whole experimental methodology
//! rests on.

use greengpu::baselines::{run_greengpu, run_greengpu_faulted, run_with_config};
use greengpu::GreenGpuConfig;
use greengpu_hw::FaultPlan;
use greengpu_runtime::{RunConfig, RunReport};
use greengpu_workloads::registry;

#[test]
fn repeated_runs_are_bit_identical() {
    for name in registry::TABLE2_NAMES {
        let mut a = registry::by_name_small(name, 77).unwrap();
        let mut b = registry::by_name_small(name, 77).unwrap();
        let ra = run_greengpu(a.as_mut());
        let rb = run_greengpu(b.as_mut());
        assert_eq!(ra.total_time, rb.total_time, "{name}: time differs");
        assert_eq!(ra.total_energy_j(), rb.total_energy_j(), "{name}: energy differs");
        assert_eq!(ra.digest, rb.digest, "{name}: digest differs");
        assert_eq!(ra.iterations.len(), rb.iterations.len());
        for (ia, ib) in ra.iterations.iter().zip(&rb.iterations) {
            assert_eq!(ia, ib, "{name}: iteration record differs");
        }
    }
}

#[test]
fn different_seeds_change_data_not_model_shape() {
    // Different seeds shuffle the functional data (different digests) but
    // the cost model — and therefore timing and energy — is
    // size-determined for kmeans.
    let mut a = registry::by_name_small("kmeans", 1).unwrap();
    let mut b = registry::by_name_small("kmeans", 2).unwrap();
    let ra = run_greengpu(a.as_mut());
    let rb = run_greengpu(b.as_mut());
    assert_ne!(ra.digest, rb.digest, "seeds should change the data");
    assert_eq!(ra.total_time, rb.total_time, "cost model must be seed-independent");
    assert_eq!(ra.total_energy_j(), rb.total_energy_j());
}

#[test]
fn sweep_mode_timing_matches_functional_mode() {
    // Disabling functional execution must not perturb the simulation.
    let mut a = registry::by_name_small("hotspot", 5).unwrap();
    let mut b = registry::by_name_small("hotspot", 5).unwrap();
    let functional = run_with_config(a.as_mut(), GreenGpuConfig::holistic(), RunConfig::default());
    let sweep = run_with_config(b.as_mut(), GreenGpuConfig::holistic(), RunConfig::sweep());
    assert_eq!(functional.total_time, sweep.total_time);
    assert_eq!(functional.total_energy_j(), sweep.total_energy_j());
    assert_ne!(functional.digest, 0.0);
    assert_eq!(sweep.digest, 0.0);
}

#[test]
fn experiment_outputs_are_reproducible() {
    let a = greengpu_repro_check("fig7");
    let b = greengpu_repro_check("fig7");
    assert_eq!(a, b, "experiment output must be deterministic");
}

fn greengpu_repro_check(_id: &str) -> String {
    // Keep the integration light: regenerate the Fig. 7 trace twice via
    // the division-only path and render it the same way.
    let mut wl = registry::by_name("kmeans", 99).unwrap();
    let report = run_with_config(wl.as_mut(), GreenGpuConfig::division_only(), RunConfig::sweep());
    golden_trace(&report)
}

/// The Fig. 5/Fig. 7-style per-iteration trace used as a golden string.
fn golden_trace(report: &RunReport) -> String {
    report
        .iterations
        .iter()
        .map(|it| {
            format!(
                "{}:{:.3}:{:.3}:{:.3}:{:.3};",
                it.index, it.cpu_share, it.tc_s, it.tg_s, it.energy_j
            )
        })
        .collect()
}

#[test]
fn faulted_traces_are_golden_per_seed_and_plan() {
    // Same workload seed + same FaultPlan ⇒ the same per-iteration trace
    // across two full runs, at every intensity.
    for intensity in [0.0, 0.5, 1.0] {
        let plan = FaultPlan::with_intensity(4242, intensity);
        let a = run_greengpu_faulted(
            registry::by_name_small("kmeans", 31).unwrap().as_mut(),
            GreenGpuConfig::holistic(),
            RunConfig::sweep(),
            &plan,
        );
        let b = run_greengpu_faulted(
            registry::by_name_small("kmeans", 31).unwrap().as_mut(),
            GreenGpuConfig::holistic(),
            RunConfig::sweep(),
            &plan,
        );
        assert_eq!(
            golden_trace(&a.report),
            golden_trace(&b.report),
            "intensity {intensity}: faulted trace must be reproducible"
        );
        assert_eq!(
            a.injections, b.injections,
            "intensity {intensity}: injection logs must replay"
        );
    }
}

#[test]
fn clean_plan_trace_equals_the_unfaulted_trace() {
    let faulted = run_greengpu_faulted(
        registry::by_name_small("hotspot", 8).unwrap().as_mut(),
        GreenGpuConfig::holistic(),
        RunConfig::sweep(),
        &FaultPlan::clean(5),
    );
    let clean = run_with_config(
        registry::by_name_small("hotspot", 8).unwrap().as_mut(),
        GreenGpuConfig::holistic(),
        RunConfig::sweep(),
    );
    assert_eq!(golden_trace(&faulted.report), golden_trace(&clean));
}
