//! End-to-end checks of the paper's headline numbers (the EXPERIMENTS.md
//! claims), at integration level with paper-preset workloads.

use greengpu::baselines::{run_best_performance_with, run_with_config};
use greengpu::GreenGpuConfig;
use greengpu_runtime::RunConfig;
use greengpu_workloads::hotspot::Hotspot;
use greengpu_workloads::kmeans::KMeans;

fn energy(cfg: Option<GreenGpuConfig>, wl: &mut dyn greengpu_workloads::Workload) -> f64 {
    match cfg {
        None => run_best_performance_with(wl, RunConfig::sweep()).total_energy_j(),
        Some(c) => run_with_config(wl, c, RunConfig::sweep()).total_energy_j(),
    }
}

#[test]
fn headline_21_percent_class_saving_vs_default() {
    // Paper: "GreenGPU can achieve on average 21.04% energy saving for
    // kmeans and hotspot" compared to the Rodinia default.
    let seed = 2012;
    let mut savings = Vec::new();
    for make in [
        &(|s| Box::new(Hotspot::paper(s)) as Box<dyn greengpu_workloads::Workload>)
            as &dyn Fn(u64) -> Box<dyn greengpu_workloads::Workload>,
        &(|s| Box::new(KMeans::paper(s)) as Box<dyn greengpu_workloads::Workload>),
    ] {
        let base = energy(None, make(seed).as_mut());
        let green = energy(Some(GreenGpuConfig::holistic()), make(seed).as_mut());
        savings.push(1.0 - green / base);
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(
        (0.12..0.40).contains(&avg),
        "headline saving {avg} outside the paper's class (21.04%)"
    );
}

#[test]
fn fig8_savings_over_single_tiers_have_paper_ordering() {
    // hotspot: GreenGPU > Division > Frequency-scaling (paper: +7.88% and
    // +28.76% over them respectively).
    let seed = 31;
    let green = energy(Some(GreenGpuConfig::holistic()), &mut Hotspot::paper(seed));
    let division = energy(Some(GreenGpuConfig::division_only()), &mut Hotspot::paper(seed));
    let scaling = energy(Some(GreenGpuConfig::scaling_only()), &mut Hotspot::paper(seed));
    let vs_division = 1.0 - green / division;
    let vs_scaling = 1.0 - green / scaling;
    assert!((0.005..0.20).contains(&vs_division), "vs division {vs_division}");
    assert!((0.10..0.60).contains(&vs_scaling), "vs scaling {vs_scaling}");
    assert!(vs_scaling > vs_division, "division must contribute more than scaling");
}

#[test]
fn holistic_time_overhead_is_percent_scale() {
    // Paper: the holistic solution runs 1.7% longer than division-only.
    let seed = 17;
    let green = run_with_config(&mut KMeans::paper(seed), GreenGpuConfig::holistic(), RunConfig::sweep());
    let division = run_with_config(
        &mut KMeans::paper(seed),
        GreenGpuConfig::division_only(),
        RunConfig::sweep(),
    );
    let overhead = green.total_time.as_secs_f64() / division.total_time.as_secs_f64() - 1.0;
    assert!(overhead.abs() < 0.05, "time overhead {overhead}");
}

#[test]
fn division_only_execution_overhead_vs_optimal_is_single_digit() {
    // Paper §VII-B: "our solution only has 5.45% longer execution time
    // than the optimal division".
    let seed = 4;
    let dynamic = run_with_config(
        &mut Hotspot::paper(seed),
        GreenGpuConfig::division_only(),
        RunConfig::sweep(),
    );
    // Optimal static division for hotspot is 50/50 (converged value).
    let optimal = greengpu::baselines::run_static_division(&mut Hotspot::paper(seed), 0.50, RunConfig::sweep());
    let overhead = dynamic.total_time.as_secs_f64() / optimal.total_time.as_secs_f64() - 1.0;
    assert!((0.0..0.10).contains(&overhead), "overhead {overhead}");
}

#[test]
fn greengpu_wins_on_energy_delay_product_too() {
    // GreenGPU's objective is energy with negligible performance loss; on
    // the division workloads it improves the energy-delay product as well
    // (time actually *drops* thanks to the balanced split).
    let seed = 5;
    let base = run_best_performance_with(&mut Hotspot::paper(seed), RunConfig::sweep());
    let green = run_with_config(
        &mut Hotspot::paper(seed),
        GreenGpuConfig::holistic(),
        RunConfig::sweep(),
    );
    assert!(
        green.edp() < base.edp(),
        "EDP: green {} vs base {}",
        green.edp(),
        base.edp()
    );
    assert!(green.ed2p() < base.ed2p());
}
