//! Integration tests for the deterministic fault-injection layer and the
//! hardened two-tier controller behind it.

use greengpu::baselines::{run_best_performance_with, run_greengpu_faulted, run_with_config};
use greengpu::GreenGpuConfig;
use greengpu_hw::FaultPlan;
use greengpu_runtime::RunConfig;
use greengpu_workloads::hotspot::Hotspot;
use greengpu_workloads::kmeans::KMeans;

/// A plan whose every actuation silently fails — the pathological case
/// that must trip the best-performance fallback rather than strand the
/// platform at stale clocks.
fn dead_actuation_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::clean(seed);
    plan.actuation.drop_prob = 1.0;
    plan
}

#[test]
fn zero_intensity_faults_reproduce_the_clean_run_byte_for_byte() {
    for cfg in [
        GreenGpuConfig::holistic(),
        GreenGpuConfig::scaling_only(),
        GreenGpuConfig::division_only(),
    ] {
        let clean = run_with_config(&mut KMeans::small(4), cfg, RunConfig::default());
        let faulted = run_greengpu_faulted(
            &mut KMeans::small(4),
            cfg,
            RunConfig::default(),
            &FaultPlan::clean(1234),
        );
        assert_eq!(clean.total_time, faulted.report.total_time, "time must match");
        assert_eq!(
            clean.total_energy_j(),
            faulted.report.total_energy_j(),
            "energy must match bit-for-bit"
        );
        assert_eq!(clean.digest, faulted.report.digest, "functional digest must match");
        assert_eq!(clean.iterations.len(), faulted.report.iterations.len());
        for (a, b) in clean.iterations.iter().zip(&faulted.report.iterations) {
            assert_eq!(a, b, "iteration records must be identical");
        }
        assert_eq!(faulted.injections, 0, "a clean plan must inject nothing");
        assert_eq!(faulted.sensor_rejects, 0);
        assert_eq!(faulted.actuation_failures, 0);
        assert!(!faulted.fallback_engaged);
    }
}

#[test]
fn moderate_noise_still_beats_best_performance() {
    let plan = FaultPlan::with_intensity(42, 0.5);
    for (name, green, base) in [
        (
            "kmeans",
            run_greengpu_faulted(
                &mut KMeans::small(2),
                GreenGpuConfig::holistic(),
                RunConfig::sweep(),
                &plan,
            ),
            run_best_performance_with(&mut KMeans::small(2), RunConfig::sweep()),
        ),
        (
            "hotspot",
            run_greengpu_faulted(
                &mut Hotspot::small(2),
                GreenGpuConfig::holistic(),
                RunConfig::sweep(),
                &plan,
            ),
            run_best_performance_with(&mut Hotspot::small(2), RunConfig::sweep()),
        ),
    ] {
        assert!(green.injections > 0, "{name}: half intensity must inject");
        assert!(
            green.report.total_energy_j() < base.total_energy_j(),
            "{name}: faulted GreenGPU {} must still beat best-performance {}",
            green.report.total_energy_j(),
            base.total_energy_j()
        );
    }
}

#[test]
fn sustained_actuation_failure_triggers_the_fallback() {
    let outcome = run_greengpu_faulted(
        &mut KMeans::small(3),
        GreenGpuConfig::holistic(),
        RunConfig::default(),
        &dead_actuation_plan(7),
    );
    assert!(
        outcome.fallback_engaged,
        "an actuator that drops every command must trip the fallback"
    );
    assert!(
        outcome.actuation_failures >= 5,
        "failures: {}",
        outcome.actuation_failures
    );
    // The run still completes and computes the right answer.
    let clean = run_with_config(&mut KMeans::small(3), GreenGpuConfig::holistic(), RunConfig::default());
    let rel = (outcome.report.digest - clean.digest).abs() / clean.digest.abs();
    assert!(
        rel < 1e-9,
        "functional results must not depend on the actuation path (rel diff {rel})"
    );
    assert_eq!(outcome.report.iterations.len(), clean.iterations.len());
}

#[test]
fn fallback_freezes_the_division_ratio() {
    // With a dead actuator the division tier must stop moving once the
    // fallback engages: the share trace becomes constant from some point
    // on, instead of chasing measurements on a broken platform.
    let outcome = run_greengpu_faulted(
        &mut Hotspot::small(4),
        GreenGpuConfig::holistic(),
        RunConfig::sweep(),
        &dead_actuation_plan(9),
    );
    assert!(outcome.fallback_engaged);
    let shares: Vec<f64> = outcome.report.iterations.iter().map(|it| it.cpu_share).collect();
    let frozen = shares.last().copied().unwrap();
    let first_frozen = shares.iter().position(|&s| s == frozen).unwrap();
    assert!(
        shares[first_frozen..].iter().all(|&s| s == frozen),
        "share must stay frozen after the fallback: {shares:?}"
    );
}

#[test]
fn fault_injection_is_deterministic_per_seed_and_plan() {
    let plan = FaultPlan::with_intensity(2026, 0.75);
    let a = run_greengpu_faulted(
        &mut KMeans::small(5),
        GreenGpuConfig::holistic(),
        RunConfig::sweep(),
        &plan,
    );
    let b = run_greengpu_faulted(
        &mut KMeans::small(5),
        GreenGpuConfig::holistic(),
        RunConfig::sweep(),
        &plan,
    );
    assert_eq!(a.report.total_time, b.report.total_time);
    assert_eq!(a.report.total_energy_j(), b.report.total_energy_j());
    assert_eq!(a.injections, b.injections);
    assert_eq!(a.sensor_rejects, b.sensor_rejects);
    assert_eq!(a.actuation_failures, b.actuation_failures);
    // A different fault seed perturbs the trajectory even though the
    // workload seed is unchanged.
    let c = run_greengpu_faulted(
        &mut KMeans::small(5),
        GreenGpuConfig::holistic(),
        RunConfig::sweep(),
        &FaultPlan::with_intensity(2027, 0.75),
    );
    assert_ne!(
        a.report.total_energy_j(),
        c.report.total_energy_j(),
        "different fault seeds should disturb the run differently"
    );
}
