//! # greengpu-suite — workspace-level helpers
//!
//! Small conveniences shared by the runnable examples and the cross-crate
//! integration tests: run-report summaries and policy comparison helpers.
//! The real library surface lives in the member crates (start at
//! [`greengpu`]).

#![forbid(unsafe_code)]

use greengpu_runtime::RunReport;

/// A one-line summary of a run for example output.
pub fn summarize_run(label: &str, report: &RunReport) -> String {
    format!(
        "{label:<22} {:>9.1} s  {:>10.0} J total ({:>8.0} J GPU / {:>8.0} J CPU-side), mean {:>6.1} W",
        report.total_time.as_secs_f64(),
        report.total_energy_j(),
        report.gpu_energy_j,
        report.cpu_energy_j,
        report.mean_power_w(),
    )
}

/// Percent saving of `ours` relative to `baseline` total energy.
pub fn saving_pct(baseline: &RunReport, ours: &RunReport) -> f64 {
    (1.0 - ours.total_energy_j() / baseline.total_energy_j()) * 100.0
}

/// Renders a compact per-iteration division trace (iteration, share, tc,
/// tg) for example output.
pub fn division_trace(report: &RunReport) -> String {
    let mut out = String::from("  iter  share     tc(s)     tg(s)\n");
    for it in &report.iterations {
        out.push_str(&format!(
            "  {:>4}  {:>4.0}%  {:>8.1}  {:>8.1}\n",
            it.index + 1,
            it.cpu_share * 100.0,
            it.tc_s,
            it.tg_s
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu::baselines::run_best_performance;
    use greengpu_workloads::kmeans::KMeans;

    #[test]
    fn summary_contains_key_quantities() {
        let report = run_best_performance(&mut KMeans::small(1));
        let s = summarize_run("test", &report);
        assert!(s.contains("J total"));
        assert!(s.contains("W"));
    }

    #[test]
    fn saving_pct_signs() {
        let a = run_best_performance(&mut KMeans::small(1));
        let b = run_best_performance(&mut KMeans::small(1));
        assert!(saving_pct(&a, &b).abs() < 1e-9);
    }

    #[test]
    fn division_trace_lists_iterations() {
        let report = run_best_performance(&mut KMeans::small(1));
        let t = division_trace(&report);
        assert_eq!(t.lines().count(), 1 + report.iterations.len());
    }
}
