//! Offline property-testing shim.
//!
//! The workspace's CI image has no crates registry, so this crate
//! reimplements the *subset* of the `proptest` API the test suite uses:
//! the `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros,
//! `Strategy` with `prop_map`, numeric-range / tuple / `any` strategies,
//! and `proptest::collection::vec`. Inputs are drawn from a deterministic
//! per-test RNG (seeded from the test's module path and name plus the
//! case index), so failures reproduce exactly across runs. There is no
//! shrinking: a failing case reports the case index instead of a
//! minimized input.

use std::fmt;
use std::ops::Range;

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject(String),
    /// `prop_assert!`-style failure; the runner panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (does not count against the case budget).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// A failure (panics the test).
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG (SplitMix64 over an FNV-1a seed of the test
/// identity), so every run of the suite draws identical inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test uniquely named by `identity`.
    pub fn for_case(identity: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in identity.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite full-range doubles: a sign, a wide exponent, a mantissa.
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.next_f64() * 10f64.powi(rng.below(617) as i32 - 308)
    }
}

/// Marker returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy: `len ∈ size`, elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! Everything the `proptest!` style of test needs in scope.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Defines `#[test]` functions over generated inputs.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     fn name(x in 0.0..1.0f64, ys in proptest::collection::vec(any::<u64>(), 1..9)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($s,)+);
            let mut accepted: u32 = 0;
            let mut draws: u64 = 0;
            while accepted < config.cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    draws,
                );
                draws += 1;
                let ($($p,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => {
                        assert!(
                            draws < (config.cases as u64) * 256 + 1024,
                            "proptest: too many rejected cases in {}",
                            stringify!($name)
                        );
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed (draw #{}): {}",
                            accepted, stringify!($name), draws - 1, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

/// Fails the current case with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Rejects the current case (redrawn without counting) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn ranges_stay_in_bounds(x in 2.5..7.5f64, n in 3u32..9, v in crate::collection::vec(0usize..5, 1..4)) {
            prop_assert!((2.5..7.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        fn assume_redraws(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        fn maps_apply(y in (0u32..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
        }
    }
}
