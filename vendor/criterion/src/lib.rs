//! Offline benchmarking shim.
//!
//! The CI image has no crates registry, so this crate reimplements the
//! subset of the `criterion` API the bench targets use. Measurement is a
//! simple timed loop: each benchmark warms up once, then runs a fixed
//! small number of timed iterations and reports the mean wall-clock time.
//! It exists so `cargo bench` (and `cargo build --all-targets`) compiles
//! and smoke-runs every bench, not to produce statistically rigorous
//! numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Number of timed iterations each benchmark runs in this shim.
const TIMED_ITERS: u32 = 3;

/// Passed to every benchmark closure; drives the measurement loop.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` over the shim's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..TIMED_ITERS {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..TIMED_ITERS {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters
        }
    }
}

/// A named group of benchmarks sharing (ignored) tuning parameters.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up time (accepted, ignored).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the sample count (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the group's throughput (accepted, ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref().to_string();
        self.run_one(&id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher::new();
        f(&mut b);
        println!("bench {id:<60} mean {:>12.3?} ({} iters)", b.mean(), b.iters);
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    ($name:ident; $($rest:tt)*) => {
        $crate::criterion_group!($name, $($rest)*);
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1))
            .sample_size(10)
            .throughput(Throughput::Elements(4));
        let mut calls = 0u32;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, TIMED_ITERS + 1, "warm-up plus timed iterations");
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| v * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, TIMED_ITERS + 1);
    }
}
