//! # greengpu-phase — online phase-change detection over utilization streams
//!
//! ML-training workloads cycle through forward/backward/optimizer phases
//! with sharply different compute/memory intensity (arXiv 2201.01684), so
//! a learner that conditions on *which* phase is running converges per
//! phase instead of averaging across them. This crate provides the
//! context signal: an online, deterministic [`PhaseDetector`] that turns
//! the `(u_core, u_mem)` stream every controller already observes into a
//! small discrete [`PhaseId`], plus a [`PhaseTracker`] measurement
//! harness scoring detection lag and false positives against announced
//! ground truth.
//!
//! The detector is a windowed mean-shift test with a phase *library*:
//!
//! 1. a ring buffer holds the last `window` observations;
//! 2. when the window mean drifts more than `threshold` (L1) from the
//!    current phase's signature and the detector has dwelt at least
//!    `min_dwell` ticks, a change fires;
//! 3. the new window mean is matched against the library of known phase
//!    signatures — a recurring phase (training's forward pass coming
//!    around again) is assigned its *existing* [`PhaseId`], and only a
//!    genuinely new signature allocates a fresh id (capped at
//!    `max_phases`, after which the nearest known phase absorbs it).
//!
//! Like every estimator in the suite the detector is hold-on-invalid:
//! a non-finite observation changes nothing and is counted. There is no
//! RNG anywhere — the emitted id sequence is a pure function of the
//! observation sequence.

#![forbid(unsafe_code)]

use greengpu_sim::JsonValue;

/// A small discrete phase label. Ids are dense (`0, 1, 2, …`) in order
/// of first appearance, so they index per-phase state tables directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhaseId(pub usize);

impl PhaseId {
    /// The id as a table index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Detector tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseDetectorParams {
    /// Observations per mean-shift window (≥ 1).
    pub window: usize,
    /// L1 distance in utilization units the window mean must drift from
    /// the current phase signature before a change fires (> 0). The two
    /// utilization axes contribute equally.
    pub threshold: f64,
    /// Minimum ticks between consecutive change decisions (≥ 1);
    /// suppresses re-triggering while the window still straddles a
    /// boundary. Values below `window` admit changes from mixed windows.
    pub min_dwell: usize,
    /// Library capacity: the maximum number of distinct [`PhaseId`]s
    /// ever emitted (≥ 1). Once full, unseen signatures map to the
    /// nearest known phase. 1 disables detection entirely (every tick is
    /// phase 0) — the detector-off ablation.
    pub max_phases: usize,
}

impl Default for PhaseDetectorParams {
    fn default() -> Self {
        // Sized for 3 s control intervals over training-style phases
        // lasting a handful of intervals: a 2-tick window keeps the
        // detection lag (and so the misrouted-interval cost under the
        // heavily perf-weighted Table-I loss) to a single interval,
        // while the purity gate and the 0.2 L1 threshold — well below
        // the ~0.5+ signature gaps between compute-heavy and
        // memory-heavy training stages, above within-phase jitter —
        // suppress boundary-straddling windows.
        PhaseDetectorParams {
            window: 2,
            threshold: 0.2,
            min_dwell: 2,
            max_phases: 8,
        }
    }
}

impl PhaseDetectorParams {
    /// The detector-off ablation: one phase forever, nothing ever fires.
    pub fn disabled() -> Self {
        PhaseDetectorParams {
            max_phases: 1,
            ..PhaseDetectorParams::default()
        }
    }

    /// Non-panicking range check naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be at least 1".to_string());
        }
        if !self.threshold.is_finite() || self.threshold <= 0.0 {
            return Err(format!("threshold must be finite and > 0, got {}", self.threshold));
        }
        if self.min_dwell == 0 {
            return Err("min_dwell must be at least 1".to_string());
        }
        if self.max_phases == 0 {
            return Err("max_phases must be at least 1".to_string());
        }
        Ok(())
    }
}

/// Online windowed mean-shift phase detector with a recurring-phase
/// library. See the crate docs for the algorithm.
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    params: PhaseDetectorParams,
    /// Ring buffer of the last `window` clamped observations.
    buf: Vec<(f64, f64)>,
    /// Valid entries in `buf` (saturates at `window`).
    filled: usize,
    /// Next write position in `buf`.
    pos: usize,
    /// Known phase signatures, indexed by [`PhaseId`]; frozen at the
    /// window mean that first established each phase.
    centroids: Vec<(f64, f64)>,
    /// The phase currently being emitted.
    current: usize,
    /// Ticks since the last change decision (or since start).
    dwell: usize,
    ticks: u64,
    changes: u64,
    invalid_held: u64,
}

/// L1 distance between two utilization points.
fn l1(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

impl PhaseDetector {
    /// Builds a detector, rejecting invalid parameters with the field
    /// name.
    pub fn new(params: PhaseDetectorParams) -> Result<Self, String> {
        params.try_validate()?;
        Ok(PhaseDetector {
            params,
            buf: vec![(0.0, 0.0); params.window],
            filled: 0,
            pos: 0,
            centroids: Vec::new(),
            current: 0,
            dwell: 0,
            ticks: 0,
            changes: 0,
            invalid_held: 0,
        })
    }

    /// The detector's parameters.
    pub fn params(&self) -> PhaseDetectorParams {
        self.params
    }

    /// The phase currently being emitted.
    pub fn current(&self) -> PhaseId {
        PhaseId(self.current)
    }

    /// Distinct phases discovered so far (0 before the first full
    /// window).
    pub fn n_phases(&self) -> usize {
        self.centroids.len()
    }

    /// The frozen signature of `id`, if discovered.
    pub fn signature(&self, id: PhaseId) -> Option<(f64, f64)> {
        self.centroids.get(id.0).copied()
    }

    /// Valid observations processed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Phase-change decisions fired.
    pub fn changes(&self) -> u64 {
        self.changes
    }

    /// Non-finite observations held (state untouched).
    pub fn invalid_held(&self) -> u64 {
        self.invalid_held
    }

    /// Mean of the valid window entries.
    fn window_mean(&self) -> (f64, f64) {
        let mut c = 0.0;
        let mut m = 0.0;
        for &(uc, um) in &self.buf[..self.filled] {
            c += uc;
            m += um;
        }
        let n = self.filled.max(1) as f64;
        (c / n, m / n)
    }

    /// One observation: classify the tick and return the phase to
    /// condition on. Non-finite inputs change nothing (hold-on-invalid).
    pub fn observe(&mut self, u_core: f64, u_mem: f64) -> PhaseId {
        if !(u_core.is_finite() && u_mem.is_finite()) {
            self.invalid_held += 1;
            return PhaseId(self.current);
        }
        let point = (u_core.clamp(0.0, 1.0), u_mem.clamp(0.0, 1.0));
        self.buf[self.pos] = point;
        self.pos = (self.pos + 1) % self.params.window;
        self.filled = (self.filled + 1).min(self.params.window);
        self.ticks = self.ticks.saturating_add(1);
        self.dwell = self.dwell.saturating_add(1);
        // Fast path: *re-recognizing* a known phase needs only one
        // sample. When the newest observation alone has left the
        // current signature and lies within the threshold of a
        // different known centroid, switch immediately — recurring
        // phases (training's cyclic stages) are re-entered with zero
        // lag, so the interval at a boundary is already routed to the
        // right per-phase learner. Discovering a *new* phase below
        // still demands a pure window.
        if self.dwell >= self.params.min_dwell
            && !self.centroids.is_empty()
            && l1(point, self.centroids[self.current]) > self.params.threshold
        {
            let mut nearest = self.current;
            let mut nearest_d = f64::INFINITY;
            for (k, &c) in self.centroids.iter().enumerate() {
                if k == self.current {
                    continue;
                }
                let d = l1(point, c);
                if d < nearest_d {
                    nearest_d = d;
                    nearest = k;
                }
            }
            if nearest_d <= self.params.threshold {
                self.current = nearest;
                self.changes = self.changes.saturating_add(1);
                self.dwell = 0;
                return PhaseId(self.current);
            }
        }
        if self.filled < self.params.window {
            return PhaseId(self.current); // warm-up: no signature yet
        }
        let mean = self.window_mean();
        // A window that straddles a phase boundary has a mean that
        // belongs to neither side; acting on it would freeze a spurious
        // "transition" centroid and double-fire per boundary. Only
        // classify when the window is pure: every point within the
        // threshold of the window mean.
        let pure = self.buf.iter().all(|&p| l1(p, mean) <= self.params.threshold);
        if self.centroids.is_empty() {
            if pure {
                // The first pure window establishes phase 0.
                self.centroids.push(mean);
            }
            return PhaseId(self.current);
        }
        let drift = l1(mean, self.centroids[self.current]);
        if pure && drift > self.params.threshold && self.dwell >= self.params.min_dwell {
            let next = self.classify(mean);
            if next != self.current {
                self.current = next;
                self.changes = self.changes.saturating_add(1);
            }
            self.dwell = 0;
        }
        PhaseId(self.current)
    }

    /// Maps a drifted window mean to a phase id: reuse the nearest known
    /// signature within the threshold, allocate a new id while the
    /// library has room, otherwise absorb into the nearest known phase.
    fn classify(&mut self, mean: (f64, f64)) -> usize {
        let mut nearest = self.current;
        let mut nearest_d = f64::INFINITY;
        for (k, &c) in self.centroids.iter().enumerate() {
            let d = l1(mean, c);
            if d < nearest_d {
                nearest_d = d;
                nearest = k;
            }
        }
        if nearest_d <= self.params.threshold {
            return nearest; // a recurring phase
        }
        if self.centroids.len() < self.params.max_phases {
            self.centroids.push(mean);
            return self.centroids.len() - 1;
        }
        nearest
    }

    /// Resets all state (library included) and counters.
    pub fn reset(&mut self) {
        self.buf.iter_mut().for_each(|p| *p = (0.0, 0.0));
        self.filled = 0;
        self.pos = 0;
        self.centroids.clear();
        self.current = 0;
        self.dwell = 0;
        self.ticks = 0;
        self.changes = 0;
        self.invalid_held = 0;
    }

    /// Serializes the decision-relevant state (window contents, library,
    /// current phase, dwell). Counters are telemetry and excluded — a
    /// restored detector classifies identically but reports fresh
    /// counts.
    pub fn snapshot(&self) -> JsonValue {
        let flat = |pts: &[(f64, f64)]| -> Vec<f64> { pts.iter().flat_map(|&(a, b)| [a, b]).collect() };
        JsonValue::Obj(vec![
            ("buf".to_string(), JsonValue::f64_array(&flat(&self.buf))),
            ("filled".to_string(), JsonValue::usize(self.filled)),
            ("pos".to_string(), JsonValue::usize(self.pos)),
            ("centroids".to_string(), JsonValue::f64_array(&flat(&self.centroids))),
            ("current".to_string(), JsonValue::usize(self.current)),
            ("dwell".to_string(), JsonValue::usize(self.dwell)),
        ])
    }

    /// Restores a [`PhaseDetector::snapshot`]. Validates fully before
    /// mutating, naming the offending field, so a failed restore leaves
    /// the detector unchanged.
    pub fn restore(&mut self, state: &JsonValue) -> Result<(), String> {
        let buf = parse_points(state, "buf", Some(self.params.window))?;
        let centroids = parse_points(state, "centroids", None)?;
        let filled = parse_index(state, "filled")?;
        let pos = parse_index(state, "pos")?;
        let current = parse_index(state, "current")?;
        let dwell = parse_index(state, "dwell")?;
        if filled > self.params.window {
            return Err(format!("filled = {filled} exceeds window {}", self.params.window));
        }
        if pos >= self.params.window {
            return Err(format!("pos = {pos} out of window {}", self.params.window));
        }
        if centroids.len() > self.params.max_phases {
            return Err(format!(
                "centroids has {} phases, max_phases is {}",
                centroids.len(),
                self.params.max_phases
            ));
        }
        if current >= centroids.len().max(1) {
            return Err(format!("current = {current} out of {} phases", centroids.len()));
        }
        self.buf = buf;
        self.centroids = centroids;
        self.filled = filled;
        self.pos = pos;
        self.current = current;
        self.dwell = dwell;
        Ok(())
    }
}

/// Decodes a flattened `(f64, f64)` point list, optionally of fixed
/// length.
fn parse_points(state: &JsonValue, name: &str, want_len: Option<usize>) -> Result<Vec<(f64, f64)>, String> {
    let v = state
        .get(name)
        .ok_or_else(|| format!("snapshot missing field {name:?}"))?;
    let arr = v.as_arr().ok_or_else(|| format!("{name} must be an array"))?;
    if arr.len() % 2 != 0 {
        return Err(format!("{name} must have an even number of entries, got {}", arr.len()));
    }
    if let Some(want) = want_len {
        if arr.len() != 2 * want {
            return Err(format!("{name} must have {} entries, got {}", 2 * want, arr.len()));
        }
    }
    let mut flat = Vec::with_capacity(arr.len());
    for (k, x) in arr.iter().enumerate() {
        flat.push(
            x.as_f64()
                .ok_or_else(|| format!("{name}[{k}] must be a finite number"))?,
        );
    }
    Ok(flat.chunks_exact(2).map(|c| (c[0], c[1])).collect())
}

/// Decodes a non-negative integer field as a `usize`.
fn parse_index(state: &JsonValue, name: &str) -> Result<usize, String> {
    state
        .get(name)
        .ok_or_else(|| format!("snapshot missing field {name:?}"))?
        .as_usize()
        .ok_or_else(|| format!("{name} must be a non-negative integer"))
}

/// Measurement harness around a [`PhaseDetector`]: feed it the same
/// observations the detector sees, announce ground-truth phase changes
/// as they happen, and read back detection lag and false-positive
/// counts. Used by the synthetic-trace tests and the `training`
/// experiment's detector-quality table.
#[derive(Debug, Clone)]
pub struct PhaseTracker {
    detector: PhaseDetector,
    tick: u64,
    /// Announced true changes not yet matched by a detection (tick
    /// stamps, oldest first).
    pending: Vec<u64>,
    true_changes: u64,
    detected_changes: u64,
    matched: u64,
    total_lag_ticks: u64,
    false_positives: u64,
}

impl PhaseTracker {
    /// Wraps a detector.
    pub fn new(detector: PhaseDetector) -> Self {
        PhaseTracker {
            detector,
            tick: 0,
            pending: Vec::new(),
            true_changes: 0,
            detected_changes: 0,
            matched: 0,
            total_lag_ticks: 0,
            false_positives: 0,
        }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &PhaseDetector {
        &self.detector
    }

    /// Announces that the *next* observation comes from a new true
    /// phase.
    pub fn note_true_change(&mut self) {
        self.pending.push(self.tick);
        self.true_changes = self.true_changes.saturating_add(1);
    }

    /// One observation; classifies the tick and scores any detection
    /// against the pending ground truth.
    pub fn observe(&mut self, u_core: f64, u_mem: f64) -> PhaseId {
        self.tick = self.tick.saturating_add(1);
        let before = self.detector.changes();
        let id = self.detector.observe(u_core, u_mem);
        if self.detector.changes() > before {
            self.detected_changes = self.detected_changes.saturating_add(1);
            if self.pending.is_empty() {
                self.false_positives = self.false_positives.saturating_add(1);
            } else {
                // A detection clears the whole backlog — it means the
                // detector caught up; lag is measured to the *oldest*
                // outstanding change.
                let announced = self.pending[0];
                self.total_lag_ticks = self.total_lag_ticks.saturating_add(self.tick - announced);
                self.matched = self.matched.saturating_add(self.pending.len() as u64);
                self.pending.clear();
            }
        }
        id
    }

    /// Announced true changes.
    pub fn true_changes(&self) -> u64 {
        self.true_changes
    }

    /// Detector change decisions.
    pub fn detected_changes(&self) -> u64 {
        self.detected_changes
    }

    /// Detections with no outstanding true change.
    pub fn false_positives(&self) -> u64 {
        self.false_positives
    }

    /// True changes never matched by a detection (so far).
    pub fn missed(&self) -> u64 {
        self.pending.len() as u64
    }

    /// Mean ticks from an announced change to the detection that
    /// cleared it (0 when nothing has matched).
    pub fn mean_lag_ticks(&self) -> f64 {
        if self.matched == 0 {
            0.0
        } else {
            self.total_lag_ticks as f64 / self.matched as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> PhaseDetector {
        PhaseDetector::new(PhaseDetectorParams::default()).expect("valid default params")
    }

    /// A synthetic step trace: `reps` ticks at each signature, cycling.
    fn step_trace(signatures: &[(f64, f64)], reps: usize, cycles: usize) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for _ in 0..cycles {
            for &s in signatures {
                for _ in 0..reps {
                    out.push(s);
                }
            }
        }
        out
    }

    const SIGS: [(f64, f64); 3] = [(0.8, 0.3), (0.3, 0.8), (0.15, 0.15)];

    #[test]
    fn bad_params_name_the_offending_field() {
        let bad = PhaseDetectorParams {
            window: 0,
            ..PhaseDetectorParams::default()
        };
        assert!(PhaseDetector::new(bad).unwrap_err().contains("window"));
        let bad = PhaseDetectorParams {
            threshold: f64::NAN,
            ..PhaseDetectorParams::default()
        };
        assert!(PhaseDetector::new(bad).unwrap_err().contains("threshold"));
        let bad = PhaseDetectorParams {
            min_dwell: 0,
            ..PhaseDetectorParams::default()
        };
        assert!(PhaseDetector::new(bad).unwrap_err().contains("min_dwell"));
        let bad = PhaseDetectorParams {
            max_phases: 0,
            ..PhaseDetectorParams::default()
        };
        assert!(PhaseDetector::new(bad).unwrap_err().contains("max_phases"));
    }

    #[test]
    fn detection_is_deterministic() {
        let trace = step_trace(&SIGS, 8, 3);
        let mut a = detector();
        let mut b = detector();
        for &(uc, um) in &trace {
            assert_eq!(a.observe(uc, um), b.observe(uc, um));
        }
        assert_eq!(a.changes(), b.changes());
    }

    #[test]
    fn step_trace_phases_are_detected_with_bounded_lag() {
        let mut d = detector();
        let mut ids = Vec::new();
        for &(uc, um) in &step_trace(&SIGS, 10, 2) {
            ids.push(d.observe(uc, um));
        }
        // All three signatures discovered, each segment's tail settled
        // on a stable id: the last 4 ticks of every 10-tick segment
        // agree.
        assert_eq!(d.n_phases(), 3);
        for seg in 0..6 {
            let tail: Vec<PhaseId> = ids[seg * 10 + 6..(seg + 1) * 10].to_vec();
            assert!(tail.windows(2).all(|w| w[0] == w[1]), "segment {seg} tail {tail:?}");
        }
    }

    #[test]
    fn recurring_phases_reuse_their_id() {
        let mut d = detector();
        let mut ids = Vec::new();
        for &(uc, um) in &step_trace(&SIGS, 10, 3) {
            ids.push(d.observe(uc, um));
        }
        // The id emitted at the end of each segment must repeat across
        // cycles — phase 0's second visit is labelled like its first.
        let settled = |seg: usize| ids[seg * 10 + 9];
        for seg in 0..3 {
            assert_eq!(settled(seg), settled(seg + 3), "cycle 1 vs 2, stage {seg}");
            assert_eq!(settled(seg), settled(seg + 6), "cycle 1 vs 3, stage {seg}");
        }
        assert_eq!(d.n_phases(), 3, "library must not grow on revisits");
    }

    #[test]
    fn non_finite_observations_hold_state() {
        let mut a = detector();
        let mut b = detector();
        let trace = step_trace(&SIGS, 8, 1);
        for (k, &(uc, um)) in trace.iter().enumerate() {
            a.observe(uc, um);
            b.observe(uc, um);
            if k % 3 == 0 {
                let before = b.current();
                assert_eq!(b.observe(f64::NAN, 0.5), before);
                assert_eq!(b.observe(0.5, f64::INFINITY), before);
            }
        }
        // b saw interleaved garbage but must end bit-identical to a.
        assert_eq!(a.current(), b.current());
        assert_eq!(a.n_phases(), b.n_phases());
        assert_eq!(a.changes(), b.changes());
        assert_eq!(b.invalid_held(), 16);
        assert_eq!(a.snapshot().to_string(), b.snapshot().to_string());
    }

    #[test]
    fn max_phases_caps_the_library() {
        let params = PhaseDetectorParams {
            max_phases: 2,
            ..PhaseDetectorParams::default()
        };
        let mut d = PhaseDetector::new(params).expect("valid params");
        for &(uc, um) in &step_trace(&SIGS, 10, 2) {
            let id = d.observe(uc, um);
            assert!(id.index() < 2, "id {id:?} escaped the cap");
        }
        assert_eq!(d.n_phases(), 2);
    }

    #[test]
    fn disabled_detector_never_changes_phase() {
        let mut d = PhaseDetector::new(PhaseDetectorParams::disabled()).expect("valid params");
        for &(uc, um) in &step_trace(&SIGS, 10, 3) {
            assert_eq!(d.observe(uc, um), PhaseId(0));
        }
        assert_eq!(d.changes(), 0, "one-phase library cannot fire a change");
    }

    #[test]
    fn snapshot_round_trip_is_bit_exact() {
        let trace = step_trace(&SIGS, 7, 2);
        let mut a = detector();
        for &(uc, um) in &trace[..30] {
            a.observe(uc, um);
        }
        let snap = a.snapshot();
        let mut b = detector();
        b.restore(&snap).expect("restore own snapshot");
        assert_eq!(snap.to_string(), b.snapshot().to_string(), "round trip must be exact");
        for &(uc, um) in &trace[30..] {
            assert_eq!(a.observe(uc, um), b.observe(uc, um), "futures must agree");
        }
    }

    #[test]
    fn restore_rejects_garbage_naming_the_field() {
        let mut d = detector();
        let err = d.restore(&JsonValue::Obj(vec![])).unwrap_err();
        assert!(err.contains("buf"), "{err}");
        let mut bad = detector();
        bad.observe(0.5, 0.5);
        let mut tampered = bad.snapshot();
        if let JsonValue::Obj(fields) = &mut tampered {
            for (k, v) in fields.iter_mut() {
                if k == "pos" {
                    *v = JsonValue::usize(99);
                }
            }
        }
        let err = d.restore(&tampered).unwrap_err();
        assert!(err.contains("pos"), "{err}");
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut d = detector();
        for &(uc, um) in &step_trace(&SIGS, 8, 1) {
            d.observe(uc, um);
        }
        assert!(d.n_phases() > 0);
        d.reset();
        assert_eq!(d.n_phases(), 0);
        assert_eq!(d.ticks(), 0);
        let fresh = detector();
        assert_eq!(d.snapshot().to_string(), fresh.snapshot().to_string());
    }

    #[test]
    fn tracker_scores_lag_and_false_positives() {
        let mut t = PhaseTracker::new(detector());
        // Two true segments with an announced boundary.
        for _ in 0..12 {
            t.observe(0.8, 0.3);
        }
        t.note_true_change();
        for _ in 0..12 {
            t.observe(0.2, 0.8);
        }
        assert_eq!(t.true_changes(), 1);
        assert_eq!(t.detected_changes(), 1, "the step must be detected");
        assert_eq!(t.false_positives(), 0);
        assert_eq!(t.missed(), 0);
        let lag = t.mean_lag_ticks();
        assert!((1.0..=6.0).contains(&lag), "lag {lag} outside the window+dwell bound");
    }

    #[test]
    fn tracker_counts_unannounced_detections_as_false_positives() {
        let mut t = PhaseTracker::new(detector());
        for _ in 0..10 {
            t.observe(0.8, 0.3);
        }
        // A real shift the harness never announced.
        for _ in 0..10 {
            t.observe(0.2, 0.8);
        }
        assert_eq!(t.detected_changes(), 1);
        assert_eq!(t.false_positives(), 1);
    }
}
