//! Property tests for the phase detector: classification is a pure
//! function of the observation sequence, step changes on synthetic
//! traces are caught within a bounded lag with no false positives, and
//! snapshot round trips are bit-exact at any split point.

use greengpu_phase::{PhaseDetector, PhaseDetectorParams, PhaseTracker};
use proptest::prelude::*;

/// Well-separated utilization signatures (pairwise L1 ≥ 0.75, far above
/// the default 0.2 threshold even under the jitter below).
const PALETTE: [(f64, f64); 4] = [(0.85, 0.2), (0.2, 0.85), (0.1, 0.1), (0.9, 0.9)];

/// A cyclic step trace over the first `n_sigs` palette signatures:
/// `reps` ticks per segment, `cycles` full rotations, each tick tagged
/// with whether it opens a new true phase. `amp` is a deterministic
/// alternating jitter, kept sub-threshold by the generator bounds.
fn step_trace(n_sigs: usize, reps: usize, cycles: usize, amp: f64) -> Vec<(f64, f64, bool)> {
    let mut out: Vec<(f64, f64, bool)> = Vec::new();
    for c in 0..cycles {
        for (s, &(uc, um)) in PALETTE[..n_sigs].iter().enumerate() {
            for k in 0..reps {
                let j = if out.len().is_multiple_of(2) { amp } else { -amp };
                let boundary = k == 0 && !(c == 0 && s == 0);
                out.push(((uc + j).clamp(0.0, 1.0), (um + j).clamp(0.0, 1.0), boundary));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No hidden state, no RNG: two detectors fed the same observation
    /// sequence — garbage included — emit the same id sequence and end
    /// byte-identical.
    #[test]
    fn detection_is_a_pure_function_of_the_observations(
        obs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, any::<bool>()), 1..80),
    ) {
        let mut a = PhaseDetector::new(PhaseDetectorParams::default()).expect("valid default params");
        let mut b = a.clone();
        for &(uc, um, poison) in &obs {
            let uc = if poison { f64::NAN } else { uc };
            prop_assert_eq!(a.observe(uc, um), b.observe(uc, um));
        }
        prop_assert_eq!(a.changes(), b.changes());
        prop_assert_eq!(a.invalid_held(), b.invalid_held());
        prop_assert_eq!(a.snapshot().to_string(), b.snapshot().to_string());
    }

    /// On a clean step trace every announced change is detected within
    /// `window + min_dwell + 1` ticks on average, nothing is missed, no
    /// detection fires without a true change behind it, and the library
    /// holds exactly the distinct signatures.
    #[test]
    fn step_changes_are_caught_with_bounded_lag_and_no_false_positives(
        n_sigs in 2usize..5,
        reps in 8usize..17,
        cycles in 1usize..4,
        amp in 0.0f64..0.04,
    ) {
        let params = PhaseDetectorParams::default();
        let mut t = PhaseTracker::new(PhaseDetector::new(params).expect("valid default params"));
        for &(uc, um, boundary) in &step_trace(n_sigs, reps, cycles, amp) {
            if boundary {
                t.note_true_change();
            }
            t.observe(uc, um);
        }
        prop_assert_eq!(t.false_positives(), 0);
        prop_assert_eq!(t.missed(), 0, "true changes left undetected");
        prop_assert_eq!(t.detector().n_phases(), n_sigs, "library must match the signature count");
        let bound = (params.window + params.min_dwell + 1) as f64;
        prop_assert!(
            t.mean_lag_ticks() <= bound,
            "mean lag {} above the {bound}-tick bound", t.mean_lag_ticks()
        );
    }

    /// A detector restored from a snapshot replays the donor's future
    /// observation-for-observation, and the snapshots stay byte-equal.
    #[test]
    fn snapshot_round_trip_preserves_future_behavior(
        split in 1usize..60,
        obs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 60..120),
    ) {
        let mut a = PhaseDetector::new(PhaseDetectorParams::default()).expect("valid default params");
        for &(uc, um) in &obs[..split] {
            a.observe(uc, um);
        }
        let snap = a.snapshot();
        let mut b = PhaseDetector::new(PhaseDetectorParams::default()).expect("valid default params");
        b.restore(&snap).expect("restore own snapshot");
        prop_assert_eq!(snap.to_string(), b.snapshot().to_string());
        for &(uc, um) in &obs[split..] {
            prop_assert_eq!(a.observe(uc, um), b.observe(uc, um));
        }
        prop_assert_eq!(a.snapshot().to_string(), b.snapshot().to_string());
    }
}
