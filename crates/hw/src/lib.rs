//! # greengpu-hw — simulated GPU-CPU testbed
//!
//! The GreenGPU paper runs on a physical Dell Optiplex 580: an Nvidia
//! GeForce 8800 GTX (independently clockable core and memory domains, six
//! levels each, observed through `nvidia-smi` and actuated through
//! `nvidia-settings`), an AMD Phenom II X2 CPU (four DVFS P-states under the
//! Linux `ondemand` governor), and two Wattsup Pro power meters — one on the
//! wall outlet feeding the box, one on a dedicated ATX supply feeding the GPU
//! card.
//!
//! This crate rebuilds that testbed as a deterministic model:
//!
//! * [`freq`] — [`FrequencyDomain`]: discrete frequency levels with a step
//!   trace and the `umean` linear utilization mapping used by the WMA scaler.
//! * [`gpu`] — [`GpuSpec`]/[`GpuModel`]: SM-array + memory-channel device
//!   with a roofline-with-overlap timing model and a frequency-proportional
//!   power model (the 8800 GTX era scales frequency only, not voltage).
//! * [`cpu`] — [`CpuSpec`]/[`CpuModel`]: multicore CPU with per-P-state
//!   voltages and `C·V²·f` dynamic power.
//! * [`perf`] — the shared roofline timing math ([`WorkUnits`],
//!   [`GpuTiming`]).
//! * [`meter`] — [`PowerMeter`]: Wattsup-style integrating meters.
//! * [`smi`] — [`Smi`]: the `nvidia-smi`-like polling facade (windowed core
//!   and memory utilizations) the frequency-scaling tier consumes.
//! * [`faults`] — the [`SensorSource`]/[`FreqActuator`] seam between
//!   controllers and the testbed, plus a deterministic, seeded fault
//!   injector ([`FaultPlan`], [`FaultySensor`], [`FaultyActuator`]) that
//!   recreates noisy polls, stale/lost readings, misapplied reclocks, and
//!   miscalibrated meters — and the node-level chaos schedule
//!   ([`ChaosPlan`]: seeded crash, thermal-emergency, and
//!   telemetry-blackout events) plus the [`BlackoutSensors`] decorator
//!   that blanks polls inside blackout windows.
//! * [`nvml`] — an NVML-vocabulary compatibility facade over the same
//!   sensors/actuators (utilization percentages, clock tables,
//!   application-clock setting, power/energy in NVML units).
//! * [`platform`] — [`Platform`]: the assembled two-meter testbed.
//! * [`calib`] — the default 8800 GTX + Phenom II X2 calibration constants.

#![forbid(unsafe_code)]

pub mod calib;
pub mod cpu;
pub mod faults;
pub mod freq;
pub mod gpu;
pub mod meter;
pub mod nvml;
pub mod perf;
pub mod platform;
pub mod smi;

pub use cpu::{CpuModel, CpuSpec};
pub use faults::{
    BlackoutSensors, ChaosEvent, ChaosKind, ChaosPlan, CleanSensors, DirectActuator, FaultPlan, FaultyActuator,
    FaultySensor, FreqActuator, SensorSource,
};
pub use freq::FrequencyDomain;
pub use gpu::{GpuModel, GpuSpec};
pub use meter::PowerMeter;
pub use perf::{cpu_time, gpu_timing, GpuTiming, WorkUnits};
pub use platform::Platform;
pub use smi::Smi;
