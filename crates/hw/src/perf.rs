//! Roofline-with-overlap timing model.
//!
//! The scaling tier of GreenGPU only needs the *phenomenology* the paper's
//! §III case study measures on real hardware:
//!
//! 1. throttling the under-utilized domain is (almost) free until that
//!    domain becomes the bottleneck, and saves energy;
//! 2. throttling the bottleneck domain stretches execution time roughly
//!    proportionally to `1/f` and costs energy.
//!
//! Both fall out of a roofline model with partial compute/memory overlap:
//! the kernel's compute work drains at a rate set by the core clock, its
//! DRAM traffic drains at a rate set by the memory clock, the two overlap by
//! a factor `ovl`, and the measured utilizations are the fraction of the
//! busy period each side is active.

/// The cost of a kernel (or kernel phase) on a device: scalar operations to
/// execute and DRAM bytes to move.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkUnits {
    /// Scalar operations (the roofline's compute axis).
    pub ops: f64,
    /// Bytes of DRAM traffic (the roofline's memory axis).
    pub bytes: f64,
}

impl WorkUnits {
    /// A zero-cost unit of work.
    pub const ZERO: WorkUnits = WorkUnits { ops: 0.0, bytes: 0.0 };

    /// Builds a cost from operations and bytes.
    pub fn new(ops: f64, bytes: f64) -> Self {
        debug_assert!(ops >= 0.0 && bytes >= 0.0, "work must be non-negative");
        WorkUnits { ops, bytes }
    }

    /// True when there is nothing to do.
    pub fn is_zero(&self) -> bool {
        self.ops <= 0.0 && self.bytes <= 0.0
    }

    /// Scales both components, e.g. to take the remaining fraction of a
    /// partially executed phase or a `1-r` slice of a divisible iteration.
    pub fn scale(&self, k: f64) -> WorkUnits {
        debug_assert!(k >= 0.0);
        WorkUnits {
            ops: self.ops * k,
            bytes: self.bytes * k,
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &WorkUnits) -> WorkUnits {
        WorkUnits {
            ops: self.ops + other.ops,
            bytes: self.bytes + other.bytes,
        }
    }

    /// Arithmetic intensity (ops per byte); infinite for pure-compute work.
    pub fn intensity(&self) -> f64 {
        // lint:allow(float_eq) guard against literal-zero byte counts before dividing
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.ops / self.bytes
        }
    }
}

/// Timing decomposition of a GPU kernel at fixed frequencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuTiming {
    /// Total execution time in seconds.
    pub total_s: f64,
    /// Pure-compute time `Tc = ops / compute_rate`.
    pub compute_s: f64,
    /// Pure-memory time `Tm = bytes / mem_bandwidth`.
    pub memory_s: f64,
    /// Core utilization over the busy period (`Tc / T`), the model analog of
    /// nvidia-smi's "GPU busy cycles / total cycles".
    pub u_core: f64,
    /// Memory utilization over the busy period (`Tm / T`), the analog of
    /// "actual bandwidth / rated peak bandwidth".
    pub u_mem: f64,
}

/// Computes the roofline-with-overlap timing of `work` given the device's
/// drain rates.
///
/// * `ops_per_sec` — compute throughput at the current core frequency.
/// * `bytes_per_sec` — DRAM bandwidth at the current memory frequency.
/// * `overlap` — fraction of the shorter side hidden under the longer side,
///   in `[0, 1]`. `1.0` is perfect overlap (`T = max`), `0.0` is fully
///   serialized (`T = Tc + Tm`).
pub fn gpu_timing(work: &WorkUnits, ops_per_sec: f64, bytes_per_sec: f64, overlap: f64) -> GpuTiming {
    assert!(ops_per_sec > 0.0 && bytes_per_sec > 0.0, "rates must be positive");
    assert!((0.0..=1.0).contains(&overlap), "overlap must be in [0,1]");
    let tc = work.ops / ops_per_sec;
    let tm = work.bytes / bytes_per_sec;
    let total = tc.max(tm) + (1.0 - overlap) * tc.min(tm);
    if total <= 0.0 {
        return GpuTiming {
            total_s: 0.0,
            compute_s: 0.0,
            memory_s: 0.0,
            u_core: 0.0,
            u_mem: 0.0,
        };
    }
    GpuTiming {
        total_s: total,
        compute_s: tc,
        memory_s: tm,
        u_core: (tc / total).min(1.0),
        u_mem: (tm / total).min(1.0),
    }
}

/// CPU-side kernel time: `ops / (cores · ops_per_core_per_sec)`, with an
/// optional memory-bandwidth floor (the CPU roofline).
pub fn cpu_time(work: &WorkUnits, cores: usize, ops_per_core_per_sec: f64, mem_bytes_per_sec: f64) -> f64 {
    assert!(cores > 0 && ops_per_core_per_sec > 0.0 && mem_bytes_per_sec > 0.0);
    let tc = work.ops / (cores as f64 * ops_per_core_per_sec);
    let tm = work.bytes / mem_bytes_per_sec;
    tc.max(tm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_work_takes_zero_time() {
        let t = gpu_timing(&WorkUnits::ZERO, 1e9, 1e9, 0.9);
        assert_eq!(t.total_s, 0.0);
        assert_eq!(t.u_core, 0.0);
        assert_eq!(t.u_mem, 0.0);
    }

    #[test]
    fn perfect_overlap_is_max_rule() {
        let w = WorkUnits::new(2e9, 1e9);
        let t = gpu_timing(&w, 1e9, 1e9, 1.0);
        assert!((t.total_s - 2.0).abs() < 1e-12);
        assert!((t.u_core - 1.0).abs() < 1e-12);
        assert!((t.u_mem - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_overlap_is_sum_rule() {
        let w = WorkUnits::new(2e9, 1e9);
        let t = gpu_timing(&w, 1e9, 1e9, 0.0);
        assert!((t.total_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn core_bound_kernel_is_insensitive_to_memory_clock() {
        // Paper Fig. 1a: lowering memory frequency barely moves nbody's time.
        let w = WorkUnits::new(100e9, 1e9); // intensity 100 ops/B: core-bound
        let fast_mem = gpu_timing(&w, 1e9, 80e9, 0.85);
        let slow_mem = gpu_timing(&w, 1e9, 45e9, 0.85);
        let stretch = slow_mem.total_s / fast_mem.total_s;
        assert!(stretch < 1.01, "core-bound stretch {stretch}");
    }

    #[test]
    fn memory_bound_kernel_stretches_with_memory_clock() {
        // Paper Fig. 1a: lowering memory frequency hurts streamcluster.
        let w = WorkUnits::new(1e9, 100e9);
        let fast = gpu_timing(&w, 1e9, 80e9, 0.85);
        let slow = gpu_timing(&w, 1e9, 40e9, 0.85);
        // Bandwidth halves; the fixed compute tail damps the stretch a bit
        // below 2× (tc=1, tm: 1.25→2.5, T: 1.40→2.65 ⇒ ~1.9×).
        let stretch = slow.total_s / fast.total_s;
        assert!((1.8..2.0).contains(&stretch), "memory-bound stretch {stretch}");
    }

    #[test]
    fn total_time_monotone_in_each_rate() {
        let w = WorkUnits::new(5e9, 3e9);
        let base = gpu_timing(&w, 1e9, 1e9, 0.7).total_s;
        assert!(gpu_timing(&w, 2e9, 1e9, 0.7).total_s <= base);
        assert!(gpu_timing(&w, 1e9, 2e9, 0.7).total_s <= base);
        assert!(gpu_timing(&w, 0.5e9, 1e9, 0.7).total_s >= base);
    }

    #[test]
    fn utilizations_are_fractions_of_busy_time() {
        let w = WorkUnits::new(4e9, 1e9);
        let t = gpu_timing(&w, 1e9, 1e9, 0.5);
        // tc=4, tm=1, T = 4 + 0.5*1 = 4.5
        assert!((t.total_s - 4.5).abs() < 1e-12);
        assert!((t.u_core - 4.0 / 4.5).abs() < 1e-12);
        assert!((t.u_mem - 1.0 / 4.5).abs() < 1e-12);
        assert!(t.u_core <= 1.0 && t.u_mem <= 1.0);
    }

    #[test]
    fn cpu_time_scales_with_cores_and_frequency() {
        let w = WorkUnits::new(10e9, 1e6);
        let one = cpu_time(&w, 1, 5e9, 10e9);
        let two = cpu_time(&w, 2, 5e9, 10e9);
        assert!((one / two - 2.0).abs() < 1e-9);
        let slow = cpu_time(&w, 1, 2.5e9, 10e9);
        assert!((slow / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_time_hits_bandwidth_floor() {
        let w = WorkUnits::new(1e6, 10e9); // trivially few ops, lots of bytes
        let t = cpu_time(&w, 2, 5e9, 5e9);
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn work_units_helpers() {
        let w = WorkUnits::new(10.0, 4.0);
        assert!((w.intensity() - 2.5).abs() < 1e-12);
        assert_eq!(WorkUnits::new(1.0, 0.0).intensity(), f64::INFINITY);
        let s = w.scale(0.5);
        assert_eq!(s, WorkUnits::new(5.0, 2.0));
        let sum = w.add(&s);
        assert_eq!(sum, WorkUnits::new(15.0, 6.0));
        assert!(WorkUnits::ZERO.is_zero());
        assert!(!w.is_zero());
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn zero_rate_panics() {
        gpu_timing(&WorkUnits::new(1.0, 1.0), 0.0, 1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "overlap must be in")]
    fn bad_overlap_panics() {
        gpu_timing(&WorkUnits::new(1.0, 1.0), 1.0, 1.0, 1.5);
    }
}
