//! Deterministic sensor/actuator fault injection.
//!
//! The paper's controllers consume real `nvidia-smi` polls and Wattsup
//! samples and actuate real clocks through `nvidia-settings` — all of
//! which are noisy, laggy, and occasionally wrong on hardware. This module
//! recreates those conditions on the simulated testbed so the control
//! tiers can be hardened and tested against them:
//!
//! * [`SensorSource`] / [`FreqActuator`] — the trait seam. Controllers
//!   consume these instead of touching [`Smi`] / [`Platform`] actuation
//!   directly, so clean and faulted providers are interchangeable.
//! * [`FaultPlan`] — per-channel fault configuration: utilization jitter
//!   (bounded Gaussian), stale/dropped readings, iteration-timing noise,
//!   actuation drop/offset/delay, and meter gain/bias/saturation.
//! * [`FaultySensor`] / [`FaultyActuator`] — seeded injectors wrapping
//!   the clean providers. Every channel draws from its own
//!   [`Pcg32`] stream, and a channel whose knobs are all zero draws
//!   *nothing*, so a zero-intensity plan reproduces the clean run
//!   byte-for-byte.
//! * [`InjectionEvent`] — every injected fault is recorded (virtual time,
//!   channel, kind, magnitude) so a run's fault sequence can be audited
//!   and replayed.

use crate::cpu::CpuModel;
use crate::gpu::GpuModel;
use crate::platform::Platform;
use crate::smi::{CpuReading, Smi, SmiReading};
use greengpu_sim::rng::{Pcg32, SplitMix64};
use greengpu_sim::SimTime;

/// A source of utilization readings for the control tiers.
///
/// `observe_iteration` sits on the division tier's measurement path; the
/// default implementation passes the true iteration times through.
///
/// `Send` because the cluster tier's parallel engine moves whole nodes
/// (and therefore their boxed providers) across worker threads; every
/// provider here is plain data.
pub trait SensorSource: Send {
    /// Windowed GPU utilizations at `now` (the `nvidia-smi` path).
    fn poll_gpu(&mut self, gpu: &GpuModel, now: SimTime) -> SmiReading;

    /// Windowed CPU utilization at `now` (the `/proc/stat` path).
    fn poll_cpu(&mut self, cpu: &CpuModel, now: SimTime) -> CpuReading;

    /// The division tier's view of the measured iteration times.
    fn observe_iteration(&mut self, tc_s: f64, tg_s: f64) -> (f64, f64) {
        (tc_s, tg_s)
    }

    /// Faults injected so far (empty for clean sources).
    fn injection_log(&self) -> &[InjectionEvent] {
        &[]
    }
}

/// A sink for frequency commands (the `nvidia-settings` / cpufreq path).
/// `Send` for the same reason as [`SensorSource`].
pub trait FreqActuator: Send {
    /// Requests the GPU core/memory levels `(core, mem)` at `at`.
    fn set_gpu_levels(&mut self, platform: &mut Platform, at: SimTime, core: usize, mem: usize);

    /// Requests CPU P-state `level` at `at`.
    fn set_cpu_level(&mut self, platform: &mut Platform, at: SimTime, level: usize);

    /// Faults injected so far (empty for clean actuators).
    fn injection_log(&self) -> &[InjectionEvent] {
        &[]
    }
}

/// The perfect-oracle sensor pair the seed controllers used: two [`Smi`]
/// facades with independent windows.
#[derive(Debug, Clone, Default)]
pub struct CleanSensors {
    gpu_smi: Smi,
    cpu_smi: Smi,
}

impl CleanSensors {
    /// Sensors whose first windows start at t = 0.
    pub fn new() -> Self {
        CleanSensors::default()
    }
}

impl SensorSource for CleanSensors {
    fn poll_gpu(&mut self, gpu: &GpuModel, now: SimTime) -> SmiReading {
        self.gpu_smi.poll_gpu(gpu, now)
    }

    fn poll_cpu(&mut self, cpu: &CpuModel, now: SimTime) -> CpuReading {
        self.cpu_smi.poll_cpu(cpu, now)
    }
}

/// The fault-free actuator: commands reach the platform unmodified.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectActuator;

impl FreqActuator for DirectActuator {
    fn set_gpu_levels(&mut self, platform: &mut Platform, at: SimTime, core: usize, mem: usize) {
        platform.set_gpu_levels(at, core, mem);
    }

    fn set_cpu_level(&mut self, platform: &mut Platform, at: SimTime, level: usize) {
        platform.set_cpu_level(at, level);
    }
}

/// Which measurement/actuation path a fault was injected on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultChannel {
    /// GPU utilization polls.
    GpuUtil,
    /// CPU utilization polls.
    CpuUtil,
    /// Iteration time measurements (division tier input).
    Iteration,
    /// Frequency actuation commands.
    Actuation,
}

/// What was done to the channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Bounded Gaussian noise added; the payload is the largest absolute
    /// perturbation applied.
    Jitter(f64),
    /// The previous reading was served again.
    Stale,
    /// The reading was lost (NaN fields) or the command discarded.
    Drop,
    /// The command was applied off by one level; the payload is the signed
    /// core-level offset.
    Offset(i64),
    /// The command was deferred to the next actuation opportunity.
    Delay,
}

/// One injected fault, recorded for audit/replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionEvent {
    /// Virtual time of the injection.
    pub at: SimTime,
    /// The path it was injected on.
    pub channel: FaultChannel,
    /// What happened.
    pub kind: FaultKind,
}

/// Fault knobs for one utilization/measurement channel. All-zero means the
/// channel is passed through untouched (and its RNG stream is never drawn).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelFaults {
    /// Std-dev of additive Gaussian noise, truncated at ±3σ.
    pub jitter_sigma: f64,
    /// Probability a poll returns the previous reading unchanged.
    pub stale_prob: f64,
    /// Probability a poll is lost entirely (NaN fields).
    pub drop_prob: f64,
}

impl ChannelFaults {
    fn is_clean(&self) -> bool {
        // lint:allow(float_eq) exact-zero means the knob was never set; values come only from literals
        self.jitter_sigma == 0.0 && self.stale_prob == 0.0 && self.drop_prob == 0.0
    }
}

/// Fault knobs for the actuation path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActuationFaults {
    /// Probability a command is silently ignored.
    pub drop_prob: f64,
    /// Probability a command lands one level off (direction seeded).
    pub offset_prob: f64,
    /// Probability a command is applied at the *next* actuation call
    /// instead of now.
    pub delay_prob: f64,
}

impl ActuationFaults {
    fn is_clean(&self) -> bool {
        // lint:allow(float_eq) exact-zero means the knob was never set; values come only from literals
        self.drop_prob == 0.0 && self.offset_prob == 0.0 && self.delay_prob == 0.0
    }
}

/// Systematic distortion of power-meter samples (Wattsup-style gain/bias
/// error plus range saturation). This perturbs what the meter *reports*,
/// never the platform's ground-truth energy integral.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeterFaults {
    /// Multiplicative gain error (1.0 = calibrated).
    pub gain: f64,
    /// Additive offset, watts.
    pub bias_w: f64,
    /// Ceiling the meter clips at, watts (`f64::INFINITY` = none).
    pub saturate_w: f64,
}

impl Default for MeterFaults {
    fn default() -> Self {
        MeterFaults {
            gain: 1.0,
            bias_w: 0.0,
            saturate_w: f64::INFINITY,
        }
    }
}

impl MeterFaults {
    /// The wattage a faulted meter would report for true power `w`.
    pub fn observed_w(&self, w: f64) -> f64 {
        (w * self.gain + self.bias_w).min(self.saturate_w)
    }

    /// Distorts a sampled power series.
    pub fn observed_series(&self, samples: &[f64]) -> Vec<f64> {
        samples.iter().map(|&w| self.observed_w(w)).collect()
    }
}

/// The full per-channel fault configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Root seed; each channel derives an independent [`Pcg32`] stream
    /// from it, so faults on one channel never shift another's draws.
    pub seed: u64,
    /// GPU utilization poll faults.
    pub gpu_util: ChannelFaults,
    /// CPU utilization poll faults.
    pub cpu_util: ChannelFaults,
    /// Iteration-time measurement faults (relative jitter).
    pub iteration: ChannelFaults,
    /// Frequency actuation faults.
    pub actuation: ActuationFaults,
    /// Power meter distortion.
    pub meter: MeterFaults,
}

/// Fixed stream ids for the per-channel RNGs.
const STREAM_GPU: u64 = 0xFA01;
const STREAM_CPU: u64 = 0xFA02;
const STREAM_ITER: u64 = 0xFA03;
const STREAM_ACT: u64 = 0xFA04;

impl FaultPlan {
    /// A plan that injects nothing (all knobs zero, meter calibrated).
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            seed,
            gpu_util: ChannelFaults::default(),
            cpu_util: ChannelFaults::default(),
            iteration: ChannelFaults::default(),
            actuation: ActuationFaults::default(),
            meter: MeterFaults::default(),
        }
    }

    /// A plan scaled by a single `intensity` knob in `[0, 1]`: 0 is
    /// [`FaultPlan::clean`], 1 is heavily degraded hardware (±8 % 3σ
    /// utilization noise, 10 % stale and 5 % lost polls, 20 % dropped /
    /// 10 % misapplied / 10 % delayed reclocks, a 5 % meter gain error
    /// with a 2 W bias). The robustness experiment sweeps this axis.
    pub fn with_intensity(seed: u64, intensity: f64) -> Self {
        let x = intensity.clamp(0.0, 1.0);
        let util = ChannelFaults {
            jitter_sigma: 0.08 * x,
            stale_prob: 0.10 * x,
            drop_prob: 0.05 * x,
        };
        FaultPlan {
            seed,
            gpu_util: util,
            cpu_util: util,
            iteration: ChannelFaults {
                jitter_sigma: 0.02 * x,
                stale_prob: 0.0,
                drop_prob: 0.0,
            },
            actuation: ActuationFaults {
                drop_prob: 0.20 * x,
                offset_prob: 0.10 * x,
                delay_prob: 0.10 * x,
            },
            meter: MeterFaults {
                gain: 1.0 + 0.05 * x,
                bias_w: 2.0 * x,
                saturate_w: f64::INFINITY,
            },
        }
    }

    /// Whether the plan injects nothing anywhere.
    pub fn is_clean(&self) -> bool {
        self.gpu_util.is_clean()
            && self.cpu_util.is_clean()
            && self.iteration.is_clean()
            && self.actuation.is_clean()
            && self.meter == MeterFaults::default()
    }
}

/// One channel's injection state: its RNG stream plus its knobs.
#[derive(Debug, Clone)]
struct ChannelState {
    faults: ChannelFaults,
    rng: Pcg32,
}

impl ChannelState {
    fn new(faults: ChannelFaults, seed: u64, stream: u64) -> Self {
        ChannelState {
            faults,
            rng: Pcg32::new(seed, stream),
        }
    }

    /// Draws the fate of one poll. Knobs at zero never touch the RNG.
    fn poll_fate(&mut self) -> Option<FaultKind> {
        let stale = self.faults.stale_prob;
        let drop = self.faults.drop_prob;
        if stale > 0.0 || drop > 0.0 {
            let u = self.rng.next_f64();
            if u < stale {
                return Some(FaultKind::Stale);
            }
            if u < stale + drop {
                return Some(FaultKind::Drop);
            }
        }
        None
    }

    /// Additive bounded-Gaussian noise for one value (0 if disabled).
    fn jitter(&mut self) -> f64 {
        let sigma = self.faults.jitter_sigma;
        if sigma > 0.0 {
            (self.rng.normal() * sigma).clamp(-3.0 * sigma, 3.0 * sigma)
        } else {
            0.0
        }
    }
}

/// A [`SensorSource`] that injects the plan's utilization and
/// iteration-timing faults over the clean sensors.
///
/// Fault precedence per poll: stale (previous reading re-served), then
/// drop (NaN fields — a failed poll), then jitter. The underlying [`Smi`]
/// is *always* polled first so its windowing state stays identical to a
/// clean run's.
#[derive(Debug, Clone)]
pub struct FaultySensor {
    inner: CleanSensors,
    gpu: ChannelState,
    cpu: ChannelState,
    iter: ChannelState,
    last_gpu: Option<SmiReading>,
    last_cpu: Option<CpuReading>,
    log: Vec<InjectionEvent>,
}

impl FaultySensor {
    /// Builds the injector for `plan` over fresh clean sensors.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultySensor {
            inner: CleanSensors::new(),
            gpu: ChannelState::new(plan.gpu_util, plan.seed, STREAM_GPU),
            cpu: ChannelState::new(plan.cpu_util, plan.seed, STREAM_CPU),
            iter: ChannelState::new(plan.iteration, plan.seed, STREAM_ITER),
            last_gpu: None,
            last_cpu: None,
            log: Vec::new(),
        }
    }

    fn log(&mut self, at: SimTime, channel: FaultChannel, kind: FaultKind) {
        self.log.push(InjectionEvent { at, channel, kind });
    }
}

impl SensorSource for FaultySensor {
    fn poll_gpu(&mut self, gpu: &GpuModel, now: SimTime) -> SmiReading {
        let truth = self.inner.poll_gpu(gpu, now);
        match self.gpu.poll_fate() {
            Some(FaultKind::Stale) if self.last_gpu.is_some() => {
                self.log(now, FaultChannel::GpuUtil, FaultKind::Stale);
                return self.last_gpu.expect("checked");
            }
            Some(FaultKind::Drop) => {
                self.log(now, FaultChannel::GpuUtil, FaultKind::Drop);
                return SmiReading {
                    u_core: f64::NAN,
                    u_mem: f64::NAN,
                    ..truth
                };
            }
            _ => {}
        }
        let (dc, dm) = (self.gpu.jitter(), self.gpu.jitter());
        let reading = SmiReading {
            u_core: truth.u_core + dc,
            u_mem: truth.u_mem + dm,
            ..truth
        };
        // lint:allow(float_eq) jitter() returns literal 0.0 when the fault path is off
        if dc != 0.0 || dm != 0.0 {
            self.log(now, FaultChannel::GpuUtil, FaultKind::Jitter(dc.abs().max(dm.abs())));
        }
        self.last_gpu = Some(reading);
        reading
    }

    fn poll_cpu(&mut self, cpu: &CpuModel, now: SimTime) -> CpuReading {
        let truth = self.inner.poll_cpu(cpu, now);
        match self.cpu.poll_fate() {
            Some(FaultKind::Stale) if self.last_cpu.is_some() => {
                self.log(now, FaultChannel::CpuUtil, FaultKind::Stale);
                return self.last_cpu.expect("checked");
            }
            Some(FaultKind::Drop) => {
                self.log(now, FaultChannel::CpuUtil, FaultKind::Drop);
                return CpuReading {
                    util: f64::NAN,
                    ..truth
                };
            }
            _ => {}
        }
        let du = self.cpu.jitter();
        let reading = CpuReading {
            util: truth.util + du,
            ..truth
        };
        // lint:allow(float_eq) jitter() returns literal 0.0 when the fault path is off
        if du != 0.0 {
            self.log(now, FaultChannel::CpuUtil, FaultKind::Jitter(du.abs()));
        }
        self.last_cpu = Some(reading);
        reading
    }

    fn observe_iteration(&mut self, tc_s: f64, tg_s: f64) -> (f64, f64) {
        // Relative jitter: timers mis-measure proportionally to the span.
        let (jc, jg) = (self.iter.jitter(), self.iter.jitter());
        // lint:allow(float_eq) jitter() returns literal 0.0 when the fault path is off
        if jc != 0.0 || jg != 0.0 {
            self.log(
                SimTime::ZERO,
                FaultChannel::Iteration,
                FaultKind::Jitter(jc.abs().max(jg.abs())),
            );
            ((tc_s * (1.0 + jc)).max(0.0), (tg_s * (1.0 + jg)).max(0.0))
        } else {
            (tc_s, tg_s)
        }
    }

    fn injection_log(&self) -> &[InjectionEvent] {
        &self.log
    }
}

/// A deferred frequency command.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PendingCmd {
    Gpu { core: usize, mem: usize },
    Cpu { level: usize },
}

/// A [`FreqActuator`] that injects the plan's actuation faults: commands
/// may be silently dropped, applied one level off, or deferred to the next
/// actuation call (whose own command is then decided independently).
#[derive(Debug, Clone)]
pub struct FaultyActuator {
    faults: ActuationFaults,
    rng: Pcg32,
    pending: Option<PendingCmd>,
    log: Vec<InjectionEvent>,
}

impl FaultyActuator {
    /// Builds the injector for `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultyActuator {
            faults: plan.actuation,
            rng: Pcg32::new(plan.seed, STREAM_ACT),
            pending: None,
            log: Vec::new(),
        }
    }

    /// Flushes a delayed command (it finally lands now).
    fn flush_pending(&mut self, platform: &mut Platform, at: SimTime) {
        if let Some(cmd) = self.pending.take() {
            match cmd {
                PendingCmd::Gpu { core, mem } => platform.set_gpu_levels(at, core, mem),
                PendingCmd::Cpu { level } => platform.set_cpu_level(at, level),
            }
        }
    }

    /// Draws the fate of one command. All-zero knobs never touch the RNG.
    fn command_fate(&mut self) -> Option<FaultKind> {
        if self.faults.is_clean() {
            return None;
        }
        let u = self.rng.next_f64();
        if u < self.faults.drop_prob {
            Some(FaultKind::Drop)
        } else if u < self.faults.drop_prob + self.faults.offset_prob {
            // Direction from the same stream: deterministic per command.
            let dir = if self.rng.next_u32() & 1 == 1 { 1 } else { -1 };
            Some(FaultKind::Offset(dir))
        } else if u < self.faults.drop_prob + self.faults.offset_prob + self.faults.delay_prob {
            Some(FaultKind::Delay)
        } else {
            None
        }
    }
}

/// Clamped one-level offset within `[0, count)`.
fn offset_level(level: usize, dir: i64, count: usize) -> usize {
    let shifted = level as i64 + dir;
    shifted.clamp(0, count as i64 - 1) as usize
}

impl FreqActuator for FaultyActuator {
    fn set_gpu_levels(&mut self, platform: &mut Platform, at: SimTime, core: usize, mem: usize) {
        self.flush_pending(platform, at);
        match self.command_fate() {
            Some(FaultKind::Drop) => {
                self.log.push(InjectionEvent {
                    at,
                    channel: FaultChannel::Actuation,
                    kind: FaultKind::Drop,
                });
            }
            Some(FaultKind::Offset(dir)) => {
                let n_core = platform.gpu().core().level_count();
                let n_mem = platform.gpu().mem().level_count();
                platform.set_gpu_levels(at, offset_level(core, dir, n_core), offset_level(mem, dir, n_mem));
                self.log.push(InjectionEvent {
                    at,
                    channel: FaultChannel::Actuation,
                    kind: FaultKind::Offset(dir),
                });
            }
            Some(FaultKind::Delay) => {
                self.pending = Some(PendingCmd::Gpu { core, mem });
                self.log.push(InjectionEvent {
                    at,
                    channel: FaultChannel::Actuation,
                    kind: FaultKind::Delay,
                });
            }
            _ => platform.set_gpu_levels(at, core, mem),
        }
    }

    fn set_cpu_level(&mut self, platform: &mut Platform, at: SimTime, level: usize) {
        self.flush_pending(platform, at);
        match self.command_fate() {
            Some(FaultKind::Drop) => {
                self.log.push(InjectionEvent {
                    at,
                    channel: FaultChannel::Actuation,
                    kind: FaultKind::Drop,
                });
            }
            Some(FaultKind::Offset(dir)) => {
                let count = platform.cpu().domain().level_count();
                platform.set_cpu_level(at, offset_level(level, dir, count));
                self.log.push(InjectionEvent {
                    at,
                    channel: FaultChannel::Actuation,
                    kind: FaultKind::Offset(dir),
                });
            }
            Some(FaultKind::Delay) => {
                self.pending = Some(PendingCmd::Cpu { level });
                self.log.push(InjectionEvent {
                    at,
                    channel: FaultChannel::Actuation,
                    kind: FaultKind::Delay,
                });
            }
            _ => platform.set_cpu_level(at, level),
        }
    }

    fn injection_log(&self) -> &[InjectionEvent] {
        &self.log
    }
}

// ---------------------------------------------------------------------
// Chaos schedule: node-level failure events
// ---------------------------------------------------------------------

/// Stream ids for the chaos channels, continuing the fault streams above.
const STREAM_CHAOS_CRASH: u64 = 0xFA05;
const STREAM_CHAOS_THERMAL: u64 = 0xFA06;
const STREAM_CHAOS_BLACKOUT: u64 = 0xFA07;

/// What happens to a node at a chaos event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosKind {
    /// The node dies: learner state and the in-flight job are lost, the
    /// node draws no budget, and it stays dark for `outage_s` before its
    /// restart begins.
    Crash {
        /// Seconds between the crash and the start of the restart.
        outage_s: f64,
    },
    /// A thermal emergency: the node survives but must run at its floor
    /// frequency pair for `duration_s` (its power demand collapses to the
    /// floor and the budget is re-apportioned around it).
    ThermalEmergency {
        /// Seconds the node is pinned to its floor pair.
        duration_s: f64,
    },
    /// A telemetry blackout: every sensor poll in the window returns NaN
    /// fields, exercising the controller's last-known-good hold.
    TelemetryBlackout {
        /// Seconds the node's sensors read nothing.
        duration_s: f64,
    },
}

impl ChaosKind {
    /// Stable ordering rank so same-instant events sort deterministically.
    fn rank(&self) -> u8 {
        match self {
            ChaosKind::Crash { .. } => 0,
            ChaosKind::ThermalEmergency { .. } => 1,
            ChaosKind::TelemetryBlackout { .. } => 2,
        }
    }
}

/// One scheduled failure: when, which node, what kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEvent {
    /// Virtual time the event fires.
    pub at: SimTime,
    /// Index of the affected node.
    pub node: usize,
    /// What happens.
    pub kind: ChaosKind,
}

/// Seeded configuration of node-level failures for one fleet run.
///
/// Each channel is a per-node Poisson process: event gaps are drawn as
/// `-ln(1-u)/rate` from a dedicated [`Pcg32`] stream derived from
/// `seed + node`, so (a) the schedule for node *i* never depends on how
/// many nodes exist, and (b) a channel whose rate is zero draws nothing —
/// a quiet plan perturbs no stream anywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Root seed; per-node sub-seeds derive from it.
    pub seed: u64,
    /// Mean crashes per node-second (0 disables crashes).
    pub crash_rate_per_s: f64,
    /// Uniform range of the dark period after a crash, seconds.
    pub outage_s: (f64, f64),
    /// Mean thermal emergencies per node-second (0 disables them).
    pub thermal_rate_per_s: f64,
    /// Uniform range of thermal-emergency duration, seconds.
    pub thermal_s: (f64, f64),
    /// Mean telemetry blackouts per node-second (0 disables them).
    pub blackout_rate_per_s: f64,
    /// Uniform range of blackout duration, seconds.
    pub blackout_s: (f64, f64),
}

impl ChaosPlan {
    /// A plan that schedules nothing.
    pub fn quiet(seed: u64) -> Self {
        ChaosPlan {
            seed,
            crash_rate_per_s: 0.0,
            outage_s: (2.0, 6.0),
            thermal_rate_per_s: 0.0,
            thermal_s: (3.0, 8.0),
            blackout_rate_per_s: 0.0,
            blackout_s: (2.0, 5.0),
        }
    }

    /// Crashes only, at `rate` per node-second with `outage_s` dark time.
    pub fn crashes_only(seed: u64, rate: f64, outage_s: (f64, f64)) -> Self {
        ChaosPlan {
            crash_rate_per_s: rate,
            outage_s,
            ..ChaosPlan::quiet(seed)
        }
    }

    /// Adds thermal emergencies at `rate` per node-second.
    pub fn with_thermal(mut self, rate: f64, duration_s: (f64, f64)) -> Self {
        self.thermal_rate_per_s = rate;
        self.thermal_s = duration_s;
        self
    }

    /// Adds telemetry blackouts at `rate` per node-second.
    pub fn with_blackouts(mut self, rate: f64, duration_s: (f64, f64)) -> Self {
        self.blackout_rate_per_s = rate;
        self.blackout_s = duration_s;
        self
    }

    /// Whether the plan schedules nothing on any channel.
    pub fn is_quiet(&self) -> bool {
        // lint:allow(float_eq) exact-zero means the rate was never configured; set only from literals
        self.crash_rate_per_s == 0.0 && self.thermal_rate_per_s == 0.0 && self.blackout_rate_per_s == 0.0
    }

    /// Non-panicking parameter check, naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        let rate = |name: &str, v: f64| -> Result<(), String> {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
            Ok(())
        };
        let range = |name: &str, (lo, hi): (f64, f64)| -> Result<(), String> {
            if !(lo.is_finite() && hi.is_finite()) || lo <= 0.0 || hi < lo {
                return Err(format!("{name} must be a positive ordered range, got ({lo}, {hi})"));
            }
            Ok(())
        };
        rate("crash_rate_per_s", self.crash_rate_per_s)?;
        rate("thermal_rate_per_s", self.thermal_rate_per_s)?;
        rate("blackout_rate_per_s", self.blackout_rate_per_s)?;
        range("outage_s", self.outage_s)?;
        range("thermal_s", self.thermal_s)?;
        range("blackout_s", self.blackout_s)?;
        Ok(())
    }

    /// Materializes the full event schedule for `n_nodes` nodes over
    /// `[0, horizon_s)`, sorted by `(time, node, kind)`. Deterministic:
    /// same plan, node count, and horizon ⇒ identical schedule.
    pub fn schedule(&self, n_nodes: usize, horizon_s: f64) -> Vec<ChaosEvent> {
        let mut events = Vec::new();
        for node in 0..n_nodes {
            let node_seed = SplitMix64::new(self.seed.wrapping_add(node as u64)).next_u64();
            self.channel(
                &mut events,
                node,
                horizon_s,
                Pcg32::new(node_seed, STREAM_CHAOS_CRASH),
                self.crash_rate_per_s,
                self.outage_s,
                |d| ChaosKind::Crash { outage_s: d },
            );
            self.channel(
                &mut events,
                node,
                horizon_s,
                Pcg32::new(node_seed, STREAM_CHAOS_THERMAL),
                self.thermal_rate_per_s,
                self.thermal_s,
                |d| ChaosKind::ThermalEmergency { duration_s: d },
            );
            self.channel(
                &mut events,
                node,
                horizon_s,
                Pcg32::new(node_seed, STREAM_CHAOS_BLACKOUT),
                self.blackout_rate_per_s,
                self.blackout_s,
                |d| ChaosKind::TelemetryBlackout { duration_s: d },
            );
        }
        events.sort_by_key(|e| (e.at, e.node, e.kind.rank()));
        events
    }

    /// Draws one channel's Poisson arrivals and uniform durations.
    #[allow(clippy::too_many_arguments)]
    fn channel(
        &self,
        events: &mut Vec<ChaosEvent>,
        node: usize,
        horizon_s: f64,
        mut rng: Pcg32,
        rate: f64,
        duration_s: (f64, f64),
        make: impl Fn(f64) -> ChaosKind,
    ) {
        if rate <= 0.0 {
            return;
        }
        let mut t = 0.0;
        loop {
            let u = rng.next_f64();
            t += -(1.0 - u).ln() / rate;
            if t >= horizon_s {
                return;
            }
            let d = rng.uniform(duration_s.0, duration_s.1);
            events.push(ChaosEvent {
                at: SimTime::from_secs_f64(t),
                node,
                kind: make(d),
            });
        }
    }
}

/// A [`SensorSource`] decorator that blanks every poll inside scheduled
/// blackout windows: both readings come back with NaN fields, which the
/// hardened controller's NaN rejection turns into a last-known-good hold.
///
/// The inner source is *always* polled first so its windowing/fault state
/// stays identical to an un-blanked run. `injection_log` reports only the
/// blackout events; the inner source's own log is unreachable through the
/// wrapper (the fleet records blackout windows at schedule level instead).
pub struct BlackoutSensors {
    inner: Box<dyn SensorSource>,
    /// Half-open `[start, end)` windows, assumed non-overlapping.
    windows: Vec<(SimTime, SimTime)>,
    log: Vec<InjectionEvent>,
}

impl BlackoutSensors {
    /// Wraps `inner`, blanking polls inside `windows`.
    pub fn new(inner: Box<dyn SensorSource>, windows: Vec<(SimTime, SimTime)>) -> Self {
        BlackoutSensors {
            inner,
            windows,
            log: Vec::new(),
        }
    }

    fn dark_at(&self, now: SimTime) -> bool {
        self.windows.iter().any(|&(start, end)| start <= now && now < end)
    }
}

impl SensorSource for BlackoutSensors {
    fn poll_gpu(&mut self, gpu: &GpuModel, now: SimTime) -> SmiReading {
        let truth = self.inner.poll_gpu(gpu, now);
        if self.dark_at(now) {
            self.log.push(InjectionEvent {
                at: now,
                channel: FaultChannel::GpuUtil,
                kind: FaultKind::Drop,
            });
            return SmiReading {
                u_core: f64::NAN,
                u_mem: f64::NAN,
                ..truth
            };
        }
        truth
    }

    fn poll_cpu(&mut self, cpu: &CpuModel, now: SimTime) -> CpuReading {
        let truth = self.inner.poll_cpu(cpu, now);
        if self.dark_at(now) {
            self.log.push(InjectionEvent {
                at: now,
                channel: FaultChannel::CpuUtil,
                kind: FaultKind::Drop,
            });
            return CpuReading {
                util: f64::NAN,
                ..truth
            };
        }
        truth
    }

    fn observe_iteration(&mut self, tc_s: f64, tg_s: f64) -> (f64, f64) {
        self.inner.observe_iteration(tc_s, tg_s)
    }

    fn injection_log(&self) -> &[InjectionEvent] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::{geforce_8800_gtx, phenom_ii_x2};

    fn gpu_at_half() -> GpuModel {
        let mut gpu = GpuModel::new(geforce_8800_gtx(), 5, 5);
        gpu.set_activity(SimTime::ZERO, 0.5, 0.5);
        gpu
    }

    #[test]
    fn clean_plan_is_transparent_and_draws_nothing() {
        let gpu = gpu_at_half();
        let mut clean = CleanSensors::new();
        let mut faulty = FaultySensor::new(&FaultPlan::clean(7));
        for t in 1..20 {
            let now = SimTime::from_secs(t);
            assert_eq!(clean.poll_gpu(&gpu, now), faulty.poll_gpu(&gpu, now));
        }
        assert!(faulty.injection_log().is_empty());
    }

    #[test]
    fn clean_observe_iteration_passes_times_through() {
        let mut clean = CleanSensors::new();
        assert_eq!(clean.observe_iteration(1.25, 2.5), (1.25, 2.5));
        let mut quiet = FaultySensor::new(&FaultPlan::clean(7));
        assert_eq!(quiet.observe_iteration(1.25, 2.5), (1.25, 2.5));
        assert!(quiet.injection_log().is_empty());
    }

    #[test]
    fn clean_actuator_is_transparent() {
        let mut p1 = Platform::default_testbed();
        let mut p2 = Platform::default_testbed();
        let mut direct = DirectActuator;
        let mut faulty = FaultyActuator::new(&FaultPlan::clean(7));
        for (t, (c, m)) in [(1, (3, 2)), (2, (5, 5)), (3, (0, 1))] {
            let now = SimTime::from_secs(t);
            direct.set_gpu_levels(&mut p1, now, c, m);
            faulty.set_gpu_levels(&mut p2, now, c, m);
            assert_eq!(p1.gpu().core().current_level(), p2.gpu().core().current_level());
            assert_eq!(p1.gpu().mem().current_level(), p2.gpu().mem().current_level());
        }
        assert!(faulty.injection_log().is_empty());
    }

    #[test]
    fn same_seed_injects_the_same_fault_sequence() {
        let gpu = gpu_at_half();
        let plan = FaultPlan::with_intensity(42, 1.0);
        let mut a = FaultySensor::new(&plan);
        let mut b = FaultySensor::new(&plan);
        for t in 1..200 {
            let now = SimTime::from_secs(t);
            let (ra, rb) = (a.poll_gpu(&gpu, now), b.poll_gpu(&gpu, now));
            // NaN != NaN, so dropped polls compare by both-NaN.
            assert!(
                (ra.u_core.is_nan() && rb.u_core.is_nan()) || ra == rb,
                "t={t}: {ra:?} vs {rb:?}"
            );
        }
        assert_eq!(a.injection_log(), b.injection_log());
        assert!(!a.injection_log().is_empty(), "intensity 1.0 must inject");
    }

    #[test]
    fn channels_use_independent_streams() {
        // Disabling the CPU channel must not change the GPU channel's
        // fault sequence.
        let gpu = gpu_at_half();
        let cpu = CpuModel::new(phenom_ii_x2(), 3);
        let full = FaultPlan::with_intensity(9, 1.0);
        let mut gpu_only = full;
        gpu_only.cpu_util = ChannelFaults::default();
        let mut a = FaultySensor::new(&full);
        let mut b = FaultySensor::new(&gpu_only);
        for t in 1..100 {
            let now = SimTime::from_secs(t);
            let ra = a.poll_gpu(&gpu, now);
            let _ = a.poll_cpu(&cpu, now);
            let rb = b.poll_gpu(&gpu, now);
            let _ = b.poll_cpu(&cpu, now);
            assert!(
                (ra.u_core.is_nan() && rb.u_core.is_nan()) || ra == rb,
                "t={t}: {ra:?} vs {rb:?}"
            );
        }
    }

    #[test]
    fn drop_yields_nan_and_stale_repeats() {
        let gpu = gpu_at_half();
        let plan = FaultPlan {
            gpu_util: ChannelFaults {
                jitter_sigma: 0.0,
                stale_prob: 0.5,
                drop_prob: 0.5,
            },
            ..FaultPlan::clean(3)
        };
        let mut s = FaultySensor::new(&plan);
        let mut saw_nan = false;
        let mut saw_stale = false;
        let mut last = None;
        for t in 1..100 {
            let r = s.poll_gpu(&gpu, SimTime::from_secs(t));
            if r.u_core.is_nan() {
                saw_nan = true;
            } else if last == Some(r) {
                saw_stale = true;
            }
            if !r.u_core.is_nan() {
                last = Some(r);
            }
        }
        assert!(saw_nan, "drop faults must surface as NaN polls");
        assert!(saw_stale, "stale faults must repeat the last reading");
    }

    #[test]
    fn dropped_commands_leave_levels_unchanged() {
        let plan = FaultPlan {
            actuation: ActuationFaults {
                drop_prob: 1.0,
                offset_prob: 0.0,
                delay_prob: 0.0,
            },
            ..FaultPlan::clean(5)
        };
        let mut p = Platform::default_testbed();
        let before = p.gpu().core().current_level();
        let mut a = FaultyActuator::new(&plan);
        a.set_gpu_levels(&mut p, SimTime::from_secs(1), 5, 5);
        assert_eq!(p.gpu().core().current_level(), before, "command must be dropped");
        assert_eq!(a.injection_log().len(), 1);
        assert_eq!(a.injection_log()[0].kind, FaultKind::Drop);
    }

    #[test]
    fn delayed_commands_land_on_the_next_call() {
        let plan = FaultPlan {
            actuation: ActuationFaults {
                drop_prob: 0.0,
                offset_prob: 0.0,
                delay_prob: 1.0,
            },
            ..FaultPlan::clean(5)
        };
        let mut p = Platform::default_testbed();
        let mut a = FaultyActuator::new(&plan);
        a.set_gpu_levels(&mut p, SimTime::from_secs(1), 4, 4);
        assert_ne!(p.gpu().core().current_level(), 4, "first command deferred");
        // Second call flushes the pending command (and defers its own).
        a.set_gpu_levels(&mut p, SimTime::from_secs(2), 2, 2);
        assert_eq!(p.gpu().core().current_level(), 4, "deferred command landed");
    }

    #[test]
    fn offsets_stay_within_the_level_table() {
        let plan = FaultPlan {
            actuation: ActuationFaults {
                drop_prob: 0.0,
                offset_prob: 1.0,
                delay_prob: 0.0,
            },
            ..FaultPlan::clean(11)
        };
        let mut p = Platform::default_testbed();
        let mut a = FaultyActuator::new(&plan);
        for t in 1..50 {
            a.set_gpu_levels(&mut p, SimTime::from_secs(t), 0, 5);
            assert!(p.gpu().core().current_level() <= 1);
            assert!(p.gpu().mem().current_level() >= 4);
            a.set_cpu_level(&mut p, SimTime::from_secs(t), 3);
            assert!(p.cpu().domain().current_level() >= 2);
        }
    }

    #[test]
    fn meter_faults_distort_observations_only() {
        let m = MeterFaults {
            gain: 1.1,
            bias_w: 5.0,
            saturate_w: 100.0,
        };
        assert!((m.observed_w(50.0) - 60.0).abs() < 1e-12);
        assert_eq!(m.observed_w(200.0), 100.0, "saturates at the ceiling");
        assert_eq!(m.observed_series(&[10.0, 200.0]), vec![16.0, 100.0]);
        assert_eq!(MeterFaults::default().observed_w(42.0), 42.0);
    }

    #[test]
    fn intensity_zero_is_clean_and_one_is_not() {
        assert!(FaultPlan::with_intensity(1, 0.0).is_clean());
        assert!(!FaultPlan::with_intensity(1, 1.0).is_clean());
        assert!(FaultPlan::clean(1).is_clean());
    }

    #[test]
    fn quiet_chaos_plan_schedules_nothing() {
        let plan = ChaosPlan::quiet(9);
        assert!(plan.is_quiet());
        assert!(plan.try_validate().is_ok());
        assert!(plan.schedule(8, 1000.0).is_empty());
    }

    #[test]
    fn chaos_schedule_is_deterministic_and_sorted() {
        let plan = ChaosPlan::crashes_only(42, 0.05, (2.0, 6.0))
            .with_thermal(0.02, (3.0, 8.0))
            .with_blackouts(0.03, (2.0, 5.0));
        let a = plan.schedule(4, 300.0);
        let b = plan.schedule(4, 300.0);
        assert_eq!(a, b, "same plan ⇒ identical schedule");
        assert!(!a.is_empty(), "rates this high must produce events");
        for w in a.windows(2) {
            assert!(w[0].at <= w[1].at, "sorted by time");
        }
        for e in &a {
            assert!(e.node < 4);
            assert!(e.at < SimTime::from_secs(300));
            match e.kind {
                ChaosKind::Crash { outage_s: d }
                | ChaosKind::ThermalEmergency { duration_s: d }
                | ChaosKind::TelemetryBlackout { duration_s: d } => {
                    assert!(d > 0.0 && d.is_finite());
                }
            }
        }
    }

    #[test]
    fn chaos_schedule_per_node_is_independent_of_fleet_size() {
        // Node 2's events must not change when the fleet grows.
        let plan = ChaosPlan::crashes_only(7, 0.04, (2.0, 6.0));
        let small: Vec<_> = plan.schedule(3, 200.0).into_iter().filter(|e| e.node == 2).collect();
        let large: Vec<_> = plan.schedule(8, 200.0).into_iter().filter(|e| e.node == 2).collect();
        assert_eq!(small, large);
    }

    #[test]
    fn chaos_validation_names_the_offending_field() {
        let mut plan = ChaosPlan::quiet(1);
        plan.crash_rate_per_s = -1.0;
        assert!(plan.try_validate().unwrap_err().contains("crash_rate_per_s"));
        let mut plan = ChaosPlan::quiet(1);
        plan.outage_s = (5.0, 2.0);
        assert!(plan.try_validate().unwrap_err().contains("outage_s"));
        let mut plan = ChaosPlan::quiet(1);
        plan.blackout_s = (0.0, 2.0);
        assert!(plan.try_validate().unwrap_err().contains("blackout_s"));
        let mut plan = ChaosPlan::quiet(1);
        plan.thermal_rate_per_s = f64::NAN;
        assert!(plan.try_validate().unwrap_err().contains("thermal_rate_per_s"));
    }

    #[test]
    fn blackout_sensors_blank_polls_inside_the_window_only() {
        let gpu = gpu_at_half();
        let cpu = CpuModel::new(phenom_ii_x2(), 0);
        let windows = vec![(SimTime::from_secs(5), SimTime::from_secs(8))];
        let mut dark = BlackoutSensors::new(Box::new(CleanSensors::new()), windows);
        let mut clean = CleanSensors::new();
        for t in 1..12 {
            let now = SimTime::from_secs(t);
            let d = dark.poll_gpu(&gpu, now);
            let c = clean.poll_gpu(&gpu, now);
            let dc = dark.poll_cpu(&cpu, now);
            if (5..8).contains(&t) {
                assert!(d.u_core.is_nan() && d.u_mem.is_nan(), "t={t} must be dark");
                assert!(dc.util.is_nan());
            } else {
                assert_eq!(d, c, "t={t} must match the clean poll");
                assert!(dc.util.is_finite());
            }
        }
        // 3 dark seconds × 2 channels.
        assert_eq!(dark.injection_log().len(), 6);
        assert!(dark.injection_log().iter().all(|e| e.kind == FaultKind::Drop));
    }
}
