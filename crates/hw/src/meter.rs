//! Wattsup-style power meters.
//!
//! The paper instruments the testbed with two Wattsup Pro meters: Meter 1
//! between the wall outlet and the box (CPU side: motherboard, disk, DRAM,
//! CPU) and Meter 2 between a dedicated ATX supply and the GPU card. A
//! [`PowerMeter`] records the instantaneous power reported by a device model
//! as a step trace, integrates it exactly for energy, and can also produce
//! the 1 Hz sample log a real Wattsup would give.

use greengpu_sim::{SampledSeries, SimDuration, SimTime, StepTrace};

/// An integrating power meter.
///
/// ```
/// use greengpu_hw::PowerMeter;
/// use greengpu_sim::SimTime;
///
/// let mut meter = PowerMeter::new("Meter2");
/// meter.record(SimTime::ZERO, 80.0);               // card idles at 80 W
/// meter.record(SimTime::from_secs(10), 230.0);     // kernel starts
/// let joules = meter.energy_j(SimTime::ZERO, SimTime::from_secs(20));
/// assert_eq!(joules, 80.0 * 10.0 + 230.0 * 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct PowerMeter {
    name: String,
    trace: StepTrace,
}

impl PowerMeter {
    /// Creates a meter reading 0 W at t = 0.
    pub fn new(name: impl Into<String>) -> Self {
        PowerMeter {
            name: name.into(),
            trace: StepTrace::with_initial(0.0),
        }
    }

    /// Meter label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records a new instantaneous power reading from `at` onward.
    pub fn record(&mut self, at: SimTime, watts: f64) {
        debug_assert!(watts >= 0.0, "power cannot be negative");
        self.trace.set(at, watts);
    }

    /// Instantaneous power at `at`.
    pub fn power_at(&self, at: SimTime) -> f64 {
        self.trace.value_at(at)
    }

    /// Exact energy in joules over `[from, to)`.
    pub fn energy_j(&self, from: SimTime, to: SimTime) -> f64 {
        self.trace.integral(from, to)
    }

    /// Time-weighted average power over `[from, to)`.
    pub fn mean_power_w(&self, from: SimTime, to: SimTime) -> f64 {
        self.trace.mean(from, to)
    }

    /// The 1 Hz (or arbitrary-period) sample log a physical meter would
    /// produce.
    pub fn sample_log(&self, start: SimTime, period: SimDuration, n: usize) -> SampledSeries {
        self.trace.sample(start, period, n)
    }

    /// The underlying step trace.
    pub fn trace(&self) -> &StepTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_integrates_steps() {
        let mut m = PowerMeter::new("meter2");
        m.record(SimTime::ZERO, 80.0);
        m.record(SimTime::from_secs(10), 230.0);
        m.record(SimTime::from_secs(20), 80.0);
        let e = m.energy_j(SimTime::ZERO, SimTime::from_secs(30));
        // 10s·80 + 10s·230 + 10s·80 = 3900 J
        assert!((e - 3900.0).abs() < 1e-9);
    }

    #[test]
    fn mean_power_over_window() {
        let mut m = PowerMeter::new("m");
        m.record(SimTime::ZERO, 100.0);
        m.record(SimTime::from_secs(5), 200.0);
        let mean = m.mean_power_w(SimTime::ZERO, SimTime::from_secs(10));
        assert!((mean - 150.0).abs() < 1e-9);
    }

    #[test]
    fn one_hz_sampling_approximates_energy() {
        let mut m = PowerMeter::new("m");
        m.record(SimTime::ZERO, 100.0);
        m.record(SimTime::from_secs_f64(2.5), 50.0);
        let log = m.sample_log(SimTime::ZERO, SimDuration::from_secs(1), 10);
        assert_eq!(log.len(), 10);
        let exact = m.energy_j(SimTime::ZERO, SimTime::from_secs(10));
        let est = log.riemann_integral();
        // The sampled estimate is close but not exact — like a real meter.
        assert!((est - exact).abs() / exact < 0.1, "est {est} exact {exact}");
    }

    #[test]
    fn power_at_reads_current_value() {
        let mut m = PowerMeter::new("m");
        m.record(SimTime::from_secs(1), 42.0);
        assert_eq!(m.power_at(SimTime::from_secs(2)), 42.0);
        assert_eq!(m.power_at(SimTime::ZERO), 0.0);
    }
}
