//! Default testbed calibration.
//!
//! Constants are chosen so the simulated devices land in the same class as
//! the paper's hardware. Absolute watts are *not* the reproduction target —
//! the paper reports normalized energy — but keeping the magnitudes
//! realistic keeps the idle-vs-dynamic energy split (which drives the
//! workload-division savings) honest.
//!
//! Sources for the classes:
//! * GeForce 8800 GTX: 128 scalar processors in 16 SMs, 384-bit GDDR3 at
//!   900 MHz (86.4 GB/s), board power ≈ 70–80 W idle / 200–240 W loaded.
//!   The paper selects six equal-distance levels per domain and names
//!   900→500 MHz for memory and a 576 MHz core peak.
//! * AMD Phenom II X2: two cores, P-states 2.8/2.1/1.3/0.8 GHz, 80 W TDP
//!   class; whole-box (Meter 1) idle around 60–70 W.

use crate::cpu::CpuSpec;
use crate::gpu::GpuSpec;

/// Six equal-distance core levels ending at the paper's 576 MHz peak.
///
/// The paper's §III-A case study mentions a ~410 MHz sweet spot for
/// streamcluster; level 2 (408 MHz) sits there.
pub const GPU_CORE_LEVELS_MHZ: [f64; 6] = [296.0, 352.0, 408.0, 464.0, 520.0, 576.0];

/// The paper's memory levels verbatim (§VI): 900 down to 500 MHz in 80 MHz
/// steps.
pub const GPU_MEM_LEVELS_MHZ: [f64; 6] = [500.0, 580.0, 660.0, 740.0, 820.0, 900.0];

/// Phenom II X2 P-states (§VI): 0.8, 1.3, 2.1, 2.8 GHz.
pub const CPU_LEVELS_MHZ: [f64; 4] = [800.0, 1300.0, 2100.0, 2800.0];

/// Typical K10-era core voltages for those P-states.
pub const CPU_VOLTS: [f64; 4] = [1.000, 1.100, 1.250, 1.400];

/// The GeForce 8800 GTX-class GPU model.
pub fn geforce_8800_gtx() -> GpuSpec {
    GpuSpec {
        name: "GeForce 8800 GTX (simulated)".to_string(),
        n_sm: 16,
        sp_per_sm: 8,
        ops_per_sp_cycle: 2.0,
        // 86.4 GB/s at 900 MHz → 96 B per memory-clock cycle (384-bit GDDR3,
        // DDR counted in the effective rate).
        mem_bytes_per_cycle: 96.0,
        core_levels_mhz: GPU_CORE_LEVELS_MHZ.to_vec(),
        mem_levels_mhz: GPU_MEM_LEVELS_MHZ.to_vec(),
        overlap: 0.85,
        // Idle split: a 35 W constant board floor plus clock-tree power
        // that scales with each domain's frequency (20 W core + 25 W
        // memory at peak ⇒ the familiar ~80 W idle of the 8800 GTX class,
        // 230 W loaded). The clock-scalable share is what the paper's
        // frequency-only throttling can actually reclaim.
        p_static_w: 35.0,
        p_core_idle_w: 20.0,
        p_mem_idle_w: 25.0,
        p_core_dyn_w: 90.0,
        p_mem_dyn_w: 60.0,
        // The 8800 GTX scales frequency only (the paper: nvidia-settings
        // "only conducts frequency scaling").
        core_volts: None,
        mem_volts: None,
    }
}

/// A DVFS-capable what-if variant of the card: same clocks and power
/// envelope, but each level carries a voltage, so dynamic power falls with
/// `(V/V_peak)²·f`. This quantifies the paper's §VII-C expectation: "If
/// DVFS is enabled, we expect more energy saving can be achieved from
/// frequency scaling."
pub fn geforce_dvfs_whatif() -> GpuSpec {
    let mut spec = geforce_8800_gtx();
    spec.name = "GeForce 8800 GTX (DVFS what-if)".to_string();
    // Linear V/f map from 0.9 V at the floor to 1.2 V at the peak —
    // representative of later-generation cards.
    let vmap = |levels: &[f64]| -> Vec<f64> {
        let lo = levels[0];
        let hi = *levels.last().expect("levels");
        levels.iter().map(|f| 0.9 + 0.3 * (f - lo) / (hi - lo)).collect()
    };
    spec.core_volts = Some(vmap(&spec.core_levels_mhz));
    spec.mem_volts = Some(vmap(&spec.mem_levels_mhz));
    spec
}

/// The AMD Phenom II X2 host model (Meter 1 scope: box + CPU package).
pub fn phenom_ii_x2() -> CpuSpec {
    CpuSpec {
        name: "AMD Phenom II X2 (simulated)".to_string(),
        n_cores: 2,
        levels_mhz: CPU_LEVELS_MHZ.to_vec(),
        volts: CPU_VOLTS.to_vec(),
        ops_per_core_cycle: 2.5,
        mem_bytes_per_sec: 8.0e9,
        p_box_w: 55.0,
        p_core_idle_w: 6.0,
        p_core_dyn_w: 29.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_peak_throughput_is_in_8800gtx_class() {
        let spec = geforce_8800_gtx();
        // 128 SP × 2 ops × 576 MHz ≈ 147 Gops/s; the real card's ~345 GFLOPS
        // counts the 1.35 GHz shader clock — we model against the core clock
        // the paper actuates, so the ratio (not the absolute) is what matters.
        let peak = spec.peak_ops_per_sec();
        assert!((1e11..1e12).contains(&peak), "peak {peak}");
    }

    #[test]
    fn gpu_peak_bandwidth_matches_8800gtx() {
        let spec = geforce_8800_gtx();
        let bw = spec.peak_bytes_per_sec();
        assert!((bw - 86.4e9).abs() / 86.4e9 < 1e-9, "bw {bw}");
    }

    #[test]
    fn core_levels_are_equal_distance_with_paper_peak() {
        let steps: Vec<f64> = GPU_CORE_LEVELS_MHZ.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(steps.iter().all(|&s| (s - steps[0]).abs() < 1e-9));
        assert_eq!(GPU_CORE_LEVELS_MHZ[5], 576.0);
    }

    #[test]
    fn mem_levels_match_paper_verbatim() {
        assert_eq!(GPU_MEM_LEVELS_MHZ, [500.0, 580.0, 660.0, 740.0, 820.0, 900.0]);
    }

    #[test]
    fn cpu_pstates_match_paper() {
        assert_eq!(CPU_LEVELS_MHZ, [800.0, 1300.0, 2100.0, 2800.0]);
    }

    #[test]
    fn gpu_is_faster_than_cpu_but_not_absurdly() {
        // The division tier's interesting regime (optimal CPU share 10-50 %)
        // requires the GPU to be roughly 1-10× the CPU on divisible kernels.
        let gpu = geforce_8800_gtx();
        let cpu = phenom_ii_x2();
        let cpu_peak = cpu.n_cores as f64 * cpu.ops_per_core_sec(2800.0);
        let ratio = gpu.peak_ops_per_sec() / cpu_peak;
        assert!((2.0..20.0).contains(&ratio), "GPU/CPU ratio {ratio}");
    }
}

#[cfg(test)]
mod dvfs_whatif_tests {
    use super::*;

    #[test]
    fn whatif_card_matches_baseline_at_peak() {
        let base = geforce_8800_gtx();
        let dvfs = geforce_dvfs_whatif();
        let n = base.core_levels_mhz.len() - 1;
        let m = base.mem_levels_mhz.len() - 1;
        assert_eq!(
            base.power_at_levels_w(n, m, 1.0, 1.0),
            dvfs.power_at_levels_w(n, m, 1.0, 1.0),
            "identical envelope at peak (V/V_peak = 1)"
        );
    }

    #[test]
    fn whatif_card_is_cheaper_when_throttled() {
        let base = geforce_8800_gtx();
        let dvfs = geforce_dvfs_whatif();
        for lvl in 0..5 {
            let p_base = base.power_at_levels_w(lvl, lvl, 0.8, 0.5);
            let p_dvfs = dvfs.power_at_levels_w(lvl, lvl, 0.8, 0.5);
            assert!(
                p_dvfs < p_base,
                "level {lvl}: DVFS {p_dvfs} W should undercut frequency-only {p_base} W"
            );
        }
    }

    #[test]
    fn whatif_voltage_map_brackets_expected_range() {
        let dvfs = geforce_dvfs_whatif();
        let volts = dvfs.core_volts.as_ref().expect("voltage table");
        assert!((volts[0] - 0.9).abs() < 1e-12);
        assert!((volts.last().unwrap() - 1.2).abs() < 1e-12);
        assert!(volts.windows(2).all(|w| w[0] < w[1]));
    }
}
