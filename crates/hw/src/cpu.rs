//! The CPU-side model.
//!
//! Models the paper's AMD Phenom II X2 host: a small number of cores sharing
//! one DVFS domain with four P-states (2.8/2.1/1.3/0.8 GHz). Unlike the GPU,
//! the CPU scales *voltage* with frequency, so dynamic power follows
//! `C·V²·f`. The meter on this side corresponds to the paper's Meter 1: it
//! measures the whole box (motherboard, disk, DRAM) plus the CPU package.

use crate::freq::FrequencyDomain;
use crate::perf::{cpu_time, WorkUnits};
use greengpu_sim::{SimTime, StepTrace};

/// Static description of the CPU and host box.
#[derive(Debug, Clone)]
pub struct CpuSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of cores (the Phenom II X2 has two).
    pub n_cores: usize,
    /// P-state frequencies in MHz, ascending.
    pub levels_mhz: Vec<f64>,
    /// Core voltage per P-state, volts, same order as `levels_mhz`.
    pub volts: Vec<f64>,
    /// Scalar operations per core per cycle.
    pub ops_per_core_cycle: f64,
    /// Host memory bandwidth available to CPU kernels, bytes/s.
    pub mem_bytes_per_sec: f64,
    /// Box power excluding the CPU package (motherboard, disk, DRAM), watts.
    pub p_box_w: f64,
    /// Per-core leakage/idle power at peak V/f, watts (scales with `V²·f`).
    pub p_core_idle_w: f64,
    /// Per-core dynamic power at peak V/f and 100 % utilization, watts.
    pub p_core_dyn_w: f64,
}

impl CpuSpec {
    /// Compute throughput of one core at a frequency in MHz.
    pub fn ops_per_core_sec(&self, mhz: f64) -> f64 {
        self.ops_per_core_cycle * mhz * 1e6
    }

    /// `(V/V_peak)² · (f/f_peak)` — the DVFS power scaling factor of
    /// P-state `i`.
    pub fn dvfs_factor(&self, i: usize) -> f64 {
        let v_peak = *self.volts.last().expect("volts");
        let f_peak = *self.levels_mhz.last().expect("levels");
        let v = self.volts[i] / v_peak;
        let f = self.levels_mhz[i] / f_peak;
        v * v * f
    }

    /// Whole-box power at P-state `i` with aggregate utilization `util`
    /// across `active_cores` cores.
    pub fn power_w(&self, i: usize, util: f64, active_cores: usize) -> f64 {
        debug_assert!((0.0..=1.0).contains(&util));
        debug_assert!(active_cores <= self.n_cores);
        let k = self.dvfs_factor(i);
        self.p_box_w + active_cores as f64 * k * (self.p_core_idle_w + self.p_core_dyn_w * util)
    }

    /// Box power when all cores idle at the lowest P-state — the floor.
    pub fn floor_power_w(&self) -> f64 {
        self.power_w(0, 0.0, self.n_cores)
    }

    /// Box power fully loaded at the peak P-state.
    pub fn peak_power_w(&self) -> f64 {
        self.power_w(self.levels_mhz.len() - 1, 1.0, self.n_cores)
    }
}

/// A live CPU: spec + current P-state + activity, with the utilization trace
/// consumed by the ondemand governor.
#[derive(Debug, Clone)]
pub struct CpuModel {
    spec: CpuSpec,
    domain: FrequencyDomain,
    /// Sensor-visible utilization (what /proc/stat and the governor see).
    util: f64,
    /// Power-relevant activity. A spin-wait loop reads 100 % busy but
    /// executes no FP work, so it draws less than real computation.
    power_util: f64,
    active_cores: usize,
    util_trace: StepTrace,
}

impl CpuModel {
    /// Creates a CPU starting at P-state index `initial`.
    pub fn new(spec: CpuSpec, initial: usize) -> Self {
        assert_eq!(spec.levels_mhz.len(), spec.volts.len(), "V/f tables must align");
        let domain = FrequencyDomain::new("cpu", &spec.levels_mhz, initial);
        let active_cores = spec.n_cores;
        CpuModel {
            spec,
            domain,
            util: 0.0,
            power_util: 0.0,
            active_cores,
            util_trace: StepTrace::with_initial(0.0),
        }
    }

    /// The static spec.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// The DVFS domain.
    pub fn domain(&self) -> &FrequencyDomain {
        &self.domain
    }

    /// Sets the P-state at `at`.
    pub fn set_level(&mut self, at: SimTime, index: usize) {
        self.domain.set_level(at, index);
    }

    /// Jumps to the peak P-state (what ondemand does above the up
    /// threshold).
    pub fn set_peak(&mut self, at: SimTime) {
        self.domain.set_peak(at);
    }

    /// Steps one P-state down (what ondemand does below the down
    /// threshold).
    pub fn step_down(&mut self, at: SimTime) -> usize {
        self.domain.step_down(at)
    }

    /// Records aggregate utilization (`[0,1]`) over `active_cores` cores
    /// from `at` onward; sensor and power activity move together.
    pub fn set_activity(&mut self, at: SimTime, util: f64, active_cores: usize) {
        self.set_activity_split(at, util, util, active_cores);
    }

    /// Records sensor-visible utilization and power-relevant activity
    /// separately — the spin-wait case reads 100 % busy (defeating the
    /// ondemand governor, paper §VII-A) while drawing less than real work.
    pub fn set_activity_split(&mut self, at: SimTime, sensor_util: f64, power_util: f64, active_cores: usize) {
        self.util = sensor_util.clamp(0.0, 1.0);
        self.power_util = power_util.clamp(0.0, 1.0);
        self.active_cores = active_cores.min(self.spec.n_cores);
        self.util_trace.set(at, self.util);
    }

    /// Time to run `work` spread over all cores at the current P-state.
    pub fn kernel_time_s(&self, work: &WorkUnits) -> f64 {
        cpu_time(
            work,
            self.spec.n_cores,
            self.spec.ops_per_core_sec(self.domain.current_mhz()),
            self.spec.mem_bytes_per_sec,
        )
    }

    /// Time to run `work` at an explicit P-state (for oracle baselines).
    pub fn kernel_time_at_s(&self, work: &WorkUnits, level: usize) -> f64 {
        cpu_time(
            work,
            self.spec.n_cores,
            self.spec.ops_per_core_sec(self.spec.levels_mhz[level]),
            self.spec.mem_bytes_per_sec,
        )
    }

    /// Instantaneous whole-box power.
    pub fn current_power_w(&self) -> f64 {
        self.spec
            .power_w(self.domain.current_level(), self.power_util, self.active_cores)
    }

    /// Whole-box power if the CPU were parked at the lowest P-state with
    /// zero utilization — used by the paper's Fig. 6c emulation ("replace
    /// the CPU energy with the average CPU energy at the lowest frequency
    /// level").
    pub fn lowest_level_idle_power_w(&self) -> f64 {
        self.spec.power_w(0, 0.0, self.spec.n_cores)
    }

    /// The utilization trace the governor samples.
    pub fn util_trace(&self) -> &StepTrace {
        &self.util_trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::phenom_ii_x2;

    #[test]
    fn dvfs_factor_is_one_at_peak_and_decreasing() {
        let spec = phenom_ii_x2();
        let n = spec.levels_mhz.len();
        assert!((spec.dvfs_factor(n - 1) - 1.0).abs() < 1e-12);
        for i in 1..n {
            assert!(spec.dvfs_factor(i) > spec.dvfs_factor(i - 1));
        }
        // V² scaling makes the lowest state much cheaper than linear-f.
        let linear = spec.levels_mhz[0] / spec.levels_mhz[n - 1];
        assert!(spec.dvfs_factor(0) < linear);
    }

    #[test]
    fn power_is_in_desktop_class() {
        let spec = phenom_ii_x2();
        let idle = spec.power_w(spec.levels_mhz.len() - 1, 0.0, 2);
        let peak = spec.peak_power_w();
        assert!((50.0..100.0).contains(&idle), "idle {idle} W");
        assert!((90.0..170.0).contains(&peak), "peak {peak} W");
        assert!(spec.floor_power_w() < idle);
    }

    #[test]
    fn kernel_time_scales_with_pstate() {
        let mut cpu = CpuModel::new(phenom_ii_x2(), 3);
        let w = WorkUnits::new(28e9, 1e6);
        let fast = cpu.kernel_time_s(&w);
        cpu.set_level(SimTime::from_secs(1), 0);
        let slow = cpu.kernel_time_s(&w);
        assert!((slow / fast - 2800.0 / 800.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_time_at_matches_current() {
        let cpu = CpuModel::new(phenom_ii_x2(), 2);
        let w = WorkUnits::new(1e9, 1e3);
        assert!((cpu.kernel_time_s(&w) - cpu.kernel_time_at_s(&w, 2)).abs() < 1e-15);
    }

    #[test]
    fn activity_trace_records() {
        let mut cpu = CpuModel::new(phenom_ii_x2(), 3);
        cpu.set_activity(SimTime::from_secs(2), 1.0, 2);
        assert_eq!(cpu.util_trace().value_at(SimTime::from_secs(3)), 1.0);
        assert_eq!(cpu.util_trace().value_at(SimTime::from_secs(1)), 0.0);
    }

    #[test]
    fn lowest_level_idle_is_floor() {
        let cpu = CpuModel::new(phenom_ii_x2(), 3);
        assert_eq!(cpu.lowest_level_idle_power_w(), cpu.spec().floor_power_w());
    }

    #[test]
    fn governor_helpers_move_levels() {
        let mut cpu = CpuModel::new(phenom_ii_x2(), 1);
        cpu.set_peak(SimTime::from_secs(1));
        assert_eq!(cpu.domain().current_level(), 3);
        cpu.step_down(SimTime::from_secs(2));
        assert_eq!(cpu.domain().current_level(), 2);
    }

    #[test]
    fn split_activity_decouples_sensor_from_power() {
        let mut cpu = CpuModel::new(phenom_ii_x2(), 3);
        cpu.set_activity_split(SimTime::ZERO, 1.0, 0.55, 2);
        // Sensor reads saturated...
        assert_eq!(cpu.util_trace().value_at(SimTime::ZERO), 1.0);
        // ...but power sits between idle and full-work.
        let p = cpu.current_power_w();
        let idle = cpu.spec().power_w(3, 0.0, 2);
        let full = cpu.spec().peak_power_w();
        assert!(p > idle && p < full, "spin power {p} not between {idle} and {full}");
    }

    #[test]
    fn spin_wait_burns_full_power() {
        // Synchronized CPU-GPU communication keeps the CPU at 100 % while
        // waiting (paper §VII-A) — spinning must cost as much as working.
        let mut cpu = CpuModel::new(phenom_ii_x2(), 3);
        cpu.set_activity(SimTime::ZERO, 1.0, 2);
        let spinning = cpu.current_power_w();
        assert!((spinning - cpu.spec().peak_power_w()).abs() < 1e-9);
    }
}
