//! The `nvidia-smi`-like sensor facade.
//!
//! GreenGPU's frequency-scaling tier reads GPU core and memory utilization
//! with `nvidia-smi` once per interval (3 s in the paper's trace). nvidia-smi
//! reports utilizations averaged over its sampling window: core utilization
//! is "GPU busy cycles / total cycles", memory utilization is "actual
//! bandwidth / rated peak bandwidth" (§III-A). [`Smi`] reproduces that: each
//! `poll` returns the time-weighted mean of the model's utilization traces
//! since the previous poll.

use crate::cpu::CpuModel;
use crate::gpu::GpuModel;
use greengpu_sim::SimTime;

/// One `nvidia-smi` style readout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmiReading {
    /// Windowed GPU core utilization in `[0,1]`.
    pub u_core: f64,
    /// Windowed GPU memory utilization in `[0,1]`.
    pub u_mem: f64,
    /// Current core clock in MHz.
    pub core_mhz: f64,
    /// Current memory clock in MHz.
    pub mem_mhz: f64,
}

/// One `/proc/stat`-style CPU readout for the ondemand governor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuReading {
    /// Windowed aggregate CPU utilization in `[0,1]`.
    pub util: f64,
    /// Current P-state frequency in MHz.
    pub mhz: f64,
}

/// A polling utilization sensor. Holds only the previous poll instant, so
/// successive polls see disjoint windows.
#[derive(Debug, Clone)]
pub struct Smi {
    last_poll: SimTime,
}

impl Default for Smi {
    fn default() -> Self {
        Self::new()
    }
}

impl Smi {
    /// Creates a sensor whose first window starts at t = 0.
    pub fn new() -> Self {
        Smi {
            last_poll: SimTime::ZERO,
        }
    }

    /// Reads GPU utilizations averaged over `[last_poll, now)` and advances
    /// the window. A zero-length window returns the instantaneous values.
    pub fn poll_gpu(&mut self, gpu: &GpuModel, now: SimTime) -> SmiReading {
        let (u_core, u_mem) = if now > self.last_poll {
            (
                gpu.u_core_trace().mean(self.last_poll, now),
                gpu.u_mem_trace().mean(self.last_poll, now),
            )
        } else {
            (gpu.u_core_trace().value_at(now), gpu.u_mem_trace().value_at(now))
        };
        self.last_poll = now;
        SmiReading {
            u_core,
            u_mem,
            core_mhz: gpu.core().current_mhz(),
            mem_mhz: gpu.mem().current_mhz(),
        }
    }

    /// Reads CPU utilization averaged over `[last_poll, now)` and advances
    /// the window.
    pub fn poll_cpu(&mut self, cpu: &CpuModel, now: SimTime) -> CpuReading {
        let util = if now > self.last_poll {
            cpu.util_trace().mean(self.last_poll, now)
        } else {
            cpu.util_trace().value_at(now)
        };
        self.last_poll = now;
        CpuReading {
            util,
            mhz: cpu.domain().current_mhz(),
        }
    }

    /// The start of the next window.
    pub fn window_start(&self) -> SimTime {
        self.last_poll
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::{geforce_8800_gtx, phenom_ii_x2};

    #[test]
    fn poll_averages_over_window() {
        let mut gpu = GpuModel::new(geforce_8800_gtx(), 5, 5);
        gpu.set_activity(SimTime::ZERO, 1.0, 0.4);
        gpu.set_activity(SimTime::from_secs(1), 0.0, 0.0);
        let mut smi = Smi::new();
        let r = smi.poll_gpu(&gpu, SimTime::from_secs(2));
        assert!((r.u_core - 0.5).abs() < 1e-9);
        assert!((r.u_mem - 0.2).abs() < 1e-9);
        assert_eq!(r.core_mhz, 576.0);
        assert_eq!(r.mem_mhz, 900.0);
    }

    #[test]
    fn successive_polls_use_disjoint_windows() {
        let mut gpu = GpuModel::new(geforce_8800_gtx(), 5, 5);
        gpu.set_activity(SimTime::ZERO, 1.0, 1.0);
        let mut smi = Smi::new();
        let _ = smi.poll_gpu(&gpu, SimTime::from_secs(1));
        gpu.set_activity(SimTime::from_secs(1), 0.0, 0.0);
        let r = smi.poll_gpu(&gpu, SimTime::from_secs(2));
        assert!(
            r.u_core.abs() < 1e-9,
            "second window must not see first-window activity"
        );
    }

    #[test]
    fn zero_length_window_reads_instantaneous() {
        let mut gpu = GpuModel::new(geforce_8800_gtx(), 5, 5);
        gpu.set_activity(SimTime::ZERO, 0.7, 0.3);
        let mut smi = Smi::new();
        let r = smi.poll_gpu(&gpu, SimTime::ZERO);
        assert!((r.u_core - 0.7).abs() < 1e-9);
    }

    #[test]
    fn cpu_poll_reads_util_and_freq() {
        let mut cpu = CpuModel::new(phenom_ii_x2(), 3);
        cpu.set_activity(SimTime::ZERO, 1.0, 2);
        cpu.set_activity(SimTime::from_secs(3), 0.0, 2);
        let mut smi = Smi::new();
        let r = smi.poll_cpu(&cpu, SimTime::from_secs(4));
        assert!((r.util - 0.75).abs() < 1e-9);
        assert_eq!(r.mhz, 2800.0);
    }
}
