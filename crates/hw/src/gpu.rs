//! The GPU device model.
//!
//! Models a GeForce 8800 GTX-class card: an array of streaming
//! multiprocessors (SMs) clocked by the *core* domain and a GDDR memory
//! channel clocked by the *memory* domain, each with six selectable
//! frequency levels (paper §VI). Execution time follows the
//! roofline-with-overlap model in [`crate::perf`]; power is the sum of a
//! constant board draw, frequency-proportional idle clock power per domain,
//! and frequency- and activity-proportional dynamic power per domain.
//!
//! The 8800 GTX era exposes *frequency* scaling only — `nvidia-settings`
//! cannot change voltage (the paper notes this in §VII-C) — so GPU dynamic
//! power is linear in `f` by default, unlike the CPU's `V²·f`. Optional
//! per-level voltage tables ([`GpuSpec::core_volts`]/[`GpuSpec::mem_volts`])
//! model DVFS-capable cards for the §VII-C what-if (see
//! `greengpu_hw::calib::geforce_dvfs_whatif`).

use crate::freq::FrequencyDomain;
use crate::perf::{gpu_timing, GpuTiming, WorkUnits};
use greengpu_sim::{SimTime, StepTrace};

/// Static description of a GPU.
#[derive(Debug, Clone)]
pub struct GpuSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub n_sm: usize,
    /// Scalar processors per SM.
    pub sp_per_sm: usize,
    /// Operations per scalar processor per core-clock cycle.
    pub ops_per_sp_cycle: f64,
    /// DRAM bytes transferred per memory-clock cycle at full utilization.
    pub mem_bytes_per_cycle: f64,
    /// Core-domain frequency levels in MHz, ascending.
    pub core_levels_mhz: Vec<f64>,
    /// Memory-domain frequency levels in MHz, ascending.
    pub mem_levels_mhz: Vec<f64>,
    /// Compute/memory overlap factor in `[0, 1]`.
    pub overlap: f64,
    /// Constant board power (fans, VRM losses, I/O), watts.
    pub p_static_w: f64,
    /// Core-domain clock-tree power at the peak core frequency, watts
    /// (scales linearly with `f_core`).
    pub p_core_idle_w: f64,
    /// Memory-domain background power at the peak memory frequency, watts
    /// (scales linearly with `f_mem`).
    pub p_mem_idle_w: f64,
    /// Core-domain dynamic power at peak frequency and 100 % activity,
    /// watts.
    pub p_core_dyn_w: f64,
    /// Memory-domain dynamic power at peak frequency and 100 % activity,
    /// watts.
    pub p_mem_dyn_w: f64,
    /// Optional per-level core voltages (same order as
    /// `core_levels_mhz`). `None` models the 8800 GTX era — frequency-only
    /// scaling, power linear in `f` (the paper notes `nvidia-settings`
    /// "only conducts frequency scaling"). `Some` enables true DVFS:
    /// dynamic power scales with `(V/V_peak)²·f`, the what-if the paper
    /// expects to yield "more energy saving" (§VII-C).
    pub core_volts: Option<Vec<f64>>,
    /// Optional per-level memory voltages (see `core_volts`).
    pub mem_volts: Option<Vec<f64>>,
}

impl GpuSpec {
    /// Compute throughput (scalar ops/s) at a core frequency in MHz.
    pub fn ops_per_sec(&self, core_mhz: f64) -> f64 {
        self.n_sm as f64 * self.sp_per_sm as f64 * self.ops_per_sp_cycle * core_mhz * 1e6
    }

    /// Memory bandwidth (bytes/s) at a memory frequency in MHz.
    pub fn bytes_per_sec(&self, mem_mhz: f64) -> f64 {
        self.mem_bytes_per_cycle * mem_mhz * 1e6
    }

    /// Peak compute throughput.
    pub fn peak_ops_per_sec(&self) -> f64 {
        self.ops_per_sec(*self.core_levels_mhz.last().expect("core levels"))
    }

    /// Peak memory bandwidth.
    pub fn peak_bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec(*self.mem_levels_mhz.last().expect("mem levels"))
    }

    /// Voltage-squared scaling factor of a domain at level `i`: 1.0 when
    /// the domain has no voltage table (frequency-only scaling).
    fn v2_factor(volts: &Option<Vec<f64>>, i: usize) -> f64 {
        match volts {
            Some(v) => {
                let peak = *v.last().expect("voltage table");
                let r = v[i] / peak;
                r * r
            }
            None => 1.0,
        }
    }

    /// Board power given level indices and domain activities.
    pub fn power_at_levels_w(&self, core_lvl: usize, mem_lvl: usize, core_activity: f64, mem_activity: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&core_activity) && (0.0..=1.0).contains(&mem_activity));
        let core_frac = self.core_levels_mhz[core_lvl] / self.core_levels_mhz.last().expect("levels");
        let mem_frac = self.mem_levels_mhz[mem_lvl] / self.mem_levels_mhz.last().expect("levels");
        let vc2 = Self::v2_factor(&self.core_volts, core_lvl);
        let vm2 = Self::v2_factor(&self.mem_volts, mem_lvl);
        self.p_static_w
            + self.p_core_idle_w * core_frac * vc2
            + self.p_mem_idle_w * mem_frac * vm2
            + self.p_core_dyn_w * core_frac * core_activity * vc2
            + self.p_mem_dyn_w * mem_frac * mem_activity * vm2
    }

    /// Board power given frequency fractions-of-peak and domain activities
    /// (frequency-only form; voltage tables are ignored — use
    /// [`GpuSpec::power_at_levels_w`] for DVFS-aware accounting).
    pub fn power_w(&self, core_frac: f64, mem_frac: f64, core_activity: f64, mem_activity: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&core_activity) && (0.0..=1.0).contains(&mem_activity));
        self.p_static_w
            + self.p_core_idle_w * core_frac
            + self.p_mem_idle_w * mem_frac
            + self.p_core_dyn_w * core_frac * core_activity
            + self.p_mem_dyn_w * mem_frac * mem_activity
    }

    /// Board power when fully idle at the *lowest* levels — the card's
    /// floor draw.
    pub fn floor_power_w(&self) -> f64 {
        let core_frac = self.core_levels_mhz[0] / self.core_levels_mhz.last().unwrap();
        let mem_frac = self.mem_levels_mhz[0] / self.mem_levels_mhz.last().unwrap();
        self.power_w(core_frac, mem_frac, 0.0, 0.0)
    }

    /// Board power when fully loaded at peak levels.
    pub fn peak_power_w(&self) -> f64 {
        self.power_w(1.0, 1.0, 1.0, 1.0)
    }
}

/// A live GPU: spec + current frequency levels + activity, with utilization
/// traces for the smi facade.
#[derive(Debug, Clone)]
pub struct GpuModel {
    spec: GpuSpec,
    core: FrequencyDomain,
    mem: FrequencyDomain,
    /// Instantaneous core activity in `[0,1]` (fraction of cycles busy).
    act_core: f64,
    /// Instantaneous memory activity in `[0,1]` (fraction of peak BW used).
    act_mem: f64,
    u_core_trace: StepTrace,
    u_mem_trace: StepTrace,
}

impl GpuModel {
    /// Creates a GPU with both domains at the given initial level indices.
    ///
    /// The paper notes the driver default is the *lowest* levels; the
    /// best-performance baseline pins both to the peak.
    pub fn new(spec: GpuSpec, initial_core: usize, initial_mem: usize) -> Self {
        let core = FrequencyDomain::new("gpu-core", &spec.core_levels_mhz, initial_core);
        let mem = FrequencyDomain::new("gpu-mem", &spec.mem_levels_mhz, initial_mem);
        GpuModel {
            spec,
            core,
            mem,
            act_core: 0.0,
            act_mem: 0.0,
            u_core_trace: StepTrace::with_initial(0.0),
            u_mem_trace: StepTrace::with_initial(0.0),
        }
    }

    /// The static spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Core frequency domain.
    pub fn core(&self) -> &FrequencyDomain {
        &self.core
    }

    /// Memory frequency domain.
    pub fn mem(&self) -> &FrequencyDomain {
        &self.mem
    }

    /// Sets both domain levels at `at`.
    pub fn set_levels(&mut self, at: SimTime, core_idx: usize, mem_idx: usize) {
        self.core.set_level(at, core_idx);
        self.mem.set_level(at, mem_idx);
    }

    /// Pins both domains to their peak levels (the best-performance
    /// baseline).
    pub fn set_peak(&mut self, at: SimTime) {
        self.core.set_peak(at);
        self.mem.set_peak(at);
    }

    /// Current compute throughput in ops/s.
    pub fn ops_per_sec(&self) -> f64 {
        self.spec.ops_per_sec(self.core.current_mhz())
    }

    /// Current memory bandwidth in bytes/s.
    pub fn bytes_per_sec(&self) -> f64 {
        self.spec.bytes_per_sec(self.mem.current_mhz())
    }

    /// Roofline timing of `work` at the *current* frequency levels.
    pub fn timing(&self, work: &WorkUnits) -> GpuTiming {
        gpu_timing(work, self.ops_per_sec(), self.bytes_per_sec(), self.spec.overlap)
    }

    /// Roofline timing of `work` at explicit levels (used by sweep
    /// experiments and the oracle baselines).
    pub fn timing_at(&self, work: &WorkUnits, core_idx: usize, mem_idx: usize) -> GpuTiming {
        gpu_timing(
            work,
            self.spec.ops_per_sec(self.spec.core_levels_mhz[core_idx]),
            self.spec.bytes_per_sec(self.spec.mem_levels_mhz[mem_idx]),
            self.spec.overlap,
        )
    }

    /// Records new instantaneous activity (busy fractions) starting at
    /// `at`. The runtime calls this at every segment boundary: kernel start,
    /// kernel end, phase change, frequency change.
    pub fn set_activity(&mut self, at: SimTime, core_activity: f64, mem_activity: f64) {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&core_activity));
        debug_assert!((0.0..=1.0 + 1e-9).contains(&mem_activity));
        self.act_core = core_activity.clamp(0.0, 1.0);
        self.act_mem = mem_activity.clamp(0.0, 1.0);
        self.u_core_trace.set(at, self.act_core);
        self.u_mem_trace.set(at, self.act_mem);
    }

    /// Instantaneous board power at the current levels and activity
    /// (voltage-aware when the spec has DVFS tables).
    pub fn current_power_w(&self) -> f64 {
        self.spec.power_at_levels_w(
            self.core.current_level(),
            self.mem.current_level(),
            self.act_core,
            self.act_mem,
        )
    }

    /// Idle board power at the current levels (activity forced to zero) —
    /// used for the paper's Fig. 6b dynamic-energy accounting.
    pub fn idle_power_w(&self) -> f64 {
        self.spec
            .power_at_levels_w(self.core.current_level(), self.mem.current_level(), 0.0, 0.0)
    }

    /// Core-utilization trace (what nvidia-smi would log).
    pub fn u_core_trace(&self) -> &StepTrace {
        &self.u_core_trace
    }

    /// Memory-utilization trace.
    pub fn u_mem_trace(&self) -> &StepTrace {
        &self.u_mem_trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::geforce_8800_gtx;

    #[test]
    fn throughput_scales_linearly_with_core_clock() {
        let spec = geforce_8800_gtx();
        let lo = spec.ops_per_sec(spec.core_levels_mhz[0]);
        let hi = spec.ops_per_sec(*spec.core_levels_mhz.last().unwrap());
        let ratio = hi / lo;
        let expected = spec.core_levels_mhz.last().unwrap() / spec.core_levels_mhz[0];
        assert!((ratio - expected).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_scales_linearly_with_mem_clock() {
        let spec = geforce_8800_gtx();
        let bw_900 = spec.bytes_per_sec(900.0);
        let bw_500 = spec.bytes_per_sec(500.0);
        assert!((bw_900 / bw_500 - 1.8).abs() < 1e-9);
    }

    #[test]
    fn power_is_monotone_in_activity_and_frequency() {
        let spec = geforce_8800_gtx();
        let idle = spec.power_w(1.0, 1.0, 0.0, 0.0);
        let busy = spec.power_w(1.0, 1.0, 1.0, 1.0);
        assert!(busy > idle);
        let slow_busy = spec.power_w(0.5, 0.5, 1.0, 1.0);
        assert!(slow_busy < busy);
        assert!(spec.floor_power_w() < idle);
        assert_eq!(spec.peak_power_w(), busy);
    }

    #[test]
    fn calibrated_power_is_in_8800gtx_class() {
        // The 8800 GTX card draws roughly 70-80 W idle and 200-240 W loaded.
        let spec = geforce_8800_gtx();
        let idle_peak_clocks = spec.power_w(1.0, 1.0, 0.0, 0.0);
        assert!(
            (60.0..100.0).contains(&idle_peak_clocks),
            "idle {idle_peak_clocks} W out of class"
        );
        let peak = spec.peak_power_w();
        assert!((180.0..260.0).contains(&peak), "peak {peak} W out of class");
    }

    #[test]
    fn model_records_utilization_trace() {
        let mut gpu = GpuModel::new(geforce_8800_gtx(), 5, 5);
        gpu.set_activity(SimTime::from_secs(1), 0.9, 0.3);
        gpu.set_activity(SimTime::from_secs(3), 0.0, 0.0);
        let t = gpu.u_core_trace();
        assert_eq!(t.value_at(SimTime::from_secs(2)), 0.9);
        assert_eq!(t.value_at(SimTime::from_secs(4)), 0.0);
        let mean = t.mean(SimTime::from_secs(1), SimTime::from_secs(5));
        assert!((mean - 0.45).abs() < 1e-9);
    }

    #[test]
    fn activity_is_clamped() {
        let mut gpu = GpuModel::new(geforce_8800_gtx(), 0, 0);
        gpu.set_activity(SimTime::ZERO, 1.0, 1.0);
        assert!(gpu.current_power_w() <= gpu.spec().peak_power_w() + 1e-9);
    }

    #[test]
    fn timing_at_matches_timing_when_levels_agree() {
        let gpu = GpuModel::new(geforce_8800_gtx(), 3, 2);
        let w = WorkUnits::new(1e10, 5e8);
        let a = gpu.timing(&w);
        let b = gpu.timing_at(&w, 3, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn set_peak_hits_top_levels() {
        let mut gpu = GpuModel::new(geforce_8800_gtx(), 0, 0);
        gpu.set_peak(SimTime::from_secs(1));
        assert_eq!(gpu.core().current_level(), gpu.core().peak_level());
        assert_eq!(gpu.mem().current_level(), gpu.mem().peak_level());
    }

    #[test]
    fn idle_power_ignores_activity() {
        let mut gpu = GpuModel::new(geforce_8800_gtx(), 5, 5);
        gpu.set_activity(SimTime::ZERO, 1.0, 1.0);
        assert!(gpu.idle_power_w() < gpu.current_power_w());
    }
}
