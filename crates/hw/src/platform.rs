//! The assembled testbed.
//!
//! [`Platform`] wires the GPU and CPU models to the two power meters exactly
//! like the paper's Figure 4: Meter 1 on the box (CPU side), Meter 2 on the
//! GPU card's dedicated supply. Every state change (frequency level,
//! activity) is followed by a meter refresh so the power traces are exact
//! step functions of the model state.

use crate::cpu::{CpuModel, CpuSpec};
use crate::gpu::{GpuModel, GpuSpec};
use crate::meter::PowerMeter;
use greengpu_sim::SimTime;

/// A complete simulated testbed: GPU + CPU + two power meters.
#[derive(Debug, Clone)]
pub struct Platform {
    gpu: GpuModel,
    cpu: CpuModel,
    gpu_meter: PowerMeter,
    cpu_meter: PowerMeter,
    /// Virtual meter tracking what the GPU card would draw if idle at its
    /// *current* clocks — the "idle energy" the paper subtracts to report
    /// dynamic energy savings (Fig. 6b).
    gpu_idle_meter: PowerMeter,
}

impl Platform {
    /// Builds a platform with the given device specs and initial frequency
    /// levels, and records the initial power draw at t = 0.
    pub fn new(gpu_spec: GpuSpec, cpu_spec: CpuSpec, gpu_core_lvl: usize, gpu_mem_lvl: usize, cpu_lvl: usize) -> Self {
        let gpu = GpuModel::new(gpu_spec, gpu_core_lvl, gpu_mem_lvl);
        let cpu = CpuModel::new(cpu_spec, cpu_lvl);
        let mut p = Platform {
            gpu,
            cpu,
            gpu_meter: PowerMeter::new("Meter2 (GPU ATX supply)"),
            cpu_meter: PowerMeter::new("Meter1 (wall outlet / box)"),
            gpu_idle_meter: PowerMeter::new("GPU idle reference"),
        };
        p.refresh_meters(SimTime::ZERO);
        p
    }

    /// The default paper testbed: 8800 GTX + Phenom II X2, GPU at the driver
    /// default (lowest levels), CPU at the peak P-state.
    pub fn default_testbed() -> Self {
        Platform::new(crate::calib::geforce_8800_gtx(), crate::calib::phenom_ii_x2(), 0, 0, 3)
    }

    /// The default testbed with the GPU pinned at peak clocks — the paper's
    /// *best-performance* baseline starting state.
    pub fn best_performance_testbed() -> Self {
        let gpu = crate::calib::geforce_8800_gtx();
        let (c, m) = (gpu.core_levels_mhz.len() - 1, gpu.mem_levels_mhz.len() - 1);
        Platform::new(gpu, crate::calib::phenom_ii_x2(), c, m, 3)
    }

    /// GPU device model.
    pub fn gpu(&self) -> &GpuModel {
        &self.gpu
    }

    /// CPU device model.
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// Meter 2: GPU card supply.
    pub fn gpu_meter(&self) -> &PowerMeter {
        &self.gpu_meter
    }

    /// Meter 1: box / CPU side.
    pub fn cpu_meter(&self) -> &PowerMeter {
        &self.cpu_meter
    }

    /// Re-reads both device powers into the meters at `at`.
    fn refresh_meters(&mut self, at: SimTime) {
        self.gpu_meter.record(at, self.gpu.current_power_w());
        self.cpu_meter.record(at, self.cpu.current_power_w());
        self.gpu_idle_meter.record(at, self.gpu.idle_power_w());
    }

    /// Sets GPU core/memory levels (the `nvidia-settings` actuation path).
    pub fn set_gpu_levels(&mut self, at: SimTime, core_idx: usize, mem_idx: usize) {
        self.gpu.set_levels(at, core_idx, mem_idx);
        self.refresh_meters(at);
    }

    /// Pins the GPU to peak clocks.
    pub fn set_gpu_peak(&mut self, at: SimTime) {
        self.gpu.set_peak(at);
        self.refresh_meters(at);
    }

    /// Sets the CPU P-state (the cpufreq actuation path).
    pub fn set_cpu_level(&mut self, at: SimTime, idx: usize) {
        self.cpu.set_level(at, idx);
        self.refresh_meters(at);
    }

    /// Records GPU activity (busy fractions) from `at` onward.
    pub fn set_gpu_activity(&mut self, at: SimTime, core_activity: f64, mem_activity: f64) {
        self.gpu.set_activity(at, core_activity, mem_activity);
        self.refresh_meters(at);
    }

    /// Records CPU activity from `at` onward.
    pub fn set_cpu_activity(&mut self, at: SimTime, util: f64, active_cores: usize) {
        self.cpu.set_activity(at, util, active_cores);
        self.refresh_meters(at);
    }

    /// Records CPU activity with separate sensor and power components
    /// (spin-wait: 100 % busy to the governor, reduced power draw).
    pub fn set_cpu_activity_split(&mut self, at: SimTime, sensor_util: f64, power_util: f64, active_cores: usize) {
        self.cpu.set_activity_split(at, sensor_util, power_util, active_cores);
        self.refresh_meters(at);
    }

    /// Mutable access to the GPU for controllers that need richer actuation.
    pub fn gpu_mut(&mut self) -> &mut GpuModel {
        &mut self.gpu
    }

    /// Mutable access to the CPU.
    pub fn cpu_mut(&mut self) -> &mut CpuModel {
        &mut self.cpu
    }

    /// GPU-side energy (Meter 2) over a window, joules.
    pub fn gpu_energy_j(&self, from: SimTime, to: SimTime) -> f64 {
        self.gpu_meter.energy_j(from, to)
    }

    /// CPU-side energy (Meter 1) over a window, joules.
    pub fn cpu_energy_j(&self, from: SimTime, to: SimTime) -> f64 {
        self.cpu_meter.energy_j(from, to)
    }

    /// Whole-system energy (both meters) over a window, joules.
    pub fn total_energy_j(&self, from: SimTime, to: SimTime) -> f64 {
        self.gpu_energy_j(from, to) + self.cpu_energy_j(from, to)
    }

    /// Idle-reference GPU energy over a window (what the card would have
    /// burned doing nothing at the clocks it was actually running), joules.
    pub fn gpu_idle_energy_j(&self, from: SimTime, to: SimTime) -> f64 {
        self.gpu_idle_meter.energy_j(from, to)
    }

    /// The paper's Fig. 6b *dynamic* GPU energy: measured GPU energy minus
    /// the idle reference.
    pub fn gpu_dynamic_energy_j(&self, from: SimTime, to: SimTime) -> f64 {
        self.gpu_energy_j(from, to) - self.gpu_idle_energy_j(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu_sim::SimDuration;

    #[test]
    fn initial_power_is_recorded_at_zero() {
        let p = Platform::default_testbed();
        let pw = p.gpu_meter().power_at(SimTime::ZERO);
        assert!(pw > 0.0, "GPU draws idle power from t=0");
        let pc = p.cpu_meter().power_at(SimTime::ZERO);
        assert!(pc > 0.0);
    }

    #[test]
    fn activity_changes_show_up_in_energy() {
        let mut p = Platform::best_performance_testbed();
        let idle_1s = p.gpu_energy_j(SimTime::ZERO, SimTime::from_secs(1));
        p.set_gpu_activity(SimTime::from_secs(1), 1.0, 1.0);
        let busy_1s = p.gpu_energy_j(SimTime::from_secs(1), SimTime::from_secs(2));
        assert!(busy_1s > idle_1s * 2.0, "busy {busy_1s} vs idle {idle_1s}");
    }

    #[test]
    fn throttling_reduces_power_at_same_activity() {
        let mut p = Platform::best_performance_testbed();
        p.set_gpu_activity(SimTime::ZERO, 1.0, 0.2);
        let peak_p = p.gpu_meter().power_at(SimTime::ZERO);
        p.set_gpu_levels(SimTime::from_secs(1), 5, 0); // memory to 500 MHz
        let throttled_p = p.gpu_meter().power_at(SimTime::from_secs(1));
        assert!(throttled_p < peak_p);
    }

    #[test]
    fn total_energy_is_sum_of_meters() {
        let mut p = Platform::default_testbed();
        p.set_gpu_activity(SimTime::ZERO, 0.5, 0.5);
        p.set_cpu_activity(SimTime::ZERO, 1.0, 2);
        let to = SimTime::from_secs(5);
        let total = p.total_energy_j(SimTime::ZERO, to);
        let parts = p.gpu_energy_j(SimTime::ZERO, to) + p.cpu_energy_j(SimTime::ZERO, to);
        assert!((total - parts).abs() < 1e-12);
    }

    #[test]
    fn cpu_dvfs_cuts_box_power() {
        let mut p = Platform::default_testbed();
        p.set_cpu_activity(SimTime::ZERO, 1.0, 2);
        let fast = p.cpu_meter().power_at(SimTime::ZERO);
        p.set_cpu_level(SimTime::from_secs(1), 0);
        let slow = p.cpu_meter().power_at(SimTime::from_secs(1));
        assert!(slow < fast, "slow {slow} fast {fast}");
        // V² scaling: the drop should be superlinear vs the frequency ratio.
        let spec = p.cpu().spec();
        let dyn_fast = fast - spec.p_box_w;
        let dyn_slow = slow - spec.p_box_w;
        assert!(dyn_slow / dyn_fast < 800.0 / 2800.0 + 1e-9);
    }

    #[test]
    fn dynamic_energy_subtracts_idle_reference() {
        let mut p = Platform::best_performance_testbed();
        let to = SimTime::from_secs(10);
        // Fully idle run: dynamic energy is zero.
        assert!(p.gpu_dynamic_energy_j(SimTime::ZERO, to).abs() < 1e-9);
        // Busy run: dynamic energy is the activity-dependent part only.
        p.set_gpu_activity(SimTime::ZERO, 1.0, 1.0);
        let dynamic = p.gpu_dynamic_energy_j(SimTime::ZERO, to);
        let total = p.gpu_energy_j(SimTime::ZERO, to);
        assert!(dynamic > 0.0 && dynamic < total);
        let spec = p.gpu().spec();
        let expected = (spec.p_core_dyn_w + spec.p_mem_dyn_w) * 10.0;
        assert!((dynamic - expected).abs() < 1e-6, "dynamic {dynamic} vs {expected}");
    }

    #[test]
    fn meter_sample_log_has_expected_cadence() {
        let p = Platform::default_testbed();
        let log = p.gpu_meter().sample_log(SimTime::ZERO, SimDuration::from_secs(1), 5);
        assert_eq!(log.len(), 5);
        assert!(log.values().iter().all(|&w| w > 0.0));
    }
}
