//! Discrete frequency domains.
//!
//! Both GPU domains (core, memory) and the CPU expose a small set of
//! discrete frequency levels — the paper uses six equal-distance levels per
//! GPU domain (selected with `nvidia-settings`) and the Phenom II's four
//! P-states. A [`FrequencyDomain`] tracks the current level, records every
//! transition in a step trace, and provides the `umean` linear mapping from
//! levels to "most suitable utilization" that the WMA loss function is built
//! on (paper §V-A, after Dhiman & Rosing).

use greengpu_sim::{SimTime, StepTrace};

/// A clock domain with discrete levels, e.g. the 8800 GTX memory domain at
/// {500, 580, 660, 740, 820, 900} MHz.
#[derive(Debug, Clone)]
pub struct FrequencyDomain {
    name: String,
    /// Levels in MHz, strictly ascending; the last entry is the peak.
    levels_mhz: Vec<f64>,
    current: usize,
    trace: StepTrace,
    transitions: u64,
}

impl FrequencyDomain {
    /// Creates a domain with the given ascending levels, starting at
    /// `initial` (a level index).
    ///
    /// # Panics
    /// If fewer than two levels are given, levels are not strictly
    /// ascending/positive, or `initial` is out of range.
    pub fn new(name: impl Into<String>, levels_mhz: &[f64], initial: usize) -> Self {
        assert!(levels_mhz.len() >= 2, "need at least two frequency levels");
        assert!(
            levels_mhz.windows(2).all(|w| w[0] < w[1]) && levels_mhz[0] > 0.0,
            "levels must be positive and strictly ascending"
        );
        assert!(initial < levels_mhz.len(), "initial level out of range");
        let mut trace = StepTrace::new();
        trace.set(SimTime::ZERO, levels_mhz[initial]);
        FrequencyDomain {
            name: name.into(),
            levels_mhz: levels_mhz.to_vec(),
            current: initial,
            trace,
            transitions: 0,
        }
    }

    /// Domain name (for traces/reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of available levels (the paper's `N` or `M`).
    pub fn level_count(&self) -> usize {
        self.levels_mhz.len()
    }

    /// Index of the current level.
    pub fn current_level(&self) -> usize {
        self.current
    }

    /// Current frequency in MHz.
    pub fn current_mhz(&self) -> f64 {
        self.levels_mhz[self.current]
    }

    /// Current frequency in Hz.
    pub fn current_hz(&self) -> f64 {
        self.current_mhz() * 1e6
    }

    /// Frequency of level `i` in MHz.
    pub fn mhz(&self, i: usize) -> f64 {
        self.levels_mhz[i]
    }

    /// Index of the peak (highest) level.
    pub fn peak_level(&self) -> usize {
        self.levels_mhz.len() - 1
    }

    /// Current frequency as a fraction of the peak, in `(0, 1]`.
    pub fn fraction_of_peak(&self) -> f64 {
        self.current_mhz() / self.levels_mhz[self.peak_level()]
    }

    /// Fraction of peak for an arbitrary level.
    pub fn fraction_of_peak_at(&self, i: usize) -> f64 {
        self.levels_mhz[i] / self.levels_mhz[self.peak_level()]
    }

    /// The "most suitable utilization" of level `i` under the linear map of
    /// paper §V-A: the peak level suits 100 % utilization, the lowest suits
    /// 0 %, intermediate levels are linearly interpolated by index.
    pub fn umean(&self, i: usize) -> f64 {
        assert!(i < self.levels_mhz.len());
        i as f64 / (self.levels_mhz.len() - 1) as f64
    }

    /// Switches to level `index` at time `at`, recording the transition.
    /// Switching to the current level is a no-op.
    pub fn set_level(&mut self, at: SimTime, index: usize) {
        assert!(index < self.levels_mhz.len(), "level {index} out of range");
        if index == self.current {
            return;
        }
        self.current = index;
        self.trace.set(at, self.levels_mhz[index]);
        self.transitions += 1;
    }

    /// Steps one level down (toward lower frequency), saturating at the
    /// lowest level. Returns the new index.
    pub fn step_down(&mut self, at: SimTime) -> usize {
        if self.current > 0 {
            self.set_level(at, self.current - 1);
        }
        self.current
    }

    /// Jumps to the peak level.
    pub fn set_peak(&mut self, at: SimTime) {
        self.set_level(at, self.peak_level());
    }

    /// Number of level changes performed so far.
    pub fn transition_count(&self) -> u64 {
        self.transitions
    }

    /// Full frequency trace in MHz.
    pub fn trace(&self) -> &StepTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEM_LEVELS: &[f64] = &[500.0, 580.0, 660.0, 740.0, 820.0, 900.0];

    fn mem_domain() -> FrequencyDomain {
        FrequencyDomain::new("gpu-mem", MEM_LEVELS, 0)
    }

    #[test]
    fn paper_memory_levels_round_trip() {
        let d = mem_domain();
        assert_eq!(d.level_count(), 6);
        assert_eq!(d.current_mhz(), 500.0);
        assert_eq!(d.mhz(5), 900.0);
        assert_eq!(d.peak_level(), 5);
    }

    #[test]
    fn umean_is_linear_in_index() {
        let d = mem_domain();
        assert_eq!(d.umean(0), 0.0);
        assert_eq!(d.umean(5), 1.0);
        assert!((d.umean(1) - 0.2).abs() < 1e-12);
        assert!((d.umean(4) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn set_level_records_trace() {
        let mut d = mem_domain();
        d.set_level(SimTime::from_secs(3), 4);
        assert_eq!(d.current_mhz(), 820.0);
        assert_eq!(d.trace().value_at(SimTime::from_secs(1)), 500.0);
        assert_eq!(d.trace().value_at(SimTime::from_secs(4)), 820.0);
        assert_eq!(d.transition_count(), 1);
    }

    #[test]
    fn setting_same_level_is_noop() {
        let mut d = mem_domain();
        d.set_level(SimTime::from_secs(1), 0);
        assert_eq!(d.transition_count(), 0);
        assert_eq!(d.trace().len(), 1);
    }

    #[test]
    fn step_down_saturates() {
        let mut d = FrequencyDomain::new("x", MEM_LEVELS, 1);
        assert_eq!(d.step_down(SimTime::from_secs(1)), 0);
        assert_eq!(d.step_down(SimTime::from_secs(2)), 0);
        assert_eq!(d.transition_count(), 1);
    }

    #[test]
    fn set_peak_jumps_to_top() {
        let mut d = mem_domain();
        d.set_peak(SimTime::from_secs(1));
        assert_eq!(d.current_level(), 5);
        assert!((d.fraction_of_peak() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_peak_scales() {
        let d = mem_domain();
        assert!((d.fraction_of_peak() - 500.0 / 900.0).abs() < 1e-12);
        assert!((d.fraction_of_peak_at(4) - 820.0 / 900.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn non_ascending_levels_panic() {
        FrequencyDomain::new("bad", &[900.0, 500.0], 0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_level_panics() {
        FrequencyDomain::new("bad", &[500.0], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_initial_panics() {
        FrequencyDomain::new("bad", MEM_LEVELS, 6);
    }

    #[test]
    fn current_hz_conversion() {
        let d = mem_domain();
        assert!((d.current_hz() - 5e8).abs() < 1e-3);
    }
}
