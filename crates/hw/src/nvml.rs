//! An NVML-flavored compatibility facade.
//!
//! The paper's tooling is `nvidia-smi` (reads) and `nvidia-settings`
//! (writes) over the driver's management interface — the ancestor of
//! today's NVML. Downstream code written against NVML's vocabulary
//! (`utilization.gpu` / `utilization.memory` percentages, clock queries in
//! MHz, application-clock setting) can drive the simulated card through
//! this module unchanged, which is the porting surface a real GreenGPU
//! deployment would use.
//!
//! The facade is deliberately thin: every call maps 1:1 onto the
//! [`crate::smi::Smi`] sensor or the [`crate::platform::Platform`]
//! actuation path, with NVML's percentage/enum conventions.

use crate::platform::Platform;
use crate::smi::Smi;
use greengpu_sim::SimTime;

/// NVML-style utilization sample: integer percentages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtilizationRates {
    /// Percent of time the GPU cores were busy (`utilization.gpu`).
    pub gpu: u32,
    /// Percent of time the memory controller was busy
    /// (`utilization.memory`).
    pub memory: u32,
}

/// NVML clock domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockType {
    /// Graphics (core) clock.
    Graphics,
    /// Memory clock.
    Memory,
}

/// Errors in NVML style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmlError {
    /// The requested clock value is not one of the supported levels.
    InvalidClock,
}

impl std::fmt::Display for NvmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvmlError::InvalidClock => write!(f, "requested clock is not a supported level"),
        }
    }
}

impl std::error::Error for NvmlError {}

/// A device handle over the simulated card — the `nvmlDevice_t` analog.
///
/// Holds its own polling sensor, so successive utilization queries report
/// over disjoint windows exactly like repeated `nvidia-smi` invocations.
///
/// ```
/// use greengpu_hw::nvml::{ClockType, NvmlDevice};
/// use greengpu_hw::Platform;
/// use greengpu_sim::SimTime;
///
/// let mut platform = Platform::best_performance_testbed();
/// let dev = NvmlDevice::open();
/// assert_eq!(dev.clock_info(&platform, ClockType::Memory), 900);
/// dev.set_applications_clocks(&mut platform, SimTime::from_secs(1), 820, 408).unwrap();
/// assert_eq!(dev.clock_info(&platform, ClockType::Graphics), 408);
/// ```
#[derive(Debug, Default)]
pub struct NvmlDevice {
    smi: Smi,
}

impl NvmlDevice {
    /// Opens a handle (the `nvmlDeviceGetHandleByIndex(0)` analog).
    pub fn open() -> Self {
        NvmlDevice { smi: Smi::new() }
    }

    /// `nvmlDeviceGetUtilizationRates`: windowed utilizations as integer
    /// percentages since the previous query.
    pub fn utilization_rates(&mut self, platform: &Platform, now: SimTime) -> UtilizationRates {
        let r = self.smi.poll_gpu(platform.gpu(), now);
        UtilizationRates {
            gpu: (r.u_core * 100.0).round() as u32,
            memory: (r.u_mem * 100.0).round() as u32,
        }
    }

    /// `nvmlDeviceGetClockInfo`: the current clock of a domain in MHz.
    pub fn clock_info(&self, platform: &Platform, clock: ClockType) -> u32 {
        let mhz = match clock {
            ClockType::Graphics => platform.gpu().core().current_mhz(),
            ClockType::Memory => platform.gpu().mem().current_mhz(),
        };
        mhz.round() as u32
    }

    /// `nvmlDeviceGetSupportedGraphicsClocks` / memory analog: the level
    /// table in MHz, descending like NVML reports them.
    pub fn supported_clocks(&self, platform: &Platform, clock: ClockType) -> Vec<u32> {
        let spec = platform.gpu().spec();
        let mut levels: Vec<u32> = match clock {
            ClockType::Graphics => spec.core_levels_mhz.iter().map(|&m| m.round() as u32).collect(),
            ClockType::Memory => spec.mem_levels_mhz.iter().map(|&m| m.round() as u32).collect(),
        };
        levels.reverse();
        levels
    }

    /// `nvmlDeviceSetApplicationsClocks`: pins both domains to the given
    /// MHz values (each must be a supported level — the
    /// `nvidia-settings` coolbits path the paper uses).
    pub fn set_applications_clocks(
        &self,
        platform: &mut Platform,
        now: SimTime,
        mem_mhz: u32,
        graphics_mhz: u32,
    ) -> Result<(), NvmlError> {
        let spec = platform.gpu().spec();
        let core_idx = spec
            .core_levels_mhz
            .iter()
            .position(|&m| m.round() as u32 == graphics_mhz)
            .ok_or(NvmlError::InvalidClock)?;
        let mem_idx = spec
            .mem_levels_mhz
            .iter()
            .position(|&m| m.round() as u32 == mem_mhz)
            .ok_or(NvmlError::InvalidClock)?;
        platform.set_gpu_levels(now, core_idx, mem_idx);
        Ok(())
    }

    /// `nvmlDeviceGetPowerUsage`: instantaneous board power in milliwatts
    /// (NVML's unit).
    pub fn power_usage_mw(&self, platform: &Platform, now: SimTime) -> u32 {
        (platform.gpu_meter().power_at(now) * 1000.0).round() as u32
    }

    /// `nvmlDeviceGetTotalEnergyConsumption`: energy since boot in
    /// millijoules (NVML's unit).
    pub fn total_energy_consumption_mj(&self, platform: &Platform, now: SimTime) -> u64 {
        (platform.gpu_energy_j(SimTime::ZERO, now) * 1000.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_rates_report_percentages_over_windows() {
        let mut p = Platform::best_performance_testbed();
        p.set_gpu_activity(SimTime::ZERO, 0.87, 0.23);
        let mut dev = NvmlDevice::open();
        let u = dev.utilization_rates(&p, SimTime::from_secs(3));
        assert_eq!(u.gpu, 87);
        assert_eq!(u.memory, 23);
        // Next window sees only new activity.
        p.set_gpu_activity(SimTime::from_secs(3), 0.0, 0.0);
        let u = dev.utilization_rates(&p, SimTime::from_secs(6));
        assert_eq!(u.gpu, 0);
    }

    #[test]
    fn clock_info_matches_domains() {
        let p = Platform::best_performance_testbed();
        let dev = NvmlDevice::open();
        assert_eq!(dev.clock_info(&p, ClockType::Graphics), 576);
        assert_eq!(dev.clock_info(&p, ClockType::Memory), 900);
    }

    #[test]
    fn supported_clocks_descend_like_nvml() {
        let p = Platform::default_testbed();
        let dev = NvmlDevice::open();
        let mem = dev.supported_clocks(&p, ClockType::Memory);
        assert_eq!(mem, vec![900, 820, 740, 660, 580, 500]);
        let gfx = dev.supported_clocks(&p, ClockType::Graphics);
        assert_eq!(gfx.first(), Some(&576));
        assert_eq!(gfx.last(), Some(&296));
    }

    #[test]
    fn set_applications_clocks_round_trips() {
        let mut p = Platform::best_performance_testbed();
        let dev = NvmlDevice::open();
        dev.set_applications_clocks(&mut p, SimTime::from_secs(1), 820, 408)
            .expect("valid levels");
        assert_eq!(dev.clock_info(&p, ClockType::Graphics), 408);
        assert_eq!(dev.clock_info(&p, ClockType::Memory), 820);
    }

    #[test]
    fn unsupported_clock_is_rejected() {
        let mut p = Platform::default_testbed();
        let dev = NvmlDevice::open();
        let err = dev
            .set_applications_clocks(&mut p, SimTime::ZERO, 850, 408)
            .unwrap_err();
        assert_eq!(err, NvmlError::InvalidClock);
        assert!(err.to_string().contains("not a supported level"));
    }

    #[test]
    fn power_and_energy_use_nvml_units() {
        let mut p = Platform::best_performance_testbed();
        p.set_gpu_activity(SimTime::ZERO, 1.0, 1.0);
        let dev = NvmlDevice::open();
        let mw = dev.power_usage_mw(&p, SimTime::from_secs(1));
        assert_eq!(mw, 230_000, "peak board power in mW");
        let mj = dev.total_energy_consumption_mj(&p, SimTime::from_secs(10));
        assert_eq!(mj, 2_300_000, "10 s at 230 W in mJ");
    }
}
