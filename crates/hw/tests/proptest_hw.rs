//! Property-based tests for the platform models.

use greengpu_hw::calib::{geforce_8800_gtx, phenom_ii_x2};
use greengpu_hw::{cpu_time, gpu_timing, Platform, Smi, WorkUnits};
use greengpu_sim::SimTime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roofline_total_bounded_by_sum_and_max(ops in 1.0..1e14f64, bytes in 1.0..1e13f64,
                                             overlap in 0.0..1.0f64) {
        let w = WorkUnits::new(ops, bytes);
        let t = gpu_timing(&w, 1e11, 1e10, overlap);
        let tc = ops / 1e11;
        let tm = bytes / 1e10;
        prop_assert!(t.total_s >= tc.max(tm) - 1e-12, "below max rule");
        prop_assert!(t.total_s <= tc + tm + 1e-12, "above sum rule");
        prop_assert!((0.0..=1.0).contains(&t.u_core));
        prop_assert!((0.0..=1.0).contains(&t.u_mem));
        // Utilizations cover the busy time: the bottleneck side is fully
        // utilized under perfect overlap.
        if overlap == 1.0 {
            prop_assert!((t.u_core.max(t.u_mem) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn roofline_scales_inversely_with_rates(ops in 1e6..1e14f64, bytes in 1e6..1e13f64,
                                            k in 1.1..10.0f64) {
        let w = WorkUnits::new(ops, bytes);
        let slow = gpu_timing(&w, 1e11, 1e10, 0.85);
        let fast = gpu_timing(&w, 1e11 * k, 1e10 * k, 0.85);
        // Scaling both rates by k scales time by exactly 1/k.
        prop_assert!((fast.total_s * k - slow.total_s).abs() < slow.total_s * 1e-9);
    }

    #[test]
    fn gpu_power_is_monotone_in_every_argument(f1 in 0.3..1.0f64, f2 in 0.3..1.0f64,
                                               a1 in 0.0..1.0f64, a2 in 0.0..1.0f64) {
        let spec = geforce_8800_gtx();
        let base = spec.power_w(f1, f2, a1, a2);
        prop_assert!(spec.power_w((f1 + 0.1).min(1.0), f2, a1, a2) >= base);
        prop_assert!(spec.power_w(f1, (f2 + 0.1).min(1.0), a1, a2) >= base);
        prop_assert!(spec.power_w(f1, f2, (a1 + 0.1).min(1.0), a2) >= base);
        prop_assert!(spec.power_w(f1, f2, a1, (a2 + 0.1).min(1.0)) >= base);
        prop_assert!(base >= spec.p_static_w);
        prop_assert!(base <= spec.peak_power_w() + 1e-9);
    }

    #[test]
    fn cpu_power_envelope_holds(level in 0usize..4, util in 0.0..1.0f64) {
        let spec = phenom_ii_x2();
        let p = spec.power_w(level, util, 2);
        prop_assert!(p >= spec.p_box_w);
        prop_assert!(p <= spec.peak_power_w() + 1e-9);
        // DVFS monotonicity in the P-state.
        if level + 1 < 4 {
            prop_assert!(spec.power_w(level + 1, util, 2) >= p);
        }
    }

    #[test]
    fn cpu_time_monotone_in_cores_and_rate(ops in 1e6..1e13f64, cores in 1usize..8) {
        let w = WorkUnits::new(ops, 0.0);
        let t1 = cpu_time(&w, cores, 1e9, 1e12);
        let t2 = cpu_time(&w, cores + 1, 1e9, 1e12);
        prop_assert!(t2 <= t1 + 1e-12);
        let t3 = cpu_time(&w, cores, 2e9, 1e12);
        prop_assert!(t3 <= t1 + 1e-12);
    }

    #[test]
    fn platform_energy_is_time_monotone(activity in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..20)) {
        let mut p = Platform::best_performance_testbed();
        for (i, &(uc, um)) in activity.iter().enumerate() {
            p.set_gpu_activity(SimTime::from_secs(i as u64), uc, um);
        }
        let n = activity.len() as u64;
        let mut last = 0.0;
        for s in 1..=n + 5 {
            let e = p.total_energy_j(SimTime::ZERO, SimTime::from_secs(s));
            prop_assert!(e >= last, "energy decreased over time");
            prop_assert!(e > 0.0);
            last = e;
        }
    }

    #[test]
    fn smi_windows_partition_exactly(utils in proptest::collection::vec(0.0..1.0f64, 2..20)) {
        // Mean over the union of adjacent windows equals the time-weighted
        // mean of the window means.
        let mut p = Platform::best_performance_testbed();
        for (i, &u) in utils.iter().enumerate() {
            p.set_gpu_activity(SimTime::from_secs(i as u64), u, u);
        }
        let end = utils.len() as u64;
        let mut smi = Smi::new();
        let mid = end / 2;
        let r1 = smi.poll_gpu(p.gpu(), SimTime::from_secs(mid));
        let r2 = smi.poll_gpu(p.gpu(), SimTime::from_secs(end));
        let stitched = (r1.u_core * mid as f64 + r2.u_core * (end - mid) as f64) / end as f64;
        let whole = p.gpu().u_core_trace().mean(SimTime::ZERO, SimTime::from_secs(end));
        prop_assert!((stitched - whole).abs() < 1e-9, "windows don't partition: {stitched} vs {whole}");
    }

    #[test]
    fn frequency_levels_round_trip(core in 0usize..6, mem in 0usize..6) {
        let mut p = Platform::default_testbed();
        p.set_gpu_levels(SimTime::from_secs(1), core, mem);
        prop_assert_eq!(p.gpu().core().current_level(), core);
        prop_assert_eq!(p.gpu().mem().current_level(), mem);
        let spec = geforce_8800_gtx();
        prop_assert_eq!(p.gpu().core().current_mhz(), spec.core_levels_mhz[core]);
        prop_assert_eq!(p.gpu().mem().current_mhz(), spec.mem_levels_mhz[mem]);
    }

    #[test]
    fn gpu_dynamic_energy_never_exceeds_total(uc in 0.0..1.0f64, um in 0.0..1.0f64,
                                              secs in 1u64..100) {
        let mut p = Platform::best_performance_testbed();
        p.set_gpu_activity(SimTime::ZERO, uc, um);
        let end = SimTime::from_secs(secs);
        let total = p.gpu_energy_j(SimTime::ZERO, end);
        let dynamic = p.gpu_dynamic_energy_j(SimTime::ZERO, end);
        prop_assert!(dynamic >= -1e-9, "dynamic energy negative: {dynamic}");
        prop_assert!(dynamic <= total + 1e-9);
    }
}
