//! Property-based tests for the simulation substrate.

use greengpu_sim::{EventQueue, Pcg32, SimDuration, SimTime, SplitMix64, StepTrace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last, "events out of order");
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn event_queue_ties_preserve_fifo(n in 1usize..100) {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(42);
        for i in 0..n {
            q.schedule(t, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn event_queue_cancellation_removes_exactly_the_cancelled(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times.iter().enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::from_micros(t), i)))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for ((i, h), &c) in handles.iter().zip(cancel_mask.iter().cycle()) {
            if c {
                prop_assert!(q.cancel(*h));
                cancelled.insert(*i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, p)) = q.pop() {
            prop_assert!(!cancelled.contains(&p), "cancelled event {p} surfaced");
            seen.insert(p);
        }
        prop_assert_eq!(seen.len(), times.len() - cancelled.len());
    }

    #[test]
    fn step_trace_integral_is_additive(points in proptest::collection::vec((0u64..1_000_000, 0.0..500.0f64), 1..50),
                                       split in 0u64..1_000_000) {
        let mut sorted = points;
        sorted.sort_by_key(|&(t, _)| t);
        sorted.dedup_by_key(|&mut (t, _)| t);
        let mut trace = StepTrace::with_initial(1.0);
        for &(t, v) in &sorted {
            trace.set(SimTime::from_micros(t), v);
        }
        let end = SimTime::from_micros(2_000_000);
        let mid = SimTime::from_micros(split);
        let whole = trace.integral(SimTime::ZERO, end);
        let parts = trace.integral(SimTime::ZERO, mid) + trace.integral(mid, end);
        prop_assert!((whole - parts).abs() < 1e-6, "integral not additive: {whole} vs {parts}");
    }

    #[test]
    fn step_trace_integral_bounded_by_extremes(points in proptest::collection::vec((0u64..1_000_000, 0.0..500.0f64), 1..50)) {
        let mut sorted = points;
        sorted.sort_by_key(|&(t, _)| t);
        sorted.dedup_by_key(|&mut (t, _)| t);
        let mut trace = StepTrace::with_initial(100.0);
        let mut lo: f64 = 100.0;
        let mut hi: f64 = 100.0;
        for &(t, v) in &sorted {
            trace.set(SimTime::from_micros(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let span = SimTime::from_micros(1_500_000);
        let integral = trace.integral(SimTime::ZERO, span);
        let secs = span.as_secs_f64();
        prop_assert!(integral >= lo * secs - 1e-9 && integral <= hi * secs + 1e-9);
    }

    #[test]
    fn step_trace_mean_matches_sampling_limit(v1 in 0.0..100.0f64, v2 in 0.0..100.0f64,
                                              switch_s in 1u64..9) {
        let mut trace = StepTrace::with_initial(v1);
        trace.set(SimTime::from_secs(switch_s), v2);
        let end = SimTime::from_secs(10);
        let mean = trace.mean(SimTime::ZERO, end);
        let expected = (v1 * switch_s as f64 + v2 * (10 - switch_s) as f64) / 10.0;
        prop_assert!((mean - expected).abs() < 1e-9);
    }

    #[test]
    fn pcg_streams_are_reproducible_and_distinct(seed in any::<u64>()) {
        let mut a = Pcg32::new(seed, 1);
        let mut b = Pcg32::new(seed, 1);
        let mut c = Pcg32::new(seed, 2);
        let mut same_stream_equal = true;
        let mut cross_stream_equal = true;
        for _ in 0..32 {
            let (x, y, z) = (a.next_u32(), b.next_u32(), c.next_u32());
            same_stream_equal &= x == y;
            cross_stream_equal &= x == z;
        }
        prop_assert!(same_stream_equal);
        prop_assert!(!cross_stream_equal);
    }

    #[test]
    fn pcg_below_is_always_in_range(seed in any::<u64>(), bound in 1u32..10_000) {
        let mut rng = Pcg32::seeded(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn splitmix_child_seeds_are_distinct(seed in any::<u64>()) {
        let mut sm = SplitMix64::new(seed);
        let children: Vec<u64> = (0..16).map(|_| sm.child_seed()).collect();
        let unique: std::collections::HashSet<_> = children.iter().collect();
        prop_assert_eq!(unique.len(), children.len());
    }

    #[test]
    fn sim_time_arithmetic_round_trips(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let t = SimTime::from_micros(a) + SimDuration::from_micros(b);
        prop_assert_eq!(t - SimDuration::from_micros(b), SimTime::from_micros(a));
        prop_assert_eq!(t - SimTime::from_micros(a), SimDuration::from_micros(b));
    }

    #[test]
    fn duration_secs_round_trip_within_micro(secs in 0.0..100_000.0f64) {
        let d = SimDuration::from_secs_f64(secs);
        prop_assert!((d.as_secs_f64() - secs).abs() <= 5e-7);
    }
}
