//! A stable discrete-event queue.
//!
//! Events are ordered by [`SimTime`]; ties are broken by insertion order
//! (FIFO), which keeps simulations deterministic regardless of how the
//! underlying heap rebalances. The queue also supports cancellation by
//! handle, which the platform model uses to re-plan kernel-completion events
//! when a frequency changes mid-flight.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle identifying a scheduled event; used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic priority queue of timed events.
///
/// ```
/// use greengpu_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(5), "later");
/// q.schedule(SimTime::from_micros(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_micros(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    cancelled: Vec<u64>,
    live: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: Vec::new(),
            live: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Events scheduled for the same
    /// instant pop in the order they were scheduled.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        self.live += 1;
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or cancelled).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.contains(&handle.0) {
            return false;
        }
        // Only mark live events; popped events have already left the heap but
        // we cannot cheaply distinguish them, so verify lazily on pop. We keep
        // an explicit live count accurate by scanning the heap is too slow, so
        // instead record the mark and fix `live` when the entry surfaces.
        self.cancelled.push(handle.0);
        true
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some(entry) = self.heap.pop() {
            if let Some(pos) = self.cancelled.iter().position(|&s| s == entry.seq) {
                self.cancelled.swap_remove(pos);
                self.live -= 1;
                continue;
            }
            self.live -= 1;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// The time of the earliest pending event, skipping cancelled entries.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain cancelled entries off the top so peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if let Some(pos) = self.cancelled.iter().position(|&s| s == entry.seq) {
                self.cancelled.swap_remove(pos);
                self.heap.pop();
                self.live -= 1;
            } else {
                return Some(entry.at);
            }
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    ///
    /// Cancelled events that have not yet surfaced are excluded.
    pub fn len(&self) -> usize {
        self.live - self.cancelled.len()
    }

    /// True when no pending events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(1), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_handle_is_rejected() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from_micros(1), "a");
        q.schedule(SimTime::from_micros(5), "b");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(5), "b")));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(SimTime::from_micros(5), 2);
        q.schedule(SimTime::from_micros(4), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
