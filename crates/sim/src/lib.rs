//! # greengpu-sim — deterministic simulation substrate
//!
//! The GreenGPU paper evaluates on a physical testbed (GeForce 8800 GTX +
//! AMD Phenom II, two Wattsup power meters). This crate is the foundation of
//! the simulated replacement: a deterministic, fixed-point virtual clock,
//! an ordered discrete-event queue, seeded random-number streams, step-signal
//! traces with exact integration (energy = ∫ P dt), summary statistics, and
//! table rendering used by the experiment harness.
//!
//! Everything in this crate is pure and wall-clock independent: two runs with
//! the same inputs produce bit-identical outputs, which the test suite relies
//! on heavily.
//!
//! ## Module map
//!
//! * [`time`] — [`SimTime`]/[`SimDuration`] microsecond fixed-point clock.
//! * [`event`] — [`EventQueue`], a stable priority queue keyed by `SimTime`.
//! * [`fingerprint`] — [`Fnv64`], FNV-1a bit-exact state fingerprinting
//!   (the fleet engines' park/quiescence checks).
//! * [`json`] — [`JsonValue`], a hand-rolled JSON writer/parser with exact
//!   integer round-trips (learner checkpoints).
//! * [`rng`] — [`SplitMix64`] and [`Pcg32`] seeded generators plus
//!   distribution helpers.
//! * [`trace`] — [`StepTrace`] piecewise-constant signals with exact
//!   integrals, and [`SampledSeries`] for fixed-rate samples.
//! * [`stats`] — [`OnlineStats`] (Welford) and slice summaries.
//! * [`table`] — [`Table`] markdown/CSV rendering for experiment output.
//! * [`plot`] — ASCII sparklines and band charts for terminal trace
//!   exploration.

#![forbid(unsafe_code)]

pub mod event;
pub mod fingerprint;
pub mod json;
pub mod plot;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;
pub mod trace;

pub use event::EventQueue;
pub use fingerprint::Fnv64;
pub use json::JsonValue;
pub use rng::{Pcg32, SplitMix64};
pub use stats::{summarize, OnlineStats, Summary};
pub use table::Table;
pub use time::{SimDuration, SimTime};
pub use trace::{SampledSeries, StepTrace};
