//! Fixed-point virtual time.
//!
//! All simulation state advances on a microsecond-resolution `u64` clock.
//! Using fixed-point instead of `f64` seconds keeps event ordering exact and
//! makes runs bit-reproducible: there is no accumulation drift no matter how
//! many events fire.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Microseconds per second, the resolution of the virtual clock.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the virtual clock, in microseconds since the start
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Builds an instant from (possibly fractional) seconds, rounding to the
    /// nearest microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }

    /// Builds an instant from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// This instant expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Raw microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Builds a span from (possibly fractional) seconds, rounding to the
    /// nearest microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_micros(secs))
    }

    /// Builds a span from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Builds a span from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// This span expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Raw microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// True when the span is empty.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative scalar, rounding to the nearest
    /// microsecond. Panics in debug builds if `k` is negative or NaN.
    pub fn mul_f64(self, k: f64) -> Self {
        debug_assert!(k >= 0.0 && k.is_finite(), "scale must be finite and non-negative");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

fn secs_to_micros(secs: f64) -> u64 {
    // NaN and non-positive inputs clamp to zero.
    if secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return 0;
    }
    (secs * MICROS_PER_SEC as f64).round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_conversions_round_trip() {
        let t = SimTime::from_secs(3);
        assert_eq!(t.as_micros(), 3_000_000);
        assert!((t.as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_seconds_round_to_nearest_micro() {
        let d = SimDuration::from_secs_f64(0.000_000_4);
        assert_eq!(d.as_micros(), 0);
        let d = SimDuration::from_secs_f64(0.000_000_6);
        assert_eq!(d.as_micros(), 1);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_is_exact() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t, SimTime::from_micros(15));
        assert_eq!(t - SimTime::from_micros(4), SimDuration::from_micros(11));
        let mut d = SimDuration::from_micros(7);
        d += SimDuration::from_micros(3);
        d -= SimDuration::from_micros(4);
        assert_eq!(d, SimDuration::from_micros(6));
    }

    #[test]
    fn saturating_since_handles_future_instants() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_micros(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_micros(4)));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(2)); // 1.5 rounds to 2
        assert_eq!(d.mul_f64(2.0), SimDuration::from_micros(6));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_matches_micros() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) == SimDuration::from_micros(1_000));
    }

    #[test]
    fn display_formats_in_seconds() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
        assert_eq!(SimDuration::from_micros(1_500_000).to_string(), "1.500000s");
    }
}
