//! FNV-1a 64-bit state fingerprinting.
//!
//! The event-driven fleet engine parks a node only when a control tick
//! provably changed nothing, which it establishes by fingerprinting the
//! node's decision-relevant state before and after the tick. [`Fnv64`]
//! is the hasher behind that check: a tiny, dependency-free, stable
//! function over exact bit patterns — floats are folded via
//! `f64::to_bits`, so two states fingerprint equal only when they are
//! bit-identical, the same standard the byte-identical trace CSVs hold
//! the engines to.

/// An incremental FNV-1a 64-bit hasher.
///
/// ```
/// use greengpu_sim::Fnv64;
///
/// let mut a = Fnv64::new();
/// a.push_u64(7);
/// a.push_f64(0.5);
/// let mut b = Fnv64::new();
/// b.push_u64(7);
/// b.push_f64(0.5);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Folds one byte.
    pub fn push_byte(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Folds a `u64`, little-endian byte order.
    pub fn push_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.push_byte(b);
        }
    }

    /// Folds an `f64` by exact bit pattern — `0.0` and `-0.0` hash
    /// differently, NaNs hash by payload; bit-identity is the point.
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Folds a `usize` (widened to `u64` so 32- and 64-bit targets
    /// agree).
    pub fn push_usize(&mut self, v: usize) {
        self.push_u64(v as u64);
    }

    /// Folds a `bool` as one byte.
    pub fn push_bool(&mut self, v: bool) {
        self.push_byte(v as u8);
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vectors() {
        // FNV-1a("a") and FNV-1a("foobar") from the reference tables.
        let mut h = Fnv64::new();
        h.push_byte(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        for b in b"foobar" {
            h.push_byte(*b);
        }
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn distinguishes_field_order_and_values() {
        let digest = |vals: &[u64]| {
            let mut h = Fnv64::new();
            for &v in vals {
                h.push_u64(v);
            }
            h.finish()
        };
        assert_ne!(digest(&[1, 2]), digest(&[2, 1]));
        assert_ne!(digest(&[1]), digest(&[1, 0]));
    }

    #[test]
    fn float_bits_are_exact() {
        let mut a = Fnv64::new();
        a.push_f64(0.0);
        let mut b = Fnv64::new();
        b.push_f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "signed zeros are distinct states");
        let mut c = Fnv64::new();
        c.push_f64(0.1 + 0.2);
        let mut d = Fnv64::new();
        d.push_f64(0.3);
        assert_ne!(c.finish(), d.finish(), "nearly-equal is not bit-equal");
    }
}
