//! Table rendering for the experiment harness.
//!
//! The `repro` binaries print the same rows/series the paper reports; this
//! module renders them as GitHub-flavored markdown (for EXPERIMENTS.md) and
//! CSV (for plotting).

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics if the arity does not match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable cells.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as GitHub-flavored markdown with a title heading.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}\n", self.title);
        }
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let render_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", render_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", render_row(&sep));
        for r in &self.rows {
            let _ = writeln!(out, "{}", render_row(r));
        }
        out
    }

    /// Renders as CSV (RFC-4180 quoting for cells containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Formats a float with fixed decimals, trimming `-0.000` artifacts.
pub fn fnum(x: f64, decimals: usize) -> String {
    let s = format!("{x:.decimals$}");
    if s.starts_with('-') && s[1..].chars().all(|c| c == '0' || c == '.') {
        s[1..].to_string()
    } else {
        s
    }
}

/// Formats a fraction as a percentage with two decimals, e.g. `0.2104` →
/// `"21.04%"`.
pub fn fpct(frac: f64) -> String {
    format!("{}%", fnum(frac * 100.0, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| - | - |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn markdown_pads_columns() {
        let mut t = Table::new("", &["name", "v"]);
        t.row(&["x".into(), "123456".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| x    | 123456 |"), "{md}");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn row_display_converts() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row_display(&[1.5, 2.5]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn fnum_trims_negative_zero() {
        assert_eq!(fnum(-0.0001, 2), "0.00");
        assert_eq!(fnum(-1.2345, 2), "-1.23");
        assert_eq!(fnum(1.23456, 3), "1.235");
    }

    #[test]
    fn fpct_formats_percent() {
        assert_eq!(fpct(0.2104), "21.04%");
        assert_eq!(fpct(1.0), "100.00%");
    }
}
