//! A minimal hand-rolled JSON value: writer *and* parser, no external
//! dependencies.
//!
//! The repro crate's summary layer writes JSON with plain `format!` calls
//! — fine for one-way output, but learner checkpoints (PR 4) must be read
//! back bit-exactly. [`JsonValue`] closes the loop:
//!
//! * Numbers are stored as their **raw decimal text**, so a `u64` RNG
//!   state round-trips exactly (never through an `f64`, which would lose
//!   low bits past 2^53), and finite `f64`s use Rust's shortest
//!   round-trip formatting (`format!("{v}")` re-parses to the identical
//!   bits).
//! * The parser is a strict recursive-descent over the JSON grammar with
//!   position-annotated errors, so a truncated or corrupted checkpoint is
//!   *rejected* — the caller falls back to a cold start instead of
//!   resuming from garbage.

use std::fmt;

/// One JSON value. Numbers keep their source text (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number as raw decimal text (validated on parse, exact on write).
    Num(String),
    /// A string (unescaped content).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as ordered `(key, value)` pairs — insertion order is
    /// preserved so writes are deterministic.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A finite `f64` as a shortest-round-trip number; non-finite values
    /// (which JSON cannot represent) become `null`.
    pub fn f64(v: f64) -> JsonValue {
        if v.is_finite() {
            JsonValue::Num(format!("{v}"))
        } else {
            JsonValue::Null
        }
    }

    /// A `u64` as an exact decimal number.
    pub fn u64(v: u64) -> JsonValue {
        JsonValue::Num(v.to_string())
    }

    /// An `i64` as an exact decimal number.
    pub fn i64(v: i64) -> JsonValue {
        JsonValue::Num(v.to_string())
    }

    /// A `usize` as an exact decimal number.
    pub fn usize(v: usize) -> JsonValue {
        JsonValue::Num(v.to_string())
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> JsonValue {
        JsonValue::Str(v.into())
    }

    /// An array of finite `f64`s.
    pub fn f64_array(vs: &[f64]) -> JsonValue {
        JsonValue::Arr(vs.iter().map(|&v| JsonValue::f64(v)).collect())
    }

    /// An array of `u64`s.
    pub fn u64_array(vs: &[u64]) -> JsonValue {
        JsonValue::Arr(vs.iter().map(|&v| JsonValue::u64(v)).collect())
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(s) => s.parse::<f64>().ok().filter(|v| v.is_finite()),
            _ => None,
        }
    }

    /// The value as a `u64`, exact (rejects signs, fractions, exponents).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(s) => s.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(s) => s.parse::<i64>().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, exact.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(s) => s.parse::<usize>().ok(),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(vs) => Some(vs),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Parses a JSON document. Strict: exactly one value, fully consumed;
    /// errors carry the byte offset of the problem.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(s) => f.write_str(s),
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Arr(vs) => {
                f.write_str("[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        // Validate with Rust's float parser (integers also pass); keep
        // the raw text so integer values stay exact.
        text.parse::<f64>()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        Ok(JsonValue::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(format!("unterminated string at byte {}", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            let c =
                                char::from_u32(code).ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(c);
                            self.pos -= 1; // hex4 leaves pos past the digits
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        // Called with pos on the 'u'; reads the four digits after it.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(format!("truncated \\u escape at byte {}", self.pos));
        }
        let digits =
            std::str::from_utf8(&self.bytes[start..end]).map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut vs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(vs));
        }
        loop {
            self.skip_ws();
            vs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(vs));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_exactly() {
        for v in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 60, 0x9E37_79B9_7F4A_7C15] {
            let j = JsonValue::u64(v);
            let text = j.to_string();
            let back = JsonValue::parse(&text).unwrap();
            assert_eq!(back.as_u64(), Some(v), "{text}");
        }
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for v in [
            0.0,
            1.0,
            -1.5,
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
        ] {
            let text = JsonValue::f64(v).to_string();
            let back = JsonValue::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert!(JsonValue::f64(f64::NAN).is_null());
        assert!(JsonValue::f64(f64::INFINITY).is_null());
        assert_eq!(JsonValue::f64(f64::NAN).as_f64(), None);
    }

    #[test]
    fn objects_and_arrays_round_trip() {
        let v = JsonValue::Obj(vec![
            ("name".to_string(), JsonValue::str("exp3")),
            ("weights".to_string(), JsonValue::f64_array(&[1.0, 0.5, 0.25])),
            ("current".to_string(), JsonValue::Null),
            ("ok".to_string(), JsonValue::Bool(true)),
            (
                "nested".to_string(),
                JsonValue::Obj(vec![("t".to_string(), JsonValue::u64(7))]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("exp3"));
        assert_eq!(
            v.get("nested").and_then(|n| n.get("t")).and_then(JsonValue::as_u64),
            Some(7)
        );
        assert_eq!(
            v.get("weights").and_then(JsonValue::as_arr).map(<[JsonValue]>::len),
            Some(3)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f — π";
        let text = JsonValue::str(s).to_string();
        assert_eq!(JsonValue::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(JsonValue::parse(r#""π""#).unwrap().as_str(), Some("π"));
    }

    #[test]
    fn truncated_and_corrupted_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"a\":",
            "{\"a\":1",
            "[1,2",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "1.2.3",
            "{} trailing",
            "{\"a\":1}}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn typed_accessors_reject_mismatches() {
        let v = JsonValue::parse("{\"k\":-3,\"f\":1.5}").unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_i64), Some(-3));
        assert_eq!(v.get("k").and_then(JsonValue::as_u64), None, "negative is not u64");
        assert_eq!(v.get("f").and_then(JsonValue::as_u64), None, "fraction is not u64");
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }
}
