//! Summary statistics for experiment reporting.

/// Numerically stable running mean/variance (Welford's algorithm) with
/// min/max tracking.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Point summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
}

/// Summarizes a slice. Returns an all-NaN summary for empty input.
pub fn summarize(xs: &[f64]) -> Summary {
    if xs.is_empty() {
        return Summary {
            n: 0,
            mean: f64::NAN,
            stddev: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            median: f64::NAN,
            p95: f64::NAN,
        };
    }
    let mut stats = OnlineStats::new();
    for &x in xs {
        stats.push(x);
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    Summary {
        n: xs.len(),
        mean: stats.mean(),
        stddev: stats.stddev(),
        min: stats.min(),
        max: stats.max(),
        median: percentile_sorted(&sorted, 50.0),
        p95: percentile_sorted(&sorted, 95.0),
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
/// `p` is in `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    match sorted.len() {
        0 => f64::NAN,
        1 => sorted[0],
        n => {
            let rank = p / 100.0 * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Geometric mean of strictly positive values (NaN if empty or any value
/// is non-positive).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before.mean());
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e.mean(), before.mean());
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 4.0);
        assert!((percentile_sorted(&sorted, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summarize_basic() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.median - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_empty_is_nan() {
        let s = summarize(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
        assert!(geomean(&[1.0, 0.0]).is_nan());
        assert!(geomean(&[1.0, -2.0]).is_nan());
    }
}
