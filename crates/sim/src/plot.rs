//! Terminal plotting for traces.
//!
//! The repro harness emits tables and CSVs; for interactive exploration
//! (the `trace_explorer` example) this module renders step traces and
//! sample series as compact ASCII charts — sparklines for one-row
//! summaries and multi-row band charts for Fig. 5-style time series.

use crate::time::{SimDuration, SimTime};
use crate::trace::StepTrace;

/// The eight block glyphs used for sparklines, in ascending fill order.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders values as a one-line sparkline. Empty input gives an empty
/// string; a constant series renders mid-height.
///
/// ```
/// use greengpu_sim::plot::sparkline;
/// assert_eq!(sparkline(&[0.0, 0.5, 1.0]), "▁▅█");
/// ```
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            let idx = if span <= 0.0 {
                3
            } else {
                (((v - lo) / span) * 7.0).round() as usize
            };
            SPARKS[idx.min(7)]
        })
        .collect()
}

/// Samples a step trace into `width` buckets over `[from, to)` (bucket
/// value = time-weighted mean) and renders a sparkline.
pub fn trace_sparkline(trace: &StepTrace, from: SimTime, to: SimTime, width: usize) -> String {
    sparkline(&bucketize(trace, from, to, width))
}

/// Time-weighted bucket means of a step trace.
pub fn bucketize(trace: &StepTrace, from: SimTime, to: SimTime, width: usize) -> Vec<f64> {
    assert!(width > 0, "need at least one bucket");
    let total = to.saturating_since(from).as_micros();
    if total == 0 {
        return vec![trace.value_at(from); width];
    }
    (0..width)
        .map(|i| {
            let a = from + SimDuration::from_micros(total * i as u64 / width as u64);
            let b = from + SimDuration::from_micros(total * (i as u64 + 1) / width as u64);
            if b > a {
                trace.mean(a, b)
            } else {
                trace.value_at(a)
            }
        })
        .collect()
}

/// A multi-row ASCII band chart of one signal: `rows` text lines of
/// `width` columns, highest band first, plus a labeled footer.
pub fn band_chart(label: &str, values: &[f64], rows: usize) -> String {
    assert!(rows >= 2, "need at least two rows");
    if values.is_empty() {
        return format!("{label}: (no data)\n");
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let mut out = String::new();
    for row in (0..rows).rev() {
        let threshold = lo + span * (row as f64 + 0.5) / rows as f64;
        let line: String = values.iter().map(|&v| if v >= threshold { '█' } else { ' ' }).collect();
        let edge = lo + span * (row as f64 + 1.0) / rows as f64;
        out.push_str(&format!("{edge:>9.2} |{line}|\n"));
    }
    out.push_str(&format!("{lo:>9.2} +{}+ {label}\n", "-".repeat(values.len())));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_maps_extremes_to_extreme_glyphs() {
        let s = sparkline(&[0.0, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
    }

    #[test]
    fn sparkline_constant_series_is_flat_midline() {
        let s = sparkline(&[5.0; 10]);
        assert!(s.chars().all(|c| c == '▄'));
        assert_eq!(s.chars().count(), 10);
    }

    #[test]
    fn sparkline_empty_is_empty() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn bucketize_recovers_step_structure() {
        let mut tr = StepTrace::with_initial(0.0);
        tr.set(SimTime::from_secs(5), 10.0);
        let buckets = bucketize(&tr, SimTime::ZERO, SimTime::from_secs(10), 10);
        assert_eq!(buckets.len(), 10);
        assert!(buckets[0].abs() < 1e-9);
        assert!((buckets[9] - 10.0).abs() < 1e-9);
        // Transition bucket boundary: bucket 5 starts exactly at t=5s.
        assert!((buckets[5] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bucketize_degenerate_window() {
        let tr = StepTrace::with_initial(3.0);
        let buckets = bucketize(&tr, SimTime::from_secs(1), SimTime::from_secs(1), 4);
        assert_eq!(buckets, vec![3.0; 4]);
    }

    #[test]
    fn trace_sparkline_renders_width_glyphs() {
        let mut tr = StepTrace::with_initial(0.0);
        tr.set(SimTime::from_secs(2), 1.0);
        let s = trace_sparkline(&tr, SimTime::ZERO, SimTime::from_secs(4), 16);
        assert_eq!(s.chars().count(), 16);
    }

    #[test]
    fn band_chart_shape() {
        let chart = band_chart("power", &[1.0, 2.0, 3.0, 2.0, 1.0], 4);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 5, "4 bands + footer");
        assert!(lines[4].contains("power"));
        // The peak column must be filled in the top band.
        assert!(lines[0].contains('█'));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_width_panics() {
        let tr = StepTrace::with_initial(1.0);
        bucketize(&tr, SimTime::ZERO, SimTime::from_secs(1), 0);
    }
}
