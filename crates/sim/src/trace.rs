//! Piecewise-constant signal traces.
//!
//! The meters and sensors in `greengpu-hw` record power, frequency and
//! utilization as *step signals*: a value holds from the instant it is set
//! until the next change. [`StepTrace`] stores such a signal and integrates
//! it exactly — energy is literally `trace.integral(..)` of the power trace.
//! [`SampledSeries`] holds fixed-interval samples (what a 1 Hz Wattsup meter
//! or a polled nvidia-smi would report).

use crate::time::{SimDuration, SimTime};

/// A right-continuous step signal: `(t_i, v_i)` means the signal equals
/// `v_i` on `[t_i, t_{i+1})`.
#[derive(Debug, Clone, Default)]
pub struct StepTrace {
    points: Vec<(SimTime, f64)>,
}

impl StepTrace {
    /// Creates an empty trace (value is undefined before the first `set`;
    /// queries there return 0).
    pub fn new() -> Self {
        StepTrace { points: Vec::new() }
    }

    /// Creates a trace with an initial value at t = 0.
    pub fn with_initial(value: f64) -> Self {
        StepTrace {
            points: vec![(SimTime::ZERO, value)],
        }
    }

    /// Sets the signal value from `at` onward. `at` must be ≥ the last set
    /// time; setting at the same instant overwrites (last-writer-wins), and
    /// redundant sets (same value) are coalesced.
    pub fn set(&mut self, at: SimTime, value: f64) {
        if let Some(&mut (t_last, ref mut v_last)) = self.points.last_mut() {
            assert!(at >= t_last, "trace updates must be time-ordered: {at} < {t_last}");
            if t_last == at {
                *v_last = value;
                // Coalesce if this overwrite makes the segment redundant.
                if self.points.len() >= 2 && self.points[self.points.len() - 2].1 == value {
                    self.points.pop();
                }
                return;
            }
            if *v_last == value {
                return; // redundant
            }
        }
        self.points.push((at, value));
    }

    /// The signal value at `at` (0 before the first point).
    pub fn value_at(&self, at: SimTime) -> f64 {
        match self.points.binary_search_by(|&(t, _)| t.cmp(&at)) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The most recently set value (0 if empty).
    pub fn last_value(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, v)| v)
    }

    /// Exact integral of the signal over `[from, to)`.
    ///
    /// For a power trace in watts this is energy in joules.
    pub fn integral(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from || self.points.is_empty() {
            return 0.0;
        }
        // Segments ending at or before `from` contribute exactly nothing,
        // so binary-search straight to the segment containing `from`
        // instead of scanning from the start — repeated window queries on
        // a long-lived trace stay O(log P) rather than O(P). The summed
        // terms (and their order) are identical to a full scan, so the
        // result is bit-for-bit unchanged.
        let first = self.points.partition_point(|&(t, _)| t <= from).saturating_sub(1);
        let mut acc = 0.0;
        for (i, &(t_i, v_i)) in self.points.iter().enumerate().skip(first) {
            let seg_start = t_i.max(from);
            let seg_end = match self.points.get(i + 1) {
                Some(&(t_next, _)) => t_next.min(to),
                None => to,
            };
            if seg_end > seg_start {
                acc += v_i * (seg_end - seg_start).as_secs_f64();
            }
            if t_i >= to {
                break;
            }
        }
        acc
    }

    /// Time-weighted mean over `[from, to)`.
    pub fn mean(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.saturating_since(from).as_secs_f64();
        // lint:allow(float_eq) empty-window guard; saturating_since yields exactly 0.0
        if span == 0.0 {
            return 0.0;
        }
        self.integral(from, to) / span
    }

    /// Iterator over the breakpoints.
    pub fn points(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Number of breakpoints stored.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no value has been set yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Samples the trace at a fixed period starting at `start`, producing
    /// `n` samples — e.g. what a 1 Hz power meter would log.
    pub fn sample(&self, start: SimTime, period: SimDuration, n: usize) -> SampledSeries {
        let mut out = SampledSeries::new(start, period);
        let mut t = start;
        for _ in 0..n {
            out.push(self.value_at(t));
            t += period;
        }
        out
    }
}

/// Fixed-rate samples of a signal: `value[i]` was observed at
/// `start + i·period`.
#[derive(Debug, Clone)]
pub struct SampledSeries {
    start: SimTime,
    period: SimDuration,
    values: Vec<f64>,
}

impl SampledSeries {
    /// Creates an empty series.
    pub fn new(start: SimTime, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "sampling period must be positive");
        SampledSeries {
            start,
            period,
            values: Vec::new(),
        }
    }

    /// Appends the next sample.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// The recorded samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample timestamps, paired with values.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.values.iter().enumerate().map(move |(i, &v)| {
            (
                self.start + SimDuration::from_micros(self.period.as_micros() * i as u64),
                v,
            )
        })
    }

    /// Sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// First sample instant.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Riemann-sum estimate of the integral (each sample held for one
    /// period) — how a real watt-meter estimates energy.
    pub fn riemann_integral(&self) -> f64 {
        self.values.iter().sum::<f64>() * self.period.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn value_at_follows_steps() {
        let mut tr = StepTrace::with_initial(1.0);
        tr.set(t(10), 5.0);
        tr.set(t(20), 2.0);
        assert_eq!(tr.value_at(t(0)), 1.0);
        assert_eq!(tr.value_at(t(9)), 1.0);
        assert_eq!(tr.value_at(t(10)), 5.0);
        assert_eq!(tr.value_at(t(15)), 5.0);
        assert_eq!(tr.value_at(t(25)), 2.0);
    }

    #[test]
    fn value_before_first_point_is_zero() {
        let mut tr = StepTrace::new();
        tr.set(t(100), 3.0);
        assert_eq!(tr.value_at(t(50)), 0.0);
        assert_eq!(tr.value_at(t(100)), 3.0);
    }

    #[test]
    fn integral_is_exact_on_segments() {
        let mut tr = StepTrace::with_initial(2.0); // 2 W
        tr.set(SimTime::from_secs(1), 4.0); // 4 W from t=1s
                                            // over [0, 3s): 1s at 2W + 2s at 4W = 10 J
        let e = tr.integral(SimTime::ZERO, SimTime::from_secs(3));
        assert!((e - 10.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn integral_partial_window() {
        let mut tr = StepTrace::with_initial(10.0);
        tr.set(SimTime::from_secs(2), 0.0);
        let e = tr.integral(SimTime::from_secs(1), SimTime::from_secs(5));
        assert!((e - 10.0).abs() < 1e-9, "{e}"); // only [1,2)s at 10W
    }

    #[test]
    fn integral_is_additive_over_adjacent_windows() {
        let mut tr = StepTrace::with_initial(3.0);
        tr.set(t(700_000), 1.5);
        tr.set(t(1_300_000), 7.25);
        let whole = tr.integral(SimTime::ZERO, SimTime::from_secs(2));
        let parts = tr.integral(SimTime::ZERO, t(900_000)) + tr.integral(t(900_000), SimTime::from_secs(2));
        assert!((whole - parts).abs() < 1e-9);
    }

    #[test]
    fn empty_and_degenerate_integrals_are_zero() {
        let tr = StepTrace::new();
        assert_eq!(tr.integral(SimTime::ZERO, SimTime::from_secs(1)), 0.0);
        let tr = StepTrace::with_initial(5.0);
        assert_eq!(tr.integral(SimTime::from_secs(1), SimTime::from_secs(1)), 0.0);
        assert_eq!(tr.integral(SimTime::from_secs(2), SimTime::from_secs(1)), 0.0);
    }

    #[test]
    fn redundant_sets_coalesce() {
        let mut tr = StepTrace::with_initial(1.0);
        tr.set(t(5), 1.0);
        tr.set(t(9), 1.0);
        assert_eq!(tr.len(), 1);
        tr.set(t(10), 2.0);
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn same_instant_overwrites() {
        let mut tr = StepTrace::with_initial(1.0);
        tr.set(t(10), 5.0);
        tr.set(t(10), 6.0);
        assert_eq!(tr.value_at(t(10)), 6.0);
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn same_instant_overwrite_coalesces_back() {
        let mut tr = StepTrace::with_initial(1.0);
        tr.set(t(10), 5.0);
        tr.set(t(10), 1.0); // back to the previous value — segment vanishes
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.value_at(t(20)), 1.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_set_panics() {
        let mut tr = StepTrace::with_initial(1.0);
        tr.set(t(10), 2.0);
        tr.set(t(5), 3.0);
    }

    #[test]
    fn mean_is_integral_over_span() {
        let mut tr = StepTrace::with_initial(2.0);
        tr.set(SimTime::from_secs(1), 6.0);
        let m = tr.mean(SimTime::ZERO, SimTime::from_secs(2));
        assert!((m - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_values() {
        let mut tr = StepTrace::with_initial(1.0);
        tr.set(SimTime::from_secs(2), 9.0);
        let s = tr.sample(SimTime::ZERO, SimDuration::from_secs(1), 4);
        assert_eq!(s.values(), &[1.0, 1.0, 9.0, 9.0]);
        assert!((s.riemann_integral() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_series_iter_timestamps() {
        let mut s = SampledSeries::new(SimTime::from_secs(1), SimDuration::from_secs(2));
        s.push(1.0);
        s.push(2.0);
        let pts: Vec<_> = s.iter().collect();
        assert_eq!(pts[0].0, SimTime::from_secs(1));
        assert_eq!(pts[1].0, SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "sampling period must be positive")]
    fn zero_period_series_panics() {
        SampledSeries::new(SimTime::ZERO, SimDuration::ZERO);
    }
}
