//! Seeded random-number streams.
//!
//! The workload generators need randomness (graph edges, data points, …) but
//! the reproduction must be bit-deterministic, so every consumer takes an
//! explicit generator seeded from the experiment configuration instead of
//! sharing global state. Two small, well-known generators are provided:
//! [`SplitMix64`] for seeding/hash-mixing and [`Pcg32`] as the workhorse
//! stream.

/// SplitMix64 (Steele, Lea, Flood 2014). Primarily used to expand a single
/// `u64` experiment seed into independent sub-seeds for each component.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives an independent child seed; successive calls give distinct
    /// streams.
    pub fn child_seed(&mut self) -> u64 {
        self.next_u64()
    }
}

/// PCG-XSH-RR 64/32 (O'Neill 2014): small state, good statistical quality,
/// and trivially reproducible across platforms.
///
/// ```
/// use greengpu_sim::Pcg32;
/// let mut a = Pcg32::seeded(7);
/// let mut b = Pcg32::seeded(7);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// assert!(a.next_f64() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a stream from a seed and stream-id. Streams with different
    /// ids are statistically independent.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Convenience constructor using stream 0.
    pub fn seeded(seed: u64) -> Self {
        Pcg32::new(seed, 0)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling on the multiply-shift trick.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u32();
            let m = u64::from(x) * u64::from(bound);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0 && len <= u32::MAX as usize);
        self.below(len as u32) as usize
    }

    /// Standard normal sample (Box–Muller, one value per call; the pair's
    /// second value is discarded to keep state consumption fixed).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 > 0.0 {
                let u2 = self.next_f64();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// The raw generator state `(state, inc)` — the checkpointing seam.
    /// Together with [`Pcg32::from_state`] this round-trips the stream
    /// position exactly, so a restored learner continues drawing the same
    /// sequence it would have drawn without the restart.
    pub fn state(&self) -> (u64, u64) {
        (self.state, self.inc)
    }

    /// Rebuilds a generator from raw state captured by [`Pcg32::state`].
    pub fn from_state(state: u64, inc: u64) -> Self {
        Pcg32 { state, inc }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the canonical C implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn pcg_streams_differ() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be nearly disjoint, {same} collisions");
    }

    #[test]
    fn pcg_is_deterministic() {
        let mut a = Pcg32::seeded(99);
        let mut b = Pcg32::seeded(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn pcg_state_round_trips_the_stream_position() {
        let mut a = Pcg32::new(21, 0xE3);
        for _ in 0..37 {
            a.next_u32();
        }
        let (state, inc) = a.state();
        let mut b = Pcg32::from_state(state, inc);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut r = Pcg32::seeded(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Pcg32::seeded(4);
        for _ in 0..10_000 {
            let x = r.uniform(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Pcg32::seeded(5);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(10) as usize] += 1;
        }
        let expected = n as f64 / 10.0;
        for &c in &counts {
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.05,
                "bucket count {c} deviates from {expected}"
            );
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = Pcg32::seeded(6);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Pcg32::seeded(7);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        Pcg32::seeded(1).below(0);
    }
}
