//! The time-varying carbon/price intensity signal.
//!
//! A [`CarbonSignal`] is a piecewise-constant step function over the
//! horizon — the shape grid operators actually publish (5–60 minute
//! marginal-intensity buckets). The synthetic generator lays a seeded
//! jitter over a sinusoid so every run sees the same curve for the same
//! seed, and the integrals the dispatcher and telemetry need
//! ([`CarbonSignal::mean_over`]) are exact closed forms over the steps.

use greengpu_sim::{Pcg32, SplitMix64};

/// Stream selector for the per-step jitter.
const STREAM_JITTER: u64 = 0x7E_0010;
/// Relative amplitude of the per-step jitter in the synthetic signal.
const JITTER_FRAC: f64 = 0.05;

/// A piecewise-constant carbon (or price) intensity over `[0, horizon)`.
/// Units are relative — the dispatcher and telemetry only ever compare
/// and weight by it — so 1.0 is "average grid intensity".
#[derive(Debug, Clone, PartialEq)]
pub struct CarbonSignal {
    step_s: f64,
    values: Vec<f64>,
}

impl CarbonSignal {
    /// A constant signal — the carbon-blind baseline's view of the grid.
    pub fn flat(value: f64, horizon_s: f64, step_s: f64) -> CarbonSignal {
        let steps = (horizon_s / step_s.max(1e-9)).ceil().max(1.0) as usize;
        CarbonSignal {
            step_s,
            values: vec![value; steps],
        }
    }

    /// A signal from explicit per-step values (e.g. a published grid
    /// trace). Shape problems surface via [`CarbonSignal::try_validate`].
    pub fn from_steps(step_s: f64, values: Vec<f64>) -> CarbonSignal {
        CarbonSignal { step_s, values }
    }

    /// A seeded diurnal-shaped signal: `base · (1 + amplitude ·
    /// sin(2π t_mid / period))` per step, with ±5 % seeded jitter,
    /// clamped positive. Deterministic per `(seed, shape)`.
    pub fn synthetic(seed: u64, horizon_s: f64, step_s: f64, base: f64, amplitude: f64, period_s: f64) -> CarbonSignal {
        let step = step_s.max(1e-9);
        let steps = (horizon_s / step).ceil().max(1.0) as usize;
        let root = SplitMix64::new(seed).next_u64();
        let mut jitter = Pcg32::new(root, STREAM_JITTER);
        let values = (0..steps)
            .map(|k| {
                let t_mid = (k as f64 + 0.5) * step;
                let theta = std::f64::consts::TAU * t_mid / period_s.max(1e-9);
                let wobble = 1.0 + JITTER_FRAC * (2.0 * jitter.next_f64() - 1.0);
                (base * (1.0 + amplitude * theta.sin()) * wobble).max(1e-6)
            })
            .collect();
        CarbonSignal { step_s: step, values }
    }

    /// Non-panicking shape check naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        if !(self.step_s.is_finite() && self.step_s > 0.0) {
            return Err(format!("carbon.step_s must be finite and > 0, got {}", self.step_s));
        }
        if self.values.is_empty() {
            return Err("carbon.values must not be empty".to_string());
        }
        if let Some(v) = self.values.iter().find(|v| !(v.is_finite() && **v > 0.0)) {
            return Err(format!("carbon.values must all be finite and > 0, got {v}"));
        }
        Ok(())
    }

    /// Step length, seconds.
    pub fn step_s(&self) -> f64 {
        self.step_s
    }

    /// Covered horizon, seconds.
    pub fn horizon_s(&self) -> f64 {
        self.step_s * self.values.len() as f64
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the signal has no steps (never true for the constructors).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Intensity at time `t_s` (clamped to the first/last step).
    pub fn intensity_at(&self, t_s: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let idx = ((t_s / self.step_s).floor().max(0.0) as usize).min(self.values.len() - 1);
        self.values[idx]
    }

    /// Exact mean intensity over `[a_s, b_s]` (piecewise-constant
    /// integral divided by the window). Degenerate windows return the
    /// point intensity at `a_s`.
    pub fn mean_over(&self, a_s: f64, b_s: f64) -> f64 {
        let (a, b) = (a_s.max(0.0), b_s.max(0.0));
        if b <= a || self.values.is_empty() {
            return self.intensity_at(a);
        }
        let mut integral = 0.0f64;
        let mut t = a;
        while t < b {
            let idx = ((t / self.step_s).floor().max(0.0) as usize).min(self.values.len() - 1);
            let step_end = if idx + 1 == self.values.len() {
                // Past-the-end time is weighted by the final step.
                b
            } else {
                ((idx as f64 + 1.0) * self.step_s).min(b)
            };
            let dt = (step_end - t).max(0.0);
            integral += self.values[idx] * dt;
            if step_end <= t {
                break;
            }
            t = step_end;
        }
        integral / (b - a)
    }

    /// The intensity value at the given quantile of the step
    /// distribution (`0.0` = cleanest step, `1.0` = dirtiest). Steps at
    /// or below the returned value are "green" for that quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let idx = ((q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        sorted[idx]
    }

    /// Whether the step containing `t_s` is at or below `threshold`.
    pub fn is_green(&self, t_s: f64, threshold: f64) -> bool {
        self.intensity_at(t_s) <= threshold
    }

    /// Start of the first green step at or after `t_s`, or `None` when
    /// no remaining step is at or below `threshold`.
    pub fn next_green_start(&self, t_s: f64, threshold: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let first = ((t_s / self.step_s).floor().max(0.0) as usize).min(self.values.len() - 1);
        (first..self.values.len())
            .find(|&k| self.values[k] <= threshold)
            .map(|k| (k as f64 * self.step_s).max(t_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> CarbonSignal {
        CarbonSignal::synthetic(9, 600.0, 30.0, 1.0, 0.6, 200.0)
    }

    #[test]
    fn synthetic_is_deterministic_and_positive() {
        let a = sig();
        let b = sig();
        assert_eq!(a, b);
        assert!(a.try_validate().is_ok());
        assert_eq!(a.len(), 20);
        assert!((a.horizon_s() - 600.0).abs() < 1e-9);
        let c = CarbonSignal::synthetic(10, 600.0, 30.0, 1.0, 0.6, 200.0);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn mean_over_matches_hand_integral() {
        let s = CarbonSignal {
            step_s: 10.0,
            values: vec![1.0, 3.0, 5.0],
        };
        assert!((s.mean_over(0.0, 10.0) - 1.0).abs() < 1e-12);
        assert!((s.mean_over(5.0, 15.0) - 2.0).abs() < 1e-12);
        assert!((s.mean_over(0.0, 30.0) - 3.0).abs() < 1e-12);
        // Past the end: weighted by the final step.
        assert!((s.mean_over(25.0, 45.0) - 5.0).abs() < 1e-12);
        // Degenerate window: point intensity.
        assert!((s.mean_over(12.0, 12.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_and_green_windows() {
        let s = CarbonSignal {
            step_s: 10.0,
            values: vec![4.0, 1.0, 2.0, 3.0],
        };
        assert!((s.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((s.quantile(1.0) - 4.0).abs() < 1e-12);
        let th = s.quantile(1.0 / 3.0);
        assert!((th - 2.0).abs() < 1e-12);
        assert!(!s.is_green(5.0, th));
        assert!(s.is_green(15.0, th));
        assert_eq!(s.next_green_start(0.0, th), Some(10.0));
        // Inside a green step the "next" green start is now.
        assert_eq!(s.next_green_start(12.0, th), Some(12.0));
        assert_eq!(s.next_green_start(35.0, 0.5), None);
    }

    #[test]
    fn flat_signal_is_always_its_value() {
        let s = CarbonSignal::flat(1.0, 300.0, 60.0);
        assert!(s.try_validate().is_ok());
        assert!((s.intensity_at(0.0) - 1.0).abs() < 1e-12);
        assert!((s.mean_over(7.0, 290.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_names_the_offending_field() {
        let s = CarbonSignal {
            step_s: 0.0,
            values: vec![1.0],
        };
        assert!(s.try_validate().unwrap_err().contains("step_s"));
        let s = CarbonSignal {
            step_s: 1.0,
            values: vec![],
        };
        assert!(s.try_validate().unwrap_err().contains("values"));
        let s = CarbonSignal {
            step_s: 1.0,
            values: vec![1.0, -2.0],
        };
        assert!(s.try_validate().unwrap_err().contains("finite and > 0"));
    }
}
