//! Tenants and the merged fleet-wide arrival stream.

use crate::arrival::ArrivalProcess;
use crate::slo::SloClass;
use greengpu_sim::{Fnv64, Pcg32, SplitMix64};
use std::collections::BTreeMap;

// Child-stream selectors for per-arrival decoration.
const STREAM_MIX: u64 = 0x7E_0021;
const STREAM_SIZE: u64 = 0x7E_0022;
const STREAM_SLACK: u64 = 0x7E_0023;

/// One tenant: a named traffic source with its own arrival process,
/// workload mix, size distribution, and SLO class.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Stable tenant name (telemetry key and seed-derivation input).
    pub name: String,
    /// Traffic shape.
    pub arrival: ArrivalProcess,
    /// Workload mix as `(Table II registry name, weight)`; weights need
    /// not sum to 1.
    pub mix: Vec<(String, f64)>,
    /// Uniform size-multiplier range.
    pub size_range: (f64, f64),
    /// Service objective.
    pub slo: SloClass,
}

impl TenantConfig {
    /// Non-panicking configuration check naming the offending field.
    /// Mix names are validated against the Table II workload registry.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("name must not be empty".to_string());
        }
        self.arrival.try_validate()?;
        if self.mix.is_empty() {
            return Err("mix must not be empty".to_string());
        }
        for (name, weight) in &self.mix {
            if !greengpu_workloads::registry::TABLE2_NAMES.contains(&name.as_str()) {
                return Err(format!("mix names a workload not in the Table II registry: {name:?}"));
            }
            if !(weight.is_finite() && *weight > 0.0) {
                return Err(format!("mix weight for {name:?} must be finite and > 0, got {weight}"));
            }
        }
        let (lo, hi) = self.size_range;
        if !(lo.is_finite() && hi.is_finite() && lo > 0.0 && hi >= lo) {
            return Err(format!("size_range must satisfy 0 < lo <= hi, got ({lo}, {hi})"));
        }
        self.slo.try_validate()
    }
}

/// One arrival produced by a tenant, before the fleet turns it into a
/// job: everything here is fleet-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantArrival {
    /// Index into the tenant list the stream was generated from.
    pub tenant: usize,
    /// Arrival instant, seconds.
    pub at_s: f64,
    /// Table II registry name.
    pub workload: String,
    /// Service-time multiplier.
    pub size: f64,
    /// Deadline slack multiplier (latency-bound tenants only): the
    /// deadline is `at_s + reference_time · size · slack`.
    pub deadline_slack: Option<f64>,
}

/// The seed of one tenant's private stream family: derived from the
/// root seed and the tenant *name* (FNV-1a), so a tenant's schedule is
/// invariant under reordering, adding, or removing *other* tenants —
/// and trivially invariant under fleet size, which never enters.
pub fn tenant_stream_seed(root_seed: u64, name: &str) -> u64 {
    let mut h = Fnv64::new();
    for b in name.as_bytes() {
        h.push_byte(*b);
    }
    SplitMix64::new(root_seed ^ h.finish()).next_u64()
}

/// Generates every tenant's decorated arrivals inside `[0, horizon_s)`
/// and merges them into one stream ordered by `(time, tenant)`.
///
/// Each tenant draws from its own seed family
/// ([`tenant_stream_seed`]), so per-tenant sub-streams are independent
/// of each other; the merge is a deterministic sort. Invalid tenants
/// contribute nothing (fleet-level validation rejects them earlier).
pub fn generate_tenant_arrivals(seed: u64, tenants: &[TenantConfig], horizon_s: f64) -> Vec<TenantArrival> {
    let mut merged: Vec<TenantArrival> = Vec::new();
    for (idx, tenant) in tenants.iter().enumerate() {
        if tenant.try_validate().is_err() {
            continue;
        }
        let child = tenant_stream_seed(seed, &tenant.name);
        let instants = tenant.arrival.generate(child, horizon_s);
        let root = SplitMix64::new(child).next_u64();
        let mut r_mix = Pcg32::new(root, STREAM_MIX);
        let mut r_size = Pcg32::new(root, STREAM_SIZE);
        let mut r_slack = Pcg32::new(root, STREAM_SLACK);
        let total_weight: f64 = tenant.mix.iter().map(|(_, w)| w).sum();
        for at_s in instants {
            let mut pick = r_mix.next_f64() * total_weight;
            let mut name = tenant.mix[0].0.as_str();
            for (n, w) in &tenant.mix {
                name = n.as_str();
                pick -= w;
                if pick <= 0.0 {
                    break;
                }
            }
            let size = r_size.uniform(tenant.size_range.0, tenant.size_range.1);
            let deadline_slack = match &tenant.slo {
                SloClass::LatencyBound {
                    deadline_slack: (lo, hi),
                } => Some(r_slack.uniform(*lo, *hi)),
                _ => None,
            };
            merged.push(TenantArrival {
                tenant: idx,
                at_s,
                workload: name.to_string(),
                size,
                deadline_slack,
            });
        }
    }
    merged.sort_by(|a, b| a.at_s.total_cmp(&b.at_s).then(a.tenant.cmp(&b.tenant)));
    merged
}

/// The union of all tenants' mix names, sorted — the workload set a
/// fleet must profile to serve this tenant population.
pub fn mix_union(tenants: &[TenantConfig]) -> Vec<String> {
    let mut names: BTreeMap<&str, ()> = BTreeMap::new();
    for t in tenants {
        for (n, _) in &t.mix {
            names.insert(n.as_str(), ());
        }
    }
    names.keys().map(|n| (*n).to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn three_tenants() -> Vec<TenantConfig> {
        vec![
            TenantConfig {
                name: "interactive".to_string(),
                arrival: ArrivalProcess::Diurnal {
                    base_rate_per_s: 0.4,
                    amplitude: 0.7,
                    period_s: 120.0,
                    phase_s: 0.0,
                },
                mix: vec![("hotspot".to_string(), 1.0)],
                size_range: (0.5, 1.5),
                slo: SloClass::LatencyBound {
                    deadline_slack: (2.0, 6.0),
                },
            },
            TenantConfig {
                name: "analytics".to_string(),
                arrival: ArrivalProcess::Bursty {
                    rate_on_per_s: 1.5,
                    rate_off_per_s: 0.05,
                    mean_on_s: 15.0,
                    mean_off_s: 45.0,
                    on_pareto_alpha: None,
                },
                mix: vec![("kmeans".to_string(), 1.0)],
                size_range: (0.5, 2.0),
                slo: SloClass::ThroughputBound {
                    target_completion_rate: 0.8,
                },
            },
            TenantConfig {
                name: "batch".to_string(),
                arrival: ArrivalProcess::Batch {
                    rate_per_s: 0.6,
                    start_s: 30.0,
                    end_s: 300.0,
                },
                mix: vec![("hotspot".to_string(), 1.0), ("kmeans".to_string(), 1.0)],
                size_range: (1.0, 2.0),
                slo: SloClass::BestEffort {
                    deferral_horizon_s: 90.0,
                },
            },
        ]
    }

    #[test]
    fn merged_stream_is_deterministic_and_ordered() {
        let tenants = three_tenants();
        let a = generate_tenant_arrivals(17, &tenants, 400.0);
        let b = generate_tenant_arrivals(17, &tenants, 400.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
        let c = generate_tenant_arrivals(18, &tenants, 400.0);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn per_tenant_streams_are_independent_of_other_tenants() {
        let tenants = three_tenants();
        let full = generate_tenant_arrivals(17, &tenants, 400.0);
        // Drop tenant 1: tenants 0 and 2 must keep their exact streams
        // (only the tenant indices shift).
        let reduced_cfg = vec![tenants[0].clone(), tenants[2].clone()];
        let reduced = generate_tenant_arrivals(17, &reduced_cfg, 400.0);
        let strip = |xs: &[TenantArrival], keep: usize| -> Vec<(f64, String, f64, Option<f64>)> {
            xs.iter()
                .filter(|a| a.tenant == keep)
                .map(|a| (a.at_s, a.workload.clone(), a.size, a.deadline_slack))
                .collect()
        };
        assert_eq!(strip(&full, 0), strip(&reduced, 0), "tenant 0 shifted");
        assert_eq!(strip(&full, 2), strip(&reduced, 1), "tenant 2 shifted");
    }

    #[test]
    fn slo_decoration_follows_the_class() {
        let tenants = three_tenants();
        let stream = generate_tenant_arrivals(5, &tenants, 400.0);
        for a in &stream {
            match a.tenant {
                0 => {
                    let slack = a.deadline_slack.expect("latency-bound jobs carry slack");
                    assert!((2.0..=6.0).contains(&slack));
                }
                _ => assert!(a.deadline_slack.is_none()),
            }
        }
    }

    #[test]
    fn mix_union_covers_every_tenant() {
        assert_eq!(
            mix_union(&three_tenants()),
            vec!["hotspot".to_string(), "kmeans".to_string()]
        );
    }

    #[test]
    fn validation_names_the_offending_field() {
        let mut t = three_tenants().remove(0);
        t.mix = vec![("warpdrive".to_string(), 1.0)];
        assert!(t.try_validate().unwrap_err().contains("warpdrive"));
        let mut t = three_tenants().remove(0);
        t.size_range = (0.0, 1.0);
        assert!(t.try_validate().unwrap_err().contains("size_range"));
        let mut t = three_tenants().remove(0);
        t.name = String::new();
        assert!(t.try_validate().unwrap_err().contains("name"));
    }
}
