//! Service-level-objective classes and their mapping onto the
//! deadline-aware frequency selector.

use greengpu_policy::{DeadlineParams, LossParams};

/// What a tenant is promised. The class decides both how jobs are
/// decorated at generation time (deadlines) and how the dispatcher may
/// treat them (immediate vs deferrable).
#[derive(Debug, Clone, PartialEq)]
pub enum SloClass {
    /// Every job carries a deadline drawn as a uniform slack multiplier
    /// over its reference (peak-clock) service time. These jobs dispatch
    /// immediately and drive the deadline-miss-rate metric.
    LatencyBound {
        /// Uniform slack-multiplier range (`lo <= hi`, both > 1 for
        /// meetable deadlines).
        deadline_slack: (f64, f64),
    },
    /// No per-job deadlines; the tenant is judged on its completion
    /// rate (completed / admitted) against this target.
    ThroughputBound {
        /// Target completion rate in `(0, 1]`.
        target_completion_rate: f64,
    },
    /// Deferrable work: the dispatcher may hold a job back waiting for a
    /// green/cheap window, but never longer than this horizon.
    BestEffort {
        /// Maximum deferral per job, seconds.
        deferral_horizon_s: f64,
    },
}

impl SloClass {
    /// Stable label for telemetry tables.
    pub fn name(&self) -> &'static str {
        match self {
            SloClass::LatencyBound { .. } => "latency",
            SloClass::ThroughputBound { .. } => "throughput",
            SloClass::BestEffort { .. } => "best-effort",
        }
    }

    /// Non-panicking parameter check naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        match self {
            SloClass::LatencyBound {
                deadline_slack: (lo, hi),
            } => {
                if !(lo.is_finite() && hi.is_finite() && *lo > 0.0 && hi >= lo) {
                    return Err(format!(
                        "slo.deadline_slack must satisfy 0 < lo <= hi, got ({lo}, {hi})"
                    ));
                }
            }
            SloClass::ThroughputBound { target_completion_rate } => {
                if !(target_completion_rate.is_finite()
                    && *target_completion_rate > 0.0
                    && *target_completion_rate <= 1.0)
                {
                    return Err(format!(
                        "slo.target_completion_rate must be in (0, 1], got {target_completion_rate}"
                    ));
                }
            }
            SloClass::BestEffort { deferral_horizon_s } => {
                if !(deferral_horizon_s.is_finite() && *deferral_horizon_s > 0.0) {
                    return Err(format!(
                        "slo.deferral_horizon_s must be finite and > 0, got {deferral_horizon_s}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Whether the dispatcher may defer this class's jobs.
    pub fn deferrable(&self) -> bool {
        matches!(self, SloClass::BestEffort { .. })
    }

    /// Maximum deferral for this class, seconds (0 for non-deferrable
    /// classes).
    pub fn deferral_horizon_s(&self) -> f64 {
        match self {
            SloClass::BestEffort { deferral_horizon_s } => *deferral_horizon_s,
            _ => 0.0,
        }
    }

    /// The seam onto `crates/policy::deadline`: a latency-bound class
    /// turns its mean slack into a per-node DVFS time budget over the
    /// reference (peak-clock) service time — the node's frequency
    /// selector then picks the cheapest pair that still meets the
    /// slack-derived budget ("slack-derived caps"). Non-latency classes
    /// have no time budget and return `None`.
    pub fn deadline_params(&self, peak_time_s: f64) -> Option<DeadlineParams> {
        match self {
            SloClass::LatencyBound {
                deadline_slack: (lo, hi),
            } => {
                let mean_slack = 0.5 * (lo + hi);
                Some(DeadlineParams {
                    time_budget_s: (peak_time_s * mean_slack).max(1e-9),
                    // The queueing delay eats part of the slack; run the
                    // selector against 90 % of the budget.
                    slack: 0.9,
                    loss: LossParams::default(),
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(
            SloClass::LatencyBound {
                deadline_slack: (2.0, 4.0)
            }
            .name(),
            "latency"
        );
        assert_eq!(
            SloClass::ThroughputBound {
                target_completion_rate: 0.9
            }
            .name(),
            "throughput"
        );
        assert_eq!(
            SloClass::BestEffort {
                deferral_horizon_s: 60.0
            }
            .name(),
            "best-effort"
        );
    }

    #[test]
    fn validation_names_the_offending_field() {
        let bad = SloClass::LatencyBound {
            deadline_slack: (4.0, 2.0),
        };
        assert!(bad.try_validate().unwrap_err().contains("deadline_slack"));
        let bad = SloClass::ThroughputBound {
            target_completion_rate: 1.5,
        };
        assert!(bad.try_validate().unwrap_err().contains("target_completion_rate"));
        let bad = SloClass::BestEffort {
            deferral_horizon_s: 0.0,
        };
        assert!(bad.try_validate().unwrap_err().contains("deferral_horizon_s"));
    }

    #[test]
    fn deadline_seam_derives_a_budget_from_the_slack() {
        let slo = SloClass::LatencyBound {
            deadline_slack: (2.0, 6.0),
        };
        let p = slo.deadline_params(3.0).expect("latency class maps");
        assert!((p.time_budget_s - 12.0).abs() < 1e-12, "3 s * mean slack 4");
        assert!(p.try_validate().is_ok());
        assert!(SloClass::BestEffort {
            deferral_horizon_s: 60.0
        }
        .deadline_params(3.0)
        .is_none());
    }

    #[test]
    fn deferral_horizon_only_for_best_effort() {
        assert!(SloClass::BestEffort {
            deferral_horizon_s: 90.0
        }
        .deferrable());
        assert!(
            (SloClass::BestEffort {
                deferral_horizon_s: 90.0
            }
            .deferral_horizon_s()
                - 90.0)
                .abs()
                < 1e-12
        );
        let lat = SloClass::LatencyBound {
            deadline_slack: (2.0, 4.0),
        };
        assert!(!lat.deferrable());
        assert_eq!(lat.deferral_horizon_s(), 0.0);
    }
}
