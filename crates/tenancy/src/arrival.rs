//! Seeded per-tenant arrival processes.
//!
//! Each process generates the full list of arrival instants inside
//! `[0, horizon)` as a pure function of `(seed, config, horizon)`. The
//! generators draw from named [`Pcg32`] child streams of the seed, so a
//! tenant's schedule never shifts when anything *else* in the simulation
//! changes — the property the fleet-size-independence proptests pin.

use greengpu_sim::{Pcg32, SplitMix64};

// Child-stream selectors (disjoint from the cluster's 0xC1_* family).
const STREAM_GAP: u64 = 0x7E_0001;
const STREAM_ACCEPT: u64 = 0x7E_0002;
const STREAM_PHASE: u64 = 0x7E_0003;

/// One tenant's traffic shape.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Sinusoid-modulated Poisson process: rate
    /// `base · (1 + amplitude · sin(2π (t + phase) / period))`, sampled
    /// by thinning against the peak rate. Models interactive day/night
    /// cycles.
    Diurnal {
        /// Mean rate, jobs per second (the sinusoid's midline).
        base_rate_per_s: f64,
        /// Relative swing in `[0, 1]`; 0 degenerates to plain Poisson.
        amplitude: f64,
        /// Cycle length, seconds.
        period_s: f64,
        /// Phase offset, seconds.
        phase_s: f64,
    },
    /// On/off Markov-modulated Poisson process: exponentially distributed
    /// bursts (mean `mean_on_s`, rate `rate_on_per_s`) alternating with
    /// quiet phases (mean `mean_off_s`, rate `rate_off_per_s`). With
    /// `mean_on_s ≪ mean_off_s` and a hot on-rate this produces the
    /// bursty, self-similar-looking traffic of analytics tenants.
    Bursty {
        /// Arrival rate inside a burst, jobs per second.
        rate_on_per_s: f64,
        /// Arrival rate between bursts, jobs per second (0 = silent).
        rate_off_per_s: f64,
        /// Mean burst duration, seconds.
        mean_on_s: f64,
        /// Mean quiet duration, seconds.
        mean_off_s: f64,
        /// Optional heavy tail for the *on*-period durations: `Some(α)`
        /// replaces the exponential burst length with a Pareto draw of
        /// shape `α > 1` whose scale is chosen to keep the mean at
        /// `mean_on_s` (`x_m = mean_on_s · (α−1)/α`), so the stationary
        /// rate — and hence load sizing — is unchanged. `α ≤ 2` gives
        /// infinite burst-length variance, the classic source of
        /// self-similar traffic; `None` keeps the exponential (memoryless)
        /// sessions.
        on_pareto_alpha: Option<f64>,
    },
    /// Batch backfill: constant-rate Poisson inside `[start_s, end_s)`,
    /// silence outside — the nightly training/report window.
    Batch {
        /// Arrival rate inside the window, jobs per second.
        rate_per_s: f64,
        /// Window start, seconds.
        start_s: f64,
        /// Window end, seconds (clamped to the horizon).
        end_s: f64,
    },
}

impl ArrivalProcess {
    /// Stable label for telemetry tables.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Diurnal { .. } => "diurnal",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Batch { .. } => "batch",
        }
    }

    /// Non-panicking parameter check naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        match self {
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                amplitude,
                period_s,
                phase_s,
            } => {
                if !(base_rate_per_s.is_finite() && *base_rate_per_s > 0.0) {
                    return Err(format!(
                        "arrival.base_rate_per_s must be finite and > 0, got {base_rate_per_s}"
                    ));
                }
                if !(amplitude.is_finite() && (0.0..=1.0).contains(amplitude)) {
                    return Err(format!("arrival.amplitude must be in [0, 1], got {amplitude}"));
                }
                if !(period_s.is_finite() && *period_s > 0.0) {
                    return Err(format!("arrival.period_s must be finite and > 0, got {period_s}"));
                }
                if !phase_s.is_finite() {
                    return Err(format!("arrival.phase_s must be finite, got {phase_s}"));
                }
            }
            ArrivalProcess::Bursty {
                rate_on_per_s,
                rate_off_per_s,
                mean_on_s,
                mean_off_s,
                on_pareto_alpha,
            } => {
                if !(rate_on_per_s.is_finite() && *rate_on_per_s > 0.0) {
                    return Err(format!(
                        "arrival.rate_on_per_s must be finite and > 0, got {rate_on_per_s}"
                    ));
                }
                if !(rate_off_per_s.is_finite() && *rate_off_per_s >= 0.0) {
                    return Err(format!(
                        "arrival.rate_off_per_s must be finite and >= 0, got {rate_off_per_s}"
                    ));
                }
                if !(mean_on_s.is_finite() && *mean_on_s > 0.0) {
                    return Err(format!("arrival.mean_on_s must be finite and > 0, got {mean_on_s}"));
                }
                if !(mean_off_s.is_finite() && *mean_off_s > 0.0) {
                    return Err(format!("arrival.mean_off_s must be finite and > 0, got {mean_off_s}"));
                }
                if let Some(alpha) = on_pareto_alpha {
                    // α = 1 has no finite mean, so the mean-preserving
                    // scale x_m = mean·(α−1)/α would collapse to zero.
                    if !(alpha.is_finite() && *alpha > 1.0) {
                        return Err(format!("arrival.on_pareto_alpha must be finite and > 1, got {alpha}"));
                    }
                }
            }
            ArrivalProcess::Batch {
                rate_per_s,
                start_s,
                end_s,
            } => {
                if !(rate_per_s.is_finite() && *rate_per_s > 0.0) {
                    return Err(format!("arrival.rate_per_s must be finite and > 0, got {rate_per_s}"));
                }
                if !(start_s.is_finite() && *start_s >= 0.0) {
                    return Err(format!("arrival.start_s must be finite and >= 0, got {start_s}"));
                }
                if !(end_s.is_finite() && *end_s > *start_s) {
                    return Err(format!("arrival.end_s must be finite and > start_s, got {end_s}"));
                }
            }
        }
        Ok(())
    }

    /// Long-run mean arrival rate over `[0, horizon_s)`, jobs per
    /// second — the load-sizing anchor (exact for diurnal/batch, the
    /// stationary phase-weighted mean for bursty).
    pub fn mean_rate_per_s(&self, horizon_s: f64) -> f64 {
        match self {
            ArrivalProcess::Diurnal { base_rate_per_s, .. } => *base_rate_per_s,
            ArrivalProcess::Bursty {
                rate_on_per_s,
                rate_off_per_s,
                mean_on_s,
                mean_off_s,
                ..
            } => {
                // The Pareto tail (if any) is mean-preserving by
                // construction, so the stationary mean is tail-agnostic.
                let cycle = mean_on_s + mean_off_s;
                if cycle <= 0.0 {
                    return 0.0;
                }
                (rate_on_per_s * mean_on_s + rate_off_per_s * mean_off_s) / cycle
            }
            ArrivalProcess::Batch {
                rate_per_s,
                start_s,
                end_s,
            } => {
                if horizon_s <= 0.0 {
                    return 0.0;
                }
                let window = (end_s.min(horizon_s) - start_s).max(0.0);
                rate_per_s * window / horizon_s
            }
        }
    }

    /// Generates the sorted arrival instants inside `[0, horizon_s)`.
    /// Invalid configurations yield an empty schedule (the fleet-level
    /// `try_validate` rejects them before a run gets this far).
    pub fn generate(&self, seed: u64, horizon_s: f64) -> Vec<f64> {
        if self.try_validate().is_err() || !(horizon_s.is_finite() && horizon_s > 0.0) {
            return Vec::new();
        }
        let root = SplitMix64::new(seed).next_u64();
        let mut r_gap = Pcg32::new(root, STREAM_GAP);
        match self {
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                amplitude,
                period_s,
                phase_s,
            } => {
                // Thinning: candidate Poisson at the peak rate, accept
                // with probability rate(t) / rate_max.
                let mut r_acc = Pcg32::new(root, STREAM_ACCEPT);
                let rate_max = base_rate_per_s * (1.0 + amplitude);
                let mut out = Vec::new();
                let mut t = 0.0f64;
                loop {
                    t += exp_draw(&mut r_gap, rate_max);
                    if t >= horizon_s {
                        break;
                    }
                    let theta = std::f64::consts::TAU * (t + phase_s) / period_s;
                    let rate = base_rate_per_s * (1.0 + amplitude * theta.sin());
                    if r_acc.next_f64() * rate_max <= rate {
                        out.push(t);
                    }
                }
                out
            }
            ArrivalProcess::Bursty {
                rate_on_per_s,
                rate_off_per_s,
                mean_on_s,
                mean_off_s,
                on_pareto_alpha,
            } => {
                // Alternating phases, each a homogeneous Poisson segment.
                // The phase stream is separate from the gap stream so the
                // burst boundaries do not depend on how many jobs the
                // previous phase emitted. Off-periods are always
                // exponential; on-periods switch to a mean-preserving
                // Pareto when a tail shape is configured.
                let mut r_phase = Pcg32::new(root, STREAM_PHASE);
                let mut out = Vec::new();
                let mut phase_start = 0.0f64;
                let mut on = true;
                while phase_start < horizon_s {
                    let dur = match (on, on_pareto_alpha) {
                        (true, Some(alpha)) => pareto_draw(&mut r_phase, *mean_on_s, *alpha),
                        (true, None) => exp_draw(&mut r_phase, 1.0 / mean_on_s),
                        (false, _) => exp_draw(&mut r_phase, 1.0 / mean_off_s),
                    };
                    let phase_end = (phase_start + dur).min(horizon_s);
                    let rate = if on { *rate_on_per_s } else { *rate_off_per_s };
                    if rate > 0.0 {
                        let mut t = phase_start;
                        loop {
                            t += exp_draw(&mut r_gap, rate);
                            if t >= phase_end {
                                break;
                            }
                            out.push(t);
                        }
                    }
                    phase_start = phase_end;
                    on = !on;
                }
                out
            }
            ArrivalProcess::Batch {
                rate_per_s,
                start_s,
                end_s,
            } => {
                let end = end_s.min(horizon_s);
                let mut out = Vec::new();
                let mut t = *start_s;
                loop {
                    t += exp_draw(&mut r_gap, *rate_per_s);
                    if t >= end {
                        break;
                    }
                    out.push(t);
                }
                out
            }
        }
    }
}

/// One exponential interarrival draw; `1 - u` keeps the log argument
/// strictly positive.
fn exp_draw(rng: &mut Pcg32, rate: f64) -> f64 {
    -(1.0 - rng.next_f64()).ln() / rate
}

/// One Pareto draw of shape `alpha > 1` with the scale chosen so the
/// mean is exactly `mean`: `E[X] = x_m·α/(α−1)` ⇒ `x_m = mean·(α−1)/α`.
/// Inverse-CDF sampling; `1 - u` keeps the power argument strictly
/// positive. Every draw is at least `x_m`, so durations stay > 0.
fn pareto_draw(rng: &mut Pcg32, mean: f64, alpha: f64) -> f64 {
    let x_m = mean * (alpha - 1.0) / alpha;
    x_m * (1.0 - rng.next_f64()).powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<ArrivalProcess> {
        vec![
            ArrivalProcess::Diurnal {
                base_rate_per_s: 0.5,
                amplitude: 0.8,
                period_s: 120.0,
                phase_s: 0.0,
            },
            ArrivalProcess::Bursty {
                rate_on_per_s: 2.0,
                rate_off_per_s: 0.05,
                mean_on_s: 10.0,
                mean_off_s: 40.0,
                on_pareto_alpha: None,
            },
            ArrivalProcess::Bursty {
                rate_on_per_s: 2.0,
                rate_off_per_s: 0.05,
                mean_on_s: 10.0,
                mean_off_s: 40.0,
                on_pareto_alpha: Some(2.5),
            },
            ArrivalProcess::Batch {
                rate_per_s: 1.0,
                start_s: 60.0,
                end_s: 180.0,
            },
        ]
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        for p in shapes() {
            let a = p.generate(42, 600.0);
            let b = p.generate(42, 600.0);
            assert_eq!(a, b, "{} must be a pure function of the seed", p.name());
            let c = p.generate(43, 600.0);
            assert_ne!(a, c, "{} must vary with the seed", p.name());
        }
    }

    #[test]
    fn schedules_are_sorted_and_in_horizon() {
        for p in shapes() {
            let xs = p.generate(7, 600.0);
            assert!(!xs.is_empty(), "{} produced no arrivals", p.name());
            for w in xs.windows(2) {
                assert!(w[0] <= w[1]);
            }
            assert!(xs.iter().all(|&t| (0.0..600.0).contains(&t)));
        }
    }

    #[test]
    fn empirical_rates_track_the_mean() {
        for p in shapes() {
            let h = 20_000.0;
            let xs = p.generate(11, h);
            let want = p.mean_rate_per_s(h);
            let got = xs.len() as f64 / h;
            assert!(
                (got - want).abs() < 0.25 * want,
                "{}: empirical {got:.3} vs stationary {want:.3}",
                p.name()
            );
        }
    }

    #[test]
    fn batch_respects_its_window() {
        let p = ArrivalProcess::Batch {
            rate_per_s: 2.0,
            start_s: 100.0,
            end_s: 200.0,
        };
        let xs = p.generate(3, 600.0);
        assert!(xs.iter().all(|&t| (100.0..200.0).contains(&t)));
    }

    #[test]
    fn validation_names_the_offending_field() {
        let bad = ArrivalProcess::Diurnal {
            base_rate_per_s: 0.0,
            amplitude: 0.5,
            period_s: 60.0,
            phase_s: 0.0,
        };
        assert!(bad.try_validate().unwrap_err().contains("base_rate_per_s"));
        let bad = ArrivalProcess::Diurnal {
            base_rate_per_s: 1.0,
            amplitude: 1.5,
            period_s: 60.0,
            phase_s: 0.0,
        };
        assert!(bad.try_validate().unwrap_err().contains("amplitude"));
        let bad = ArrivalProcess::Bursty {
            rate_on_per_s: 1.0,
            rate_off_per_s: -0.1,
            mean_on_s: 5.0,
            mean_off_s: 5.0,
            on_pareto_alpha: None,
        };
        assert!(bad.try_validate().unwrap_err().contains("rate_off_per_s"));
        for alpha in [1.0, 0.5, f64::NAN, f64::INFINITY] {
            let bad = ArrivalProcess::Bursty {
                rate_on_per_s: 1.0,
                rate_off_per_s: 0.0,
                mean_on_s: 5.0,
                mean_off_s: 5.0,
                on_pareto_alpha: Some(alpha),
            };
            assert!(
                bad.try_validate().unwrap_err().contains("on_pareto_alpha"),
                "alpha {alpha} must be rejected"
            );
        }
        let bad = ArrivalProcess::Batch {
            rate_per_s: 1.0,
            start_s: 50.0,
            end_s: 10.0,
        };
        assert!(bad.try_validate().unwrap_err().contains("end_s"));
        assert!(bad.generate(1, 100.0).is_empty(), "invalid configs generate nothing");
    }

    #[test]
    fn pareto_tail_is_mean_preserving_and_bounded_below() {
        let mut rng = Pcg32::new(0xBEEF, STREAM_PHASE);
        let (mean, alpha) = (10.0, 2.5);
        let x_m = mean * (alpha - 1.0) / alpha;
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let d = pareto_draw(&mut rng, mean, alpha);
            assert!(d >= x_m, "Pareto draws start at the scale x_m, got {d}");
            sum += d;
        }
        let got = sum / n as f64;
        assert!((got - mean).abs() < 0.05 * mean, "empirical mean {got:.3} vs {mean}");
    }

    #[test]
    fn pareto_tail_changes_the_schedule_not_the_stationary_rate() {
        let exp = ArrivalProcess::Bursty {
            rate_on_per_s: 2.0,
            rate_off_per_s: 0.05,
            mean_on_s: 10.0,
            mean_off_s: 40.0,
            on_pareto_alpha: None,
        };
        let pareto = ArrivalProcess::Bursty {
            rate_on_per_s: 2.0,
            rate_off_per_s: 0.05,
            mean_on_s: 10.0,
            mean_off_s: 40.0,
            on_pareto_alpha: Some(1.5),
        };
        assert_ne!(
            exp.generate(42, 5_000.0),
            pareto.generate(42, 5_000.0),
            "the tail must reshape the burst boundaries"
        );
        assert_eq!(
            exp.mean_rate_per_s(5_000.0),
            pareto.mean_rate_per_s(5_000.0),
            "load sizing is tail-agnostic"
        );
    }

    #[test]
    fn zero_amplitude_diurnal_is_plain_poisson_rate() {
        let p = ArrivalProcess::Diurnal {
            base_rate_per_s: 1.0,
            amplitude: 0.0,
            period_s: 60.0,
            phase_s: 0.0,
        };
        let xs = p.generate(5, 10_000.0);
        let rate = xs.len() as f64 / 10_000.0;
        assert!((rate - 1.0).abs() < 0.1, "empirical rate {rate}");
    }
}
