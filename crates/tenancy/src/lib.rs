//! Multi-tenant serving model for the GreenGPU fleet tier.
//!
//! The cluster experiments up to PR 6 replay one anonymous open-loop
//! hotspot/kmeans stream. Real datacenters serve *tenants*: named
//! customers with their own traffic shapes, workload mixes, and service
//! objectives, dispatched against a time-varying carbon/price signal.
//! This crate models those objects, deterministically:
//!
//! * [`ArrivalProcess`] — three seeded traffic shapes: a **diurnal**
//!   sinusoid-modulated Poisson process (interactive day/night cycles),
//!   a **bursty** on/off Markov-modulated process (self-similar-looking
//!   load from alternating exponential burst and quiet phases), and a
//!   **batch** backfill window (constant-rate Poisson inside a time
//!   window, silence outside). Every schedule is a pure function of
//!   `(seed, config, horizon)` — independent of fleet size, of the other
//!   tenants, and of evaluation order (per-tenant child streams are
//!   derived from the tenant *name*, not its position).
//! * [`SloClass`] — latency-bound (per-job deadlines drawn from a slack
//!   range), throughput-bound (a completion-rate target), or best-effort
//!   (deferrable up to a horizon). The class maps onto the existing
//!   deadline-aware frequency selector via
//!   [`SloClass::deadline_params`], so a latency-bound tenant's slack
//!   becomes a per-node DVFS time budget ("slack-derived caps").
//! * [`CarbonSignal`] — a seeded piecewise-constant carbon/price
//!   intensity over the horizon, with exact window integrals
//!   ([`CarbonSignal::mean_over`]) and green-window queries the
//!   dispatcher uses to shift best-effort work into cheap windows.
//! * [`TenantConfig`] / [`generate_tenant_arrivals`] — tenants bundled
//!   with a workload mix (validated against the Table II registry) and
//!   merged into one deterministic fleet-wide arrival stream.
//!
//! The cluster tier (`greengpu-cluster`) composes these with its
//! scheduler, retry/dead-letter machinery, and circuit breakers in
//! `TenantDispatcher`; this crate stays independent of the fleet so the
//! schedules are trivially fleet-size-independent.

#![forbid(unsafe_code)]

pub mod arrival;
pub mod carbon;
pub mod slo;
pub mod tenant;

pub use arrival::ArrivalProcess;
pub use carbon::CarbonSignal;
pub use slo::SloClass;
pub use tenant::{generate_tenant_arrivals, mix_union, tenant_stream_seed, TenantArrival, TenantConfig};
