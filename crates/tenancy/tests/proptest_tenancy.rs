//! Property tests for the tenancy model: arrival schedules are pure
//! functions of `(seed, config, horizon)` — deterministic, ordered,
//! horizon-bounded, and independent of the rest of the tenant
//! population (hence trivially independent of fleet size, which never
//! enters the generator at all).

use greengpu_tenancy::{
    generate_tenant_arrivals, tenant_stream_seed, ArrivalProcess, CarbonSignal, SloClass, TenantArrival, TenantConfig,
};
use proptest::prelude::*;

/// One syntactically valid tenant from generated parameters.
fn tenant(name: &str, which: u8, a: f64, b: f64) -> TenantConfig {
    let arrival = match which % 4 {
        0 => ArrivalProcess::Diurnal {
            base_rate_per_s: 0.05 + a,
            amplitude: (b / 2.0).clamp(0.0, 0.95),
            period_s: 60.0 + 200.0 * b,
            phase_s: 30.0 * a,
        },
        1 => ArrivalProcess::Bursty {
            rate_on_per_s: 0.2 + a,
            rate_off_per_s: 0.01 + 0.05 * b,
            mean_on_s: 5.0 + 20.0 * a,
            mean_off_s: 5.0 + 40.0 * b,
            on_pareto_alpha: None,
        },
        // Heavy-tailed variant: same knobs, Pareto on-periods with a
        // shape swept through the infinite-variance band (1, 2] and a
        // bit beyond.
        3 => ArrivalProcess::Bursty {
            rate_on_per_s: 0.2 + a,
            rate_off_per_s: 0.01 + 0.05 * b,
            mean_on_s: 5.0 + 20.0 * a,
            mean_off_s: 5.0 + 40.0 * b,
            on_pareto_alpha: Some(1.1 + 1.5 * b),
        },
        _ => ArrivalProcess::Batch {
            rate_per_s: 0.05 + a,
            start_s: 50.0 * b,
            end_s: 50.0 * b + 100.0 + 100.0 * a,
        },
    };
    let slo = match which % 3 {
        0 => SloClass::LatencyBound {
            deadline_slack: (1.5 + a, 3.0 + a + b),
        },
        1 => SloClass::ThroughputBound {
            target_completion_rate: (0.3 + 0.6 * b).min(1.0),
        },
        _ => SloClass::BestEffort {
            deferral_horizon_s: 20.0 + 100.0 * b,
        },
    };
    TenantConfig {
        name: name.to_string(),
        arrival,
        mix: vec![("hotspot".to_string(), 1.0), ("kmeans".to_string(), 0.5 + a)],
        size_range: (0.5, 1.5 + b),
        slo,
    }
}

/// Strips tenant indices so streams can be compared across populations.
fn shape(xs: &[TenantArrival], keep: usize) -> Vec<(f64, String, f64, Option<f64>)> {
    xs.iter()
        .filter(|x| x.tenant == keep)
        .map(|x| (x.at_s, x.workload.clone(), x.size, x.deadline_slack))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same `(seed, config, horizon)` ⇒ the same merged stream, ordered
    /// and inside the horizon.
    #[test]
    fn arrival_streams_are_deterministic_ordered_and_bounded(
        seed in any::<u64>(),
        which in 0u8..4,
        a in 0.0f64..0.5,
        b in 0.0f64..1.0,
        horizon_s in 50.0f64..400.0,
    ) {
        let tenants = vec![tenant("alpha", which, a, b)];
        let x = generate_tenant_arrivals(seed, &tenants, horizon_s);
        let y = generate_tenant_arrivals(seed, &tenants, horizon_s);
        prop_assert_eq!(&x, &y);
        for w in x.windows(2) {
            prop_assert!(w[0].at_s <= w[1].at_s);
        }
        for arr in &x {
            prop_assert!(arr.at_s >= 0.0 && arr.at_s < horizon_s);
            prop_assert!(arr.size >= 0.5 && arr.size <= 1.5 + b);
        }
    }

    /// A tenant's schedule is a function of its *name* and the root
    /// seed alone: reordering the population or deleting other tenants
    /// leaves it untouched — which is exactly why schedules cannot
    /// depend on fleet size (the generator never sees the fleet).
    #[test]
    fn tenant_streams_ignore_the_rest_of_the_population(
        seed in any::<u64>(),
        wa in 0u8..4, wb in 0u8..4, wc in 0u8..4,
        a in 0.0f64..0.4,
        b in 0.0f64..0.9,
    ) {
        let ta = tenant("alpha", wa, a, b);
        let tb = tenant("bravo", wb, b.min(0.4), a.min(0.9) + 0.05);
        let tc = tenant("charlie", wc, (a + 0.1).min(0.4), (b + 0.2).min(0.9));
        let full = generate_tenant_arrivals(seed, &[ta.clone(), tb.clone(), tc.clone()], 200.0);
        let reduced = generate_tenant_arrivals(seed, &[ta.clone(), tc.clone()], 200.0);
        let reordered = generate_tenant_arrivals(seed, &[tc, tb, ta], 200.0);
        prop_assert_eq!(shape(&full, 0), shape(&reduced, 0), "alpha moved when bravo left");
        prop_assert_eq!(shape(&full, 2), shape(&reduced, 1), "charlie moved when bravo left");
        prop_assert_eq!(shape(&full, 0), shape(&reordered, 2), "alpha moved under reordering");
        prop_assert_eq!(shape(&full, 1), shape(&reordered, 1), "bravo moved under reordering");
        // The per-tenant seeds themselves are population-independent.
        prop_assert_eq!(tenant_stream_seed(seed, "alpha"), tenant_stream_seed(seed, "alpha"));
        prop_assert_ne!(tenant_stream_seed(seed, "alpha"), tenant_stream_seed(seed, "bravo"));
    }

    /// The carbon signal's exact window mean always sits inside the
    /// signal's range, and green-window search never points backwards.
    #[test]
    fn carbon_means_are_bounded_and_green_search_is_forward(
        seed in any::<u64>(),
        a in 0.0f64..500.0,
        len in 1.0f64..400.0,
        q in 0.0f64..1.0,
    ) {
        let sig = CarbonSignal::synthetic(seed, 600.0, 30.0, 1.0, 0.6, 200.0);
        let mean = sig.mean_over(a, a + len);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for k in 0..sig.len() {
            let v = sig.intensity_at(k as f64 * sig.step_s());
            lo = lo.min(v);
            hi = hi.max(v);
        }
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "mean {mean} outside [{lo}, {hi}]");
        let threshold = sig.quantile(q);
        if let Some(start) = sig.next_green_start(a, threshold) {
            prop_assert!(start >= a, "green start {start} before query {a}");
            prop_assert!(sig.is_green(start, threshold));
        }
    }
}
