//! Per-(workload, card) service profiles over the frequency-pair grid.
//!
//! The cluster tier schedules whole workload runs, so it needs each run's
//! wall time and utilization signature *as a function of the node's
//! frequency pair* — the same exhaustive pair enumeration the single-node
//! frequency oracle performs, evaluated through the engine's phase cost
//! model ([`greengpu_workloads::phase_gpu_timing`]). A profile is built
//! once per (workload, GPU spec) and shared by every job of that
//! workload on that node.

use greengpu_hw::GpuSpec;
use greengpu_workloads::phase_gpu_timing;
use greengpu_workloads::registry::by_name_small;

/// Service time and utilization signature of one workload on one card,
/// tabulated over every (core, mem) frequency pair.
#[derive(Debug, Clone)]
pub struct ServiceProfile {
    /// Registry name.
    pub workload: String,
    n_core: usize,
    n_mem: usize,
    time_s: Vec<f64>,
    u_core: Vec<f64>,
    u_mem: Vec<f64>,
}

impl ServiceProfile {
    /// Profiles `name` (small preset, all work on the GPU) on `spec`.
    /// Returns `None` for unknown registry names.
    pub fn build(name: &str, seed: u64, spec: &GpuSpec) -> Option<ServiceProfile> {
        let wl = by_name_small(name, seed)?;
        let n_core = spec.core_levels_mhz.len();
        let n_mem = spec.mem_levels_mhz.len();
        let mut time_s = Vec::with_capacity(n_core * n_mem);
        let mut u_core = Vec::with_capacity(n_core * n_mem);
        let mut u_mem = Vec::with_capacity(n_core * n_mem);
        for i in 0..n_core {
            for j in 0..n_mem {
                let (core_mhz, mem_mhz) = (spec.core_levels_mhz[i], spec.mem_levels_mhz[j]);
                let (mut total, mut uc, mut um) = (0.0f64, 0.0f64, 0.0f64);
                for k in 0..wl.iterations() {
                    for phase in wl.phases(k) {
                        let t = phase_gpu_timing(&phase.gpu, spec, core_mhz, mem_mhz);
                        total += t.wall_s;
                        uc += t.u_core * t.wall_s;
                        um += t.u_mem * t.wall_s;
                    }
                }
                assert!(total > 0.0, "{name} has zero service time");
                time_s.push(total);
                u_core.push(uc / total);
                u_mem.push(um / total);
            }
        }
        Some(ServiceProfile {
            workload: name.to_string(),
            n_core,
            n_mem,
            time_s,
            u_core,
            u_mem,
        })
    }

    fn idx(&self, core: usize, mem: usize) -> usize {
        core * self.n_mem + mem
    }

    /// Full-run wall time at a frequency pair (size 1.0), seconds.
    pub fn time_s(&self, core: usize, mem: usize) -> f64 {
        self.time_s[self.idx(core, mem)]
    }

    /// Time-weighted mean core utilization at a pair.
    pub fn u_core(&self, core: usize, mem: usize) -> f64 {
        self.u_core[self.idx(core, mem)]
    }

    /// Time-weighted mean memory utilization at a pair.
    pub fn u_mem(&self, core: usize, mem: usize) -> f64 {
        self.u_mem[self.idx(core, mem)]
    }

    /// Wall time at peak clocks — the reference service time deadlines
    /// are scaled from.
    pub fn peak_time_s(&self) -> f64 {
        self.time_s(self.n_core - 1, self.n_mem - 1)
    }

    /// Estimated GPU energy of a full run at a pair (activity-aware),
    /// joules.
    pub fn energy_j(&self, spec: &GpuSpec, core: usize, mem: usize, size: f64) -> f64 {
        let power_w = spec.power_at_levels_w(core, mem, self.u_core(core, mem), self.u_mem(core, mem));
        self.time_s(core, mem) * size * power_w
    }

    /// Oracle-style estimate under a power cap: the (time, energy) of the
    /// minimum-energy pair whose modeled worst-case power fits `cap_w`,
    /// falling back to the lowest pair when nothing fits.
    pub fn best_under_cap(&self, spec: &GpuSpec, cap_w: f64, size: f64) -> (f64, f64) {
        let mut best: Option<(f64, f64)> = None;
        for i in 0..self.n_core {
            for j in 0..self.n_mem {
                if spec.power_at_levels_w(i, j, 1.0, 1.0) > cap_w {
                    continue;
                }
                let cand = (self.time_s(i, j) * size, self.energy_j(spec, i, j, size));
                if best.is_none_or(|b| cand.1 < b.1) {
                    best = Some(cand);
                }
            }
        }
        best.unwrap_or((self.time_s(0, 0) * size, self.energy_j(spec, 0, 0, size)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu_hw::calib::geforce_8800_gtx;

    #[test]
    fn unknown_workload_is_none() {
        assert!(ServiceProfile::build("nope", 1, &geforce_8800_gtx()).is_none());
    }

    #[test]
    fn peak_pair_is_fastest() {
        let spec = geforce_8800_gtx();
        let p = ServiceProfile::build("hotspot", 1, &spec).unwrap();
        let peak = p.peak_time_s();
        for i in 0..6 {
            for j in 0..6 {
                assert!(p.time_s(i, j) >= peak - 1e-12, "({i},{j}) beat the peak pair");
            }
        }
        assert!(p.time_s(0, 0) > peak, "lowest pair should be strictly slower");
    }

    #[test]
    fn utilizations_are_fractions() {
        let spec = geforce_8800_gtx();
        for name in ["hotspot", "kmeans"] {
            let p = ServiceProfile::build(name, 2, &spec).unwrap();
            for i in 0..6 {
                for j in 0..6 {
                    assert!((0.0..=1.0).contains(&p.u_core(i, j)));
                    assert!((0.0..=1.0).contains(&p.u_mem(i, j)));
                }
            }
        }
    }

    #[test]
    fn cap_constrains_the_oracle_estimate() {
        let spec = geforce_8800_gtx();
        let p = ServiceProfile::build("kmeans", 3, &spec).unwrap();
        let unconstrained = p.best_under_cap(&spec, f64::INFINITY, 1.0);
        let tight = p.best_under_cap(&spec, spec.power_at_levels_w(0, 0, 1.0, 1.0), 1.0);
        assert!(tight.0 >= unconstrained.0, "a tight cap cannot be faster");
    }
}
