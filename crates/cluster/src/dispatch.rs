//! Carbon-aware multi-tenant dispatch.
//!
//! The [`TenantDispatcher`] sits between the arrival spine and the
//! admission queue. For single-stream runs it is a transparent
//! passthrough — [`TenantDispatcher::on_arrival`] is exactly
//! [`crate::Scheduler::submit`], so the existing golden traces are
//! untouched byte-for-byte. For serving runs ([`ServingConfig`]) it
//! implements the SLO-tiered policy:
//!
//! * **Latency-bound** and **throughput-bound** jobs dispatch
//!   immediately (their DVFS treatment comes from the node-side
//!   deadline-aware selector via
//!   [`greengpu_tenancy::SloClass::deadline_params`], not from delay).
//! * **Best-effort** jobs arriving in a dirty window — carbon intensity
//!   above the configured quantile of the signal — are parked in a
//!   bounded deferral queue until the next green window, but never past
//!   the tenant's deferral horizon. A full deferral queue spills jobs
//!   straight through normal admission, so deferral degrades to the
//!   carbon-blind behavior under pressure instead of dropping work.
//!
//! Conservation: a deferred job is counted admitted at deferral time
//! ([`crate::Scheduler::note_deferred_admission`]) and re-enters the
//! queue capacity-exempt on release ([`crate::Scheduler::enqueue_admitted`]),
//! so `admitted == completed + dead_letter + deferred_pending +
//! in_flight` holds at every instant — the serving extension of the
//! fleet's existing ledger.

use crate::job::JobSpec;
use crate::scheduler::Scheduler;
use crate::telemetry::{ServingTrace, ServingTraceRow};
use greengpu_sim::{SimDuration, SimTime};
use greengpu_tenancy::{ArrivalProcess, CarbonSignal, SloClass, TenantConfig};
use std::collections::VecDeque;

/// The serving-layer configuration of a fleet run: who the tenants are,
/// what the grid looks like, and whether dispatch reacts to it.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// The tenant population, in index order (stable across the run).
    pub tenants: Vec<TenantConfig>,
    /// The carbon/price intensity signal over the horizon.
    pub carbon: CarbonSignal,
    /// Whether best-effort work shifts into green windows; `false` is
    /// the carbon-blind baseline (identical tenants, no deferral).
    pub carbon_aware: bool,
    /// Quantile of the signal's step distribution at or below which a
    /// window counts as green (e.g. 0.35 = the cleanest ~35 % of steps).
    pub green_quantile: f64,
    /// Bound on the deferral queue; overflow spills to normal admission.
    pub deferral_capacity: usize,
}

impl ServingConfig {
    /// The three-tenant reference population used by the serving
    /// experiment and CI smoke: an interactive latency-bound tenant on a
    /// diurnal cycle, a throughput-bound analytics tenant with bursty
    /// on/off traffic, and a best-effort batch tenant backfilling a
    /// window. `size_scale` maps size multipliers to the fleet's job
    /// quantum (see `FleetConfig::reference_size_scale`); the carbon
    /// signal derives from `seed`.
    pub fn reference_mix(seed: u64, horizon_s: f64, size_scale: f64) -> ServingConfig {
        let tenants = vec![
            TenantConfig {
                name: "interactive".to_string(),
                arrival: ArrivalProcess::Diurnal {
                    base_rate_per_s: 0.10,
                    amplitude: 0.7,
                    period_s: 120.0,
                    phase_s: 0.0,
                },
                mix: vec![("hotspot".to_string(), 1.0)],
                size_range: (0.5 * size_scale, 1.5 * size_scale),
                slo: SloClass::LatencyBound {
                    deadline_slack: (2.0, 6.0),
                },
            },
            TenantConfig {
                name: "analytics".to_string(),
                arrival: ArrivalProcess::Bursty {
                    rate_on_per_s: 0.25,
                    rate_off_per_s: 0.02,
                    mean_on_s: 20.0,
                    mean_off_s: 40.0,
                    on_pareto_alpha: None,
                },
                mix: vec![("kmeans".to_string(), 1.0)],
                size_range: (0.5 * size_scale, 2.0 * size_scale),
                slo: SloClass::ThroughputBound {
                    target_completion_rate: 0.7,
                },
            },
            TenantConfig {
                name: "batch".to_string(),
                arrival: ArrivalProcess::Batch {
                    rate_per_s: 0.12,
                    start_s: 0.0,
                    end_s: 0.8 * horizon_s,
                },
                mix: vec![("hotspot".to_string(), 1.0), ("kmeans".to_string(), 1.0)],
                size_range: (0.8 * size_scale, 1.6 * size_scale),
                slo: SloClass::BestEffort {
                    deferral_horizon_s: 0.4 * horizon_s,
                },
            },
        ];
        ServingConfig {
            tenants,
            carbon: CarbonSignal::synthetic(seed, horizon_s, horizon_s / 20.0, 1.0, 0.6, 0.5 * horizon_s),
            carbon_aware: true,
            green_quantile: 0.35,
            deferral_capacity: 64,
        }
    }

    /// Carbon-blind variant of this config (builder style).
    pub fn blind(mut self) -> ServingConfig {
        self.carbon_aware = false;
        self
    }

    /// Non-panicking configuration check naming the offending tenant
    /// and field.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.tenants.is_empty() {
            return Err("tenants must not be empty".to_string());
        }
        for t in &self.tenants {
            t.try_validate().map_err(|msg| format!("tenant {:?}: {msg}", t.name))?;
        }
        self.carbon.try_validate()?;
        if !(self.green_quantile.is_finite() && (0.0..=1.0).contains(&self.green_quantile)) {
            return Err(format!("green_quantile must be in [0, 1], got {}", self.green_quantile));
        }
        if self.deferral_capacity == 0 {
            return Err("deferral_capacity must be at least 1".to_string());
        }
        Ok(())
    }
}

/// A best-effort job parked for a green window.
#[derive(Debug, Clone)]
struct DeferredJob {
    job: JobSpec,
    /// When the job re-enters admission: the next green-window start,
    /// clamped to its tenant's deferral horizon.
    release_at: SimTime,
}

/// Per-run serving state (absent on passthrough runs).
struct ServingState {
    /// Per-tenant: whether the SLO class allows deferral.
    deferrable: Vec<bool>,
    /// Per-tenant deferral horizon, seconds (0 for non-deferrable).
    horizon_s: Vec<f64>,
    carbon: CarbonSignal,
    carbon_aware: bool,
    green_threshold: f64,
    deferral_capacity: usize,
    deferred: VecDeque<DeferredJob>,
    jobs_deferred: u64,
    jobs_released: u64,
    rows: Vec<ServingTraceRow>,
}

/// The arrival-side dispatcher: passthrough for single-stream runs,
/// SLO-tiered carbon-aware admission for serving runs. See the module
/// docs for the policy.
pub struct TenantDispatcher {
    serving: Option<ServingState>,
}

impl TenantDispatcher {
    /// A transparent dispatcher: `on_arrival` is exactly
    /// `Scheduler::submit`, everything else is a no-op.
    pub fn passthrough() -> TenantDispatcher {
        TenantDispatcher { serving: None }
    }

    /// A dispatcher for `cfg`'s tenant population. The green threshold
    /// is fixed up front from the signal's quantile, so dispatch
    /// decisions are pure functions of `(config, arrival time)`.
    pub fn from_serving(cfg: &ServingConfig) -> TenantDispatcher {
        TenantDispatcher {
            serving: Some(ServingState {
                deferrable: cfg.tenants.iter().map(|t| t.slo.deferrable()).collect(),
                horizon_s: cfg.tenants.iter().map(|t| t.slo.deferral_horizon_s()).collect(),
                carbon: cfg.carbon.clone(),
                carbon_aware: cfg.carbon_aware,
                green_threshold: cfg.carbon.quantile(cfg.green_quantile),
                deferral_capacity: cfg.deferral_capacity,
                deferred: VecDeque::new(),
                jobs_deferred: 0,
                jobs_released: 0,
                rows: Vec::new(),
            }),
        }
    }

    /// Routes one arrival: submit immediately, or park a best-effort job
    /// for the next green window (bounded queue; overflow spills to
    /// normal admission).
    pub fn on_arrival(&mut self, job: JobSpec, scheduler: &mut Scheduler, now: SimTime) {
        let Some(s) = self.serving.as_mut() else {
            scheduler.submit(job);
            return;
        };
        let deferrable = s.carbon_aware && s.deferrable.get(job.tenant).copied().unwrap_or(false);
        let now_s = now.saturating_since(SimTime::ZERO).as_secs_f64();
        if !deferrable || s.carbon.is_green(now_s, s.green_threshold) || s.deferred.len() >= s.deferral_capacity {
            scheduler.submit(job);
            return;
        }
        let horizon = s.horizon_s.get(job.tenant).copied().unwrap_or(0.0);
        let green_s = s
            .carbon
            .next_green_start(now_s, s.green_threshold)
            .unwrap_or(now_s + horizon);
        // Never hold a job past its tenant's horizon — the no-starvation
        // guarantee — and never release in the past.
        let release_s = green_s.min(now_s + horizon).max(now_s);
        scheduler.note_deferred_admission(job.tenant);
        s.deferred.push_back(DeferredJob {
            job,
            release_at: SimTime::ZERO + SimDuration::from_secs_f64(release_s),
        });
        s.jobs_deferred += 1;
    }

    /// Moves every deferred job whose release instant has arrived into
    /// the admission queue (capacity-exempt), preserving deferral order.
    /// Returns how many were released.
    pub fn release_due(&mut self, scheduler: &mut Scheduler, now: SimTime) -> usize {
        let Some(s) = self.serving.as_mut() else {
            return 0;
        };
        if s.deferred.is_empty() {
            return 0;
        }
        // Horizons differ per tenant, so release instants need not be
        // monotone in deferral order: scan the whole (bounded) queue.
        let mut released = 0usize;
        let mut keep = VecDeque::with_capacity(s.deferred.len());
        for d in s.deferred.drain(..) {
            if d.release_at <= now {
                scheduler.enqueue_admitted(d.job);
                s.jobs_released += 1;
                released += 1;
            } else {
                keep.push_back(d);
            }
        }
        s.deferred = keep;
        released
    }

    /// Appends one serving-telemetry row (no-op on passthrough runs).
    pub fn note_interval(&mut self, t: SimTime, interval: u64) {
        let Some(s) = self.serving.as_mut() else {
            return;
        };
        let now_s = t.saturating_since(SimTime::ZERO).as_secs_f64();
        s.rows.push(ServingTraceRow {
            interval,
            time_s: now_s,
            carbon_intensity: s.carbon.intensity_at(now_s),
            green: s.carbon.is_green(now_s, s.green_threshold),
            deferred_pending: s.deferred.len(),
            jobs_deferred: s.jobs_deferred,
            jobs_released: s.jobs_released,
        });
    }

    /// Jobs currently parked in the deferral queue.
    pub fn pending_len(&self) -> usize {
        self.serving.as_ref().map_or(0, |s| s.deferred.len())
    }

    /// Jobs deferred so far.
    pub fn jobs_deferred(&self) -> u64 {
        self.serving.as_ref().map_or(0, |s| s.jobs_deferred)
    }

    /// Deferred jobs released so far.
    pub fn jobs_released(&self) -> u64 {
        self.serving.as_ref().map_or(0, |s| s.jobs_released)
    }

    /// The intensity threshold below which a window counts green (0 on
    /// passthrough runs).
    pub fn green_threshold(&self) -> f64 {
        self.serving.as_ref().map_or(0.0, |s| s.green_threshold)
    }

    /// Takes the accumulated serving trace (empty on passthrough runs).
    pub fn take_trace(&mut self) -> ServingTrace {
        ServingTrace {
            rows: self
                .serving
                .as_mut()
                .map_or_else(Vec::new, |s| std::mem::take(&mut s.rows)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    fn at(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    fn job(id: u64, tenant: usize, arrival_s: f64) -> JobSpec {
        JobSpec {
            id,
            workload: "hotspot".to_string(),
            arrival: at(arrival_s),
            size: 1.0,
            deadline: None,
            tenant,
        }
    }

    /// Steps: [dirty 4.0, green 1.0, dirty 4.0, green 1.0], 10 s each.
    fn cfg() -> ServingConfig {
        let mut c = ServingConfig::reference_mix(1, 40.0, 1.0);
        c.carbon = CarbonSignal::from_steps(10.0, vec![4.0, 1.0, 4.0, 1.0]);
        // Quantile 0.34 of {1,1,4,4} lands on 1.0: the two clean steps
        // are green, the two dirty ones are not.
        c.green_quantile = 0.34;
        c
    }

    #[test]
    fn passthrough_is_plain_submit() {
        let mut d = TenantDispatcher::passthrough();
        let mut s = Scheduler::new(Policy::RoundRobin, 4);
        d.on_arrival(job(0, 2, 0.0), &mut s, at(0.0));
        assert_eq!(s.depth(), 1);
        assert_eq!(s.admitted(), 1);
        assert_eq!(d.pending_len(), 0);
        assert_eq!(d.release_due(&mut s, at(100.0)), 0);
        assert!(d.take_trace().rows.is_empty());
    }

    #[test]
    fn best_effort_defers_in_dirty_windows_and_releases_in_green() {
        let c = cfg();
        let mut d = TenantDispatcher::from_serving(&c);
        let mut s = Scheduler::new(Policy::RoundRobin, 64);
        // Tenant 2 is best-effort; t = 5 s sits in the dirty first step.
        d.on_arrival(job(0, 2, 5.0), &mut s, at(5.0));
        assert_eq!(s.depth(), 0, "deferred, not queued");
        assert_eq!(s.admitted(), 1, "counted admitted at deferral time");
        assert_eq!(d.pending_len(), 1);
        // Latency-bound tenant 0 dispatches immediately even when dirty.
        d.on_arrival(job(1, 0, 5.0), &mut s, at(5.0));
        assert_eq!(s.depth(), 1);
        // Nothing due before the green step at 10 s.
        assert_eq!(d.release_due(&mut s, at(9.0)), 0);
        assert_eq!(d.release_due(&mut s, at(10.0)), 1);
        assert_eq!(s.depth(), 2);
        assert_eq!(d.jobs_released(), 1);
        assert_eq!(d.pending_len(), 0);
    }

    #[test]
    fn green_arrivals_and_blind_runs_pass_straight_through() {
        let c = cfg();
        let mut d = TenantDispatcher::from_serving(&c);
        let mut s = Scheduler::new(Policy::RoundRobin, 64);
        // t = 15 s is green: best-effort submits immediately.
        d.on_arrival(job(0, 2, 15.0), &mut s, at(15.0));
        assert_eq!(s.depth(), 1);
        assert_eq!(d.jobs_deferred(), 0);
        // Carbon-blind: dirty-window best-effort also submits.
        let mut d = TenantDispatcher::from_serving(&c.blind());
        d.on_arrival(job(1, 2, 5.0), &mut s, at(5.0));
        assert_eq!(s.depth(), 2);
        assert_eq!(d.jobs_deferred(), 0);
    }

    #[test]
    fn full_deferral_queue_spills_to_admission() {
        let mut c = cfg();
        c.deferral_capacity = 1;
        let mut d = TenantDispatcher::from_serving(&c);
        let mut s = Scheduler::new(Policy::RoundRobin, 64);
        d.on_arrival(job(0, 2, 5.0), &mut s, at(5.0));
        d.on_arrival(job(1, 2, 6.0), &mut s, at(6.0));
        assert_eq!(d.pending_len(), 1, "second job spilled");
        assert_eq!(s.depth(), 1);
        assert_eq!(s.admitted(), 2);
    }

    #[test]
    fn deferral_never_exceeds_the_horizon() {
        // One early green step the job cannot reach (it already passed);
        // everything after its arrival is dirty, so only the horizon
        // clamp can ever release it.
        let mut c = cfg();
        c.carbon = CarbonSignal::from_steps(10.0, vec![1.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0]);
        c.green_quantile = 0.0;
        c.tenants[2].slo = SloClass::BestEffort {
            deferral_horizon_s: 12.0,
        };
        let mut d = TenantDispatcher::from_serving(&c);
        let mut s = Scheduler::new(Policy::RoundRobin, 64);
        // Arrives at 15 s (dirty); no green window remains, so the
        // release clamps to 15 + 12 = 27 s.
        d.on_arrival(job(0, 2, 15.0), &mut s, at(15.0));
        assert_eq!(d.pending_len(), 1);
        assert_eq!(d.release_due(&mut s, at(26.9)), 0);
        assert_eq!(d.release_due(&mut s, at(27.0)), 1);
    }

    #[test]
    fn serving_config_validation_names_tenant_and_field() {
        let mut c = cfg();
        c.tenants[1].mix.clear();
        let err = c.try_validate().unwrap_err();
        assert!(err.contains("analytics") && err.contains("mix"), "{err}");
        let mut c = cfg();
        c.green_quantile = 1.5;
        assert!(c.try_validate().unwrap_err().contains("green_quantile"));
        let mut c = cfg();
        c.deferral_capacity = 0;
        assert!(c.try_validate().unwrap_err().contains("deferral_capacity"));
        let mut c = cfg();
        c.tenants.clear();
        assert!(c.try_validate().unwrap_err().contains("tenants"));
        assert!(cfg().try_validate().is_ok());
    }

    #[test]
    fn note_interval_snapshots_the_serving_state() {
        let c = cfg();
        let mut d = TenantDispatcher::from_serving(&c);
        let mut s = Scheduler::new(Policy::RoundRobin, 64);
        d.on_arrival(job(0, 2, 5.0), &mut s, at(5.0));
        d.note_interval(at(5.0), 1);
        d.release_due(&mut s, at(10.0));
        d.note_interval(at(10.0), 2);
        let trace = d.take_trace();
        assert_eq!(trace.rows.len(), 2);
        assert!(!trace.rows[0].green && trace.rows[0].deferred_pending == 1);
        assert!(trace.rows[1].green && trace.rows[1].deferred_pending == 0);
        assert_eq!(trace.rows[1].jobs_released, 1);
    }
}
