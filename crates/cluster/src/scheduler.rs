//! Admission control and dispatch: a bounded FIFO queue in front of the
//! placement policy.
//!
//! Admission is where the open-loop arrival stream meets finite capacity:
//! a full queue rejects new jobs (backpressure a real cluster would push
//! to clients), and the counters here are the scheduler-side half of the
//! fleet telemetry.

use crate::job::JobSpec;
use crate::node::Node;
use crate::policy::{pick_node, Policy};
use greengpu_sim::SimTime;
use std::collections::VecDeque;

/// Bounded admission queue plus dispatch state.
pub struct Scheduler {
    queue: VecDeque<JobSpec>,
    capacity: usize,
    policy: Policy,
    rr_cursor: usize,
    admitted: u64,
    rejected: u64,
    peak_depth: usize,
    // Per-tenant admission/rejection tallies, indexed by
    // `JobSpec::tenant` and grown on demand (single-stream runs only
    // ever touch slot 0).
    admitted_by_tenant: Vec<u64>,
    rejected_by_tenant: Vec<u64>,
}

fn bump(counters: &mut Vec<u64>, tenant: usize) {
    if counters.len() <= tenant {
        counters.resize(tenant + 1, 0);
    }
    counters[tenant] += 1;
}

impl Scheduler {
    /// A scheduler with the given policy and queue bound.
    pub fn new(policy: Policy, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Scheduler {
            queue: VecDeque::new(),
            capacity,
            policy,
            rr_cursor: 0,
            admitted: 0,
            rejected: 0,
            peak_depth: 0,
            admitted_by_tenant: Vec::new(),
            rejected_by_tenant: Vec::new(),
        }
    }

    /// Offers a job for admission; `false` means the queue was full and
    /// the job was rejected.
    pub fn submit(&mut self, job: JobSpec) -> bool {
        if self.queue.len() >= self.capacity {
            self.rejected += 1;
            bump(&mut self.rejected_by_tenant, job.tenant);
            return false;
        }
        bump(&mut self.admitted_by_tenant, job.tenant);
        self.queue.push_back(job);
        self.admitted += 1;
        self.peak_depth = self.peak_depth.max(self.queue.len());
        true
    }

    /// Counts a job as admitted *without* queueing it — the dispatcher
    /// calls this when it parks a deferrable job in its deferral queue,
    /// so the conservation ledger (admitted equals completed plus
    /// dead-lettered plus deferred-pending plus in-flight) holds while
    /// the job waits for a green window.
    pub fn note_deferred_admission(&mut self, tenant: usize) {
        self.admitted += 1;
        bump(&mut self.admitted_by_tenant, tenant);
    }

    /// Enqueues a job that was already counted admitted (a released
    /// deferral). Exempt from the capacity bound for the same reason
    /// retries are: bouncing it here would turn deliberate deferral into
    /// silent loss.
    pub fn enqueue_admitted(&mut self, job: JobSpec) {
        self.queue.push_back(job);
        self.peak_depth = self.peak_depth.max(self.queue.len());
    }

    /// Re-admits a job at the *front* of the queue (a crash-retry keeps
    /// its place ahead of newer arrivals). Exempt from the capacity bound:
    /// the job was already admitted once, and dropping it here would turn
    /// backpressure into silent loss.
    pub fn requeue_front(&mut self, job: JobSpec) {
        self.queue.push_front(job);
        self.peak_depth = self.peak_depth.max(self.queue.len());
    }

    /// Dispatches queued jobs to idle, healthy, alive nodes until the
    /// policy finds no taker; returns how many were placed. `allowed` is
    /// the circuit-breaker mask (`false` = blocked; empty = all allowed).
    pub fn dispatch(&mut self, nodes: &mut [Node], allowed: &[bool], now: SimTime) -> usize {
        let mut placed = 0;
        while let Some(job) = self.queue.front() {
            match pick_node(self.policy, job, nodes, allowed, &mut self.rr_cursor, now) {
                Some(i) => {
                    let Some(job) = self.queue.pop_front() else { break };
                    nodes[i].dispatch(job, now);
                    placed += 1;
                }
                None => break,
            }
        }
        placed
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Jobs admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Jobs rejected by backpressure so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Per-tenant admitted counts, padded with zeros to `n_tenants`.
    pub fn admitted_by_tenant(&self, n_tenants: usize) -> Vec<u64> {
        let mut v = self.admitted_by_tenant.clone();
        v.resize(v.len().max(n_tenants), 0);
        v
    }

    /// Per-tenant rejected counts, padded with zeros to `n_tenants`.
    pub fn rejected_by_tenant(&self, n_tenants: usize) -> Vec<u64> {
        let mut v = self.rejected_by_tenant.clone();
        v.resize(v.len().max(n_tenants), 0);
        v
    }

    /// Deepest the queue has been.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;

    fn mix() -> Vec<String> {
        vec!["hotspot".to_string()]
    }

    fn job(id: u64) -> JobSpec {
        JobSpec {
            id,
            workload: "hotspot".to_string(),
            arrival: SimTime::ZERO,
            size: 1.0,
            deadline: None,
            tenant: 0,
        }
    }

    #[test]
    fn full_queue_rejects() {
        let mut s = Scheduler::new(Policy::RoundRobin, 2);
        assert!(s.submit(job(0)));
        assert!(s.submit(job(1)));
        assert!(!s.submit(job(2)), "third job must bounce");
        assert_eq!(s.rejected(), 1);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.peak_depth(), 2);
    }

    #[test]
    fn dispatch_drains_fifo_until_nodes_run_out() {
        let mut nodes: Vec<Node> = (0..2)
            .map(|i| Node::new(i, &NodeConfig::default_node(), &mix(), 1))
            .collect();
        let mut s = Scheduler::new(Policy::RoundRobin, 8);
        for id in 0..3 {
            s.submit(job(id));
        }
        let placed = s.dispatch(&mut nodes, &[], SimTime::ZERO);
        assert_eq!(placed, 2, "two nodes, two placements");
        assert_eq!(s.depth(), 1, "third job stays queued");
        assert!(nodes.iter().all(|n| !n.is_idle()));
    }

    #[test]
    fn requeue_front_jumps_the_line_and_ignores_capacity() {
        let mut s = Scheduler::new(Policy::RoundRobin, 2);
        assert!(s.submit(job(0)));
        assert!(s.submit(job(1)));
        s.requeue_front(job(9));
        assert_eq!(s.depth(), 3, "retries bypass the admission bound");
        let mut nodes: Vec<Node> = (0..1)
            .map(|i| Node::new(i, &NodeConfig::default_node(), &mix(), 1))
            .collect();
        s.dispatch(&mut nodes, &[], SimTime::ZERO);
        assert_eq!(s.depth(), 2, "one node, one placement");
        // The retried job went first.
        assert_eq!(nodes[0].completed(), 0);
        let rec = nodes[0]
            .advance(SimTime::ZERO, SimTime::from_secs(100_000))
            .expect("finishes");
        assert_eq!(rec.spec.id, 9);
    }

    #[test]
    fn breaker_mask_blocks_dispatch() {
        let mut nodes: Vec<Node> = (0..2)
            .map(|i| Node::new(i, &NodeConfig::default_node(), &mix(), 1))
            .collect();
        let mut s = Scheduler::new(Policy::RoundRobin, 8);
        s.submit(job(0));
        s.submit(job(1));
        assert_eq!(s.dispatch(&mut nodes, &[false, false], SimTime::ZERO), 0);
        assert_eq!(s.dispatch(&mut nodes, &[false, true], SimTime::ZERO), 1);
        assert!(nodes[0].is_idle() && !nodes[1].is_idle());
    }
}
