//! Per-interval fleet telemetry.
//!
//! One row per control interval, rendered through [`greengpu_sim::Table`]
//! so markdown and RFC-4180 CSV come for free and stay byte-deterministic
//! (fixed decimal formatting, no floats straight through `Display`).

use greengpu_sim::Table;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// String interner for telemetry: workload and tenant names appear once
/// here, and rows carry compact `u32` ids instead of cloning a `String`
/// per interval. Ids are assigned in first-intern order, so a table
/// built in a fixed order is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NameTable {
    names: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl NameTable {
    /// An empty table.
    pub fn new() -> Self {
        NameTable::default()
    }

    /// The id for `name`, interning it on first sight.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// The name behind `id` (empty string for an unknown id — rows
    /// render, never panic).
    pub fn resolve(&self, id: u32) -> &str {
        self.names.get(id as usize).map_or("", String::as_str)
    }

    /// The id of an already-interned name, without interning.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One control interval's fleet state.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Interval index (1-based; interval `k` covers `((k-1)·T, k·T]`).
    pub interval: u64,
    /// Interval end, seconds.
    pub time_s: f64,
    /// Queue depth after dispatch.
    pub queue_depth: usize,
    /// Nodes serving a job after dispatch.
    pub busy_nodes: usize,
    /// Nodes whose controller has not fallen back.
    pub healthy_nodes: usize,
    /// Mean GPU board power over the interval, watts.
    pub gpu_power_w: f64,
    /// Mean whole-fleet (GPU + CPU) power over the interval, watts.
    pub total_power_w: f64,
    /// Sum of the per-node caps this interval, watts.
    pub fleet_cap_w: f64,
    /// The fleet budget, watts.
    pub budget_w: f64,
    /// Jobs completed so far.
    pub completed: u64,
    /// Jobs rejected by admission so far.
    pub rejected: u64,
    /// Deadline misses so far.
    pub deadline_misses: u64,
    /// Node-intervals in cap violation so far.
    pub cap_violations: u64,
    /// Worst per-node excess of enforced-pair power over cap this
    /// interval, watts (0 when every node complies).
    pub max_pair_over_cap_w: f64,
    /// Nodes in lifecycle state `Up` or `Probation`.
    pub up_nodes: usize,
    /// Circuit breakers currently `Open`.
    pub open_breakers: usize,
    /// Jobs waiting out a retry backoff.
    pub retry_depth: usize,
    /// Jobs dead-lettered so far.
    pub dead_lettered: u64,
}

/// The full per-interval trace of one fleet run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTrace {
    /// Rows in interval order.
    pub rows: Vec<TraceRow>,
}

/// The fleet trace's CSV column contract, shared by the [`Table`]
/// renderer and the allocation-free writer so the two can never skew.
// lint:contract(fleet_trace_columns)
const FLEET_TRACE_COLUMNS: [&str; 18] = [
    "interval",
    "time_s",
    "queue_depth",
    "busy_nodes",
    "healthy_nodes",
    "gpu_power_w",
    "total_power_w",
    "fleet_cap_w",
    "budget_w",
    "completed",
    "rejected",
    "deadline_misses",
    "cap_violations",
    "max_pair_over_cap_w",
    "up_nodes",
    "open_breakers",
    "retry_depth",
    "dead_lettered",
];

impl FleetTrace {
    /// Renders the trace as a table titled `title`.
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &FLEET_TRACE_COLUMNS);
        for r in &self.rows {
            t.row(&[
                r.interval.to_string(),
                format!("{:.2}", r.time_s),
                r.queue_depth.to_string(),
                r.busy_nodes.to_string(),
                r.healthy_nodes.to_string(),
                format!("{:.3}", r.gpu_power_w),
                format!("{:.3}", r.total_power_w),
                format!("{:.3}", r.fleet_cap_w),
                format!("{:.3}", r.budget_w),
                r.completed.to_string(),
                r.rejected.to_string(),
                r.deadline_misses.to_string(),
                r.cap_violations.to_string(),
                format!("{:.3}", r.max_pair_over_cap_w),
                r.up_nodes.to_string(),
                r.open_breakers.to_string(),
                r.retry_depth.to_string(),
                r.dead_lettered.to_string(),
            ]);
        }
        t
    }

    /// Appends the trace's CSV (header plus one line per interval) to
    /// `buf` — byte-identical to `self.to_table(title).to_csv()` but
    /// with zero allocations per row: every cell is numeric, so the
    /// RFC-4180 escape path can never trigger and the cells are written
    /// straight into the caller's scratch buffer. Callers reuse one
    /// buffer across batched writes (`clear()` between traces keeps the
    /// capacity).
    pub fn write_csv_into(&self, buf: &mut String) {
        for (k, h) in FLEET_TRACE_COLUMNS.iter().enumerate() {
            if k > 0 {
                buf.push(',');
            }
            buf.push_str(h);
        }
        buf.push('\n');
        for r in &self.rows {
            let _ = writeln!(
                buf,
                "{},{:.2},{},{},{},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{:.3},{},{},{},{}",
                r.interval,
                r.time_s,
                r.queue_depth,
                r.busy_nodes,
                r.healthy_nodes,
                r.gpu_power_w,
                r.total_power_w,
                r.fleet_cap_w,
                r.budget_w,
                r.completed,
                r.rejected,
                r.deadline_misses,
                r.cap_violations,
                r.max_pair_over_cap_w,
                r.up_nodes,
                r.open_breakers,
                r.retry_depth,
                r.dead_lettered,
            );
        }
    }

    /// Time-weighted mean GPU power across the trace, watts.
    pub fn mean_gpu_power_w(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.gpu_power_w).sum::<f64>() / self.rows.len() as f64
    }

    /// Highest queue depth seen at interval boundaries.
    pub fn peak_queue_depth(&self) -> usize {
        self.rows.iter().map(|r| r.queue_depth).max().unwrap_or(0)
    }
}

/// One control interval's serving-layer state (only emitted on runs with
/// a [`crate::ServingConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingTraceRow {
    /// Interval index (matches the fleet trace's).
    pub interval: u64,
    /// Interval end, seconds.
    pub time_s: f64,
    /// Carbon intensity at the interval end (relative units).
    pub carbon_intensity: f64,
    /// Whether the interval end sits in a green window (intensity at or
    /// below the dispatch threshold).
    pub green: bool,
    /// Best-effort jobs parked in the deferral queue after this tick.
    pub deferred_pending: usize,
    /// Jobs deferred so far.
    pub jobs_deferred: u64,
    /// Deferred jobs released into the admission queue so far.
    pub jobs_released: u64,
}

/// The per-interval serving trace of one multi-tenant fleet run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServingTrace {
    /// Rows in interval order (empty for single-stream runs).
    pub rows: Vec<ServingTraceRow>,
}

/// The serving trace's CSV column contract, shared by the [`Table`]
/// renderer and the allocation-free writer.
// lint:contract(serving_trace_columns)
const SERVING_TRACE_COLUMNS: [&str; 7] = [
    "interval",
    "time_s",
    "carbon_intensity",
    "green",
    "deferred_pending",
    "jobs_deferred",
    "jobs_released",
];

impl ServingTrace {
    /// Renders the trace as a table titled `title`.
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &SERVING_TRACE_COLUMNS);
        for r in &self.rows {
            t.row(&[
                r.interval.to_string(),
                format!("{:.2}", r.time_s),
                format!("{:.4}", r.carbon_intensity),
                u8::from(r.green).to_string(),
                r.deferred_pending.to_string(),
                r.jobs_deferred.to_string(),
                r.jobs_released.to_string(),
            ]);
        }
        t
    }

    /// Appends the trace's CSV to `buf`, byte-identical to
    /// `self.to_table(title).to_csv()` with zero per-row allocations —
    /// the serving counterpart of [`FleetTrace::write_csv_into`].
    pub fn write_csv_into(&self, buf: &mut String) {
        for (k, h) in SERVING_TRACE_COLUMNS.iter().enumerate() {
            if k > 0 {
                buf.push(',');
            }
            buf.push_str(h);
        }
        buf.push('\n');
        for r in &self.rows {
            let _ = writeln!(
                buf,
                "{},{:.2},{:.4},{},{},{},{}",
                r.interval,
                r.time_s,
                r.carbon_intensity,
                u8::from(r.green),
                r.deferred_pending,
                r.jobs_deferred,
                r.jobs_released,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(k: u64) -> TraceRow {
        TraceRow {
            interval: k,
            time_s: k as f64,
            queue_depth: k as usize,
            busy_nodes: 1,
            healthy_nodes: 2,
            gpu_power_w: 100.0 + k as f64,
            total_power_w: 150.0,
            fleet_cap_w: 400.0,
            budget_w: 500.0,
            completed: k,
            rejected: 0,
            deadline_misses: 0,
            cap_violations: 0,
            max_pair_over_cap_w: 0.0,
            up_nodes: 2,
            open_breakers: 0,
            retry_depth: 0,
            dead_lettered: 0,
        }
    }

    #[test]
    fn table_rendering_is_stable() {
        let trace = FleetTrace {
            rows: vec![row(1), row(2)],
        };
        let a = trace.to_table("t").to_csv();
        let b = trace.to_table("t").to_csv();
        assert_eq!(a, b);
        assert!(a.starts_with("interval,time_s,queue_depth"));
        assert_eq!(a.lines().count(), 3);
    }

    #[test]
    fn summaries() {
        let trace = FleetTrace {
            rows: vec![row(1), row(3)],
        };
        assert_eq!(trace.peak_queue_depth(), 3);
        assert!((trace.mean_gpu_power_w() - 102.0).abs() < 1e-12);
    }

    #[test]
    fn scratch_writer_matches_table_csv_byte_for_byte() {
        // The allocation-free path must be indistinguishable from the
        // Table renderer — golden traces pin the Table output, so any
        // skew here is silent corruption. Negative time/power exercise
        // the sign formatting; the buffer is reused across traces the
        // way batched writers hold it.
        let mut r = row(7);
        r.time_s = -0.0;
        r.max_pair_over_cap_w = 12.3456;
        let trace = FleetTrace {
            rows: vec![row(1), r, row(3)],
        };
        let mut buf = String::new();
        trace.write_csv_into(&mut buf);
        assert_eq!(buf, trace.to_table("ignored").to_csv());
        buf.clear();
        let empty = FleetTrace::default();
        empty.write_csv_into(&mut buf);
        assert_eq!(buf, empty.to_table("t").to_csv(), "header-only trace");
    }

    #[test]
    fn serving_scratch_writer_matches_table_csv() {
        let trace = ServingTrace {
            rows: (0..4)
                .map(|k| ServingTraceRow {
                    interval: k,
                    time_s: k as f64 * 3.0,
                    carbon_intensity: 0.5 + k as f64 * 0.25,
                    green: k % 2 == 0,
                    deferred_pending: k as usize,
                    jobs_deferred: k * 2,
                    jobs_released: k,
                })
                .collect(),
        };
        let mut buf = String::new();
        trace.write_csv_into(&mut buf);
        assert_eq!(buf, trace.to_table("ignored").to_csv());
    }

    #[test]
    fn name_table_interns_once_and_resolves() {
        let mut t = NameTable::new();
        assert!(t.is_empty());
        let a = t.intern("hotspot");
        let b = t.intern("kmeans");
        assert_eq!(t.intern("hotspot"), a, "re-intern returns the same id");
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "hotspot");
        assert_eq!(t.resolve(b), "kmeans");
        assert_eq!(t.resolve(99), "", "unknown ids resolve to empty, never panic");
    }

    #[test]
    fn serving_trace_rendering_is_stable() {
        let trace = ServingTrace {
            rows: vec![ServingTraceRow {
                interval: 1,
                time_s: 1.0,
                carbon_intensity: 1.25,
                green: false,
                deferred_pending: 2,
                jobs_deferred: 3,
                jobs_released: 1,
            }],
        };
        let a = trace.to_table("s").to_csv();
        assert_eq!(a, trace.to_table("s").to_csv());
        assert!(a.starts_with("interval,time_s,carbon_intensity,green"));
        assert!(a.contains("1,1.00,1.2500,0,2,3,1"));
    }
}
