//! Per-interval fleet telemetry.
//!
//! One row per control interval, rendered through [`greengpu_sim::Table`]
//! so markdown and RFC-4180 CSV come for free and stay byte-deterministic
//! (fixed decimal formatting, no floats straight through `Display`).

use greengpu_sim::Table;

/// One control interval's fleet state.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Interval index (1-based; interval `k` covers `((k-1)·T, k·T]`).
    pub interval: u64,
    /// Interval end, seconds.
    pub time_s: f64,
    /// Queue depth after dispatch.
    pub queue_depth: usize,
    /// Nodes serving a job after dispatch.
    pub busy_nodes: usize,
    /// Nodes whose controller has not fallen back.
    pub healthy_nodes: usize,
    /// Mean GPU board power over the interval, watts.
    pub gpu_power_w: f64,
    /// Mean whole-fleet (GPU + CPU) power over the interval, watts.
    pub total_power_w: f64,
    /// Sum of the per-node caps this interval, watts.
    pub fleet_cap_w: f64,
    /// The fleet budget, watts.
    pub budget_w: f64,
    /// Jobs completed so far.
    pub completed: u64,
    /// Jobs rejected by admission so far.
    pub rejected: u64,
    /// Deadline misses so far.
    pub deadline_misses: u64,
    /// Node-intervals in cap violation so far.
    pub cap_violations: u64,
    /// Worst per-node excess of enforced-pair power over cap this
    /// interval, watts (0 when every node complies).
    pub max_pair_over_cap_w: f64,
    /// Nodes in lifecycle state `Up` or `Probation`.
    pub up_nodes: usize,
    /// Circuit breakers currently `Open`.
    pub open_breakers: usize,
    /// Jobs waiting out a retry backoff.
    pub retry_depth: usize,
    /// Jobs dead-lettered so far.
    pub dead_lettered: u64,
}

/// The full per-interval trace of one fleet run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTrace {
    /// Rows in interval order.
    pub rows: Vec<TraceRow>,
}

impl FleetTrace {
    /// Renders the trace as a table titled `title`.
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            // lint:contract(fleet_trace_columns)
            &[
                "interval",
                "time_s",
                "queue_depth",
                "busy_nodes",
                "healthy_nodes",
                "gpu_power_w",
                "total_power_w",
                "fleet_cap_w",
                "budget_w",
                "completed",
                "rejected",
                "deadline_misses",
                "cap_violations",
                "max_pair_over_cap_w",
                "up_nodes",
                "open_breakers",
                "retry_depth",
                "dead_lettered",
            ],
        );
        for r in &self.rows {
            t.row(&[
                r.interval.to_string(),
                format!("{:.2}", r.time_s),
                r.queue_depth.to_string(),
                r.busy_nodes.to_string(),
                r.healthy_nodes.to_string(),
                format!("{:.3}", r.gpu_power_w),
                format!("{:.3}", r.total_power_w),
                format!("{:.3}", r.fleet_cap_w),
                format!("{:.3}", r.budget_w),
                r.completed.to_string(),
                r.rejected.to_string(),
                r.deadline_misses.to_string(),
                r.cap_violations.to_string(),
                format!("{:.3}", r.max_pair_over_cap_w),
                r.up_nodes.to_string(),
                r.open_breakers.to_string(),
                r.retry_depth.to_string(),
                r.dead_lettered.to_string(),
            ]);
        }
        t
    }

    /// Time-weighted mean GPU power across the trace, watts.
    pub fn mean_gpu_power_w(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.gpu_power_w).sum::<f64>() / self.rows.len() as f64
    }

    /// Highest queue depth seen at interval boundaries.
    pub fn peak_queue_depth(&self) -> usize {
        self.rows.iter().map(|r| r.queue_depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(k: u64) -> TraceRow {
        TraceRow {
            interval: k,
            time_s: k as f64,
            queue_depth: k as usize,
            busy_nodes: 1,
            healthy_nodes: 2,
            gpu_power_w: 100.0 + k as f64,
            total_power_w: 150.0,
            fleet_cap_w: 400.0,
            budget_w: 500.0,
            completed: k,
            rejected: 0,
            deadline_misses: 0,
            cap_violations: 0,
            max_pair_over_cap_w: 0.0,
            up_nodes: 2,
            open_breakers: 0,
            retry_depth: 0,
            dead_lettered: 0,
        }
    }

    #[test]
    fn table_rendering_is_stable() {
        let trace = FleetTrace {
            rows: vec![row(1), row(2)],
        };
        let a = trace.to_table("t").to_csv();
        let b = trace.to_table("t").to_csv();
        assert_eq!(a, b);
        assert!(a.starts_with("interval,time_s,queue_depth"));
        assert_eq!(a.lines().count(), 3);
    }

    #[test]
    fn summaries() {
        let trace = FleetTrace {
            rows: vec![row(1), row(3)],
        };
        assert_eq!(trace.peak_queue_depth(), 3);
        assert!((trace.mean_gpu_power_w() - 102.0).abs() < 1e-12);
    }
}
