//! Fleet-budget apportionment into per-node power caps.
//!
//! Caps are integer **milliwatts** so the headline invariant — the summed
//! per-node caps never exceed the fleet budget — holds exactly, with no
//! floating-point accumulation drift, and the allocation is trivially
//! byte-reproducible.
//!
//! Three sequential passes, each drawing from a shared `remaining` pool so
//! every grant is bounded by what is actually left:
//!
//! 1. **Floors** — every node gets (up to) its floor: the modeled
//!    worst-case power of its lowest frequency pair. A node at its floor
//!    can always enforce *some* pair, so the per-node feasible set never
//!    empties while the budget covers the floors.
//! 2. **Demand** — busy nodes split the rest proportionally to what their
//!    WMA learner wants above the floor (the unmasked argmax pair's
//!    modeled power). Idle nodes want nothing here, which is exactly the
//!    idle→busy cap re-allocation: slack from idle nodes flows to loaded
//!    ones every interval.
//! 3. **Headroom** — leftover budget spreads over busy nodes up to their
//!    peak-pair power, so a rising utilization can climb the frequency
//!    ladder next interval without waiting for the apportioner.

/// A cap or budget in integer milliwatts.
pub type MilliWatts = u64;

/// Converts watts to the integer milliwatt grid (rounding up, so a cap
/// derived from a modeled floor still admits that floor).
pub fn mw(watts: f64) -> MilliWatts {
    assert!(watts >= 0.0 && watts.is_finite(), "bad wattage {watts}");
    (watts * 1000.0).ceil() as MilliWatts
}

/// Converts watts to the integer milliwatt grid rounding **down** — the
/// budget-side conversion, so the integer caps can never sum past the
/// stated watt budget.
pub fn mw_floor(watts: f64) -> MilliWatts {
    assert!(watts >= 0.0 && watts.is_finite(), "bad wattage {watts}");
    (watts * 1000.0).floor() as MilliWatts
}

/// What one node asks of the apportioner this interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDemand {
    /// Modeled worst-case power of the lowest frequency pair.
    pub floor_mw: MilliWatts,
    /// Modeled worst-case power of the pair the node's learner would
    /// enforce absent any cap.
    pub desired_mw: MilliWatts,
    /// Modeled worst-case power of the peak frequency pair.
    pub peak_mw: MilliWatts,
    /// Whether the node currently holds a job.
    pub busy: bool,
}

/// Splits `pool` over `wants` proportionally, never exceeding `remaining`.
fn grant_proportional(caps: &mut [MilliWatts], wants: &[MilliWatts], remaining: &mut MilliWatts) {
    let total: u128 = wants.iter().map(|&w| u128::from(w)).sum();
    if total == 0 || *remaining == 0 {
        return;
    }
    let pool = *remaining;
    for (cap, &want) in caps.iter_mut().zip(wants) {
        let share = (u128::from(pool) * u128::from(want) / total) as MilliWatts;
        let grant = share.min(want).min(*remaining);
        *cap += grant;
        *remaining -= grant;
    }
}

/// Apportions `budget_mw` into one cap per node.
///
/// Guarantees, by construction: the returned caps sum to at most
/// `budget_mw`; and whenever `budget_mw >= Σ floor_mw`, every node's cap
/// is at least its floor.
pub fn apportion(budget_mw: MilliWatts, demands: &[NodeDemand]) -> Vec<MilliWatts> {
    let mut caps = vec![0; demands.len()];
    let mut remaining = budget_mw;

    // Pass 1: floors.
    for (cap, d) in caps.iter_mut().zip(demands) {
        let grant = d.floor_mw.min(remaining);
        *cap = grant;
        remaining -= grant;
    }

    // Pass 2: busy nodes' demand above the floor.
    let wants: Vec<MilliWatts> = demands
        .iter()
        .zip(&caps)
        .map(|(d, &cap)| {
            if d.busy {
                d.desired_mw.clamp(cap, d.peak_mw.max(cap)) - cap
            } else {
                0
            }
        })
        .collect();
    grant_proportional(&mut caps, &wants, &mut remaining);

    // Pass 3: leftover headroom up to peak for busy nodes.
    let heads: Vec<MilliWatts> = demands
        .iter()
        .zip(&caps)
        .map(|(d, &cap)| if d.busy { d.peak_mw.saturating_sub(cap) } else { 0 })
        .collect();
    grant_proportional(&mut caps, &heads, &mut remaining);

    caps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(floor: u64, desired: u64, peak: u64, busy: bool) -> NodeDemand {
        NodeDemand {
            floor_mw: floor,
            desired_mw: desired,
            peak_mw: peak,
            busy,
        }
    }

    #[test]
    fn floors_are_covered_first() {
        let d = vec![demand(100, 200, 300, false); 4];
        let caps = apportion(1200, &d);
        assert!(caps.iter().all(|&c| c >= 100), "{caps:?}");
        assert!(caps.iter().sum::<u64>() <= 1200);
    }

    #[test]
    fn idle_slack_flows_to_busy_nodes() {
        let d = vec![
            demand(100, 300, 300, true),
            demand(100, 100, 300, false),
            demand(100, 100, 300, false),
        ];
        let caps = apportion(600, &d);
        // Idle nodes hold their floor; the busy node takes everything
        // else up to its peak.
        assert_eq!(caps[1], 100);
        assert_eq!(caps[2], 100);
        assert!(caps[0] > 100 && caps[0] <= 300, "{caps:?}");
        assert!(caps.iter().sum::<u64>() <= 600);
    }

    #[test]
    fn scarce_budget_never_overshoots() {
        let d = vec![demand(100, 250, 300, true); 3];
        for budget in [0u64, 50, 150, 299, 300, 600, 10_000] {
            let caps = apportion(budget, &d);
            assert!(caps.iter().sum::<u64>() <= budget, "budget {budget}: {caps:?}");
        }
    }

    #[test]
    fn abundant_budget_caps_at_peak() {
        let d = vec![demand(100, 200, 300, true), demand(100, 150, 250, true)];
        let caps = apportion(100_000, &d);
        assert_eq!(caps, vec![300, 250], "busy nodes stop at peak");
    }

    #[test]
    fn mw_rounds_up() {
        assert_eq!(mw(1.0001), 1001);
        assert_eq!(mw(0.0), 0);
        assert_eq!(mw(138.7499), 138_750);
    }

    #[test]
    fn mw_floor_rounds_down() {
        assert_eq!(mw_floor(1.0009), 1000);
        assert_eq!(mw_floor(0.0), 0);
        assert!(mw_floor(562.905_788) as f64 / 1000.0 <= 562.905_788);
    }
}
