//! Pluggable placement policies.
//!
//! A policy picks which idle, healthy, alive node serves the next queued
//! job, further filtered by the scheduler's circuit-breaker mask.
//! All three policies are deterministic: candidates are scanned in node
//! order and ties break toward the lowest id, so a fleet run is a pure
//! function of its seed.

use crate::job::JobSpec;
use crate::node::Node;
use greengpu_sim::SimTime;

/// Placement policy for the dispatch layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Rotate through the nodes in id order.
    RoundRobin,
    /// Pick the node with the least cumulative busy time.
    LeastLoaded,
    /// Pick the node whose cap-constrained oracle estimate costs the
    /// least GPU energy; jobs with deadlines only consider nodes whose
    /// estimated finish meets the deadline, falling back to the fastest
    /// node when none can.
    EnergyAware,
}

impl Policy {
    /// All policies, in presentation order.
    pub const ALL: [Policy; 3] = [Policy::RoundRobin, Policy::LeastLoaded, Policy::EnergyAware];

    /// Stable CLI/CSV name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::RoundRobin => "round-robin",
            Policy::LeastLoaded => "least-loaded",
            Policy::EnergyAware => "energy-aware",
        }
    }

    /// Parses a CLI/CSV name.
    pub fn parse(s: &str) -> Option<Policy> {
        Policy::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// Picks a node for `job` among idle, healthy, alive nodes; `None` when
/// no node can take work. `rr_cursor` carries the round-robin position
/// across calls. `allowed` is the scheduler's circuit-breaker mask —
/// `allowed[i] == false` excludes node `i`; an empty slice allows all.
pub fn pick_node(
    policy: Policy,
    job: &JobSpec,
    nodes: &[Node],
    allowed: &[bool],
    rr_cursor: &mut usize,
    now: SimTime,
) -> Option<usize> {
    let available =
        |n: &Node| allowed.get(n.id()).copied().unwrap_or(true) && n.is_idle() && n.healthy() && n.is_alive();
    match policy {
        Policy::RoundRobin => {
            let n = nodes.len();
            for k in 0..n {
                let i = (*rr_cursor + k) % n;
                if available(&nodes[i]) {
                    *rr_cursor = i + 1;
                    return Some(i);
                }
            }
            None
        }
        Policy::LeastLoaded => nodes
            .iter()
            .filter(|n| available(n))
            .min_by(|a, b| a.busy_s().total_cmp(&b.busy_s()))
            .map(Node::id),
        Policy::EnergyAware => {
            let candidates: Vec<(usize, f64, f64)> = nodes
                .iter()
                .filter(|n| available(n))
                .filter_map(|n| n.estimate(&job.workload, job.size).map(|(t, e)| (n.id(), t, e)))
                .collect();
            if candidates.is_empty() {
                return None;
            }
            if let Some(deadline) = job.deadline {
                let slack_s = deadline.saturating_since(now).as_secs_f64();
                let meets: Vec<&(usize, f64, f64)> = candidates.iter().filter(|(_, t, _)| *t <= slack_s).collect();
                if meets.is_empty() {
                    // Nothing meets the deadline: minimize the damage.
                    return candidates.iter().min_by(|a, b| a.1.total_cmp(&b.1)).map(|c| c.0);
                }
                return meets.iter().min_by(|a, b| a.2.total_cmp(&b.2)).map(|c| c.0);
            }
            candidates.iter().min_by(|a, b| a.2.total_cmp(&b.2)).map(|c| c.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;

    fn mix() -> Vec<String> {
        vec!["hotspot".to_string(), "kmeans".to_string()]
    }

    fn fleet(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| Node::new(i, &NodeConfig::default_node(), &mix(), 1))
            .collect()
    }

    fn job() -> JobSpec {
        JobSpec {
            id: 0,
            workload: "hotspot".to_string(),
            arrival: SimTime::ZERO,
            size: 1.0,
            deadline: None,
            tenant: 0,
        }
    }

    #[test]
    fn names_round_trip() {
        for p in Policy::ALL {
            assert_eq!(Policy::parse(p.name()), Some(p));
        }
        assert_eq!(Policy::parse("nope"), None);
    }

    #[test]
    fn round_robin_rotates() {
        let nodes = fleet(3);
        let mut cursor = 0;
        let a = pick_node(Policy::RoundRobin, &job(), &nodes, &[], &mut cursor, SimTime::ZERO);
        let b = pick_node(Policy::RoundRobin, &job(), &nodes, &[], &mut cursor, SimTime::ZERO);
        let c = pick_node(Policy::RoundRobin, &job(), &nodes, &[], &mut cursor, SimTime::ZERO);
        let d = pick_node(Policy::RoundRobin, &job(), &nodes, &[], &mut cursor, SimTime::ZERO);
        assert_eq!((a, b, c, d), (Some(0), Some(1), Some(2), Some(0)));
    }

    #[test]
    fn busy_nodes_are_skipped() {
        let mut nodes = fleet(2);
        nodes[0].dispatch(job(), SimTime::ZERO);
        let mut cursor = 0;
        for p in Policy::ALL {
            assert_eq!(pick_node(p, &job(), &nodes, &[], &mut cursor, SimTime::ZERO), Some(1));
        }
        nodes[1].dispatch(job(), SimTime::ZERO);
        for p in Policy::ALL {
            assert_eq!(pick_node(p, &job(), &nodes, &[], &mut cursor, SimTime::ZERO), None);
        }
    }

    #[test]
    fn least_loaded_prefers_the_idle_history() {
        let mut nodes = fleet(2);
        // Give node 0 some service history.
        nodes[0].dispatch(job(), SimTime::ZERO);
        nodes[0].advance(SimTime::ZERO, SimTime::from_secs(1000));
        let mut cursor = 0;
        assert_eq!(
            pick_node(Policy::LeastLoaded, &job(), &nodes, &[], &mut cursor, SimTime::ZERO),
            Some(1)
        );
    }

    #[test]
    fn energy_aware_is_deterministic_on_identical_nodes() {
        let nodes = fleet(3);
        let mut cursor = 0;
        assert_eq!(
            pick_node(Policy::EnergyAware, &job(), &nodes, &[], &mut cursor, SimTime::ZERO),
            Some(0),
            "ties break toward the lowest id"
        );
    }

    #[test]
    fn breaker_mask_and_dead_nodes_are_excluded() {
        let mut nodes = fleet(3);
        let mut cursor = 0;
        for p in Policy::ALL {
            assert_eq!(
                pick_node(p, &job(), &nodes, &[false, true, true], &mut cursor, SimTime::ZERO),
                Some(1),
                "{} must respect the breaker mask",
                p.name()
            );
            cursor = 0;
        }
        nodes[1].crash(SimTime::ZERO, 5.0);
        for p in Policy::ALL {
            assert_eq!(
                pick_node(p, &job(), &nodes, &[false, true, true], &mut cursor, SimTime::ZERO),
                Some(2),
                "{} must skip the crashed node",
                p.name()
            );
            cursor = 0;
        }
    }
}
