//! Bounded-retry re-dispatch of jobs lost to crashes.
//!
//! When a node crashes mid-job, the job is not gone — the fleet hands it
//! to the [`RetryQueue`], which re-submits it after an exponential
//! backoff (`retry_backoff_s · 2^(attempt−1)`). A job that exceeds
//! [`max_retries`](crate::LifecycleParams::max_retries) lost attempts is
//! *dead-lettered*: parked in an inspectable queue instead of retried
//! forever, so one poisonous workload cannot monopolize the fleet.
//! Everything is keyed on virtual time and job ids — fully deterministic.

use crate::job::JobSpec;
use greengpu_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A job waiting out its re-dispatch backoff.
#[derive(Debug, Clone)]
struct PendingRetry {
    job: JobSpec,
    ready_at: SimTime,
}

/// The crash-loss retry machinery: backoff queue + dead-letter queue.
#[derive(Debug, Clone)]
pub struct RetryQueue {
    max_retries: u32,
    backoff_s: f64,
    /// Lost-attempt count per job id (a dispatch that crashes counts; a
    /// completed job is simply never reported lost again).
    attempts: BTreeMap<u64, u32>,
    pending: Vec<PendingRetry>,
    dead: Vec<JobSpec>,
    retried: u64,
}

impl RetryQueue {
    /// A queue allowing `max_retries` re-dispatches with exponential
    /// backoff base `backoff_s`.
    pub fn new(max_retries: u32, backoff_s: f64) -> Self {
        assert!(backoff_s.is_finite() && backoff_s > 0.0, "backoff_s must be positive");
        RetryQueue {
            max_retries,
            backoff_s,
            attempts: BTreeMap::new(),
            pending: Vec::new(),
            dead: Vec::new(),
            retried: 0,
        }
    }

    /// Reports a job lost to a crash at `now`. Queues it for re-dispatch
    /// after the backoff, or dead-letters it when its retry budget is
    /// spent. Returns `true` when the job will be retried.
    pub fn job_lost(&mut self, job: JobSpec, now: SimTime) -> bool {
        let attempts = self.attempts.entry(job.id).or_insert(0);
        *attempts += 1;
        if *attempts > self.max_retries {
            self.dead.push(job);
            return false;
        }
        // Attempt n waits backoff · 2^(n−1).
        let wait = self.backoff_s * f64::from(1u32 << (*attempts - 1).min(20));
        self.pending.push(PendingRetry {
            job,
            ready_at: now + SimDuration::from_secs_f64(wait),
        });
        self.retried += 1;
        true
    }

    /// Removes and returns every job whose backoff elapsed by `now`,
    /// ordered by `(ready_at, id)` so re-submission order is
    /// deterministic.
    pub fn drain_ready(&mut self, now: SimTime) -> Vec<JobSpec> {
        let mut ready: Vec<PendingRetry> = Vec::new();
        let mut still_waiting = Vec::new();
        for p in self.pending.drain(..) {
            if p.ready_at <= now {
                ready.push(p);
            } else {
                still_waiting.push(p);
            }
        }
        self.pending = still_waiting;
        ready.sort_by_key(|p| (p.ready_at, p.job.id));
        ready.into_iter().map(|p| p.job).collect()
    }

    /// Jobs parked after exhausting their retry budget.
    pub fn dead_letter(&self) -> &[JobSpec] {
        &self.dead
    }

    /// Total re-dispatches queued so far.
    pub fn retried(&self) -> u64 {
        self.retried
    }

    /// Jobs currently waiting out a backoff.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn job(id: u64) -> JobSpec {
        JobSpec {
            id,
            workload: "kmeans".to_string(),
            arrival: SimTime::ZERO,
            size: 1.0,
            deadline: None,
            tenant: 0,
        }
    }

    fn at(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn retries_back_off_exponentially_then_dead_letter() {
        let mut q = RetryQueue::new(2, 2.0);
        // Attempt 1: ready after 2 s.
        assert!(q.job_lost(job(7), at(10.0)));
        assert!(q.drain_ready(at(11.9)).is_empty());
        assert_eq!(q.drain_ready(at(12.0)).len(), 1);
        // Attempt 2: ready after 4 s.
        assert!(q.job_lost(job(7), at(20.0)));
        assert!(q.drain_ready(at(23.9)).is_empty());
        assert_eq!(q.drain_ready(at(24.0)).len(), 1);
        // Attempt 3 exceeds max_retries = 2 → dead letter.
        assert!(!q.job_lost(job(7), at(30.0)));
        assert_eq!(q.dead_letter().len(), 1);
        assert_eq!(q.dead_letter()[0].id, 7);
        assert_eq!(q.retried(), 2);
    }

    #[test]
    fn drain_orders_by_ready_time_then_id() {
        let mut q = RetryQueue::new(3, 1.0);
        q.job_lost(job(5), at(0.5)); // ready 1.5
        q.job_lost(job(3), at(0.0)); // ready 1.0
        q.job_lost(job(9), at(0.0)); // ready 1.0
        let ids: Vec<u64> = q.drain_ready(at(2.0)).iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![3, 9, 5]);
        assert_eq!(q.pending_len(), 0);
    }

    #[test]
    fn independent_jobs_have_independent_budgets() {
        let mut q = RetryQueue::new(1, 1.0);
        assert!(q.job_lost(job(1), at(0.0)));
        assert!(q.job_lost(job(2), at(0.0)));
        assert!(!q.job_lost(job(1), at(5.0)), "job 1 budget spent");
        assert!(!q.job_lost(job(2), at(5.0)), "job 2 budget spent");
        assert_eq!(q.dead_letter().len(), 2);
    }
}
