//! One fleet node: a single-node GreenGPU testbed plus its hardened
//! controller, wrapped with job progress tracking and cap enforcement.
//!
//! A node owns the same [`Platform`] the single-node experiments run on
//! and drives it with the same [`GreenGpuController`] (scaling tier, with
//! the PR-1 hardening: NaN rejection, read-back-verified actuation,
//! best-performance fallback). The cluster tier only adds what a
//! datacenter agent would: a service-profile table to convert frequency
//! pairs into job progress, a power-cap input, and counters.
//!
//! Job service is piecewise-linear: between control events the frequency
//! pair is constant, so a job advances at `dt / (size · T(pair))` of its
//! total work per elapsed `dt`. The controller may re-clock the card at
//! every tick; progress carries over, only the rate changes — exactly how
//! a real run would respond to DVFS.

use crate::job::{JobRecord, JobSpec};
use crate::lifecycle::NodeState;
use crate::power::{mw, MilliWatts, NodeDemand};
use crate::profile::ServiceProfile;
use crate::telemetry::NameTable;
use greengpu::{GreenGpuConfig, GreenGpuController, PairModel, PolicySpec};
use greengpu_hw::{
    calib, BlackoutSensors, CleanSensors, CpuSpec, DirectActuator, FaultPlan, FaultyActuator, FaultySensor,
    FreqActuator, GpuSpec, Platform, SensorSource,
};
use greengpu_runtime::Controller as _;
use greengpu_sim::{Fnv64, SimDuration, SimTime, SplitMix64};
use std::collections::BTreeMap;

/// Static description of one node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The node's card.
    pub gpu: GpuSpec,
    /// The node's host CPU.
    pub cpu: CpuSpec,
    /// Optional sensor/actuation fault plan (PR-1 seam).
    pub fault: Option<FaultPlan>,
    /// Tier-2 frequency policy the node's controller runs (the paper's
    /// WMA by default; any [`PolicySpec`] variant works — the cap seam
    /// goes through the policy's feasible-set mask either way).
    pub freq_policy: PolicySpec,
}

impl NodeConfig {
    /// The default paper testbed node.
    pub fn default_node() -> Self {
        NodeConfig {
            gpu: calib::geforce_8800_gtx(),
            cpu: calib::phenom_ii_x2(),
            fault: None,
            freq_policy: PolicySpec::default(),
        }
    }

    /// A down-clocked heterogeneous variant (≈70 % clocks).
    pub fn downclocked() -> Self {
        let mut gpu = calib::geforce_8800_gtx();
        gpu.core_levels_mhz = gpu.core_levels_mhz.iter().map(|f| f * 0.7).collect();
        gpu.mem_levels_mhz = gpu.mem_levels_mhz.iter().map(|f| f * 0.7).collect();
        gpu.name = format!("{} (down-clocked)", gpu.name);
        NodeConfig {
            gpu,
            cpu: calib::phenom_ii_x2(),
            fault: None,
            freq_policy: PolicySpec::default(),
        }
    }

    /// Attaches a fault plan.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Selects the Tier-2 frequency policy.
    pub fn with_freq_policy(mut self, spec: PolicySpec) -> Self {
        self.freq_policy = spec;
        self
    }
}

/// The mix's mean predicted (time, energy) per frequency pair — the
/// [`PairModel`] a deadline-aware node selects over. Averaging across the
/// profiled workloads gives the node one budget surface for a mixed
/// stream; a single-workload mix degenerates to that workload's exact
/// profile.
fn mix_pair_model(gpu: &GpuSpec, profiles: &BTreeMap<String, ServiceProfile>) -> Result<PairModel, String> {
    if profiles.is_empty() {
        return Err("deadline policy needs a non-empty workload mix".to_string());
    }
    let n_core = gpu.core_levels_mhz.len();
    let n_mem = gpu.mem_levels_mhz.len();
    let k = profiles.len() as f64;
    let mut time_s = vec![0.0; n_core * n_mem];
    let mut energy_j = vec![0.0; n_core * n_mem];
    for prof in profiles.values() {
        for i in 0..n_core {
            for j in 0..n_mem {
                time_s[i * n_mem + j] += prof.time_s(i, j) / k;
                energy_j[i * n_mem + j] += prof.energy_j(gpu, i, j, 1.0) / k;
            }
        }
    }
    PairModel::from_grids(n_core, n_mem, time_s, energy_j)
}

/// A job in service.
#[derive(Debug, Clone)]
struct RunningJob {
    spec: JobSpec,
    started: SimTime,
    /// Completed fraction of the whole run in `[0, 1)`.
    progress: f64,
    /// GPU energy attributed so far, joules (pair energy prorated by
    /// per-window progress, so DVFS changes mid-job are accounted).
    energy_j: f64,
    /// Interned profile id (index into `Node::profile_seq`), resolved
    /// once at dispatch so the per-window hot path never re-keys the
    /// profile map by workload `String`.
    profile: u32,
}

/// A lifecycle transition surfaced to the fleet supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// The supervisor finished rebuilding the controller; `warm` is true
    /// when the last checkpoint restored cleanly.
    RestartComplete {
        /// Whether learner state was restored from a checkpoint.
        warm: bool,
    },
    /// The node served its probation and is fully `Up` again.
    ProbationCleared,
}

/// One completed post-restart learner recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Whether the restart restored a checkpoint (warm) or cold-started.
    pub warm: bool,
    /// Control ticks from restart completion until the policy's desired
    /// pair matched the pre-crash pair again (0 = immediately on
    /// restore).
    pub intervals: u64,
}

/// One live node.
pub struct Node {
    id: usize,
    platform: Platform,
    ctl: GreenGpuController,
    profiles: BTreeMap<String, ServiceProfile>,
    /// Workload names interned in sorted order; ids index `profile_seq`.
    profile_names: NameTable,
    /// Profiles in interned-id order — the per-window hot path resolves
    /// a job's profile by `u32` id, never by `String` key.
    profile_seq: Vec<ServiceProfile>,
    cap_w: f64,
    job: Option<RunningJob>,
    busy_s: f64,
    completed: u64,
    cap_violations: u64,
    // --- controller rebuild recipe (crash restarts re-run it) ---
    policy_spec: PolicySpec,
    fault: Option<FaultPlan>,
    blackouts: Vec<(SimTime, SimTime)>,
    policy_seed: u64,
    model: Option<PairModel>,
    // --- failure lifecycle ---
    state: NodeState,
    /// When the current `Crashed`/`Restarting` phase ends.
    state_until: SimTime,
    probation_left: u64,
    restart_s: f64,
    probation_intervals: u64,
    checkpoint: Option<String>,
    thermal_until: SimTime,
    thermal_active: bool,
    /// The cap this node was *parked* under by the event-driven engine,
    /// if any: the node proved two consecutive control ticks identical
    /// (see [`Node::park_fingerprint`]) and subsequent ticks take the
    /// quiescent fast path until anything observable changes.
    parked_cap: Option<MilliWatts>,
    /// Whether the stored checkpoint was taken while this node was parked
    /// *and* the node has stayed parked since. While that holds the
    /// controller's learner state is bit-frozen (the quiescent path only
    /// re-reads constant-zero idle utilizations; the deep-skip path runs
    /// nothing at all), so [`Node::take_checkpoint`] can skip the JSON
    /// re-serialization — the stored bytes are already identical. Cleared
    /// on every `parked_cap` transition.
    parked_checkpoint_fresh: bool,
    /// Pre-crash desired pair, pending recovery measurement.
    pending_target: Option<(usize, usize)>,
    /// In-flight recovery: (target pair, warm flag, ticks so far).
    recovering: Option<((usize, usize), bool, u64)>,
    recoveries: Vec<RecoveryRecord>,
    crashes: u64,
    warm_restarts: u64,
    cold_restarts: u64,
    restore_failures: u64,
    thermal_events: u64,
}

impl Node {
    /// Builds a node with service profiles for `workloads` (unknown names
    /// panic — the mix is validated config, not user input). The card
    /// starts at peak clocks (the best-performance baseline state); the
    /// controller takes over from the first tick.
    pub fn new(id: usize, cfg: &NodeConfig, workloads: &[String], profile_seed: u64) -> Self {
        match Node::try_new(id, cfg, workloads, profile_seed) {
            Ok(node) => node,
            Err(msg) => panic!("node {id}: {msg}"),
        }
    }

    /// [`Node::new`] with a prebuilt profile table (see
    /// [`Node::try_new_with_profiles`] for the caller contract).
    pub fn new_with_profiles(
        id: usize,
        cfg: &NodeConfig,
        profiles: BTreeMap<String, ServiceProfile>,
        profile_seed: u64,
    ) -> Self {
        match Node::try_new_with_profiles(id, cfg, profiles, profile_seed) {
            Ok(node) => node,
            Err(msg) => panic!("node {id}: {msg}"),
        }
    }

    /// Non-panicking constructor: validates the policy spec (naming the
    /// offending field) and the workload mix, then builds the node. The
    /// deadline policy's [`PairModel`] is derived from the mix's mean
    /// per-pair service time/energy grids — the same tables the
    /// energy-aware placement estimates use; randomized policies draw
    /// per-node streams derived from `(profile_seed, id)`.
    pub fn try_new(id: usize, cfg: &NodeConfig, workloads: &[String], profile_seed: u64) -> Result<Self, String> {
        let profiles: BTreeMap<String, ServiceProfile> = workloads
            .iter()
            .map(|name| {
                ServiceProfile::build(name, profile_seed, &cfg.gpu)
                    .map(|p| (name.clone(), p))
                    .ok_or_else(|| format!("unknown workload {name:?} in mix"))
            })
            .collect::<Result<_, String>>()?;
        Node::try_new_with_profiles(id, cfg, profiles, profile_seed)
    }

    /// Like [`Node::try_new`], but takes a prebuilt profile table. The
    /// caller guarantees the profiles were built for `cfg.gpu` with this
    /// fleet's `profile_seed` — the fleet constructor builds one table
    /// per distinct GPU spec and shares it across that spec's nodes, so
    /// an N-node homogeneous fleet profiles its mix once, not N times.
    pub fn try_new_with_profiles(
        id: usize,
        cfg: &NodeConfig,
        profiles: BTreeMap<String, ServiceProfile>,
        profile_seed: u64,
    ) -> Result<Self, String> {
        cfg.freq_policy.try_validate()?;
        let n_core = cfg.gpu.core_levels_mhz.len();
        let n_mem = cfg.gpu.mem_levels_mhz.len();
        let platform = Platform::new(
            cfg.gpu.clone(),
            cfg.cpu.clone(),
            n_core - 1,
            n_mem - 1,
            cfg.cpu.levels_mhz.len() - 1,
        );
        let model = match &cfg.freq_policy {
            PolicySpec::Deadline(_) => Some(mix_pair_model(&cfg.gpu, &profiles)?),
            _ => None,
        };
        let policy_seed = SplitMix64::new(profile_seed.wrapping_add(id as u64)).next_u64();
        // Intern the workload names once (sorted map order, so ids are
        // deterministic) — jobs carry the `u32` id from dispatch on.
        let mut profile_names = NameTable::new();
        let mut profile_seq = Vec::with_capacity(profiles.len());
        for (name, prof) in &profiles {
            profile_names.intern(name);
            profile_seq.push(prof.clone());
        }
        let mut node = Node {
            id,
            platform,
            // Placeholder until the recipe fields are in place below; the
            // real controller is installed right after.
            ctl: GreenGpuController::with_policy(
                GreenGpuConfig::scaling_only(),
                cfg.freq_policy.build(n_core, n_mem, policy_seed, model.as_ref())?,
            ),
            profiles,
            profile_names,
            profile_seq,
            cap_w: f64::INFINITY,
            job: None,
            busy_s: 0.0,
            completed: 0,
            cap_violations: 0,
            policy_spec: cfg.freq_policy.clone(),
            fault: cfg.fault,
            blackouts: Vec::new(),
            policy_seed,
            model,
            state: NodeState::Up,
            state_until: SimTime::ZERO,
            probation_left: 0,
            restart_s: 2.0,
            probation_intervals: 3,
            checkpoint: None,
            thermal_until: SimTime::ZERO,
            thermal_active: false,
            parked_cap: None,
            parked_checkpoint_fresh: false,
            pending_target: None,
            recovering: None,
            recoveries: Vec::new(),
            crashes: 0,
            warm_restarts: 0,
            cold_restarts: 0,
            restore_failures: 0,
            thermal_events: 0,
        };
        node.ctl = node.build_controller()?;
        Ok(node)
    }

    /// Rebuilds the controller from the stored recipe: fresh policy (from
    /// the spec and the node's derived seed), fresh sensor/actuator
    /// providers (re-wrapping the fault injectors and blackout windows).
    /// Used at construction and on every crash restart — a restart gets
    /// fresh providers; only checkpointed learner state survives.
    fn build_controller(&self) -> Result<GreenGpuController, String> {
        let spec = self.platform.gpu().spec();
        let n_core = spec.core_levels_mhz.len();
        let n_mem = spec.mem_levels_mhz.len();
        let policy = self
            .policy_spec
            .build(n_core, n_mem, self.policy_seed, self.model.as_ref())?;
        let sensors: Box<dyn SensorSource> = match &self.fault {
            Some(plan) => Box::new(FaultySensor::new(plan)),
            None => Box::new(CleanSensors::new()),
        };
        let sensors: Box<dyn SensorSource> = if self.blackouts.is_empty() {
            sensors
        } else {
            Box::new(BlackoutSensors::new(sensors, self.blackouts.clone()))
        };
        let actuator: Box<dyn FreqActuator> = match &self.fault {
            Some(plan) => Box::new(FaultyActuator::new(plan)),
            None => Box::new(DirectActuator),
        };
        Ok(GreenGpuController::with_policy_providers(
            GreenGpuConfig::scaling_only(),
            policy,
            sensors,
            actuator,
        ))
    }

    /// Node id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the node can take a job right now.
    pub fn is_idle(&self) -> bool {
        self.job.is_none()
    }

    /// Whether the controller is still operating (fallback not engaged).
    /// The scheduler routes around unhealthy nodes.
    pub fn healthy(&self) -> bool {
        !self.ctl.fallback_engaged()
    }

    /// Where the node is in the failure lifecycle.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// When the current `Crashed`/`Restarting` phase ends — the instant
    /// the event-driven engine's wake agenda must next run this node's
    /// lifecycle FSM. Meaningless (stale) while `Up`/`Probation`.
    pub fn state_until(&self) -> SimTime {
        self.state_until
    }

    /// Whether the node is currently parked on the control quiescent
    /// fast path (see [`Node::control_tick_parkable`]).
    pub fn is_parked(&self) -> bool {
        self.parked_cap.is_some()
    }

    /// The cap this node is parked under, if parked. While this equals
    /// the cap the apportioner would hand the node this interval, the
    /// entire control tick is an identity (the parked fast path would
    /// re-read constant-zero idle utilizations and rewrite every field
    /// with the same bits), so the event engine skips it outright.
    pub fn parked_under(&self) -> Option<MilliWatts> {
        self.parked_cap
    }

    /// Whether the node is controllable this interval (`Up` or
    /// `Probation`). Dead nodes take no control ticks and no work.
    pub fn is_alive(&self) -> bool {
        matches!(self.state, NodeState::Up | NodeState::Probation)
    }

    /// Configures the restart duration and probation length (the fleet
    /// applies its [`crate::LifecycleParams`] here at construction).
    pub fn set_lifecycle(&mut self, restart_s: f64, probation_intervals: u64) {
        assert!(restart_s.is_finite() && restart_s > 0.0);
        assert!(probation_intervals > 0);
        self.restart_s = restart_s;
        self.probation_intervals = probation_intervals;
    }

    /// Installs telemetry-blackout windows by rebuilding the controller
    /// with [`BlackoutSensors`]-wrapped providers. Call before the first
    /// control tick — the rebuild discards learner state.
    pub fn set_blackouts(&mut self, windows: Vec<(SimTime, SimTime)>) {
        self.blackouts = windows;
        // The recipe was validated at construction; if the rebuild fails
        // anyway, hold the existing controller rather than abort the fleet.
        match self.build_controller() {
            Ok(ctl) => self.ctl = ctl,
            Err(_) => self.restore_failures += 1,
        }
    }

    /// Snapshots the controller's learner state as the node's current
    /// checkpoint (the fleet calls this every checkpoint period).
    pub fn take_checkpoint(&mut self) {
        // A continuously-parked node's learner state is bit-frozen, so
        // the checkpoint taken last period is still byte-identical —
        // skip the (comparatively expensive) JSON re-serialization.
        if self.parked_cap.is_some() && self.parked_checkpoint_fresh {
            return;
        }
        self.checkpoint = Some(self.ctl.snapshot());
        self.parked_checkpoint_fresh = self.parked_cap.is_some();
    }

    /// Replaces the stored checkpoint verbatim — the corruption-injection
    /// seam for tests; a garbage string is rejected at restore time and
    /// the restart falls back to a cold start (counted).
    pub fn load_checkpoint(&mut self, checkpoint: String) {
        self.checkpoint = Some(checkpoint);
    }

    /// The stored checkpoint, if any.
    pub fn checkpoint_data(&self) -> Option<&str> {
        self.checkpoint.as_deref()
    }

    /// Crashes the node at `now`: the in-flight job (returned for retry)
    /// and all live learner state are lost, the card drops to floor
    /// clocks with zero activity (the PSU-trickle draw of a dark board is
    /// the floor idle power), and the node stays dark for `outage_s`.
    /// No-op returning `None` when the node is already down.
    pub fn crash(&mut self, now: SimTime, outage_s: f64) -> Option<JobSpec> {
        if !self.is_alive() {
            return None;
        }
        self.crashes += 1;
        self.parked_cap = None;
        self.parked_checkpoint_fresh = false;
        // The recovery target is what the learner preferred just before
        // dying — reaching it again is the warm-vs-cold regret metric.
        self.pending_target = Some(self.ctl.desired_pair());
        self.recovering = None;
        let lost = self.job.take().map(|run| run.spec);
        self.platform.set_gpu_levels(now, 0, 0);
        self.platform.set_cpu_level(now, 0);
        self.refresh_activity(now);
        self.state = NodeState::Crashed;
        self.state_until = now + SimDuration::from_secs_f64(outage_s);
        lost
    }

    /// Enters a thermal emergency: for `duration_s` the node is pinned to
    /// its floor pair by the (modeled) hardware throttle — the controller
    /// is bypassed and the node's power demand collapses to the floor.
    pub fn thermal_emergency(&mut self, now: SimTime, duration_s: f64) {
        self.thermal_events += 1;
        self.parked_cap = None;
        self.parked_checkpoint_fresh = false;
        self.thermal_until = now + SimDuration::from_secs_f64(duration_s);
        self.thermal_active = true;
    }

    /// Whether the thermal throttle was active at the last lifecycle tick.
    pub fn thermal_active(&self) -> bool {
        self.thermal_active
    }

    /// One supervisor tick: advances the failure FSM (at most one
    /// transition per tick, so recovery time is measured in whole control
    /// intervals) and refreshes the thermal-throttle flag. Returns the
    /// transitions that fired, for the fleet's breaker and counters.
    pub fn lifecycle_tick(&mut self, now: SimTime) -> Vec<LifecycleEvent> {
        self.thermal_active = now < self.thermal_until;
        let mut events = Vec::new();
        match self.state {
            NodeState::Crashed if now >= self.state_until => {
                self.state = NodeState::Restarting;
                self.state_until = now + SimDuration::from_secs_f64(self.restart_s);
            }
            NodeState::Restarting if now >= self.state_until => {
                let warm = self.perform_restart(now);
                self.state = NodeState::Probation;
                self.probation_left = self.probation_intervals;
                events.push(LifecycleEvent::RestartComplete { warm });
            }
            NodeState::Probation => {
                self.probation_left = self.probation_left.saturating_sub(1);
                if self.probation_left == 0 {
                    self.state = NodeState::Up;
                    events.push(LifecycleEvent::ProbationCleared);
                }
            }
            _ => {}
        }
        events
    }

    /// The supervisor restart: rebuild the controller from the recipe and
    /// try to restore the last checkpoint. Returns whether the restart
    /// was warm. A checkpoint that fails to parse or validate is
    /// *discarded* (cold start, `restore_failures` counted) — resuming
    /// from garbage would be worse than re-exploring.
    fn perform_restart(&mut self, now: SimTime) -> bool {
        // The recipe was validated at construction; if the rebuild fails
        // anyway, keep the pre-crash controller and report a cold restart.
        let Ok(mut ctl) = self.build_controller() else {
            self.restore_failures += 1;
            self.cold_restarts += 1;
            return false;
        };
        let warm = match &self.checkpoint {
            Some(cp) => match ctl.restore(cp) {
                Ok(()) => {
                    self.warm_restarts += 1;
                    true
                }
                Err(_) => {
                    self.restore_failures += 1;
                    self.checkpoint = None;
                    self.cold_restarts += 1;
                    false
                }
            },
            None => {
                self.cold_restarts += 1;
                false
            }
        };
        self.ctl = ctl;
        self.refresh_activity(now);
        if let Some(target) = self.pending_target.take() {
            if self.ctl.desired_pair() == target {
                // A warm restore can put the argmax back instantly.
                self.recoveries.push(RecoveryRecord { warm, intervals: 0 });
            } else {
                self.recovering = Some((target, warm, 0));
            }
        }
        warm
    }

    /// Crashes suffered so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Restarts that restored a checkpoint.
    pub fn warm_restarts(&self) -> u64 {
        self.warm_restarts
    }

    /// Restarts that cold-started (no checkpoint, or a rejected one).
    pub fn cold_restarts(&self) -> u64 {
        self.cold_restarts
    }

    /// Checkpoints that failed to restore (subset of cold restarts).
    pub fn restore_failures(&self) -> u64 {
        self.restore_failures
    }

    /// Thermal emergencies entered so far.
    pub fn thermal_events(&self) -> u64 {
        self.thermal_events
    }

    /// Completed post-restart recoveries, in order.
    pub fn recoveries(&self) -> &[RecoveryRecord] {
        &self.recoveries
    }

    /// Current power cap, watts.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// Cumulative busy (serving) seconds.
    pub fn busy_s(&self) -> f64 {
        self.busy_s
    }

    /// Jobs completed on this node.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Intervals whose enforced pair exceeded the cap.
    pub fn cap_violations(&self) -> u64 {
        self.cap_violations
    }

    /// The node's whole profile table (the fleet shares it across nodes
    /// with the same GPU spec).
    pub(crate) fn profile_table(&self) -> &BTreeMap<String, ServiceProfile> {
        &self.profiles
    }

    /// The service profile for a mix workload.
    pub fn profile(&self, workload: &str) -> Option<&ServiceProfile> {
        self.profiles.get(workload)
    }

    /// The underlying platform (meters, traces).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The controller (inspection/tests).
    pub fn controller(&self) -> &GreenGpuController {
        &self.ctl
    }

    /// Modeled worst-case board power of the currently enforced pair.
    pub fn enforced_pair_power_w(&self) -> f64 {
        let (c, m) = self.current_pair();
        self.platform.gpu().spec().power_at_levels_w(c, m, 1.0, 1.0)
    }

    /// The currently enforced (core, mem) levels.
    pub fn current_pair(&self) -> (usize, usize) {
        (
            self.platform.gpu().core().current_level(),
            self.platform.gpu().mem().current_level(),
        )
    }

    fn spec_powers(&self) -> (f64, f64) {
        let spec = self.platform.gpu().spec();
        let (nc, nm) = (spec.core_levels_mhz.len(), spec.mem_levels_mhz.len());
        (
            spec.power_at_levels_w(0, 0, 1.0, 1.0),
            spec.power_at_levels_w(nc - 1, nm - 1, 1.0, 1.0),
        )
    }

    /// What this node asks of the apportioner right now. A crashed node
    /// demands *nothing* — its milliwatts flow back to the live nodes the
    /// same interval the crash lands (the reclamation criterion). A
    /// restarting node holds only its floor; a thermally throttled node
    /// desires its floor but keeps its real peak (the throttle could lift
    /// mid-interval).
    pub fn demand(&self) -> NodeDemand {
        let (floor_w, peak_w) = self.spec_powers();
        match self.state {
            NodeState::Crashed => {
                return NodeDemand {
                    floor_mw: 0,
                    desired_mw: 0,
                    peak_mw: 0,
                    busy: false,
                };
            }
            NodeState::Restarting => {
                return NodeDemand {
                    floor_mw: mw(floor_w),
                    desired_mw: mw(floor_w),
                    peak_mw: mw(floor_w),
                    busy: false,
                };
            }
            NodeState::Up | NodeState::Probation => {}
        }
        if self.thermal_active {
            return NodeDemand {
                floor_mw: mw(floor_w),
                desired_mw: mw(floor_w),
                peak_mw: mw(peak_w),
                busy: self.job.is_some(),
            };
        }
        let desired_w = if self.ctl.fallback_engaged() {
            // Fallback pins peak clocks; budget accordingly.
            peak_w
        } else {
            let (c, m) = self.ctl.desired_pair();
            self.platform.gpu().spec().power_at_levels_w(c, m, 1.0, 1.0)
        };
        NodeDemand {
            floor_mw: mw(floor_w),
            desired_mw: mw(desired_w),
            peak_mw: mw(peak_w),
            busy: self.job.is_some(),
        }
    }

    /// Re-applies the activity signature of the current (job, pair) state
    /// from `at` onward.
    fn refresh_activity(&mut self, at: SimTime) {
        let n_cores = self.platform.cpu().spec().n_cores;
        match &self.job {
            Some(run) => {
                let (c, m) = self.current_pair();
                let (uc, um) = self
                    .profile_seq
                    .get(run.profile as usize)
                    .map_or((0.0, 0.0), |prof| (prof.u_core(c, m), prof.u_mem(c, m)));
                self.platform.set_gpu_activity(at, uc, um);
                self.platform.set_cpu_activity(at, 1.0, n_cores);
            }
            None => {
                self.platform.set_gpu_activity(at, 0.0, 0.0);
                self.platform.set_cpu_activity(at, 0.0, 0);
            }
        }
    }

    /// Starts serving `job` at `now`. Panics if the node is busy.
    pub fn dispatch(&mut self, job: JobSpec, now: SimTime) {
        assert!(self.job.is_none(), "node {} is busy", self.id);
        if self.parked_cap.is_some() {
            // A deep-parked node (the event engine skips its control
            // ticks entirely) may not have sensed for many intervals;
            // catch the sensor window up to `now` while the utilization
            // traces are still constant-zero, before the job makes them
            // move. For a node that was ticked this interval the sensor
            // window already ends at `now`, so the poll re-reads the
            // same instantaneous zeros — an exact identity.
            self.ctl.on_dvfs_tick_quiescent(&mut self.platform, now);
        }
        self.parked_cap = None;
        self.parked_checkpoint_fresh = false;
        // Resolve the interned profile id once; `advance` and
        // `refresh_activity` index by it from here on.
        let profile = self.profile_names.get(&job.workload).unwrap_or(u32::MAX);
        self.job = Some(RunningJob {
            spec: job,
            started: now,
            progress: 0.0,
            energy_j: 0.0,
            profile,
        });
        self.refresh_activity(now);
    }

    /// Advances job service from `from` to `to` at the current frequency
    /// pair, returning the completion record if the job finishes inside
    /// the window.
    pub fn advance(&mut self, from: SimTime, to: SimTime) -> Option<JobRecord> {
        let dt = to.saturating_since(from).as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        let run = self.job.as_mut()?;
        let (c, m) = (
            self.platform.gpu().core().current_level(),
            self.platform.gpu().mem().current_level(),
        );
        let prof = self.profile_seq.get(run.profile as usize)?;
        let full_s = prof.time_s(c, m) * run.spec.size;
        // The whole-run energy at this window's pair; progress made here
        // attributes a proportional slice of it to the job.
        let full_e = prof.energy_j(self.platform.gpu().spec(), c, m, run.spec.size);
        let need_s = (1.0 - run.progress) * full_s;
        if need_s <= dt * (1.0 + 1e-12) {
            // Completes inside this window, at the exact instant.
            let finished = from + SimDuration::from_secs_f64(need_s.max(0.0));
            self.busy_s += need_s.max(0.0);
            let mut run = self.job.take()?;
            run.energy_j += (1.0 - run.progress) * full_e;
            let missed_deadline = run.spec.deadline.is_some_and(|d| finished > d);
            let record = JobRecord {
                node: self.id,
                started: run.started,
                finished,
                missed_deadline,
                gpu_energy_j: run.energy_j,
                spec: run.spec,
            };
            self.completed += 1;
            self.refresh_activity(finished);
            Some(record)
        } else {
            run.progress += dt / full_s;
            run.energy_j += (dt / full_s) * full_e;
            self.busy_s += dt;
            None
        }
    }

    /// One control interval: install the cap, run the hardened controller
    /// (sense → masked policy decision → verified actuation), refresh the activity
    /// signature for the possibly new pair, and check cap compliance.
    /// Returns how far (watts) the enforced pair exceeds the cap — 0.0
    /// when compliant; a fallback node pinning peak clocks is the
    /// expected violator.
    pub fn control_tick(&mut self, now: SimTime, cap: MilliWatts) -> f64 {
        self.cap_w = cap as f64 / 1000.0;
        if self.thermal_active {
            // Hardware throttle: floor clocks, controller bypassed. The
            // learner neither observes nor is blamed for these intervals.
            self.platform.set_gpu_levels(now, 0, 0);
            self.platform.set_cpu_level(now, 0);
            self.refresh_activity(now);
            let over = (self.enforced_pair_power_w() - self.cap_w).max(0.0);
            if over > 1e-9 {
                self.cap_violations += 1;
            }
            return over;
        }
        self.ctl.set_power_cap_w(Some(self.cap_w));
        self.ctl.on_dvfs_tick(&mut self.platform, now);
        self.refresh_activity(now);
        if self.recovering.is_some() {
            // Count intervals until the learner's argmax matches the
            // pre-crash pair again (the warm-vs-cold regret metric).
            let desired = self.ctl.desired_pair();
            let mut done = None;
            if let Some((target, warm, ticks)) = self.recovering.as_mut() {
                *ticks += 1;
                if desired == *target {
                    done = Some(RecoveryRecord {
                        warm: *warm,
                        intervals: *ticks,
                    });
                }
            }
            if let Some(rec) = done {
                self.recoveries.push(rec);
                self.recovering = None;
            }
        }
        let over = (self.enforced_pair_power_w() - self.cap_w).max(0.0);
        if over > 1e-9 {
            self.cap_violations += 1;
        }
        over
    }

    /// A bit-exact fingerprint of everything a control tick on an idle,
    /// healthy node can read or write, or `None` whenever the node is in
    /// any configuration where ticks are not provably idempotent: busy,
    /// fault-injected (the injectors hold RNG streams that must advance
    /// on every actuation), blacked out, off-`Up`, throttled,
    /// mid-recovery, or running a policy that declines to certify a
    /// fixed point (see [`GreenGpuController::decision_fingerprint`]).
    /// The event-driven engine parks a node only after two consecutive
    /// ticks under the same cap return the same `Some(..)` — the second
    /// tick *proves* the first one's decision was a fixed point.
    pub fn park_fingerprint(&self) -> Option<u64> {
        if self.fault.is_some()
            || !self.blackouts.is_empty()
            || self.job.is_some()
            || self.state != NodeState::Up
            || self.thermal_active
            || self.recovering.is_some()
            || self.pending_target.is_some()
        {
            return None;
        }
        let ctl_fp = self.ctl.decision_fingerprint()?;
        let mut h = Fnv64::new();
        h.push_u64(ctl_fp);
        let (c, m) = self.current_pair();
        h.push_usize(c);
        h.push_usize(m);
        h.push_usize(self.platform.cpu().domain().current_level());
        Some(h.finish())
    }

    /// [`Node::control_tick`] with the event-driven engine's parking
    /// protocol layered on. Behaviorally identical to `control_tick` on
    /// every externally observable output (enforced levels, cap
    /// violations, sensor windows, learner state); the only skipped work
    /// is decide/actuate halves that are provably identities.
    ///
    /// * **Parked** (same cap, still idle/`Up`/cool): run the quiescent
    ///   tick — sensing happens in full so the sensor windows advance
    ///   exactly as a normal tick's would; decide/actuate is skipped
    ///   while each domain re-observes its previous utilization. Any
    ///   divergence un-parks and finishes the tick normally.
    /// * **Not parked**: run `control_tick`, then park when the node is
    ///   compliant and this tick's fingerprint matches the previous
    ///   tick's (two-consecutive-identical-ticks criterion — the first
    ///   idle tick after activity never parks because the learner state
    ///   still moved).
    pub fn control_tick_parkable(&mut self, now: SimTime, cap: MilliWatts) -> f64 {
        if let Some(parked) = self.parked_cap {
            if parked == cap && self.job.is_none() && self.state == NodeState::Up && !self.thermal_active {
                // Cap unchanged, so these two writes are identities.
                self.cap_w = cap as f64 / 1000.0;
                self.ctl.set_power_cap_w(Some(self.cap_w));
                if self.ctl.on_dvfs_tick_quiescent(&mut self.platform, now) {
                    // Fully quiescent: levels unchanged, cap was met at
                    // park time, so the overage is exactly 0.0.
                    return 0.0;
                }
                // A domain diverged (and already ran its full half);
                // finish the tick tail exactly as control_tick would.
                // `recovering` is None while parked (park_fingerprint
                // requires it), so no recovery bookkeeping is due.
                self.parked_cap = None;
                self.parked_checkpoint_fresh = false;
                self.refresh_activity(now);
                let over = (self.enforced_pair_power_w() - self.cap_w).max(0.0);
                if over > 1e-9 {
                    self.cap_violations += 1;
                }
                return over;
            }
            self.parked_cap = None;
            self.parked_checkpoint_fresh = false;
        }
        let before = self.park_fingerprint();
        let over = self.control_tick(now, cap);
        if before.is_some() && over <= 0.0 && before == self.park_fingerprint() {
            self.parked_cap = Some(cap);
            self.parked_checkpoint_fresh = false;
        }
        over
    }

    /// Oracle-style placement estimate: (service seconds, GPU joules) for
    /// running `workload` of `size` here under the current cap.
    pub fn estimate(&self, workload: &str, size: f64) -> Option<(f64, f64)> {
        let prof = self.profiles.get(workload)?;
        Some(prof.best_under_cap(self.platform.gpu().spec(), self.cap_w, size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> Vec<String> {
        vec!["hotspot".to_string(), "kmeans".to_string()]
    }

    fn job(workload: &str, size: f64) -> JobSpec {
        JobSpec {
            id: 0,
            workload: workload.to_string(),
            arrival: SimTime::ZERO,
            size,
            deadline: None,
            tenant: 0,
        }
    }

    #[test]
    fn job_completes_at_the_profiled_time() {
        let mut node = Node::new(0, &NodeConfig::default_node(), &mix(), 1);
        let expect = node.profile("hotspot").unwrap().peak_time_s() * 2.0;
        node.dispatch(job("hotspot", 2.0), SimTime::ZERO);
        assert!(!node.is_idle());
        // Advance well past the service time in two windows.
        let half = SimTime::from_secs_f64(expect / 2.0);
        assert!(node.advance(SimTime::ZERO, half).is_none());
        let rec = node
            .advance(half, SimTime::from_secs_f64(expect * 3.0))
            .expect("job must finish");
        assert!((rec.finished.saturating_since(SimTime::ZERO).as_secs_f64() - expect).abs() < 1e-6);
        assert!(node.is_idle());
        assert_eq!(node.completed(), 1);
    }

    #[test]
    fn capped_ticks_keep_the_pair_under_the_cap() {
        let mut node = Node::new(0, &NodeConfig::default_node(), &mix(), 1);
        node.dispatch(job("kmeans", 5.0), SimTime::ZERO);
        let cap_w = 0.75 * node.platform().gpu().spec().peak_power_w();
        let cap = mw(cap_w);
        let mut t = SimTime::ZERO;
        for k in 1..=10 {
            let next = SimTime::from_secs(k);
            node.advance(t, next);
            let over = node.control_tick(next, cap);
            assert_eq!(over, 0.0, "clean node violated its cap at tick {k}");
            t = next;
        }
        assert_eq!(node.cap_violations(), 0);
        assert!(node.enforced_pair_power_w() <= cap as f64 / 1000.0);
    }

    #[test]
    fn demand_reports_floor_and_peak() {
        let node = Node::new(3, &NodeConfig::default_node(), &mix(), 1);
        let d = node.demand();
        assert!(d.floor_mw < d.peak_mw);
        assert!(!d.busy);
        assert!(d.desired_mw >= d.floor_mw && d.desired_mw <= d.peak_mw);
    }

    #[test]
    fn nodes_run_any_freq_policy_under_a_cap() {
        use greengpu::{DeadlineParams, Exp3Params, UcbParams};
        let specs = [
            PolicySpec::Exp3(Exp3Params::default()),
            PolicySpec::Ucb(UcbParams::default()),
            PolicySpec::Deadline(DeadlineParams {
                time_budget_s: 120.0,
                ..DeadlineParams::default()
            }),
        ];
        for spec in specs {
            let cfg = NodeConfig::default_node().with_freq_policy(spec.clone());
            let mut node = Node::try_new(0, &cfg, &mix(), 1).expect("buildable");
            node.dispatch(job("kmeans", 5.0), SimTime::ZERO);
            let cap = mw(0.75 * node.platform().gpu().spec().peak_power_w());
            let mut t = SimTime::ZERO;
            for k in 1..=8 {
                let next = SimTime::from_secs(k);
                node.advance(t, next);
                let over = node.control_tick(next, cap);
                assert_eq!(over, 0.0, "{} node violated its cap at tick {k}", spec.kind());
                t = next;
            }
            assert_eq!(node.cap_violations(), 0);
            let d = node.demand();
            assert!(d.desired_mw >= d.floor_mw && d.desired_mw <= d.peak_mw);
        }
    }

    #[test]
    fn try_new_rejects_bad_specs_and_unknown_mixes() {
        use greengpu::WmaParams;
        let bad = NodeConfig::default_node().with_freq_policy(PolicySpec::Wma(WmaParams {
            beta: 0.0,
            ..WmaParams::default()
        }));
        let err = Node::try_new(0, &bad, &mix(), 1).err().expect("must refuse");
        assert!(err.contains("beta"), "{err}");
        let err = Node::try_new(0, &NodeConfig::default_node(), &["nope".to_string()], 1)
            .err()
            .expect("must refuse");
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn estimates_cover_the_mix() {
        let node = Node::new(0, &NodeConfig::default_node(), &mix(), 1);
        let (t, e) = node.estimate("kmeans", 1.0).unwrap();
        assert!(t > 0.0 && e > 0.0);
        assert!(node.estimate("nbody", 1.0).is_none(), "not in the mix");
    }

    /// Warms a node up under a cap for `ticks` one-second intervals.
    fn warm_up(node: &mut Node, ticks: u64) -> SimTime {
        let cap = mw(0.8 * node.platform().gpu().spec().peak_power_w());
        node.dispatch(job("kmeans", 50.0), SimTime::ZERO);
        let mut t = SimTime::ZERO;
        for k in 1..=ticks {
            let next = SimTime::from_secs(k);
            node.advance(t, next);
            node.control_tick(next, cap);
            t = next;
        }
        t
    }

    #[test]
    fn crash_zeroes_demand_and_walks_the_fsm_back_to_up() {
        let mut node = Node::new(0, &NodeConfig::default_node(), &mix(), 1);
        node.set_lifecycle(2.0, 2);
        let t = warm_up(&mut node, 5);
        assert_eq!(node.state(), NodeState::Up);

        let lost = node.crash(t, 3.0).expect("busy node loses its job");
        assert_eq!(lost.workload, "kmeans");
        assert_eq!(node.state(), NodeState::Crashed);
        assert!(!node.is_alive());
        assert!(node.is_idle(), "the in-flight job is gone");
        let d = node.demand();
        assert_eq!(
            (d.floor_mw, d.desired_mw, d.peak_mw),
            (0, 0, 0),
            "dark node demands nothing"
        );

        // Crashing again while down is a no-op.
        assert!(node.crash(t, 3.0).is_none());
        assert_eq!(node.crashes(), 1);

        // Outage 3 s → Restarting, restart 2 s → Probation (2 ticks) → Up.
        let mut now = t;
        let mut seen = Vec::new();
        for _ in 0..10 {
            now += SimDuration::from_secs_f64(1.0);
            seen.extend(node.lifecycle_tick(now));
            if node.state() == NodeState::Up {
                break;
            }
        }
        assert_eq!(node.state(), NodeState::Up);
        assert_eq!(
            seen,
            vec![
                LifecycleEvent::RestartComplete { warm: false },
                LifecycleEvent::ProbationCleared
            ]
        );
        assert_eq!(node.cold_restarts(), 1, "no checkpoint was ever taken");
        assert_eq!(node.warm_restarts(), 0);
    }

    #[test]
    fn checkpointed_restart_is_warm_and_restores_the_argmax() {
        let mut node = Node::new(0, &NodeConfig::default_node(), &mix(), 1);
        node.set_lifecycle(1.0, 1);
        let t = warm_up(&mut node, 20);
        let pre_crash = node.controller().desired_pair();
        node.take_checkpoint();
        node.crash(t, 1.0);

        let mut now = t;
        while node.state() != NodeState::Probation {
            now += SimDuration::from_secs_f64(1.0);
            node.lifecycle_tick(now);
        }
        assert_eq!(node.warm_restarts(), 1);
        assert_eq!(node.cold_restarts(), 0);
        assert_eq!(
            node.controller().desired_pair(),
            pre_crash,
            "warm restore puts the learner's argmax back"
        );
        assert_eq!(
            node.recoveries(),
            &[RecoveryRecord {
                warm: true,
                intervals: 0
            }]
        );
    }

    #[test]
    fn corrupted_checkpoint_falls_back_to_cold_start() {
        let mut node = Node::new(0, &NodeConfig::default_node(), &mix(), 1);
        node.set_lifecycle(1.0, 1);
        let t = warm_up(&mut node, 5);
        node.take_checkpoint();
        let cp = node.checkpoint_data().unwrap().to_string();
        // Truncation makes the JSON unparseable.
        node.load_checkpoint(cp[..cp.len() / 2].to_string());
        node.crash(t, 1.0);
        let mut now = t;
        while node.state() != NodeState::Probation {
            now += SimDuration::from_secs_f64(1.0);
            node.lifecycle_tick(now);
        }
        assert_eq!(node.restore_failures(), 1);
        assert_eq!(node.cold_restarts(), 1);
        assert_eq!(node.warm_restarts(), 0);
        assert!(node.checkpoint_data().is_none(), "garbage checkpoint is discarded");
    }

    #[test]
    fn thermal_emergency_pins_the_floor_then_lifts() {
        let mut node = Node::new(0, &NodeConfig::default_node(), &mix(), 1);
        let t = warm_up(&mut node, 5);
        let cap = mw(0.8 * node.platform().gpu().spec().peak_power_w());
        node.thermal_emergency(t, 2.5);
        let mut now = t;
        for _ in 0..2 {
            let prev = now;
            now += SimDuration::from_secs_f64(1.0);
            node.lifecycle_tick(now);
            assert!(node.thermal_active());
            node.advance(prev, now);
            let over = node.control_tick(now, cap);
            assert_eq!(node.current_pair(), (0, 0), "throttle pins floor clocks");
            assert_eq!(over, 0.0);
            let d = node.demand();
            assert_eq!(d.desired_mw, d.floor_mw, "throttled node desires only its floor");
        }
        // 2.5 s elapse → the throttle lifts on the next lifecycle tick.
        now += SimDuration::from_secs_f64(1.0);
        node.lifecycle_tick(now);
        assert!(!node.thermal_active());
        assert_eq!(node.thermal_events(), 1);
    }
}
