//! One fleet node: a single-node GreenGPU testbed plus its hardened
//! controller, wrapped with job progress tracking and cap enforcement.
//!
//! A node owns the same [`Platform`] the single-node experiments run on
//! and drives it with the same [`GreenGpuController`] (scaling tier, with
//! the PR-1 hardening: NaN rejection, read-back-verified actuation,
//! best-performance fallback). The cluster tier only adds what a
//! datacenter agent would: a service-profile table to convert frequency
//! pairs into job progress, a power-cap input, and counters.
//!
//! Job service is piecewise-linear: between control events the frequency
//! pair is constant, so a job advances at `dt / (size · T(pair))` of its
//! total work per elapsed `dt`. The controller may re-clock the card at
//! every tick; progress carries over, only the rate changes — exactly how
//! a real run would respond to DVFS.

use crate::job::{JobRecord, JobSpec};
use crate::power::{mw, MilliWatts, NodeDemand};
use crate::profile::ServiceProfile;
use greengpu::{GreenGpuConfig, GreenGpuController, PairModel, PolicySpec};
use greengpu_hw::{calib, CpuSpec, FaultPlan, GpuSpec, Platform};
use greengpu_runtime::Controller as _;
use greengpu_sim::{SimDuration, SimTime, SplitMix64};
use std::collections::BTreeMap;

/// Static description of one node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The node's card.
    pub gpu: GpuSpec,
    /// The node's host CPU.
    pub cpu: CpuSpec,
    /// Optional sensor/actuation fault plan (PR-1 seam).
    pub fault: Option<FaultPlan>,
    /// Tier-2 frequency policy the node's controller runs (the paper's
    /// WMA by default; any [`PolicySpec`] variant works — the cap seam
    /// goes through the policy's feasible-set mask either way).
    pub freq_policy: PolicySpec,
}

impl NodeConfig {
    /// The default paper testbed node.
    pub fn default_node() -> Self {
        NodeConfig {
            gpu: calib::geforce_8800_gtx(),
            cpu: calib::phenom_ii_x2(),
            fault: None,
            freq_policy: PolicySpec::default(),
        }
    }

    /// A down-clocked heterogeneous variant (≈70 % clocks).
    pub fn downclocked() -> Self {
        let mut gpu = calib::geforce_8800_gtx();
        gpu.core_levels_mhz = gpu.core_levels_mhz.iter().map(|f| f * 0.7).collect();
        gpu.mem_levels_mhz = gpu.mem_levels_mhz.iter().map(|f| f * 0.7).collect();
        gpu.name = format!("{} (down-clocked)", gpu.name);
        NodeConfig {
            gpu,
            cpu: calib::phenom_ii_x2(),
            fault: None,
            freq_policy: PolicySpec::default(),
        }
    }

    /// Attaches a fault plan.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Selects the Tier-2 frequency policy.
    pub fn with_freq_policy(mut self, spec: PolicySpec) -> Self {
        self.freq_policy = spec;
        self
    }
}

/// The mix's mean predicted (time, energy) per frequency pair — the
/// [`PairModel`] a deadline-aware node selects over. Averaging across the
/// profiled workloads gives the node one budget surface for a mixed
/// stream; a single-workload mix degenerates to that workload's exact
/// profile.
fn mix_pair_model(
    gpu: &GpuSpec,
    profiles: &BTreeMap<String, ServiceProfile>,
) -> Result<PairModel, String> {
    if profiles.is_empty() {
        return Err("deadline policy needs a non-empty workload mix".to_string());
    }
    let n_core = gpu.core_levels_mhz.len();
    let n_mem = gpu.mem_levels_mhz.len();
    let k = profiles.len() as f64;
    let mut time_s = vec![0.0; n_core * n_mem];
    let mut energy_j = vec![0.0; n_core * n_mem];
    for prof in profiles.values() {
        for i in 0..n_core {
            for j in 0..n_mem {
                time_s[i * n_mem + j] += prof.time_s(i, j) / k;
                energy_j[i * n_mem + j] += prof.energy_j(gpu, i, j, 1.0) / k;
            }
        }
    }
    PairModel::from_grids(n_core, n_mem, time_s, energy_j)
}

/// A job in service.
#[derive(Debug, Clone)]
struct RunningJob {
    spec: JobSpec,
    started: SimTime,
    /// Completed fraction of the whole run in `[0, 1)`.
    progress: f64,
}

/// One live node.
pub struct Node {
    id: usize,
    platform: Platform,
    ctl: GreenGpuController,
    profiles: BTreeMap<String, ServiceProfile>,
    cap_w: f64,
    job: Option<RunningJob>,
    busy_s: f64,
    completed: u64,
    cap_violations: u64,
}

impl Node {
    /// Builds a node with service profiles for `workloads` (unknown names
    /// panic — the mix is validated config, not user input). The card
    /// starts at peak clocks (the best-performance baseline state); the
    /// controller takes over from the first tick.
    pub fn new(id: usize, cfg: &NodeConfig, workloads: &[String], profile_seed: u64) -> Self {
        match Node::try_new(id, cfg, workloads, profile_seed) {
            Ok(node) => node,
            Err(msg) => panic!("node {id}: {msg}"),
        }
    }

    /// Non-panicking constructor: validates the policy spec (naming the
    /// offending field) and the workload mix, then builds the node. The
    /// deadline policy's [`PairModel`] is derived from the mix's mean
    /// per-pair service time/energy grids — the same tables the
    /// energy-aware placement estimates use; randomized policies draw
    /// per-node streams derived from `(profile_seed, id)`.
    pub fn try_new(
        id: usize,
        cfg: &NodeConfig,
        workloads: &[String],
        profile_seed: u64,
    ) -> Result<Self, String> {
        cfg.freq_policy.try_validate()?;
        let n_core = cfg.gpu.core_levels_mhz.len();
        let n_mem = cfg.gpu.mem_levels_mhz.len();
        let platform = Platform::new(
            cfg.gpu.clone(),
            cfg.cpu.clone(),
            n_core - 1,
            n_mem - 1,
            cfg.cpu.levels_mhz.len() - 1,
        );
        let profiles: BTreeMap<String, ServiceProfile> = workloads
            .iter()
            .map(|name| {
                ServiceProfile::build(name, profile_seed, &cfg.gpu)
                    .map(|p| (name.clone(), p))
                    .ok_or_else(|| format!("unknown workload {name:?} in mix"))
            })
            .collect::<Result<_, String>>()?;
        let model = match &cfg.freq_policy {
            PolicySpec::Deadline(_) => Some(mix_pair_model(&cfg.gpu, &profiles)?),
            _ => None,
        };
        let policy_seed = SplitMix64::new(profile_seed.wrapping_add(id as u64)).next_u64();
        let policy = cfg
            .freq_policy
            .build(n_core, n_mem, policy_seed, model.as_ref())?;
        let control = GreenGpuConfig::scaling_only();
        let ctl = match &cfg.fault {
            Some(plan) => GreenGpuController::with_policy_faulted(control, policy, plan),
            None => GreenGpuController::with_policy(control, policy),
        };
        Ok(Node {
            id,
            platform,
            ctl,
            profiles,
            cap_w: f64::INFINITY,
            job: None,
            busy_s: 0.0,
            completed: 0,
            cap_violations: 0,
        })
    }

    /// Node id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the node can take a job right now.
    pub fn is_idle(&self) -> bool {
        self.job.is_none()
    }

    /// Whether the controller is still operating (fallback not engaged).
    /// The scheduler routes around unhealthy nodes.
    pub fn healthy(&self) -> bool {
        !self.ctl.fallback_engaged()
    }

    /// Current power cap, watts.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// Cumulative busy (serving) seconds.
    pub fn busy_s(&self) -> f64 {
        self.busy_s
    }

    /// Jobs completed on this node.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Intervals whose enforced pair exceeded the cap.
    pub fn cap_violations(&self) -> u64 {
        self.cap_violations
    }

    /// The service profile for a mix workload.
    pub fn profile(&self, workload: &str) -> Option<&ServiceProfile> {
        self.profiles.get(workload)
    }

    /// The underlying platform (meters, traces).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The controller (inspection/tests).
    pub fn controller(&self) -> &GreenGpuController {
        &self.ctl
    }

    /// Modeled worst-case board power of the currently enforced pair.
    pub fn enforced_pair_power_w(&self) -> f64 {
        let (c, m) = self.current_pair();
        self.platform.gpu().spec().power_at_levels_w(c, m, 1.0, 1.0)
    }

    /// The currently enforced (core, mem) levels.
    pub fn current_pair(&self) -> (usize, usize) {
        (
            self.platform.gpu().core().current_level(),
            self.platform.gpu().mem().current_level(),
        )
    }

    fn spec_powers(&self) -> (f64, f64) {
        let spec = self.platform.gpu().spec();
        let (nc, nm) = (spec.core_levels_mhz.len(), spec.mem_levels_mhz.len());
        (
            spec.power_at_levels_w(0, 0, 1.0, 1.0),
            spec.power_at_levels_w(nc - 1, nm - 1, 1.0, 1.0),
        )
    }

    /// What this node asks of the apportioner right now.
    pub fn demand(&self) -> NodeDemand {
        let (floor_w, peak_w) = self.spec_powers();
        let desired_w = if self.ctl.fallback_engaged() {
            // Fallback pins peak clocks; budget accordingly.
            peak_w
        } else {
            let (c, m) = self.ctl.desired_pair();
            self.platform.gpu().spec().power_at_levels_w(c, m, 1.0, 1.0)
        };
        NodeDemand {
            floor_mw: mw(floor_w),
            desired_mw: mw(desired_w),
            peak_mw: mw(peak_w),
            busy: self.job.is_some(),
        }
    }

    /// Re-applies the activity signature of the current (job, pair) state
    /// from `at` onward.
    fn refresh_activity(&mut self, at: SimTime) {
        let n_cores = self.platform.cpu().spec().n_cores;
        match &self.job {
            Some(run) => {
                let (c, m) = self.current_pair();
                let prof = &self.profiles[&run.spec.workload];
                let (uc, um) = (prof.u_core(c, m), prof.u_mem(c, m));
                self.platform.set_gpu_activity(at, uc, um);
                self.platform.set_cpu_activity(at, 1.0, n_cores);
            }
            None => {
                self.platform.set_gpu_activity(at, 0.0, 0.0);
                self.platform.set_cpu_activity(at, 0.0, 0);
            }
        }
    }

    /// Starts serving `job` at `now`. Panics if the node is busy.
    pub fn dispatch(&mut self, job: JobSpec, now: SimTime) {
        assert!(self.job.is_none(), "node {} is busy", self.id);
        self.job = Some(RunningJob {
            spec: job,
            started: now,
            progress: 0.0,
        });
        self.refresh_activity(now);
    }

    /// Advances job service from `from` to `to` at the current frequency
    /// pair, returning the completion record if the job finishes inside
    /// the window.
    pub fn advance(&mut self, from: SimTime, to: SimTime) -> Option<JobRecord> {
        let dt = to.saturating_since(from).as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        let run = self.job.as_mut()?;
        let (c, m) = (
            self.platform.gpu().core().current_level(),
            self.platform.gpu().mem().current_level(),
        );
        let full_s = self.profiles[&run.spec.workload].time_s(c, m) * run.spec.size;
        let need_s = (1.0 - run.progress) * full_s;
        if need_s <= dt * (1.0 + 1e-12) {
            // Completes inside this window, at the exact instant.
            let finished = from + SimDuration::from_secs_f64(need_s.max(0.0));
            self.busy_s += need_s.max(0.0);
            let run = self.job.take().expect("checked above");
            let missed_deadline = run.spec.deadline.is_some_and(|d| finished > d);
            let record = JobRecord {
                node: self.id,
                started: run.started,
                finished,
                missed_deadline,
                spec: run.spec,
            };
            self.completed += 1;
            self.refresh_activity(finished);
            Some(record)
        } else {
            run.progress += dt / full_s;
            self.busy_s += dt;
            None
        }
    }

    /// One control interval: install the cap, run the hardened controller
    /// (sense → masked policy decision → verified actuation), refresh the activity
    /// signature for the possibly new pair, and check cap compliance.
    /// Returns how far (watts) the enforced pair exceeds the cap — 0.0
    /// when compliant; a fallback node pinning peak clocks is the
    /// expected violator.
    pub fn control_tick(&mut self, now: SimTime, cap: MilliWatts) -> f64 {
        self.cap_w = cap as f64 / 1000.0;
        self.ctl.set_power_cap_w(Some(self.cap_w));
        self.ctl.on_dvfs_tick(&mut self.platform, now);
        self.refresh_activity(now);
        let over = (self.enforced_pair_power_w() - self.cap_w).max(0.0);
        if over > 1e-9 {
            self.cap_violations += 1;
        }
        over
    }

    /// Oracle-style placement estimate: (service seconds, GPU joules) for
    /// running `workload` of `size` here under the current cap.
    pub fn estimate(&self, workload: &str, size: f64) -> Option<(f64, f64)> {
        let prof = self.profiles.get(workload)?;
        Some(prof.best_under_cap(self.platform.gpu().spec(), self.cap_w, size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> Vec<String> {
        vec!["hotspot".to_string(), "kmeans".to_string()]
    }

    fn job(workload: &str, size: f64) -> JobSpec {
        JobSpec {
            id: 0,
            workload: workload.to_string(),
            arrival: SimTime::ZERO,
            size,
            deadline: None,
        }
    }

    #[test]
    fn job_completes_at_the_profiled_time() {
        let mut node = Node::new(0, &NodeConfig::default_node(), &mix(), 1);
        let expect = node.profile("hotspot").unwrap().peak_time_s() * 2.0;
        node.dispatch(job("hotspot", 2.0), SimTime::ZERO);
        assert!(!node.is_idle());
        // Advance well past the service time in two windows.
        let half = SimTime::from_secs_f64(expect / 2.0);
        assert!(node.advance(SimTime::ZERO, half).is_none());
        let rec = node
            .advance(half, SimTime::from_secs_f64(expect * 3.0))
            .expect("job must finish");
        assert!((rec.finished.saturating_since(SimTime::ZERO).as_secs_f64() - expect).abs() < 1e-6);
        assert!(node.is_idle());
        assert_eq!(node.completed(), 1);
    }

    #[test]
    fn capped_ticks_keep_the_pair_under_the_cap() {
        let mut node = Node::new(0, &NodeConfig::default_node(), &mix(), 1);
        node.dispatch(job("kmeans", 5.0), SimTime::ZERO);
        let cap_w = 0.75 * node.platform().gpu().spec().peak_power_w();
        let cap = mw(cap_w);
        let mut t = SimTime::ZERO;
        for k in 1..=10 {
            let next = SimTime::from_secs(k);
            node.advance(t, next);
            let over = node.control_tick(next, cap);
            assert_eq!(over, 0.0, "clean node violated its cap at tick {k}");
            t = next;
        }
        assert_eq!(node.cap_violations(), 0);
        assert!(node.enforced_pair_power_w() <= cap as f64 / 1000.0);
    }

    #[test]
    fn demand_reports_floor_and_peak() {
        let node = Node::new(3, &NodeConfig::default_node(), &mix(), 1);
        let d = node.demand();
        assert!(d.floor_mw < d.peak_mw);
        assert!(!d.busy);
        assert!(d.desired_mw >= d.floor_mw && d.desired_mw <= d.peak_mw);
    }

    #[test]
    fn nodes_run_any_freq_policy_under_a_cap() {
        use greengpu::{DeadlineParams, Exp3Params, UcbParams};
        let specs = [
            PolicySpec::Exp3(Exp3Params::default()),
            PolicySpec::Ucb(UcbParams::default()),
            PolicySpec::Deadline(DeadlineParams {
                time_budget_s: 120.0,
                ..DeadlineParams::default()
            }),
        ];
        for spec in specs {
            let cfg = NodeConfig::default_node().with_freq_policy(spec.clone());
            let mut node = Node::try_new(0, &cfg, &mix(), 1).expect("buildable");
            node.dispatch(job("kmeans", 5.0), SimTime::ZERO);
            let cap = mw(0.75 * node.platform().gpu().spec().peak_power_w());
            let mut t = SimTime::ZERO;
            for k in 1..=8 {
                let next = SimTime::from_secs(k);
                node.advance(t, next);
                let over = node.control_tick(next, cap);
                assert_eq!(over, 0.0, "{} node violated its cap at tick {k}", spec.kind());
                t = next;
            }
            assert_eq!(node.cap_violations(), 0);
            let d = node.demand();
            assert!(d.desired_mw >= d.floor_mw && d.desired_mw <= d.peak_mw);
        }
    }

    #[test]
    fn try_new_rejects_bad_specs_and_unknown_mixes() {
        use greengpu::WmaParams;
        let bad = NodeConfig::default_node().with_freq_policy(PolicySpec::Wma(WmaParams {
            beta: 0.0,
            ..WmaParams::default()
        }));
        let err = Node::try_new(0, &bad, &mix(), 1).err().expect("must refuse");
        assert!(err.contains("beta"), "{err}");
        let err = Node::try_new(0, &NodeConfig::default_node(), &["nope".to_string()], 1)
            .err()
            .expect("must refuse");
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn estimates_cover_the_mix() {
        let node = Node::new(0, &NodeConfig::default_node(), &mix(), 1);
        let (t, e) = node.estimate("kmeans", 1.0).unwrap();
        assert!(t > 0.0 && e > 0.0);
        assert!(node.estimate("nbody", 1.0).is_none(), "not in the mix");
    }
}
