//! Fleet-scale power-budget scheduling over per-node GreenGPU controllers.
//!
//! GreenGPU (ICPP 2012) manages energy *within* one GPU-CPU node. This
//! crate adds the datacenter tier above it: a deterministic, event-driven
//! simulator in which N heterogeneous nodes — each a full single-node
//! testbed ([`greengpu_hw::Platform`]) driven by the hardened two-tier
//! controller ([`greengpu::GreenGpuController`]) — serve a seeded
//! open-loop job arrival stream under one fleet-wide power budget.
//!
//! Three layers:
//!
//! 1. **Admission/dispatch** ([`scheduler`], [`policy`]): a bounded job
//!    queue with backpressure accounting and pluggable placement policies
//!    (round-robin, least-loaded, energy-aware via per-node oracle-style
//!    estimates over the frequency-pair tables).
//! 2. **Hierarchical power capping** ([`power`]): every control interval
//!    the fleet budget is re-apportioned into per-node caps — floors
//!    first, then the busy nodes' demand, then leftover headroom — in
//!    integer milliwatts so the summed caps *never* exceed the budget.
//!    Each node enforces its cap through the feasible-set mask of its
//!    Tier-2 frequency policy (any [`greengpu::PolicySpec`] variant — the
//!    paper's WMA, the switching-aware bandits, or the deadline-aware
//!    selector): the learner's state is intact, but its decision is
//!    restricted to frequency pairs whose modeled worst-case board power
//!    fits under the cap.
//! 3. **Fleet telemetry** ([`telemetry`]): a per-interval trace (queue
//!    depth, node utilization, power, caps, violations, deadline misses,
//!    lifecycle/breaker/retry state) rendered as CSV through
//!    [`greengpu_sim::Table`].
//! 4. **Failure lifecycle** ([`lifecycle`], [`breaker`], [`retry`]): a
//!    deterministic chaos schedule ([`greengpu_hw::ChaosPlan`]) crashes,
//!    thermally throttles, and blinds nodes; crashed nodes walk the
//!    `Up → Crashed → Restarting → Probation → Up` FSM, restore their
//!    learners from periodic checkpoints (warm restart) when possible,
//!    and re-enter service behind a per-node circuit breaker while lost
//!    jobs are re-dispatched with bounded exponential-backoff retries or
//!    dead-lettered.
//!
//! Everything derives from one seed through [`greengpu_sim::rng`], so the
//! same configuration and seed reproduce byte-identical traces. The
//! fault-injection seam composes: a node built with a
//! [`greengpu_hw::FaultPlan`] runs the same hardened controller, and once
//! its best-performance fallback engages the scheduler stops routing jobs
//! to it while the capping layer accounts its pinned-peak draw as cap
//! violations.

#![forbid(unsafe_code)]

pub mod breaker;
pub mod dispatch;
pub mod engine;
pub mod fleet;
pub mod job;
pub mod lifecycle;
pub mod node;
pub mod policy;
pub mod power;
pub mod profile;
pub mod retry;
pub mod scheduler;
pub mod telemetry;

pub use breaker::{BreakerState, CircuitBreaker};
pub use dispatch::{ServingConfig, TenantDispatcher};
pub use engine::EngineKind;
pub use fleet::{run_fleet, CrashRecord, FleetConfig, FleetReport};
pub use job::{ArrivalConfig, JobRecord, JobSpec};
pub use lifecycle::{LifecycleParams, NodeState};
pub use node::{LifecycleEvent, Node, NodeConfig, RecoveryRecord};
pub use policy::Policy;
pub use retry::RetryQueue;
// Convenience re-export: the per-node Tier-2 frequency-policy registry.
pub use greengpu::PolicySpec;
pub use power::{apportion, NodeDemand};
pub use profile::ServiceProfile;
pub use scheduler::Scheduler;
pub use telemetry::{FleetTrace, NameTable, ServingTrace, ServingTraceRow, TraceRow};
// Convenience re-export: the tenant/SLO/carbon model the serving layer
// composes with.
pub use greengpu_tenancy::{ArrivalProcess, CarbonSignal, SloClass, TenantConfig};
