//! Per-node circuit breaker for the fleet scheduler.
//!
//! A node that just crashed should not immediately receive the retried
//! jobs it lost — the classic breaker pattern gates dispatch instead:
//!
//! * **Closed** — dispatch allowed (the healthy default).
//! * **Open** — dispatch blocked for a cooldown that doubles on every
//!   consecutive trip (deterministic exponential backoff, capped).
//! * **Half-open** — the cooldown elapsed; the scheduler may send *probe*
//!   work. A success (a completed job or a cleared probation) closes the
//!   breaker and resets the backoff; another failure re-opens it with a
//!   longer cooldown.
//!
//! Everything is driven by the simulator's virtual clock, so breaker
//! transitions are as deterministic as the chaos schedule that causes
//! them.

use greengpu_sim::{SimDuration, SimTime};

/// Breaker states (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Dispatch allowed.
    Closed,
    /// Dispatch blocked until the cooldown elapses.
    Open,
    /// Cooldown elapsed; probe dispatch allowed.
    HalfOpen,
}

/// One node's circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    /// Base cooldown; trip `n` (0-based) waits `cooldown · 2^min(n, cap)`.
    cooldown_s: f64,
    max_backoff_exp: u32,
    /// Consecutive trips since the last success.
    backoff_exp: u32,
    open_until: SimTime,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given base cooldown and backoff cap.
    pub fn new(cooldown_s: f64, max_backoff_exp: u32) -> Self {
        assert!(
            cooldown_s.is_finite() && cooldown_s > 0.0,
            "cooldown_s must be positive"
        );
        CircuitBreaker {
            state: BreakerState::Closed,
            cooldown_s,
            max_backoff_exp,
            backoff_exp: 0,
            open_until: SimTime::ZERO,
            trips: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total times the breaker opened.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether the scheduler may send this node work right now
    /// (closed or probing — only `Open` blocks).
    pub fn allows_dispatch(&self) -> bool {
        self.state != BreakerState::Open
    }

    /// Records a failure (crash, lost job): opens the breaker for the
    /// current backoff cooldown and doubles the next one (capped).
    pub fn record_failure(&mut self, now: SimTime) {
        let exp = self.backoff_exp.min(self.max_backoff_exp);
        let cooldown = self.cooldown_s * f64::from(1u32 << exp);
        self.open_until = now + SimDuration::from_secs_f64(cooldown);
        self.state = BreakerState::Open;
        self.backoff_exp = self.backoff_exp.saturating_add(1).min(self.max_backoff_exp + 1);
        self.trips += 1;
    }

    /// Records a success (completed job, cleared probation): closes the
    /// breaker and resets the backoff.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.backoff_exp = 0;
    }

    /// Advances the clock: an open breaker whose cooldown elapsed becomes
    /// half-open (probe dispatch allowed).
    pub fn tick(&mut self, now: SimTime) {
        if self.state == BreakerState::Open && now >= self.open_until {
            self.state = BreakerState::HalfOpen;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let mut b = CircuitBreaker::new(4.0, 4);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows_dispatch());

        b.record_failure(at(10.0));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows_dispatch());
        assert_eq!(b.trips(), 1);

        b.tick(at(13.9));
        assert_eq!(b.state(), BreakerState::Open, "cooldown not elapsed");
        b.tick(at(14.0));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allows_dispatch(), "half-open allows probe work");

        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn consecutive_trips_double_the_cooldown_up_to_the_cap() {
        let mut b = CircuitBreaker::new(2.0, 2);
        // Trip 1: 2 s, trip 2: 4 s, trip 3: 8 s, trip 4+: still 8 s.
        for (trip, expect_s) in [(1u64, 2.0), (2, 4.0), (3, 8.0), (4, 8.0)] {
            b.record_failure(at(100.0));
            assert_eq!(b.trips(), trip);
            b.tick(at(100.0 + expect_s - 0.01));
            assert_eq!(b.state(), BreakerState::Open, "trip {trip} too short");
            b.tick(at(100.0 + expect_s));
            assert_eq!(b.state(), BreakerState::HalfOpen, "trip {trip} too long");
        }
        // A success resets the backoff to the base cooldown.
        b.record_success();
        b.record_failure(at(200.0));
        b.tick(at(202.0));
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn failure_while_half_open_reopens() {
        let mut b = CircuitBreaker::new(1.0, 4);
        b.record_failure(at(0.0));
        b.tick(at(1.0));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure(at(1.0));
        assert_eq!(b.state(), BreakerState::Open);
        b.tick(at(2.9));
        assert_eq!(b.state(), BreakerState::Open, "second cooldown is 2 s");
        b.tick(at(3.0));
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }
}
