//! The fleet execution engines: one event spine, three drivers.
//!
//! [`crate::run_fleet`] builds the simulation state (nodes, arrival and
//! chaos schedules, scheduler, breakers, retry queue) and hands it to
//! one of three engines selected by [`FleetConfig::engine`]:
//!
//! * [`EngineKind::Serial`] — the reference implementation: every node
//!   advances at every spine event and takes a full control tick every
//!   interval. Simple, obviously correct, `O(nodes)` work per event.
//! * [`EngineKind::EventDriven`] — the same spine, but idle nodes cost
//!   (nearly) nothing: job service advances over a **busy list** instead
//!   of the whole fleet, dead (`Crashed`/`Restarting`) nodes sleep on a
//!   min-heap **wake agenda** keyed by `(state_until, node_id)` until
//!   their next lifecycle transition is actually due, and idle healthy
//!   nodes whose controller state is provably a fixed point are
//!   **parked** ([`crate::Node::park_fingerprint`]) so their control
//!   ticks degrade to a sense-only quiescent check.
//! * [`EngineKind::Parallel`] — the event-driven engine plus
//!   deterministic data-parallelism on the two per-tick fan-outs (job
//!   advance, control ticks): a single-threaded sequencer assigns
//!   monotonic tickets with SplitMix64-derived per-ticket seeds, the
//!   workers of `greengpu_runtime::parallel::run_ticketed_mut` each own
//!   a disjoint contiguous slice of nodes, and a single-threaded
//!   committer folds the results back in strict ticket order.
//!
//! **Equivalence contract.** All three engines produce byte-identical
//! telemetry (trace CSV, [`crate::FleetReport`] counters,
//! [`crate::CrashRecord`]s) for the same config and seed — pinned by
//! `tests/engine_equivalence.rs`. The event-driven optimizations only
//! skip work that is provably an identity:
//!
//! * an idle node's [`crate::Node::advance`] returns without touching
//!   any state, so advancing only the busy list is exact — and every
//!   busy node still advances at *every* spine event, because job
//!   progress accumulates per-window (`progress += dt / full_s` is not
//!   associative over window splits);
//! * a dead node's [`crate::Node::lifecycle_tick`] is an identity before
//!   `state_until` (the only divergence, a stale thermal flag, is
//!   unreadable in those states and refreshed on wake);
//! * a parked node's quiescent tick senses in full (sensor windows and
//!   reject counters advance exactly as a real tick's would) and skips
//!   only a decide/actuate half that would re-derive the already
//!   enforced levels from an unchanged observation;
//! * a node parked under *exactly* the cap it is being handed skips the
//!   whole control tick (**deep park**): an idle node's utilization
//!   traces are constant zero, so the sense the skip drops would read
//!   bitwise `0.0` over any window — the only state left behind is the
//!   sensors' poll cursor, which [`crate::Node::dispatch`] catches up
//!   (while the traces are still flat) before a job can move them;
//! * a parked node's power demand, and the whole `apportion` call when
//!   no demand moved, reuse last tick's values — both are pure functions
//!   of state the park fingerprint freezes;
//! * a continuously-parked node's periodic checkpoint skips the JSON
//!   re-serialization: the learner state it would snapshot is bit-frozen
//!   while parked, so the stored bytes are already identical.
//!
//! The skipped work that is *not* bit-preserved is confined to
//! unobservable telemetry: per-policy decision-tracker counters, the
//! WMA scaler's interval count inside checkpoint payloads, CPU-governor
//! transition tallies, the controller's `cap_masked_intervals`, and the
//! sensors' last-poll cursor between deep-parked ticks. None of these
//! reach the trace CSV or the report.

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::dispatch::TenantDispatcher;
use crate::fleet::{CrashRecord, FleetConfig};
use crate::job::{JobRecord, JobSpec};
use crate::lifecycle::NodeState;
use crate::node::{LifecycleEvent, Node};
use crate::power::{apportion, MilliWatts, NodeDemand};
use crate::retry::RetryQueue;
use crate::scheduler::Scheduler;
use crate::telemetry::TraceRow;
use greengpu_hw::{ChaosEvent, ChaosKind};
use greengpu_runtime::parallel::{run_ticketed_mut, SplitTelemetry};
use greengpu_sim::{EventQueue, SimTime, SplitMix64};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which fleet engine executes the run. All three are equivalent —
/// byte-identical outputs per seed — and stay selectable so the serial
/// reference remains available as the differential-testing oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The reference engine: advance every node at every event, full
    /// control ticks everywhere.
    #[default]
    Serial,
    /// Discrete-event engine: busy-list advance, wake agenda for dead
    /// nodes, quiescent parking for idle fixed-point nodes.
    EventDriven,
    /// The event-driven engine with deterministic ticketed fan-out of
    /// the per-tick node batches across worker threads.
    Parallel {
        /// Worker thread count (>= 1; 1 behaves like `EventDriven`).
        workers: usize,
    },
}

impl EngineKind {
    /// Parses a CLI flag value (`serial` | `event` | `parallel`);
    /// `workers` only applies to `parallel`.
    pub fn from_flag(name: &str, workers: usize) -> Result<EngineKind, String> {
        match name {
            "serial" => Ok(EngineKind::Serial),
            "event" => Ok(EngineKind::EventDriven),
            "parallel" => {
                if workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                Ok(EngineKind::Parallel { workers })
            }
            other => Err(format!("unknown engine {other:?} (serial | event | parallel)")),
        }
    }

    /// Short stable label for benchmark and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Serial => "serial",
            EngineKind::EventDriven => "event",
            EngineKind::Parallel { .. } => "parallel",
        }
    }
}

/// Event payloads on the fleet spine.
pub(crate) enum Event {
    /// Index into the pre-generated arrival vector.
    Arrival(usize),
    /// A control tick.
    Tick,
    /// Index into the pre-generated chaos event vector (crashes and
    /// thermal emergencies; blackouts are installed at setup).
    Chaos(usize),
}

/// Everything `run_fleet` needs back from an engine to assemble the
/// [`crate::FleetReport`].
pub(crate) struct DriveOutcome {
    pub completed: Vec<JobRecord>,
    pub deadline_misses: u64,
    pub rows: Vec<TraceRow>,
    pub crash_records: Vec<CrashRecord>,
    pub jobs_lost: u64,
    /// Telemetry-blackout events that reached the runtime spine. Setup
    /// installs blackouts into the sensor stacks, so this should be 0;
    /// a stray one is counted and ignored rather than aborting the run
    /// (the fleet's panic-freedom contract).
    pub stray_blackout_events: u64,
}

/// Read-only inputs shared by every engine.
pub(crate) struct DriveInputs<'a> {
    pub cfg: &'a FleetConfig,
    pub jobs: &'a [JobSpec],
    pub chaos_events: &'a [ChaosEvent],
    pub budget_mw: MilliWatts,
    /// Root for the parallel engine's per-fan-out ticket seed streams.
    pub ticket_root: u64,
}

/// Smallest batch worth fanning out to worker threads; below this the
/// scoped-thread setup costs more than the work.
const PAR_MIN_BATCH: usize = 32;

/// Runs the configured engine over the spine to the horizon.
pub(crate) fn drive(
    inp: &DriveInputs,
    spine: EventQueue<Event>,
    nodes: &mut [Node],
    scheduler: &mut Scheduler,
    breakers: &mut [CircuitBreaker],
    retry: &mut RetryQueue,
    dispatcher: &mut TenantDispatcher,
) -> DriveOutcome {
    match inp.cfg.engine {
        EngineKind::Serial => drive_serial(inp, spine, nodes, scheduler, breakers, retry, dispatcher),
        EngineKind::EventDriven => drive_event(inp, spine, nodes, scheduler, breakers, retry, dispatcher, 1),
        EngineKind::Parallel { workers } => {
            drive_event(inp, spine, nodes, scheduler, breakers, retry, dispatcher, workers)
        }
    }
}

/// Mutable per-run bookkeeping shared by the engines' chaos handlers.
struct ChaosSideEffects<'a> {
    retry: &'a mut RetryQueue,
    breakers: &'a mut [CircuitBreaker],
    crash_records: &'a mut Vec<CrashRecord>,
    last_caps: &'a [MilliWatts],
    jobs_lost: &'a mut u64,
    stray_blackout_events: &'a mut u64,
}

/// Applies one spine chaos event. Returns the id of a node that just
/// crashed (entered `Crashed`), for the event engine's wake agenda.
fn apply_chaos(nodes: &mut [Node], ev: &ChaosEvent, t: SimTime, fx: &mut ChaosSideEffects) -> Option<usize> {
    match ev.kind {
        ChaosKind::Crash { outage_s } => {
            if nodes[ev.node].is_alive() {
                if let Some(job) = nodes[ev.node].crash(t, outage_s) {
                    *fx.jobs_lost += 1;
                    fx.retry.job_lost(job, t);
                }
                fx.breakers[ev.node].record_failure(t);
                fx.crash_records.push(CrashRecord {
                    node: ev.node,
                    at_s: t.saturating_since(SimTime::ZERO).as_secs_f64(),
                    cap_before_mw: fx.last_caps[ev.node],
                    cap_after_mw: None,
                });
                return Some(ev.node);
            }
        }
        ChaosKind::ThermalEmergency { duration_s } => {
            if nodes[ev.node].is_alive() {
                nodes[ev.node].thermal_emergency(t, duration_s);
            }
        }
        ChaosKind::TelemetryBlackout { .. } => {
            // Blackouts are installed into the sensor stacks at setup; a
            // stray runtime one is a schedule bug, not a reason to lose
            // the whole fleet run — count it and carry on.
            *fx.stray_blackout_events += 1;
        }
    }
    None
}

/// The reference engine: the original fleet loop, verbatim. Every node
/// advances at every event; every live node takes a full control tick.
#[allow(clippy::too_many_arguments)]
fn drive_serial(
    inp: &DriveInputs,
    mut spine: EventQueue<Event>,
    nodes: &mut [Node],
    scheduler: &mut Scheduler,
    breakers: &mut [CircuitBreaker],
    retry: &mut RetryQueue,
    dispatcher: &mut TenantDispatcher,
) -> DriveOutcome {
    let cfg = inp.cfg;
    let end = SimTime::ZERO + cfg.horizon;
    let mut last_completed: Vec<u64> = vec![0; nodes.len()];
    let mut last_caps: Vec<MilliWatts> = vec![0; nodes.len()];
    let mut crash_records: Vec<CrashRecord> = Vec::new();
    let mut jobs_lost = 0u64;
    let mut stray_blackout_events = 0u64;
    let mut completed: Vec<JobRecord> = Vec::new();
    let mut deadline_misses = 0u64;
    let mut rows = Vec::new();
    let mut t = SimTime::ZERO;
    let mut interval = 0u64;
    let mut tick_no = 0u64;

    while let Some((at, event)) = spine.pop() {
        for node in nodes.iter_mut() {
            if let Some(record) = node.advance(t, at) {
                if record.missed_deadline {
                    deadline_misses += 1;
                }
                completed.push(record);
            }
        }
        t = at;
        match event {
            Event::Arrival(i) => {
                dispatcher.on_arrival(inp.jobs[i].clone(), scheduler, t);
            }
            Event::Chaos(i) => {
                let mut fx = ChaosSideEffects {
                    retry,
                    breakers,
                    crash_records: &mut crash_records,
                    last_caps: &last_caps,
                    jobs_lost: &mut jobs_lost,
                    stray_blackout_events: &mut stray_blackout_events,
                };
                apply_chaos(nodes, &inp.chaos_events[i], t, &mut fx);
            }
            Event::Tick => {
                // 1. Failure FSMs and breaker clocks. A cleared probation
                // or a completion since the last tick closes the breaker.
                for i in 0..nodes.len() {
                    for ev in nodes[i].lifecycle_tick(t) {
                        if ev == LifecycleEvent::ProbationCleared {
                            breakers[i].record_success();
                        }
                    }
                }
                for b in breakers.iter_mut() {
                    b.tick(t);
                }
                for (i, node) in nodes.iter().enumerate() {
                    if node.completed() > last_completed[i] {
                        breakers[i].record_success();
                        last_completed[i] = node.completed();
                    }
                }
                // 2. Caps from the *current* demands: a node crashed since
                // the last tick demands nothing, so its budget is already
                // back in the pool here.
                let demands: Vec<_> = nodes.iter().map(Node::demand).collect();
                let caps = apportion(inp.budget_mw, &demands);
                for rec in crash_records.iter_mut().filter(|r| r.cap_after_mw.is_none()) {
                    rec.cap_after_mw = Some(caps[rec.node]);
                }
                last_caps.copy_from_slice(&caps);
                // 3. Control ticks on live nodes only.
                let mut max_over_w = 0.0f64;
                for (node, &cap) in nodes.iter_mut().zip(&caps) {
                    if node.is_alive() {
                        max_over_w = max_over_w.max(node.control_tick(t, cap));
                    }
                }
                // 4. Deferred best-effort jobs whose green window (or
                // horizon) arrived re-enter first, then retries re-enter
                // ahead of fresh arrivals (reversed so the earliest-ready
                // job ends up frontmost), then dispatch behind the
                // breaker mask.
                dispatcher.release_due(scheduler, t);
                for job in retry.drain_ready(t).into_iter().rev() {
                    scheduler.requeue_front(job);
                }
                let allowed: Vec<bool> = breakers.iter().map(CircuitBreaker::allows_dispatch).collect();
                scheduler.dispatch(nodes, &allowed, t);
                // 5. Periodic learner checkpoints on fully-Up nodes.
                if let Some(k) = cfg.lifecycle.checkpoint_period {
                    if tick_no > 0 && tick_no.is_multiple_of(k) {
                        for node in nodes.iter_mut() {
                            if node.state() == NodeState::Up {
                                node.take_checkpoint();
                            }
                        }
                    }
                }
                tick_no += 1;
                if t > SimTime::ZERO {
                    interval += 1;
                    rows.push(trace_row(
                        cfg,
                        nodes,
                        scheduler,
                        breakers,
                        retry,
                        &caps,
                        t,
                        interval,
                        &completed,
                        deadline_misses,
                        max_over_w,
                    ));
                    dispatcher.note_interval(t, interval);
                }
            }
        }
    }
    // Account service up to the horizon.
    for node in nodes.iter_mut() {
        if let Some(record) = node.advance(t, end) {
            if record.missed_deadline {
                deadline_misses += 1;
            }
            completed.push(record);
        }
    }

    DriveOutcome {
        completed,
        deadline_misses,
        rows,
        crash_records,
        jobs_lost,
        stray_blackout_events,
    }
}

/// The discrete-event engine (and, with `workers > 1`, the parallel
/// engine). See the module docs for the equivalence argument behind
/// each skipped batch of work.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn drive_event(
    inp: &DriveInputs,
    mut spine: EventQueue<Event>,
    nodes: &mut [Node],
    scheduler: &mut Scheduler,
    breakers: &mut [CircuitBreaker],
    retry: &mut RetryQueue,
    dispatcher: &mut TenantDispatcher,
    workers: usize,
) -> DriveOutcome {
    let cfg = inp.cfg;
    let end = SimTime::ZERO + cfg.horizon;
    let n = nodes.len();
    let mut last_completed: Vec<u64> = vec![0; n];
    let mut last_caps: Vec<MilliWatts> = vec![0; n];
    let mut crash_records: Vec<CrashRecord> = Vec::new();
    let mut jobs_lost = 0u64;
    let mut stray_blackout_events = 0u64;
    let mut completed: Vec<JobRecord> = Vec::new();
    let mut deadline_misses = 0u64;
    let mut rows = Vec::new();
    let mut t = SimTime::ZERO;
    let mut interval = 0u64;
    let mut tick_no = 0u64;

    // Busy list: ids of nodes with a job in service, ascending — the
    // only nodes `advance` can do anything to. Rebuilt in id order
    // after every dispatch; completions drop out as they land.
    let mut busy: Vec<usize> = Vec::new();
    // Wake agenda for dead nodes: `lifecycle_tick` is an identity on a
    // `Crashed`/`Restarting` node before its `state_until`, so such
    // nodes sleep here and are woken at the first tick at/after it.
    let mut agenda: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::new();
    let mut dormant: Vec<bool> = vec![false; n];
    // Ticketed fan-out plumbing (only exercised with `workers > 1`).
    let telemetry = SplitTelemetry::new();
    let mut fanout_roots = SplitMix64::new(inp.ticket_root);
    // Deep-park caches: a parked node's demand is a pure function of
    // state the park fingerprint freezes, so last tick's value is
    // bit-reusable; and when no demand moved, `apportion` (a pure
    // function of budget + demands) would reproduce last tick's caps.
    let mut prev_demands: Vec<NodeDemand> = Vec::new();
    let mut caps: Vec<MilliWatts> = Vec::new();

    // Advances service on the busy list from `from` to `to`, streaming
    // completions out in node-id order (busy is ascending), exactly as
    // the serial engine's advance-everyone loop would.
    let advance_busy = |nodes: &mut [Node],
                        busy: &mut Vec<usize>,
                        from: SimTime,
                        to: SimTime,
                        completed: &mut Vec<JobRecord>,
                        deadline_misses: &mut u64,
                        fanout_roots: &mut SplitMix64| {
        if busy.is_empty() {
            return;
        }
        if workers > 1 && busy.len() >= PAR_MIN_BATCH {
            // Fan the whole fleet out (contiguous disjoint slices per
            // worker); idle nodes are no-ops. The committer replays the
            // results in ticket (= node-id) order.
            let out = run_ticketed_mut(&telemetry, workers, fanout_roots.next_u64(), nodes, |_, node| {
                let record = node.advance(from, to);
                let still_busy = !node.is_idle();
                (record, still_busy)
            });
            busy.clear();
            for (i, (record, still_busy)) in out.into_iter().enumerate() {
                if let Some(record) = record {
                    if record.missed_deadline {
                        *deadline_misses += 1;
                    }
                    completed.push(record);
                }
                if still_busy {
                    busy.push(i);
                }
            }
        } else {
            let mut still = Vec::with_capacity(busy.len());
            for &i in busy.iter() {
                if let Some(record) = nodes[i].advance(from, to) {
                    if record.missed_deadline {
                        *deadline_misses += 1;
                    }
                    completed.push(record);
                }
                if !nodes[i].is_idle() {
                    still.push(i);
                }
            }
            *busy = still;
        }
    };

    while let Some((at, event)) = spine.pop() {
        advance_busy(
            nodes,
            &mut busy,
            t,
            at,
            &mut completed,
            &mut deadline_misses,
            &mut fanout_roots,
        );
        t = at;
        match event {
            Event::Arrival(i) => {
                dispatcher.on_arrival(inp.jobs[i].clone(), scheduler, t);
            }
            Event::Chaos(i) => {
                let mut fx = ChaosSideEffects {
                    retry,
                    breakers,
                    crash_records: &mut crash_records,
                    last_caps: &last_caps,
                    jobs_lost: &mut jobs_lost,
                    stray_blackout_events: &mut stray_blackout_events,
                };
                if let Some(crashed) = apply_chaos(nodes, &inp.chaos_events[i], t, &mut fx) {
                    // The node just went dark; sleep it until its next
                    // lifecycle transition is due. Its stale busy-list
                    // entry (job already taken) drops out on the next
                    // advance.
                    dormant[crashed] = true;
                    agenda.push(Reverse((nodes[crashed].state_until(), crashed)));
                }
            }
            Event::Tick => {
                // 1. Failure FSMs and breaker clocks — skipping dormant
                // nodes, waking the ones whose transition is due.
                while let Some(&Reverse((wake_at, id))) = agenda.peek() {
                    if wake_at > t {
                        break;
                    }
                    agenda.pop();
                    dormant[id] = false;
                }
                for i in 0..n {
                    if dormant[i] {
                        continue;
                    }
                    for ev in nodes[i].lifecycle_tick(t) {
                        if ev == LifecycleEvent::ProbationCleared {
                            breakers[i].record_success();
                        }
                    }
                    if matches!(nodes[i].state(), NodeState::Crashed | NodeState::Restarting) {
                        // Still (or newly) dark: back to sleep until the
                        // next transition instant.
                        dormant[i] = true;
                        agenda.push(Reverse((nodes[i].state_until(), i)));
                    }
                }
                for b in breakers.iter_mut() {
                    b.tick(t);
                }
                for (i, node) in nodes.iter().enumerate() {
                    if node.completed() > last_completed[i] {
                        breakers[i].record_success();
                        last_completed[i] = node.completed();
                    }
                }
                // 2. Caps from the current demands (identical to serial).
                // A parked node's demand is frozen by the park
                // fingerprint, so reuse last tick's value; and when no
                // demand moved at all, `apportion` would reproduce last
                // tick's caps bit-for-bit, so skip it too.
                let demands: Vec<NodeDemand> = nodes
                    .iter()
                    .enumerate()
                    .map(|(i, node)| {
                        if node.is_parked() && i < prev_demands.len() {
                            prev_demands[i]
                        } else {
                            node.demand()
                        }
                    })
                    .collect();
                if caps.is_empty() || demands != prev_demands {
                    caps = apportion(inp.budget_mw, &demands);
                }
                prev_demands = demands;
                for rec in crash_records.iter_mut().filter(|r| r.cap_after_mw.is_none()) {
                    rec.cap_after_mw = Some(caps[rec.node]);
                }
                last_caps.copy_from_slice(&caps);
                // 3. Control ticks on live nodes — through the parking
                // protocol, and fanned out when the fleet is big enough.
                // A node parked under exactly the cap it is being handed
                // is skipped outright (deep park): the fast path would
                // only re-read constant-zero idle utilizations and
                // rewrite every field with the same bits, and returns
                // 0.0 overage by the park invariant.
                let mut max_over_w = 0.0f64;
                if workers > 1 && n >= PAR_MIN_BATCH {
                    let caps_ref: &[MilliWatts] = &caps;
                    let overs = run_ticketed_mut(&telemetry, workers, fanout_roots.next_u64(), nodes, |tk, node| {
                        let cap = caps_ref[tk.index];
                        if node.is_alive() && node.parked_under() != Some(cap) {
                            node.control_tick_parkable(t, cap)
                        } else {
                            0.0
                        }
                    });
                    for over in overs {
                        max_over_w = max_over_w.max(over);
                    }
                } else {
                    for (node, &cap) in nodes.iter_mut().zip(&caps) {
                        if node.is_alive() && node.parked_under() != Some(cap) {
                            max_over_w = max_over_w.max(node.control_tick_parkable(t, cap));
                        }
                    }
                }
                // 4. Deferral releases, then retries, then dispatch
                // behind the breaker mask (identical to serial).
                dispatcher.release_due(scheduler, t);
                for job in retry.drain_ready(t).into_iter().rev() {
                    scheduler.requeue_front(job);
                }
                let allowed: Vec<bool> = breakers.iter().map(CircuitBreaker::allows_dispatch).collect();
                scheduler.dispatch(nodes, &allowed, t);
                // Dispatch may have put jobs on idle nodes; rebuild the
                // busy list in id order.
                busy.clear();
                busy.extend(nodes.iter().enumerate().filter(|(_, n)| !n.is_idle()).map(|(i, _)| i));
                // 5. Periodic learner checkpoints on fully-Up nodes.
                if let Some(k) = cfg.lifecycle.checkpoint_period {
                    if tick_no > 0 && tick_no.is_multiple_of(k) {
                        for node in nodes.iter_mut() {
                            if node.state() == NodeState::Up {
                                node.take_checkpoint();
                            }
                        }
                    }
                }
                tick_no += 1;
                if t > SimTime::ZERO {
                    interval += 1;
                    rows.push(trace_row(
                        cfg,
                        nodes,
                        scheduler,
                        breakers,
                        retry,
                        &caps,
                        t,
                        interval,
                        &completed,
                        deadline_misses,
                        max_over_w,
                    ));
                    dispatcher.note_interval(t, interval);
                }
            }
        }
    }
    // Account service up to the horizon.
    advance_busy(
        nodes,
        &mut busy,
        t,
        end,
        &mut completed,
        &mut deadline_misses,
        &mut fanout_roots,
    );

    DriveOutcome {
        completed,
        deadline_misses,
        rows,
        crash_records,
        jobs_lost,
        stray_blackout_events,
    }
}

/// One per-interval telemetry row — shared verbatim by all engines so
/// the CSV bytes cannot drift between them.
#[allow(clippy::too_many_arguments)]
fn trace_row(
    cfg: &FleetConfig,
    nodes: &[Node],
    scheduler: &Scheduler,
    breakers: &[CircuitBreaker],
    retry: &RetryQueue,
    caps: &[MilliWatts],
    t: SimTime,
    interval: u64,
    completed: &[JobRecord],
    deadline_misses: u64,
    max_over_w: f64,
) -> TraceRow {
    let window_start = SimTime::ZERO + cfg.control_period.mul_f64((interval - 1) as f64);
    let dt = t.saturating_since(window_start).as_secs_f64().max(1e-12);
    let gpu_power_w: f64 = nodes
        .iter()
        .map(|n| n.platform().gpu_energy_j(window_start, t))
        .sum::<f64>()
        / dt;
    let total_power_w: f64 = nodes
        .iter()
        .map(|n| n.platform().total_energy_j(window_start, t))
        .sum::<f64>()
        / dt;
    TraceRow {
        interval,
        time_s: t.saturating_since(SimTime::ZERO).as_secs_f64(),
        queue_depth: scheduler.depth(),
        busy_nodes: nodes.iter().filter(|n| !n.is_idle()).count(),
        healthy_nodes: nodes.iter().filter(|n| n.healthy()).count(),
        gpu_power_w,
        total_power_w,
        fleet_cap_w: caps.iter().sum::<u64>() as f64 / 1000.0,
        budget_w: cfg.budget_w,
        completed: completed.len() as u64,
        rejected: scheduler.rejected(),
        deadline_misses,
        cap_violations: nodes.iter().map(Node::cap_violations).sum(),
        max_pair_over_cap_w: max_over_w,
        up_nodes: nodes.iter().filter(|n| n.is_alive()).count(),
        open_breakers: breakers.iter().filter(|b| b.state() == BreakerState::Open).count(),
        retry_depth: retry.pending_len(),
        dead_lettered: retry.dead_letter().len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use greengpu_sim::SimDuration;

    /// Regression for the old `unreachable!("blackouts are installed at
    /// setup")` panic: a telemetry-blackout event that reaches the
    /// runtime spine (a schedule bug by construction — `run_fleet`
    /// filters them out) must be counted and ignored, never abort the
    /// fleet. Exercised on all three engines by driving the loop
    /// directly with a hand-built spine.
    #[test]
    fn stray_blackout_event_is_a_counted_noop() {
        for engine in [
            EngineKind::Serial,
            EngineKind::EventDriven,
            EngineKind::Parallel { workers: 2 },
        ] {
            let cfg = crate::FleetConfig::homogeneous(2, 0.9, Policy::LeastLoaded, SimDuration::from_secs(3), 11)
                .with_engine(engine);
            let mix: Vec<String> = cfg.arrivals.mix.iter().map(|(n, _)| n.clone()).collect();
            let mut nodes: Vec<Node> = cfg
                .nodes
                .iter()
                .enumerate()
                .map(|(i, nc)| Node::new(i, nc, &mix, 1234))
                .collect();
            let chaos_events = vec![ChaosEvent {
                at: SimTime::ZERO + SimDuration::from_secs(1),
                node: 0,
                kind: ChaosKind::TelemetryBlackout { duration_s: 1.0 },
            }];
            let mut spine: EventQueue<Event> = EventQueue::new();
            let mut tick_at = SimTime::ZERO;
            let end = SimTime::ZERO + cfg.horizon;
            while tick_at <= end {
                spine.schedule(tick_at, Event::Tick);
                tick_at += cfg.control_period;
            }
            spine.schedule(chaos_events[0].at, Event::Chaos(0));
            let mut scheduler = Scheduler::new(cfg.policy, cfg.queue_capacity);
            let mut breakers: Vec<CircuitBreaker> = (0..nodes.len())
                .map(|_| CircuitBreaker::new(cfg.lifecycle.breaker_cooldown_s, cfg.lifecycle.breaker_max_backoff_exp))
                .collect();
            let mut retry = RetryQueue::new(cfg.lifecycle.max_retries, cfg.lifecycle.retry_backoff_s);
            let mut dispatcher = TenantDispatcher::passthrough();
            let inputs = DriveInputs {
                cfg: &cfg,
                jobs: &[],
                chaos_events: &chaos_events,
                budget_mw: 1_000_000,
                ticket_root: 5,
            };
            let outcome = drive(
                &inputs,
                spine,
                &mut nodes,
                &mut scheduler,
                &mut breakers,
                &mut retry,
                &mut dispatcher,
            );
            assert_eq!(outcome.stray_blackout_events, 1, "engine {engine:?}");
            assert_eq!(outcome.rows.len(), 3, "engine {engine:?} still ran to the horizon");
        }
    }

    #[test]
    fn engine_flag_parsing_round_trips() {
        assert_eq!(EngineKind::from_flag("serial", 1), Ok(EngineKind::Serial));
        assert_eq!(EngineKind::from_flag("event", 4), Ok(EngineKind::EventDriven));
        assert_eq!(
            EngineKind::from_flag("parallel", 4),
            Ok(EngineKind::Parallel { workers: 4 })
        );
        assert!(EngineKind::from_flag("parallel", 0).is_err());
        assert!(EngineKind::from_flag("turbo", 1).is_err());
        assert_eq!(EngineKind::Parallel { workers: 4 }.label(), "parallel");
        assert_eq!(EngineKind::default(), EngineKind::Serial);
    }
}
