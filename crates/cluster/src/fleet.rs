//! The fleet simulator: nodes + scheduler + power capping + failure
//! lifecycle on one event spine.
//!
//! Three event kinds drive the run: job **arrivals** (pre-generated from
//! the seed), **control ticks** (fixed period), and **chaos events**
//! (crashes and thermal emergencies from an optional
//! [`greengpu_hw::ChaosPlan`]; telemetry blackouts are installed into the
//! nodes' sensor stacks up front). Between consecutive events every
//! node's frequency pair is constant, so job progress advances in closed
//! form and completions land at exact instants — the discrete-event
//! analog of the single-node engine's piecewise-constant stepping. Each
//! tick does, in order:
//!
//! 1. advance every node's failure FSM ([`Node::lifecycle_tick`]) and the
//!    circuit breakers' clocks; completions and cleared probations close
//!    breakers;
//! 2. re-apportion the fleet budget into per-node caps from the nodes'
//!    current demands ([`crate::power::apportion`]) — a node crashed
//!    since the last tick demands nothing, so its milliwatts flow back to
//!    the live nodes *this* interval;
//! 3. run every live node's hardened controller under its cap (sense →
//!    masked policy → verified actuation) and record cap compliance;
//! 4. re-admit crash-lost jobs whose retry backoff elapsed (ahead of
//!    fresh arrivals), then dispatch queued jobs to idle healthy alive
//!    nodes behind the circuit-breaker mask;
//! 5. checkpoint every `Up` node's learner each
//!    [`LifecycleParams::checkpoint_period`] ticks;
//! 6. append a telemetry row.
//!
//! Determinism: arrivals, workload profiles, chaos schedules, and any
//! fault plans all derive from `FleetConfig::seed` via
//! `greengpu_sim::rng`; node order is fixed; every map keyed by workload
//! name is a `BTreeMap`. Same config and seed ⇒ byte-identical trace CSV.

use crate::breaker::CircuitBreaker;
use crate::dispatch::{ServingConfig, TenantDispatcher};
use crate::engine::{drive, DriveInputs, EngineKind, Event};
use crate::job::{generate_arrivals, ArrivalConfig, JobRecord, JobSpec};
use crate::lifecycle::LifecycleParams;
use crate::node::{Node, NodeConfig, RecoveryRecord};
use crate::policy::Policy;
use crate::power::{mw_floor, MilliWatts};
use crate::profile::ServiceProfile;
use crate::retry::RetryQueue;
use crate::scheduler::Scheduler;
use crate::telemetry::{FleetTrace, ServingTrace};
use greengpu_hw::{ChaosEvent, ChaosKind, ChaosPlan};
use greengpu_sim::{EventQueue, SimDuration, SimTime, SplitMix64};
use greengpu_tenancy::{generate_tenant_arrivals, mix_union};
use std::collections::BTreeMap;

/// Full description of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The nodes, in id order.
    pub nodes: Vec<NodeConfig>,
    /// Fleet-wide GPU power budget, watts. Must cover the summed node
    /// floors (a budget below the floors cannot be enforced by DVFS —
    /// that regime needs power-gating, which the testbed cards lack).
    pub budget_w: f64,
    /// Placement policy.
    pub policy: Policy,
    /// Control interval for capping + DVFS + dispatch.
    pub control_period: SimDuration,
    /// Simulated horizon; arrivals stop and the trace ends here.
    pub horizon: SimDuration,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Arrival stream shape (ignored when `serving` is set — tenants
    /// bring their own arrival processes).
    pub arrivals: ArrivalConfig,
    /// Optional multi-tenant serving layer: named tenants with their own
    /// arrival processes, workload mixes, and SLO classes, dispatched
    /// against a carbon signal. `None` runs the anonymous single stream.
    pub serving: Option<ServingConfig>,
    /// Optional chaos schedule (crashes, thermal emergencies, telemetry
    /// blackouts); `None` runs the fleet failure-free.
    pub chaos: Option<ChaosPlan>,
    /// Failure-lifecycle tuning (restart/probation durations, checkpoint
    /// period, retry budget, breaker cooldowns).
    pub lifecycle: LifecycleParams,
    /// Which execution engine drives the run. All engines produce
    /// byte-identical outputs per seed (see [`crate::engine`]); the
    /// serial default is the differential-testing oracle.
    pub engine: EngineKind,
    /// Master seed; every stream in the run derives from it.
    pub seed: u64,
}

impl FleetConfig {
    /// A homogeneous fleet of `n` default nodes at `budget_frac` of the
    /// fleet's aggregate peak-pair power, with a hotspot/kmeans mix sized
    /// to ≈70 % offered load.
    pub fn homogeneous(n: usize, budget_frac: f64, policy: Policy, horizon: SimDuration, seed: u64) -> Self {
        let nodes = vec![NodeConfig::default_node(); n];
        FleetConfig::from_nodes(nodes, budget_frac, policy, horizon, seed)
    }

    /// Like [`FleetConfig::homogeneous`] but with explicit nodes; the
    /// budget is `budget_frac` of the summed peak-pair powers and the
    /// arrival rate targets ≈70 % load on the mix's mean service time.
    pub fn from_nodes(
        nodes: Vec<NodeConfig>,
        budget_frac: f64,
        policy: Policy,
        horizon: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        let peak_sum: f64 = nodes
            .iter()
            .map(|n| {
                let (nc, nm) = (n.gpu.core_levels_mhz.len(), n.gpu.mem_levels_mhz.len());
                n.gpu.power_at_levels_w(nc - 1, nm - 1, 1.0, 1.0)
            })
            .sum();
        // The registry's small presets run ~40-50 s at peak clocks; the
        // cluster quantum should be a few seconds, so normalize the size
        // multipliers to a target mean service time and derive the
        // arrival rate from it.
        const TARGET_JOB_S: f64 = 8.0;
        let profile_seed = SplitMix64::new(seed).next_u64();
        let mean_peak: f64 = ["hotspot", "kmeans"]
            .iter()
            .map(|name| {
                crate::profile::ServiceProfile::build(name, profile_seed, &nodes[0].gpu)
                    .expect("registry workload")
                    .peak_time_s()
            })
            .sum::<f64>()
            / 2.0;
        let base_size = TARGET_JOB_S / mean_peak;
        let rate = ArrivalConfig::rate_for_load(0.7, nodes.len(), TARGET_JOB_S);
        let mut arrivals = ArrivalConfig::hotspot_kmeans(rate);
        arrivals.size_range = (0.5 * base_size, 1.5 * base_size);
        FleetConfig {
            nodes,
            budget_w: budget_frac * peak_sum,
            policy,
            control_period: SimDuration::from_secs(1),
            horizon,
            queue_capacity: 32,
            arrivals,
            serving: None,
            chaos: None,
            lifecycle: LifecycleParams::default(),
            engine: EngineKind::Serial,
            seed,
        }
    }

    /// Attaches a chaos schedule (builder style).
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Attaches a multi-tenant serving layer (builder style). The
    /// tenants' arrival processes replace [`FleetConfig::arrivals`].
    pub fn with_serving(mut self, serving: ServingConfig) -> Self {
        self.serving = Some(serving);
        self
    }

    /// The size multiplier that maps a size-1 job onto the fleet's ~8 s
    /// cluster quantum — the same normalization
    /// [`FleetConfig::from_nodes`] bakes into the anonymous stream's
    /// size range. Serving configs scale their tenant size ranges by
    /// this so jobs land on the quantum regardless of the card's raw
    /// profile times. Falls back to 1.0 if node 0's card cannot profile
    /// the reference mix.
    pub fn reference_size_scale(&self) -> f64 {
        const TARGET_JOB_S: f64 = 8.0;
        let Some(node0) = self.nodes.first() else {
            return 1.0;
        };
        let profile_seed = SplitMix64::new(self.seed).next_u64();
        let mut sum = 0.0f64;
        for name in ["hotspot", "kmeans"] {
            match ServiceProfile::build(name, profile_seed, &node0.gpu) {
                Some(p) => sum += p.peak_time_s(),
                None => return 1.0,
            }
        }
        TARGET_JOB_S / (sum / 2.0)
    }

    /// Selects the execution engine (builder style).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the failure-lifecycle tuning (builder style).
    pub fn with_lifecycle(mut self, params: LifecycleParams) -> Self {
        self.lifecycle = params;
        self
    }

    /// Non-panicking configuration check, naming the offending field —
    /// the config-path counterpart of `WmaParams::try_validate`. Node
    /// construction re-validates the per-node policy specs; this catches
    /// fleet-level mistakes before any node is built.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("nodes must not be empty".to_string());
        }
        if !(self.budget_w.is_finite() && self.budget_w > 0.0) {
            return Err(format!("budget_w must be finite and positive, got {}", self.budget_w));
        }
        if self.control_period.as_secs_f64() <= 0.0 {
            return Err("control_period must be positive".to_string());
        }
        if self.horizon.as_secs_f64() <= 0.0 {
            return Err("horizon must be positive".to_string());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".to_string());
        }
        if self.serving.is_none() && self.arrivals.mix.is_empty() {
            return Err("arrivals.mix must not be empty".to_string());
        }
        if let Some(serving) = &self.serving {
            serving.try_validate().map_err(|msg| format!("serving: {msg}"))?;
        }
        if let EngineKind::Parallel { workers } = self.engine {
            if workers == 0 {
                return Err("engine: parallel workers must be at least 1".to_string());
            }
        }
        if let Some(plan) = &self.chaos {
            plan.try_validate().map_err(|msg| format!("chaos: {msg}"))?;
        }
        self.lifecycle
            .try_validate()
            .map_err(|msg| format!("lifecycle: {msg}"))?;
        for (i, node) in self.nodes.iter().enumerate() {
            node.freq_policy
                .try_validate()
                .map_err(|msg| format!("node {i}: {msg}"))?;
        }
        Ok(())
    }
}

/// The power-capping audit of one crash: the dark node's cap before the
/// crash and at the first re-apportionment after it. The reclamation
/// criterion is `cap_after_mw == Some(0)` — the crashed node's milliwatts
/// are back in the pool within one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashRecord {
    /// The crashed node's id.
    pub node: usize,
    /// Crash instant, seconds.
    pub at_s: f64,
    /// The node's cap at the last apportionment before the crash.
    pub cap_before_mw: MilliWatts,
    /// The node's cap at the first apportionment after the crash (`None`
    /// only if the run ended before another tick).
    pub cap_after_mw: Option<MilliWatts>,
}

/// Everything a fleet run produced.
pub struct FleetReport {
    /// Per-interval telemetry.
    pub trace: FleetTrace,
    /// Completed jobs, in completion order.
    pub completed: Vec<JobRecord>,
    /// Per-node completed-job counts.
    pub per_node_completed: Vec<u64>,
    /// Jobs rejected by admission.
    pub rejected: u64,
    /// Completed jobs that missed their deadline.
    pub deadline_misses: u64,
    /// Node-intervals whose enforced pair exceeded the cap.
    pub cap_violations: u64,
    /// Nodes whose controller fell back to best-performance.
    pub nodes_fallen_back: usize,
    /// GPU board energy over the horizon, joules.
    pub gpu_energy_j: f64,
    /// Whole-fleet (GPU + CPU) energy over the horizon, joules.
    pub total_energy_j: f64,
    /// The horizon, seconds.
    pub horizon_s: f64,
    /// Jobs admitted by the scheduler (for conservation checks:
    /// `admitted == completed + dead_letter + in_flight_at_end`).
    pub admitted: u64,
    /// Jobs still in the system at the horizon (queued, in service, or
    /// waiting out a retry backoff).
    pub in_flight_at_end: u64,
    /// Chaos crashes that landed on live nodes.
    pub crashes: u64,
    /// Restarts that restored a checkpoint.
    pub warm_restarts: u64,
    /// Restarts that cold-started.
    pub cold_restarts: u64,
    /// Checkpoints rejected at restore time (each also counts a cold
    /// restart).
    pub restore_failures: u64,
    /// Thermal emergencies that landed on live nodes.
    pub thermal_events: u64,
    /// Telemetry-blackout windows installed across the fleet.
    pub blackout_windows: u64,
    /// Blackout events that (wrongly) reached the runtime spine instead
    /// of being installed at setup — counted and ignored, never fatal.
    pub stray_blackout_events: u64,
    /// Jobs lost to crashes (each enters the retry queue or dead-letters).
    pub jobs_lost: u64,
    /// Re-dispatches queued by the retry machinery.
    pub jobs_retried: u64,
    /// Jobs that exhausted their retry budget.
    pub dead_letter: Vec<JobSpec>,
    /// Circuit-breaker openings across the fleet.
    pub breaker_trips: u64,
    /// Post-restart learner recoveries, in node order then crash order.
    pub recoveries: Vec<RecoveryRecord>,
    /// Per-crash power-capping audit, in crash order.
    pub crash_records: Vec<CrashRecord>,
    /// Best-effort jobs parked for a green window over the run.
    pub jobs_deferred: u64,
    /// Deferred jobs released back into admission over the run.
    pub jobs_released: u64,
    /// Jobs still parked in the deferral queue at the horizon. The
    /// serving conservation ledger is `admitted == completed +
    /// dead_letter + deferred_pending_at_end + in_flight_at_end`.
    pub deferred_pending_at_end: u64,
    /// Per-interval serving telemetry (empty on single-stream runs).
    pub serving_trace: ServingTrace,
    /// Tenant names in index order (empty on single-stream runs).
    pub tenant_names: Vec<String>,
    /// Per-tenant admitted counts, indexed like `tenant_names`
    /// (single-stream runs report one implicit tenant).
    pub admitted_by_tenant: Vec<u64>,
    /// Per-tenant rejected counts, indexed like `tenant_names`.
    pub rejected_by_tenant: Vec<u64>,
}

impl FleetReport {
    /// Mean queueing delay of completed jobs, seconds.
    pub fn mean_wait_s(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().map(JobRecord::wait_s).sum::<f64>() / self.completed.len() as f64
    }

    /// Mean arrival-to-completion time of completed jobs, seconds.
    pub fn mean_turnaround_s(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().map(JobRecord::turnaround_s).sum::<f64>() / self.completed.len() as f64
    }

    /// GPU energy per completed job, joules (0 when nothing completed).
    pub fn gpu_energy_per_job_j(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.gpu_energy_j / self.completed.len() as f64
    }

    /// Mean control intervals to re-reach the pre-crash argmax pair,
    /// over warm (or cold) recoveries; `None` when no such recovery
    /// completed.
    pub fn mean_recovery_intervals(&self, warm: bool) -> Option<f64> {
        let mut n = 0u64;
        let mut sum = 0u64;
        for r in self.recoveries.iter().filter(|r| r.warm == warm) {
            n += 1;
            sum += r.intervals;
        }
        (n > 0).then(|| sum as f64 / n as f64)
    }
}

/// Runs one fleet to its horizon.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    if let Err(msg) = cfg.try_validate() {
        panic!("invalid fleet config: {msg}");
    }
    let mix_names: Vec<String> = match &cfg.serving {
        Some(serving) => mix_union(&serving.tenants),
        None => cfg.arrivals.mix.iter().map(|(n, _)| n.clone()).collect(),
    };
    let mut root = SplitMix64::new(cfg.seed);
    let profile_seed = root.next_u64();
    let arrival_seed = root.next_u64();
    // Drawn unconditionally so engine choice cannot shift any other
    // stream; only the parallel engine's ticket sequencer consumes it.
    let ticket_root = root.next_u64();

    // Profiling a workload mix is the expensive part of node
    // construction; nodes sharing a GPU spec share one profile table.
    let mut profile_cache: BTreeMap<String, BTreeMap<String, ServiceProfile>> = BTreeMap::new();
    let mut nodes: Vec<Node> = Vec::with_capacity(cfg.nodes.len());
    for (i, nc) in cfg.nodes.iter().enumerate() {
        let key = format!("{:?}", nc.gpu);
        let node = match profile_cache.get(&key) {
            Some(profiles) => Node::new_with_profiles(i, nc, profiles.clone(), profile_seed),
            None => {
                let node = Node::new(i, nc, &mix_names, profile_seed);
                profile_cache.insert(key, node.profile_table().clone());
                node
            }
        };
        nodes.push(node);
    }
    for node in &mut nodes {
        node.set_lifecycle(cfg.lifecycle.restart_s, cfg.lifecycle.probation_intervals);
    }

    // Chaos: blackout windows go straight into the nodes' sensor stacks
    // (before any control tick); crashes and thermal emergencies go on
    // the event spine.
    let mut blackout_windows = 0u64;
    let mut chaos_events: Vec<ChaosEvent> = Vec::new();
    if let Some(plan) = &cfg.chaos {
        let mut per_node: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); nodes.len()];
        for ev in plan.schedule(nodes.len(), cfg.horizon.as_secs_f64()) {
            match ev.kind {
                ChaosKind::TelemetryBlackout { duration_s } => {
                    per_node[ev.node].push((ev.at, ev.at + SimDuration::from_secs_f64(duration_s)));
                    blackout_windows += 1;
                }
                ChaosKind::Crash { .. } | ChaosKind::ThermalEmergency { .. } => {
                    chaos_events.push(ev);
                }
            }
        }
        for (node, windows) in nodes.iter_mut().zip(per_node) {
            if !windows.is_empty() {
                node.set_blackouts(windows);
            }
        }
    }

    // Budget sanity: DVFS can only shed power down to the floor pair.
    let floor_sum_mw: u64 = nodes.iter().map(|n| n.demand().floor_mw).sum();
    // Floor-rounded: the integer caps must never sum past the stated
    // watt budget.
    let budget_mw = mw_floor(cfg.budget_w);
    assert!(
        budget_mw >= floor_sum_mw,
        "budget {budget_mw} mW cannot cover the fleet floor {floor_sum_mw} mW"
    );

    // Reference service times (node 0's card) anchor the deadlines.
    let ref_time_s: BTreeMap<String, f64> = mix_names
        .iter()
        .map(|name| {
            let t = nodes[0].profile(name).expect("mix profiled").peak_time_s();
            (name.clone(), t)
        })
        .collect();
    // Serving runs reuse `arrival_seed` for the tenant streams, so no
    // extra root draw happens and the single-stream golden traces are
    // untouched.
    let jobs: Vec<JobSpec> = match &cfg.serving {
        Some(serving) => generate_tenant_arrivals(arrival_seed, &serving.tenants, cfg.horizon.as_secs_f64())
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let arrival = SimTime::ZERO + SimDuration::from_secs_f64(a.at_s);
                let deadline = a.deadline_slack.map(|slack| {
                    let reference = ref_time_s.get(&a.workload).copied().unwrap_or(1.0);
                    arrival + SimDuration::from_secs_f64(reference * a.size * slack)
                });
                JobSpec {
                    id: i as u64,
                    workload: a.workload,
                    arrival,
                    size: a.size,
                    deadline,
                    tenant: a.tenant,
                }
            })
            .collect(),
        None => generate_arrivals(arrival_seed, &cfg.arrivals, cfg.horizon, &ref_time_s),
    };

    // Spine: ticks scheduled first so a same-instant arrival waits for
    // the *next* tick (FIFO tie-break).
    let mut spine: EventQueue<Event> = EventQueue::new();
    let mut tick_at = SimTime::ZERO;
    let end = SimTime::ZERO + cfg.horizon;
    while tick_at <= end {
        spine.schedule(tick_at, Event::Tick);
        tick_at += cfg.control_period;
    }
    for (i, job) in jobs.iter().enumerate() {
        spine.schedule(job.arrival, Event::Arrival(i));
    }
    // Chaos last, so a crash at a tick/arrival instant lands after them:
    // the crashed node's cap is reclaimed at the *next* tick — within one
    // interval, the reclamation criterion.
    for (i, ev) in chaos_events.iter().enumerate() {
        spine.schedule(ev.at, Event::Chaos(i));
    }

    let mut scheduler = Scheduler::new(cfg.policy, cfg.queue_capacity);
    let mut breakers: Vec<CircuitBreaker> = (0..nodes.len())
        .map(|_| CircuitBreaker::new(cfg.lifecycle.breaker_cooldown_s, cfg.lifecycle.breaker_max_backoff_exp))
        .collect();
    let mut retry = RetryQueue::new(cfg.lifecycle.max_retries, cfg.lifecycle.retry_backoff_s);
    let mut dispatcher = match &cfg.serving {
        Some(serving) => TenantDispatcher::from_serving(serving),
        None => TenantDispatcher::passthrough(),
    };

    let inputs = DriveInputs {
        cfg,
        jobs: &jobs,
        chaos_events: &chaos_events,
        budget_mw,
        ticket_root,
    };
    let outcome = drive(
        &inputs,
        spine,
        &mut nodes,
        &mut scheduler,
        &mut breakers,
        &mut retry,
        &mut dispatcher,
    );

    let n_tenants = cfg.serving.as_ref().map_or(1, |s| s.tenants.len());
    FleetReport {
        trace: FleetTrace { rows: outcome.rows },
        per_node_completed: nodes.iter().map(Node::completed).collect(),
        rejected: scheduler.rejected(),
        deadline_misses: outcome.deadline_misses,
        cap_violations: nodes.iter().map(Node::cap_violations).sum(),
        nodes_fallen_back: nodes.iter().filter(|n| !n.healthy()).count(),
        gpu_energy_j: nodes
            .iter()
            .map(|n| n.platform().gpu_energy_j(SimTime::ZERO, end))
            .sum(),
        total_energy_j: nodes
            .iter()
            .map(|n| n.platform().total_energy_j(SimTime::ZERO, end))
            .sum(),
        horizon_s: cfg.horizon.as_secs_f64(),
        admitted: scheduler.admitted(),
        in_flight_at_end: scheduler.depth() as u64
            + retry.pending_len() as u64
            + nodes.iter().filter(|n| !n.is_idle()).count() as u64,
        crashes: nodes.iter().map(Node::crashes).sum(),
        warm_restarts: nodes.iter().map(Node::warm_restarts).sum(),
        cold_restarts: nodes.iter().map(Node::cold_restarts).sum(),
        restore_failures: nodes.iter().map(Node::restore_failures).sum(),
        thermal_events: nodes.iter().map(Node::thermal_events).sum(),
        blackout_windows,
        stray_blackout_events: outcome.stray_blackout_events,
        jobs_lost: outcome.jobs_lost,
        jobs_retried: retry.retried(),
        dead_letter: retry.dead_letter().to_vec(),
        breaker_trips: breakers.iter().map(CircuitBreaker::trips).sum(),
        recoveries: nodes.iter().flat_map(|n| n.recoveries().iter().copied()).collect(),
        crash_records: outcome.crash_records,
        jobs_deferred: dispatcher.jobs_deferred(),
        jobs_released: dispatcher.jobs_released(),
        deferred_pending_at_end: dispatcher.pending_len() as u64,
        serving_trace: dispatcher.take_trace(),
        tenant_names: cfg
            .serving
            .as_ref()
            .map_or_else(Vec::new, |s| s.tenants.iter().map(|t| t.name.clone()).collect()),
        admitted_by_tenant: scheduler.admitted_by_tenant(n_tenants),
        rejected_by_tenant: scheduler.rejected_by_tenant(n_tenants),
        completed: outcome.completed,
    }
}
