//! The fleet simulator: nodes + scheduler + power capping on one event
//! spine.
//!
//! Two event kinds drive the run: job **arrivals** (pre-generated from
//! the seed) and **control ticks** (fixed period). Between consecutive
//! events every node's frequency pair is constant, so job progress
//! advances in closed form and completions land at exact instants — the
//! discrete-event analog of the single-node engine's piecewise-constant
//! stepping. Each tick does, in order:
//!
//! 1. re-apportion the fleet budget into per-node caps from the nodes'
//!    current demands ([`crate::power::apportion`]);
//! 2. run every node's hardened controller under its cap (sense → masked
//!    WMA → verified actuation) and record cap compliance;
//! 3. dispatch queued jobs to idle healthy nodes per the placement
//!    policy;
//! 4. append a telemetry row.
//!
//! Determinism: arrivals, workload profiles, and any fault plans all
//! derive from `FleetConfig::seed` via `greengpu_sim::rng`; node order is
//! fixed; every map keyed by workload name is a `BTreeMap`. Same config
//! and seed ⇒ byte-identical trace CSV.

use crate::job::{generate_arrivals, ArrivalConfig, JobRecord};
use crate::node::{Node, NodeConfig};
use crate::policy::Policy;
use crate::power::{apportion, mw_floor};
use crate::scheduler::Scheduler;
use crate::telemetry::{FleetTrace, TraceRow};
use greengpu_sim::{EventQueue, SimDuration, SimTime, SplitMix64};
use std::collections::BTreeMap;

/// Full description of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The nodes, in id order.
    pub nodes: Vec<NodeConfig>,
    /// Fleet-wide GPU power budget, watts. Must cover the summed node
    /// floors (a budget below the floors cannot be enforced by DVFS —
    /// that regime needs power-gating, which the testbed cards lack).
    pub budget_w: f64,
    /// Placement policy.
    pub policy: Policy,
    /// Control interval for capping + DVFS + dispatch.
    pub control_period: SimDuration,
    /// Simulated horizon; arrivals stop and the trace ends here.
    pub horizon: SimDuration,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Arrival stream shape.
    pub arrivals: ArrivalConfig,
    /// Master seed; every stream in the run derives from it.
    pub seed: u64,
}

impl FleetConfig {
    /// A homogeneous fleet of `n` default nodes at `budget_frac` of the
    /// fleet's aggregate peak-pair power, with a hotspot/kmeans mix sized
    /// to ≈70 % offered load.
    pub fn homogeneous(n: usize, budget_frac: f64, policy: Policy, horizon: SimDuration, seed: u64) -> Self {
        let nodes = vec![NodeConfig::default_node(); n];
        FleetConfig::from_nodes(nodes, budget_frac, policy, horizon, seed)
    }

    /// Like [`FleetConfig::homogeneous`] but with explicit nodes; the
    /// budget is `budget_frac` of the summed peak-pair powers and the
    /// arrival rate targets ≈70 % load on the mix's mean service time.
    pub fn from_nodes(
        nodes: Vec<NodeConfig>,
        budget_frac: f64,
        policy: Policy,
        horizon: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        let peak_sum: f64 = nodes
            .iter()
            .map(|n| {
                let (nc, nm) = (n.gpu.core_levels_mhz.len(), n.gpu.mem_levels_mhz.len());
                n.gpu.power_at_levels_w(nc - 1, nm - 1, 1.0, 1.0)
            })
            .sum();
        // The registry's small presets run ~40-50 s at peak clocks; the
        // cluster quantum should be a few seconds, so normalize the size
        // multipliers to a target mean service time and derive the
        // arrival rate from it.
        const TARGET_JOB_S: f64 = 8.0;
        let profile_seed = SplitMix64::new(seed).next_u64();
        let mean_peak: f64 = ["hotspot", "kmeans"]
            .iter()
            .map(|name| {
                crate::profile::ServiceProfile::build(name, profile_seed, &nodes[0].gpu)
                    .expect("registry workload")
                    .peak_time_s()
            })
            .sum::<f64>()
            / 2.0;
        let base_size = TARGET_JOB_S / mean_peak;
        let rate = ArrivalConfig::rate_for_load(0.7, nodes.len(), TARGET_JOB_S);
        let mut arrivals = ArrivalConfig::hotspot_kmeans(rate);
        arrivals.size_range = (0.5 * base_size, 1.5 * base_size);
        FleetConfig {
            nodes,
            budget_w: budget_frac * peak_sum,
            policy,
            control_period: SimDuration::from_secs(1),
            horizon,
            queue_capacity: 32,
            arrivals,
            seed,
        }
    }

    /// Non-panicking configuration check, naming the offending field —
    /// the config-path counterpart of `WmaParams::try_validate`. Node
    /// construction re-validates the per-node policy specs; this catches
    /// fleet-level mistakes before any node is built.
    pub fn try_validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("nodes must not be empty".to_string());
        }
        if !(self.budget_w.is_finite() && self.budget_w > 0.0) {
            return Err(format!("budget_w must be finite and positive, got {}", self.budget_w));
        }
        if self.control_period.as_secs_f64() <= 0.0 {
            return Err("control_period must be positive".to_string());
        }
        if self.horizon.as_secs_f64() <= 0.0 {
            return Err("horizon must be positive".to_string());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".to_string());
        }
        if self.arrivals.mix.is_empty() {
            return Err("arrivals.mix must not be empty".to_string());
        }
        for (i, node) in self.nodes.iter().enumerate() {
            node.freq_policy
                .try_validate()
                .map_err(|msg| format!("node {i}: {msg}"))?;
        }
        Ok(())
    }
}

/// Everything a fleet run produced.
pub struct FleetReport {
    /// Per-interval telemetry.
    pub trace: FleetTrace,
    /// Completed jobs, in completion order.
    pub completed: Vec<JobRecord>,
    /// Per-node completed-job counts.
    pub per_node_completed: Vec<u64>,
    /// Jobs rejected by admission.
    pub rejected: u64,
    /// Completed jobs that missed their deadline.
    pub deadline_misses: u64,
    /// Node-intervals whose enforced pair exceeded the cap.
    pub cap_violations: u64,
    /// Nodes whose controller fell back to best-performance.
    pub nodes_fallen_back: usize,
    /// GPU board energy over the horizon, joules.
    pub gpu_energy_j: f64,
    /// Whole-fleet (GPU + CPU) energy over the horizon, joules.
    pub total_energy_j: f64,
    /// The horizon, seconds.
    pub horizon_s: f64,
}

impl FleetReport {
    /// Mean queueing delay of completed jobs, seconds.
    pub fn mean_wait_s(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().map(JobRecord::wait_s).sum::<f64>() / self.completed.len() as f64
    }

    /// Mean arrival-to-completion time of completed jobs, seconds.
    pub fn mean_turnaround_s(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().map(JobRecord::turnaround_s).sum::<f64>() / self.completed.len() as f64
    }

    /// GPU energy per completed job, joules (0 when nothing completed).
    pub fn gpu_energy_per_job_j(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.gpu_energy_j / self.completed.len() as f64
    }
}

/// Event payloads on the fleet spine.
enum Event {
    /// Index into the pre-generated arrival vector.
    Arrival(usize),
    /// A control tick.
    Tick,
}

/// Runs one fleet to its horizon.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    if let Err(msg) = cfg.try_validate() {
        panic!("invalid fleet config: {msg}");
    }
    let mix_names: Vec<String> = cfg.arrivals.mix.iter().map(|(n, _)| n.clone()).collect();
    let mut root = SplitMix64::new(cfg.seed);
    let profile_seed = root.next_u64();
    let arrival_seed = root.next_u64();

    let mut nodes: Vec<Node> = cfg
        .nodes
        .iter()
        .enumerate()
        .map(|(i, nc)| Node::new(i, nc, &mix_names, profile_seed))
        .collect();

    // Budget sanity: DVFS can only shed power down to the floor pair.
    let floor_sum_mw: u64 = nodes.iter().map(|n| n.demand().floor_mw).sum();
    // Floor-rounded: the integer caps must never sum past the stated
    // watt budget.
    let budget_mw = mw_floor(cfg.budget_w);
    assert!(
        budget_mw >= floor_sum_mw,
        "budget {budget_mw} mW cannot cover the fleet floor {floor_sum_mw} mW"
    );

    // Reference service times (node 0's card) anchor the deadlines.
    let ref_time_s: BTreeMap<String, f64> = mix_names
        .iter()
        .map(|name| {
            let t = nodes[0].profile(name).expect("mix profiled").peak_time_s();
            (name.clone(), t)
        })
        .collect();
    let jobs = generate_arrivals(arrival_seed, &cfg.arrivals, cfg.horizon, &ref_time_s);

    // Spine: ticks scheduled first so a same-instant arrival waits for
    // the *next* tick (FIFO tie-break).
    let mut spine: EventQueue<Event> = EventQueue::new();
    let mut tick_at = SimTime::ZERO;
    let end = SimTime::ZERO + cfg.horizon;
    while tick_at <= end {
        spine.schedule(tick_at, Event::Tick);
        tick_at += cfg.control_period;
    }
    for (i, job) in jobs.iter().enumerate() {
        spine.schedule(job.arrival, Event::Arrival(i));
    }

    let mut scheduler = Scheduler::new(cfg.policy, cfg.queue_capacity);
    let mut completed: Vec<JobRecord> = Vec::new();
    let mut deadline_misses = 0u64;
    let mut rows = Vec::new();
    let mut t = SimTime::ZERO;
    let mut interval = 0u64;

    while let Some((at, event)) = spine.pop() {
        for node in &mut nodes {
            if let Some(record) = node.advance(t, at) {
                if record.missed_deadline {
                    deadline_misses += 1;
                }
                completed.push(record);
            }
        }
        t = at;
        match event {
            Event::Arrival(i) => {
                scheduler.submit(jobs[i].clone());
            }
            Event::Tick => {
                let demands: Vec<_> = nodes.iter().map(Node::demand).collect();
                let caps = apportion(budget_mw, &demands);
                let mut max_over_w = 0.0f64;
                for (node, &cap) in nodes.iter_mut().zip(&caps) {
                    max_over_w = max_over_w.max(node.control_tick(t, cap));
                }
                scheduler.dispatch(&mut nodes, t);
                if t > SimTime::ZERO {
                    interval += 1;
                    let window_start = SimTime::ZERO + cfg.control_period.mul_f64((interval - 1) as f64);
                    let dt = t.saturating_since(window_start).as_secs_f64().max(1e-12);
                    let gpu_power_w: f64 = nodes
                        .iter()
                        .map(|n| n.platform().gpu_energy_j(window_start, t))
                        .sum::<f64>()
                        / dt;
                    let total_power_w: f64 = nodes
                        .iter()
                        .map(|n| n.platform().total_energy_j(window_start, t))
                        .sum::<f64>()
                        / dt;
                    rows.push(TraceRow {
                        interval,
                        time_s: t.saturating_since(SimTime::ZERO).as_secs_f64(),
                        queue_depth: scheduler.depth(),
                        busy_nodes: nodes.iter().filter(|n| !n.is_idle()).count(),
                        healthy_nodes: nodes.iter().filter(|n| n.healthy()).count(),
                        gpu_power_w,
                        total_power_w,
                        fleet_cap_w: caps.iter().sum::<u64>() as f64 / 1000.0,
                        budget_w: cfg.budget_w,
                        completed: completed.len() as u64,
                        rejected: scheduler.rejected(),
                        deadline_misses,
                        cap_violations: nodes.iter().map(Node::cap_violations).sum(),
                        max_pair_over_cap_w: max_over_w,
                    });
                }
            }
        }
    }
    // Account service up to the horizon.
    for node in &mut nodes {
        if let Some(record) = node.advance(t, end) {
            if record.missed_deadline {
                deadline_misses += 1;
            }
            completed.push(record);
        }
    }

    FleetReport {
        trace: FleetTrace { rows },
        per_node_completed: nodes.iter().map(Node::completed).collect(),
        rejected: scheduler.rejected(),
        deadline_misses,
        cap_violations: nodes.iter().map(Node::cap_violations).sum(),
        nodes_fallen_back: nodes.iter().filter(|n| !n.healthy()).count(),
        gpu_energy_j: nodes
            .iter()
            .map(|n| n.platform().gpu_energy_j(SimTime::ZERO, end))
            .sum(),
        total_energy_j: nodes
            .iter()
            .map(|n| n.platform().total_energy_j(SimTime::ZERO, end))
            .sum(),
        horizon_s: cfg.horizon.as_secs_f64(),
        completed,
    }
}
