//! Jobs and the seeded open-loop arrival stream.
//!
//! A job is one run of a Table II workload (by registry name) with a size
//! multiplier and an optional completion deadline. Arrivals are open-loop
//! — a Poisson process whose rate does not react to the fleet — which is
//! the standard stress model for admission control: the queue, not the
//! clients, absorbs overload.

use greengpu_sim::{Pcg32, SimDuration, SimTime, SplitMix64};
use std::collections::BTreeMap;

/// One submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Monotone submission id.
    pub id: u64,
    /// Table II registry name (`hotspot`, `kmeans`, …).
    pub workload: String,
    /// Submission time.
    pub arrival: SimTime,
    /// Service-time multiplier relative to the profiled run.
    pub size: f64,
    /// Optional absolute completion deadline.
    pub deadline: Option<SimTime>,
    /// Owning tenant's index in the serving config (0 for the anonymous
    /// single-stream runs, which behave as one implicit tenant).
    pub tenant: usize,
}

/// Completion record of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job as submitted.
    pub spec: JobSpec,
    /// Node that served it.
    pub node: usize,
    /// Dispatch time.
    pub started: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// Whether a deadline existed and was missed.
    pub missed_deadline: bool,
    /// GPU board energy attributed to this job's service windows, joules
    /// (the profile's pair energy prorated by per-window progress, so it
    /// reflects the frequency pairs the job actually ran under).
    pub gpu_energy_j: f64,
}

impl JobRecord {
    /// Queueing delay before dispatch, seconds.
    pub fn wait_s(&self) -> f64 {
        self.started.saturating_since(self.spec.arrival).as_secs_f64()
    }

    /// Arrival-to-completion time, seconds.
    pub fn turnaround_s(&self) -> f64 {
        self.finished.saturating_since(self.spec.arrival).as_secs_f64()
    }
}

/// Arrival-stream shape: rate, workload mix, sizes, deadlines.
#[derive(Debug, Clone)]
pub struct ArrivalConfig {
    /// Mean arrival rate, jobs per second (exponential interarrivals).
    pub rate_per_s: f64,
    /// Workload mix as `(registry name, weight)`; weights need not sum
    /// to 1.
    pub mix: Vec<(String, f64)>,
    /// Uniform size-multiplier range.
    pub size_range: (f64, f64),
    /// Fraction of jobs carrying a deadline.
    pub deadline_frac: f64,
    /// Deadline slack as a uniform multiplier range over the job's
    /// reference (peak-clock) service time.
    pub deadline_slack: (f64, f64),
}

impl ArrivalConfig {
    /// A 50/50 hotspot/kmeans mix — the sweep default.
    pub fn hotspot_kmeans(rate_per_s: f64) -> Self {
        ArrivalConfig {
            rate_per_s,
            mix: vec![("hotspot".to_string(), 1.0), ("kmeans".to_string(), 1.0)],
            size_range: (0.5, 2.0),
            deadline_frac: 0.5,
            deadline_slack: (2.0, 6.0),
        }
    }

    /// The arrival rate that drives `n_nodes` nodes at `load` utilization
    /// given the mean reference service time of the mix.
    pub fn rate_for_load(load: f64, n_nodes: usize, mean_service_s: f64) -> f64 {
        assert!(mean_service_s > 0.0, "mean service time must be positive");
        load * n_nodes as f64 / mean_service_s
    }
}

// Child-stream selectors for the arrival generator.
const STREAM_INTERARRIVAL: u64 = 0xC1_0001;
const STREAM_MIX: u64 = 0xC1_0002;
const STREAM_SIZE: u64 = 0xC1_0003;
const STREAM_DEADLINE: u64 = 0xC1_0004;

/// Generates the full arrival stream inside `[0, horizon)`.
///
/// `ref_time_s` maps each mix entry to its reference (peak-clock, size
/// 1.0) service time, used to scale deadlines so they are tight but
/// meetable. All randomness derives from `seed` via independent
/// [`Pcg32`] streams, so the stream is reproducible and insensitive to
/// evaluation order elsewhere.
pub fn generate_arrivals(
    seed: u64,
    cfg: &ArrivalConfig,
    horizon: SimDuration,
    ref_time_s: &BTreeMap<String, f64>,
) -> Vec<JobSpec> {
    assert!(cfg.rate_per_s > 0.0, "arrival rate must be positive");
    assert!(!cfg.mix.is_empty(), "empty workload mix");
    let root = SplitMix64::new(seed).next_u64();
    let mut r_gap = Pcg32::new(root, STREAM_INTERARRIVAL);
    let mut r_mix = Pcg32::new(root, STREAM_MIX);
    let mut r_size = Pcg32::new(root, STREAM_SIZE);
    let mut r_dl = Pcg32::new(root, STREAM_DEADLINE);
    let total_weight: f64 = cfg.mix.iter().map(|(_, w)| w).sum();

    let mut jobs = Vec::new();
    let mut t = 0.0f64;
    let horizon_s = horizon.as_secs_f64();
    loop {
        // Exponential interarrival; 1-u keeps the argument strictly
        // positive.
        let u = r_gap.next_f64();
        t += -(1.0 - u).ln() / cfg.rate_per_s;
        if t >= horizon_s {
            break;
        }
        let mut pick = r_mix.next_f64() * total_weight;
        let mut name = cfg.mix[0].0.as_str();
        for (n, w) in &cfg.mix {
            name = n.as_str();
            pick -= w;
            if pick <= 0.0 {
                break;
            }
        }
        let size = r_size.uniform(cfg.size_range.0, cfg.size_range.1);
        let arrival = SimTime::ZERO + SimDuration::from_secs_f64(t);
        let with_deadline = r_dl.next_f64() < cfg.deadline_frac;
        let slack = r_dl.uniform(cfg.deadline_slack.0, cfg.deadline_slack.1);
        let deadline = if with_deadline {
            let reference = ref_time_s.get(name).copied().unwrap_or(1.0);
            Some(arrival + SimDuration::from_secs_f64(reference * size * slack))
        } else {
            None
        };
        jobs.push(JobSpec {
            id: jobs.len() as u64,
            workload: name.to_string(),
            arrival,
            size,
            deadline,
            tenant: 0,
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_times() -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("hotspot".to_string(), 2.0);
        m.insert("kmeans".to_string(), 3.0);
        m
    }

    #[test]
    fn arrival_stream_is_deterministic() {
        let cfg = ArrivalConfig::hotspot_kmeans(0.5);
        let a = generate_arrivals(7, &cfg, SimDuration::from_secs(200), &ref_times());
        let b = generate_arrivals(7, &cfg, SimDuration::from_secs(200), &ref_times());
        assert_eq!(a, b);
        let c = generate_arrivals(8, &cfg, SimDuration::from_secs(200), &ref_times());
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn arrivals_are_ordered_and_in_horizon() {
        let cfg = ArrivalConfig::hotspot_kmeans(1.0);
        let horizon = SimDuration::from_secs(300);
        let jobs = generate_arrivals(42, &cfg, horizon, &ref_times());
        assert!(!jobs.is_empty());
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i as u64);
            assert!(j.arrival.saturating_since(SimTime::ZERO) < horizon);
            assert!((cfg.size_range.0..=cfg.size_range.1).contains(&j.size));
            if let Some(d) = j.deadline {
                assert!(d > j.arrival);
            }
        }
    }

    #[test]
    fn rate_tracks_the_configured_mean() {
        let cfg = ArrivalConfig::hotspot_kmeans(2.0);
        let jobs = generate_arrivals(3, &cfg, SimDuration::from_secs(2000), &ref_times());
        let rate = jobs.len() as f64 / 2000.0;
        assert!((rate - 2.0).abs() < 0.2, "empirical rate {rate}");
    }

    #[test]
    fn mix_covers_both_workloads() {
        let cfg = ArrivalConfig::hotspot_kmeans(1.0);
        let jobs = generate_arrivals(11, &cfg, SimDuration::from_secs(500), &ref_times());
        assert!(jobs.iter().any(|j| j.workload == "hotspot"));
        assert!(jobs.iter().any(|j| j.workload == "kmeans"));
    }

    #[test]
    fn load_helper_inverts_littles_law() {
        let rate = ArrivalConfig::rate_for_load(0.7, 4, 2.0);
        assert!((rate - 1.4).abs() < 1e-12);
    }
}
