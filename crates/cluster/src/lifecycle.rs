//! The node failure-lifecycle FSM and its tuning knobs.
//!
//! A chaos crash moves a node through four states:
//!
//! ```text
//!          crash                    outage elapses
//!   Up ───────────► Crashed ──────────────────────► Restarting
//!   ▲                                                    │
//!   │   probation_intervals clean ticks                  │ restart_s
//!   └───────────────────────── Probation ◄───────────────┘
//!                                          (checkpoint restored → warm,
//!                                           else cold)
//! ```
//!
//! * **Crashed** — the node is dark: learner state and the in-flight job
//!   are gone, its power demand is zero, and the fleet reclaims its
//!   milliwatts the *same* interval (the acceptance criterion).
//! * **Restarting** — the supervisor is rebuilding the controller; the
//!   node draws only its floor power and accepts no work.
//! * **Probation** — the node is back up and controllable but the
//!   scheduler's circuit breaker decides separately when to trust it with
//!   jobs again; after [`LifecycleParams::probation_intervals`] clean
//!   control ticks it returns to full `Up`.
//!
//! Checkpointing is the warm-restart half: every
//! [`LifecycleParams::checkpoint_period`] control ticks each `Up` node
//! snapshots its controller (see `greengpu::GreenGpuController::snapshot`);
//! a restart restores the last checkpoint when one exists and parses,
//! otherwise it cold-starts and the failure is counted.

/// Where a node is in the failure lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Healthy and serving.
    Up,
    /// Dark after a crash; waiting out the outage.
    Crashed,
    /// Supervisor restart in progress.
    Restarting,
    /// Back up, counting down clean intervals before full trust.
    Probation,
}

impl NodeState {
    /// Stable lowercase name for telemetry columns.
    pub fn name(self) -> &'static str {
        match self {
            NodeState::Up => "up",
            NodeState::Crashed => "crashed",
            NodeState::Restarting => "restarting",
            NodeState::Probation => "probation",
        }
    }
}

/// Fleet-wide failure-lifecycle tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleParams {
    /// Seconds a restart takes once the outage ends.
    pub restart_s: f64,
    /// Clean control ticks before a restarted node leaves probation.
    pub probation_intervals: u64,
    /// Control ticks between learner checkpoints; `None` disables
    /// checkpointing (every restart is cold).
    pub checkpoint_period: Option<u64>,
    /// Re-dispatch attempts for a job lost to a crash before it is
    /// dead-lettered.
    pub max_retries: u32,
    /// Base of the exponential re-dispatch backoff: attempt `n` waits
    /// `retry_backoff_s · 2^(n−1)` seconds.
    pub retry_backoff_s: f64,
    /// Base cooldown of an opened circuit breaker; doubles per
    /// consecutive trip up to `2^breaker_max_backoff_exp`.
    pub breaker_cooldown_s: f64,
    /// Cap on the breaker's cooldown doubling.
    pub breaker_max_backoff_exp: u32,
}

impl Default for LifecycleParams {
    fn default() -> Self {
        LifecycleParams {
            restart_s: 2.0,
            probation_intervals: 3,
            checkpoint_period: Some(10),
            max_retries: 2,
            retry_backoff_s: 2.0,
            breaker_cooldown_s: 4.0,
            breaker_max_backoff_exp: 4,
        }
    }
}

impl LifecycleParams {
    /// Non-panicking range check naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        if !self.restart_s.is_finite() || self.restart_s <= 0.0 {
            return Err(format!("restart_s must be finite and positive, got {}", self.restart_s));
        }
        if self.probation_intervals == 0 {
            return Err("probation_intervals must be at least 1".to_string());
        }
        if self.checkpoint_period == Some(0) {
            return Err("checkpoint_period must be at least 1 (or None to disable)".to_string());
        }
        if !self.retry_backoff_s.is_finite() || self.retry_backoff_s <= 0.0 {
            return Err(format!(
                "retry_backoff_s must be finite and positive, got {}",
                self.retry_backoff_s
            ));
        }
        if !self.breaker_cooldown_s.is_finite() || self.breaker_cooldown_s <= 0.0 {
            return Err(format!(
                "breaker_cooldown_s must be finite and positive, got {}",
                self.breaker_cooldown_s
            ));
        }
        if self.breaker_max_backoff_exp > 20 {
            return Err(format!(
                "breaker_max_backoff_exp must be at most 20, got {}",
                self.breaker_max_backoff_exp
            ));
        }
        Ok(())
    }

    /// A configuration with checkpointing disabled — every restart cold.
    pub fn cold_restarts(mut self) -> Self {
        self.checkpoint_period = None;
        self
    }

    /// Sets the checkpoint period (builder style).
    pub fn with_checkpoint_period(mut self, period: u64) -> Self {
        self.checkpoint_period = Some(period);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        assert!(LifecycleParams::default().try_validate().is_ok());
    }

    #[test]
    fn validation_names_the_offending_field() {
        let check = |mutate: &dyn Fn(&mut LifecycleParams), field: &str| {
            let mut p = LifecycleParams::default();
            mutate(&mut p);
            assert!(p.try_validate().unwrap_err().contains(field), "{field}");
        };
        check(&|p| p.restart_s = 0.0, "restart_s");
        check(&|p| p.probation_intervals = 0, "probation_intervals");
        check(&|p| p.checkpoint_period = Some(0), "checkpoint_period");
        check(&|p| p.retry_backoff_s = f64::NAN, "retry_backoff_s");
        check(&|p| p.breaker_cooldown_s = -1.0, "breaker_cooldown_s");
        check(&|p| p.breaker_max_backoff_exp = 64, "breaker_max_backoff_exp");
    }

    #[test]
    fn builders_toggle_checkpointing() {
        assert_eq!(LifecycleParams::default().cold_restarts().checkpoint_period, None);
        assert_eq!(
            LifecycleParams::default().with_checkpoint_period(5).checkpoint_period,
            Some(5)
        );
    }

    #[test]
    fn state_names_are_stable() {
        assert_eq!(NodeState::Up.name(), "up");
        assert_eq!(NodeState::Crashed.name(), "crashed");
        assert_eq!(NodeState::Restarting.name(), "restarting");
        assert_eq!(NodeState::Probation.name(), "probation");
    }
}
