//! Differential harness for the fleet engines: serial ≡ event-driven ≡
//! parallel (1/2/4/8 workers), byte-for-byte.
//!
//! The serial engine is the oracle — the original advance-everything
//! loop, untouched. The event-driven engine skips work (idle advance,
//! dormant lifecycle ticks, quiescent control ticks) only where the
//! skip is provably an identity, and the parallel engine adds ticketed
//! worker fan-out on top; if any of those arguments is wrong, the trace
//! CSV, the completion stream, the crash audit, or a conservation
//! counter diverges and these tests catch it.

use greengpu::{DeadlineParams, Exp3Params, UcbParams};
use greengpu_cluster::{run_fleet, EngineKind, FleetConfig, FleetReport, NodeConfig, Policy, PolicySpec};
use greengpu_hw::ChaosPlan;
use greengpu_sim::SimDuration;
use proptest::prelude::*;

/// One spec per Tier-2 policy family: the quiescent-parking fast path
/// must be exact for parking policies (WMA, deadline) and must simply
/// never engage for the randomized/count-based ones (EXP3, UCB).
fn freq_policy_specs() -> [PolicySpec; 4] {
    [
        PolicySpec::default(),
        PolicySpec::Exp3(Exp3Params::default()),
        PolicySpec::Ucb(UcbParams::default()),
        PolicySpec::Deadline(DeadlineParams {
            time_budget_s: 120.0,
            ..DeadlineParams::default()
        }),
    ]
}

/// A small fleet with every failure mechanism armed: crashes, thermal
/// emergencies, and telemetry blackouts.
fn fleet_cfg(n: usize, spec: &PolicySpec, chaos: bool, secs: u64, seed: u64) -> FleetConfig {
    let nodes: Vec<NodeConfig> = (0..n)
        .map(|_| NodeConfig::default_node().with_freq_policy(spec.clone()))
        .collect();
    let mut cfg = FleetConfig::from_nodes(nodes, 0.8, Policy::LeastLoaded, SimDuration::from_secs(secs), seed);
    if chaos {
        cfg = cfg.with_chaos(
            ChaosPlan::crashes_only(seed ^ 0xC4A05, 0.02, (2.0, 6.0))
                .with_thermal(0.01, (3.0, 8.0))
                .with_blackouts(0.01, (2.0, 5.0)),
        );
    }
    cfg
}

/// Everything a run can observably produce, flattened to one string.
/// `{:?}` on `f64` prints the shortest round-trip representation, so
/// equal digests mean bit-equal floats, not merely close ones.
fn digest(report: &FleetReport) -> String {
    let csv = report.trace.to_table("equivalence").to_csv();
    format!(
        "csv={csv}\nrows={rows:?}\ncompleted={completed:?}\nper_node={per_node:?}\n\
         crash_records={crash_records:?}\nrecoveries={recoveries:?}\ndead_letter={dead_letter:?}\n\
         counters=({rejected},{deadline_misses},{cap_violations},{fallen_back},{admitted},\
         {in_flight},{crashes},{warm},{cold},{restore_failures},{thermal},{blackouts},{stray},\
         {jobs_lost},{jobs_retried},{breaker_trips})\n\
         energy=({gpu:?},{total:?},{horizon:?})",
        rows = report.trace.rows,
        completed = report.completed,
        per_node = report.per_node_completed,
        crash_records = report.crash_records,
        recoveries = report.recoveries,
        dead_letter = report.dead_letter,
        rejected = report.rejected,
        deadline_misses = report.deadline_misses,
        cap_violations = report.cap_violations,
        fallen_back = report.nodes_fallen_back,
        admitted = report.admitted,
        in_flight = report.in_flight_at_end,
        crashes = report.crashes,
        warm = report.warm_restarts,
        cold = report.cold_restarts,
        restore_failures = report.restore_failures,
        thermal = report.thermal_events,
        blackouts = report.blackout_windows,
        stray = report.stray_blackout_events,
        jobs_lost = report.jobs_lost,
        jobs_retried = report.jobs_retried,
        breaker_trips = report.breaker_trips,
        gpu = report.gpu_energy_j,
        total = report.total_energy_j,
        horizon = report.horizon_s,
    )
}

/// Runs one config under every engine and asserts all digests equal the
/// serial oracle's.
fn assert_engines_agree(cfg: &FleetConfig) {
    let oracle = digest(&run_fleet(&cfg.clone().with_engine(EngineKind::Serial)));
    let engines = [
        EngineKind::EventDriven,
        EngineKind::Parallel { workers: 1 },
        EngineKind::Parallel { workers: 2 },
        EngineKind::Parallel { workers: 4 },
        EngineKind::Parallel { workers: 8 },
    ];
    for engine in engines {
        let got = digest(&run_fleet(&cfg.clone().with_engine(engine)));
        assert_eq!(
            got, oracle,
            "engine {engine:?} diverged from serial (seed {})",
            cfg.seed
        );
    }
}

#[test]
fn all_policy_families_agree_under_chaos() {
    for (k, spec) in freq_policy_specs().iter().enumerate() {
        let cfg = fleet_cfg(4, spec, true, 40, 0xE0_0001 + k as u64);
        assert_engines_agree(&cfg);
    }
}

#[test]
fn failure_free_runs_agree() {
    let cfg = fleet_cfg(3, &PolicySpec::default(), false, 40, 77);
    assert_engines_agree(&cfg);
}

#[test]
fn tight_deadlines_agree_and_actually_miss() {
    // Deadlines at sub-nominal slack guarantee misses, so the
    // `deadline_misses` counter (and the per-record `missed_deadline`
    // flag inside `completed`) is genuinely exercised by the diff — a
    // mutation audit showed the default scenarios never miss.
    let mut cfg = fleet_cfg(4, &freq_policy_specs()[3], true, 40, 0xD15C);
    cfg.arrivals.deadline_frac = 1.0;
    cfg.arrivals.deadline_slack = (0.7, 1.0);
    let oracle = run_fleet(&cfg.clone().with_engine(EngineKind::Serial));
    assert!(
        oracle.deadline_misses > 0,
        "scenario must actually produce deadline misses"
    );
    assert_engines_agree(&cfg);
}

#[test]
fn big_fleet_exercises_the_threaded_fanout() {
    // 40 nodes crosses the engine's fan-out threshold (32), so the
    // parallel engines actually spawn worker lanes here; doubling the
    // arrival rate pushes the busy count over the threshold too, making
    // the advance fan-out fire, not just the control-tick one.
    let mut cfg = fleet_cfg(40, &PolicySpec::default(), true, 12, 4242);
    cfg.arrivals.rate_per_s *= 2.0;
    let oracle = digest(&run_fleet(&cfg.clone().with_engine(EngineKind::Serial)));
    for engine in [EngineKind::EventDriven, EngineKind::Parallel { workers: 4 }] {
        let got = digest(&run_fleet(&cfg.clone().with_engine(engine)));
        assert_eq!(got, oracle, "engine {engine:?} diverged on the big fleet");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline differential property: random fleet shapes, random
    /// seeds, every policy family, chaos on or off — all engines emit
    /// byte-identical telemetry.
    #[test]
    fn engines_agree_on_random_fleets(
        n in 2usize..6,
        policy_idx in 0usize..4,
        chaos in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let spec = &freq_policy_specs()[policy_idx];
        let cfg = fleet_cfg(n, spec, chaos, 25, seed);
        let oracle = digest(&run_fleet(&cfg.clone().with_engine(EngineKind::Serial)));
        for engine in [
            EngineKind::EventDriven,
            EngineKind::Parallel { workers: 2 },
            EngineKind::Parallel { workers: 8 },
        ] {
            let got = digest(&run_fleet(&cfg.clone().with_engine(engine)));
            prop_assert_eq!(&got, &oracle, "engine {:?} diverged", engine);
        }
    }
}
