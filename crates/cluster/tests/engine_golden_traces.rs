//! Golden-trace pins for the event-driven fleet engine.
//!
//! One small-fleet run per Tier-2 policy family, with the full telemetry
//! CSV checked in under `tests/golden/`. The differential harness
//! (`engine_equivalence.rs`) proves the engines agree with *each other*;
//! these pins additionally freeze the absolute bytes, so an accidental
//! behavior change that shifts *all* engines in lockstep — which the
//! differential tests are blind to — still fails loudly.
//!
//! When a change intentionally moves the traces, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p greengpu-cluster --test engine_golden_traces
//! ```
//!
//! and review the diff like any other code change.

use greengpu::{DeadlineParams, Exp3Params, UcbParams};
use greengpu_cluster::{run_fleet, EngineKind, FleetConfig, NodeConfig, Policy, PolicySpec};
use greengpu_hw::ChaosPlan;
use greengpu_sim::SimDuration;
use std::path::PathBuf;

/// The pinned scenario: a 3-node fleet with every failure mechanism
/// armed, driven by the event-driven engine for 30 simulated seconds.
fn pinned_report(spec: PolicySpec) -> String {
    let nodes: Vec<NodeConfig> = (0..3)
        .map(|_| NodeConfig::default_node().with_freq_policy(spec.clone()))
        .collect();
    let cfg = FleetConfig::from_nodes(nodes, 0.8, Policy::LeastLoaded, SimDuration::from_secs(30), 0x60_1D)
        .with_chaos(
            ChaosPlan::crashes_only(0x60_1D ^ 0xC4A05, 0.02, (2.0, 6.0))
                .with_thermal(0.01, (3.0, 8.0))
                .with_blackouts(0.01, (2.0, 5.0)),
        )
        .with_engine(EngineKind::EventDriven);
    let report = run_fleet(&cfg);
    // CSV plus the scalar outcomes a trace row can't carry, so the pin
    // also covers completion counts, the crash audit, and conservation.
    format!(
        "{}# completed={} deadline_misses={} rejected={} crashes={} warm={} cold={} \
         jobs_lost={} jobs_retried={} dead_letter={} stray={} gpu_energy_j={:?} total_energy_j={:?}\n",
        report.trace.to_table("golden").to_csv(),
        report.completed.len(),
        report.deadline_misses,
        report.rejected,
        report.crashes,
        report.warm_restarts,
        report.cold_restarts,
        report.jobs_lost,
        report.jobs_retried,
        report.dead_letter.len(),
        report.stray_blackout_events,
        report.gpu_energy_j,
        report.total_energy_j,
    )
}

fn check(name: &str, spec: PolicySpec) {
    let got = pinned_report(spec);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.csv"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}; run with UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        got, want,
        "event-driven trace for `{name}` drifted from the pin; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn wma_trace_is_pinned() {
    check("wma", PolicySpec::default());
}

#[test]
fn exp3_trace_is_pinned() {
    check("exp3", PolicySpec::Exp3(Exp3Params::default()));
}

#[test]
fn ucb_trace_is_pinned() {
    check("ucb", PolicySpec::Ucb(UcbParams::default()));
}

#[test]
fn deadline_trace_is_pinned() {
    check(
        "deadline",
        PolicySpec::Deadline(DeadlineParams {
            time_budget_s: 120.0,
            ..DeadlineParams::default()
        }),
    );
}
