//! Multi-tenant serving scenario: engine equivalence, the extended
//! conservation ledger under chaos, and serving-config validation.
//!
//! The serving layer must not weaken any existing guarantee: all three
//! engines stay byte-identical on tenant workloads, and every admitted
//! job is still accounted for — now with the deferral queue as a fourth
//! ledger bucket.

use greengpu_cluster::{
    run_fleet, EngineKind, FleetConfig, FleetReport, JobSpec, Policy, Scheduler, ServingConfig, SloClass,
    TenantDispatcher,
};
use greengpu_hw::ChaosPlan;
use greengpu_sim::{SimDuration, SimTime};
use proptest::prelude::*;

const SEED: u64 = 0x5E41;
const HORIZON_S: u64 = 300;

fn serving_fleet(seed: u64, carbon_aware: bool, chaos: bool) -> FleetConfig {
    let cfg = FleetConfig::homogeneous(4, 0.80, Policy::LeastLoaded, SimDuration::from_secs(HORIZON_S), seed);
    let mut serving = ServingConfig::reference_mix(seed, HORIZON_S as f64, cfg.reference_size_scale());
    serving.carbon_aware = carbon_aware;
    let cfg = cfg.with_serving(serving);
    if chaos {
        cfg.with_chaos(
            ChaosPlan::crashes_only(seed ^ 0xC4A05, 0.02, (2.0, 6.0))
                .with_thermal(0.005, (3.0, 8.0))
                .with_blackouts(0.005, (2.0, 5.0)),
        )
    } else {
        cfg
    }
}

/// Every observable output of a serving run, flattened to one string;
/// `{:?}` on `f64` prints shortest round-trip digits, so equal digests
/// mean bit-equal floats.
fn digest(report: &FleetReport) -> String {
    format!(
        "trace={trace}\nserving={serving}\ncompleted={completed:?}\nper_node={per_node:?}\n\
         dead_letter={dead_letter:?}\ntenants={tenants:?}\nadmitted_by={admitted_by:?}\n\
         rejected_by={rejected_by:?}\n\
         counters=({admitted},{rejected},{deadline_misses},{in_flight},{deferred},{released},{pending})\n\
         energy=({gpu:?},{total:?})",
        trace = report.trace.to_table("t").to_csv(),
        serving = report.serving_trace.to_table("s").to_csv(),
        completed = report.completed,
        per_node = report.per_node_completed,
        dead_letter = report.dead_letter,
        tenants = report.tenant_names,
        admitted_by = report.admitted_by_tenant,
        rejected_by = report.rejected_by_tenant,
        admitted = report.admitted,
        rejected = report.rejected,
        deadline_misses = report.deadline_misses,
        in_flight = report.in_flight_at_end,
        deferred = report.jobs_deferred,
        released = report.jobs_released,
        pending = report.deferred_pending_at_end,
        gpu = report.gpu_energy_j,
        total = report.total_energy_j,
    )
}

/// Acceptance: the serving scenario is byte-identical per seed across
/// EngineKind::{Serial, EventDriven, Parallel} — including the new
/// serving trace and per-tenant counters.
#[test]
fn serving_scenario_is_engine_byte_identical() {
    for chaos in [false, true] {
        let base = serving_fleet(SEED, true, chaos);
        let oracle = digest(&run_fleet(&base.clone().with_engine(EngineKind::Serial)));
        for engine in [
            EngineKind::EventDriven,
            EngineKind::Parallel { workers: 2 },
            EngineKind::Parallel { workers: 4 },
        ] {
            let got = digest(&run_fleet(&base.clone().with_engine(engine)));
            assert_eq!(got, oracle, "engine {engine:?} diverged (chaos={chaos})");
        }
    }
}

/// The extended conservation ledger: every admitted job is completed,
/// dead-lettered, parked in the deferral queue, or still in flight —
/// even while chaos crashes nodes and loses jobs to the retry machinery.
#[test]
fn serving_conservation_holds_under_chaos() {
    for (seed, aware) in [(SEED, true), (SEED + 1, true), (SEED, false)] {
        let report = run_fleet(&serving_fleet(seed, aware, true));
        assert!(report.crashes > 0, "chaos plan must actually crash nodes");
        assert_eq!(
            report.admitted,
            report.completed.len() as u64
                + report.dead_letter.len() as u64
                + report.deferred_pending_at_end
                + report.in_flight_at_end,
            "ledger broke (seed {seed}, aware {aware}): admitted {} completed {} dead {} deferred {} in_flight {}",
            report.admitted,
            report.completed.len(),
            report.dead_letter.len(),
            report.deferred_pending_at_end,
            report.in_flight_at_end,
        );
        // The deferral queue's own ledger.
        assert_eq!(
            report.jobs_deferred,
            report.jobs_released + report.deferred_pending_at_end,
            "deferral ledger broke (seed {seed}, aware {aware})"
        );
    }
}

/// The carbon-aware dispatcher actually defers best-effort work, only
/// best-effort work, and the per-tenant admission tallies tile the
/// fleet total.
#[test]
fn carbon_aware_run_defers_best_effort_and_tenant_tallies_tile() {
    let report = run_fleet(&serving_fleet(SEED, true, false));
    assert_eq!(report.tenant_names, vec!["interactive", "analytics", "batch"]);
    assert!(report.jobs_deferred > 0, "dirty windows must defer batch work");
    assert_eq!(
        report.admitted_by_tenant.iter().sum::<u64>(),
        report.admitted,
        "per-tenant admitted must tile the total"
    );
    assert_eq!(
        report.rejected_by_tenant.iter().sum::<u64>(),
        report.rejected,
        "per-tenant rejected must tile the total"
    );
    // Only the best-effort tenant (index 2) may sit in the serving
    // trace's deferral queue: latency/throughput jobs never defer, so
    // with deferral active the latency tenant's jobs all carry
    // deadlines and complete or stay in flight.
    for rec in &report.completed {
        if rec.spec.tenant == 0 {
            assert!(rec.spec.deadline.is_some(), "latency-bound jobs carry deadlines");
        } else {
            assert!(rec.spec.deadline.is_none());
        }
        assert!(rec.gpu_energy_j > 0.0, "completed jobs accrue GPU energy");
    }
    // The blind twin shares tenants and seed but never defers.
    let blind = run_fleet(&serving_fleet(SEED, false, false));
    assert_eq!(blind.jobs_deferred, 0);
    assert_eq!(blind.serving_trace.rows.len(), report.serving_trace.rows.len());
}

/// `FleetConfig::try_validate` names the offending tenant and field
/// through the serving path.
#[test]
fn fleet_validation_names_serving_tenant_and_field() {
    let mut cfg = serving_fleet(SEED, true, false);
    if let Some(s) = cfg.serving.as_mut() {
        s.tenants[2].slo = SloClass::BestEffort {
            deferral_horizon_s: -1.0,
        };
    }
    let err = cfg.try_validate().expect_err("negative horizon must be refused");
    assert!(
        err.contains("serving") && err.contains("batch") && err.contains("deferral_horizon_s"),
        "{err}"
    );

    let mut cfg = serving_fleet(SEED, true, false);
    if let Some(s) = cfg.serving.as_mut() {
        s.tenants[0].mix = vec![("warpdrive".to_string(), 1.0)];
    }
    let err = cfg.try_validate().expect_err("unknown workload must be refused");
    assert!(err.contains("interactive") && err.contains("warpdrive"), "{err}");

    let mut cfg = serving_fleet(SEED, true, false);
    if let Some(s) = cfg.serving.as_mut() {
        s.green_quantile = f64::NAN;
    }
    let err = cfg.try_validate().expect_err("NaN quantile must be refused");
    assert!(err.contains("green_quantile"), "{err}");

    assert!(serving_fleet(SEED, true, false).try_validate().is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No starvation: however dirty the grid, a best-effort job is in the
    /// admission queue no later than `arrival + deferral_horizon_s`.
    #[test]
    fn deferred_jobs_release_within_their_horizon(
        seed in any::<u64>(),
        arrive_s in 0.0f64..280.0,
        horizon_s in 1.0f64..150.0,
    ) {
        let mut serving = ServingConfig::reference_mix(seed, 300.0, 1.0);
        serving.tenants[2].slo = SloClass::BestEffort { deferral_horizon_s: horizon_s };
        let mut d = TenantDispatcher::from_serving(&serving);
        let mut s = Scheduler::new(Policy::RoundRobin, 1024);
        let arrive = SimTime::ZERO + SimDuration::from_secs_f64(arrive_s);
        d.on_arrival(
            JobSpec {
                id: 0,
                workload: "hotspot".to_string(),
                arrival: arrive,
                size: 1.0,
                deadline: None,
                tenant: 2,
            },
            &mut s,
            arrive,
        );
        // Whether it dispatched immediately (green window) or deferred,
        // by the horizon it must be queued — and admitted exactly once.
        d.release_due(&mut s, arrive + SimDuration::from_secs_f64(horizon_s));
        prop_assert_eq!(s.depth(), 1);
        prop_assert_eq!(s.admitted(), 1);
        prop_assert_eq!(d.pending_len(), 0);
        prop_assert_eq!(d.jobs_deferred(), d.jobs_released());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full serving ledger holds for arbitrary seeds, with and
    /// without carbon awareness, while chaos crashes nodes.
    #[test]
    fn serving_ledger_holds_for_arbitrary_seeds(seed in any::<u64>(), aware in any::<bool>()) {
        let report = run_fleet(&serving_fleet(seed, aware, true));
        prop_assert_eq!(
            report.admitted,
            report.completed.len() as u64
                + report.dead_letter.len() as u64
                + report.deferred_pending_at_end
                + report.in_flight_at_end
        );
        prop_assert_eq!(
            report.jobs_deferred,
            report.jobs_released + report.deferred_pending_at_end
        );
        if !aware {
            prop_assert_eq!(report.jobs_deferred, 0);
        }
        prop_assert_eq!(report.admitted_by_tenant.iter().sum::<u64>(), report.admitted);
        prop_assert_eq!(report.rejected_by_tenant.iter().sum::<u64>(), report.rejected);
    }
}
