//! Fleet-level invariants: budget safety, cap compliance, determinism,
//! and composition with the PR-1 fault-injection seam.

use greengpu::{DeadlineParams, Exp3Params, UcbParams};
use greengpu_cluster::{apportion, run_fleet, FleetConfig, NodeConfig, NodeDemand, Policy, PolicySpec};
use greengpu_hw::FaultPlan;
use greengpu_sim::SimDuration;
use proptest::prelude::*;

fn small_fleet(n: usize, budget_frac: f64, policy: Policy, seed: u64) -> FleetConfig {
    FleetConfig::homogeneous(n, budget_frac, policy, SimDuration::from_secs(30), seed)
}

/// The Tier-2 frequency policies the per-node cap invariant must hold
/// under — one spec per [`PolicySpec`] family.
fn freq_policy_specs() -> [PolicySpec; 4] {
    [
        PolicySpec::default(),
        PolicySpec::Exp3(Exp3Params::default()),
        PolicySpec::Ucb(UcbParams::default()),
        PolicySpec::Deadline(DeadlineParams {
            time_budget_s: 120.0,
            ..DeadlineParams::default()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Acceptance invariant, part 1 (pure): for arbitrary demands the
    /// apportioned caps sum to at most the budget, and cover every floor
    /// whenever the budget does.
    #[test]
    fn apportioned_caps_never_exceed_the_budget(
        budget in 0u64..2_000_000,
        raw in proptest::collection::vec((0u64..300_000, 0u64..300_000, 0u64..300_000, any::<bool>()), 1..12),
    ) {
        let demands: Vec<NodeDemand> = raw
            .iter()
            .map(|&(a, b, c, busy)| {
                let mut v = [a, b, c];
                v.sort_unstable();
                NodeDemand { floor_mw: v[0], desired_mw: v[1], peak_mw: v[2], busy }
            })
            .collect();
        let caps = apportion(budget, &demands);
        prop_assert_eq!(caps.len(), demands.len());
        prop_assert!(caps.iter().sum::<u64>() <= budget);
        let floor_sum: u64 = demands.iter().map(|d| d.floor_mw).sum();
        if budget >= floor_sum {
            for (cap, d) in caps.iter().zip(&demands) {
                prop_assert!(*cap >= d.floor_mw, "floor uncovered: {} < {}", cap, d.floor_mw);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance invariant, part 2 (end-to-end): across whole fleet
    /// runs — whatever Tier-2 frequency policy the nodes run — the summed
    /// per-node caps stay under the budget every interval, and no clean
    /// node's enforced frequency pair ever models more power than its cap.
    #[test]
    fn clean_fleets_always_respect_their_caps(
        seed in 1u64..10_000,
        n in 2usize..4,
        budget_frac in 0.62f64..1.0,
        policy_idx in 0usize..3,
        freq_idx in 0usize..4,
    ) {
        let mut cfg = small_fleet(n, budget_frac, Policy::ALL[policy_idx], seed);
        let freq = freq_policy_specs()[freq_idx].clone();
        for node in &mut cfg.nodes {
            node.freq_policy = freq.clone();
        }
        let report = run_fleet(&cfg);
        prop_assert!(!report.trace.rows.is_empty());
        for row in &report.trace.rows {
            prop_assert!(
                row.fleet_cap_w <= row.budget_w + 1e-9,
                "interval {}: caps {} exceed budget {}",
                row.interval, row.fleet_cap_w, row.budget_w
            );
            prop_assert_eq!(
                row.max_pair_over_cap_w, 0.0,
                "interval {}: a clean node enforced a pair over its cap", row.interval
            );
        }
        prop_assert_eq!(report.cap_violations, 0);
    }
}

#[test]
fn fleet_config_validation_names_the_offender() {
    let mut cfg = small_fleet(2, 0.8, Policy::RoundRobin, 1);
    assert!(cfg.try_validate().is_ok());
    cfg.nodes[1].freq_policy = PolicySpec::Wma(greengpu::WmaParams {
        beta: 0.0,
        ..greengpu::WmaParams::default()
    });
    let err = cfg.try_validate().unwrap_err();
    assert!(err.contains("node 1") && err.contains("beta"), "{err}");
    let mut cfg = small_fleet(2, 0.8, Policy::RoundRobin, 1);
    cfg.budget_w = f64::NAN;
    assert!(cfg.try_validate().unwrap_err().contains("budget_w"));
}

#[test]
fn fleet_traces_are_byte_deterministic() {
    let make = || {
        let cfg = small_fleet(3, 0.75, Policy::EnergyAware, 4242);
        let report = run_fleet(&cfg);
        report.trace.to_table("cluster trace").to_csv()
    };
    let a = make();
    let b = make();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must reproduce the trace byte-for-byte");

    let cfg = small_fleet(3, 0.75, Policy::EnergyAware, 4243);
    let c = run_fleet(&cfg).trace.to_table("cluster trace").to_csv();
    assert_ne!(a, c, "a different seed must actually change the run");
}

#[test]
fn tight_budgets_cut_fleet_power() {
    let loose = run_fleet(&small_fleet(3, 1.0, Policy::RoundRobin, 99));
    let tight = run_fleet(&small_fleet(3, 0.65, Policy::RoundRobin, 99));
    assert!(
        tight.gpu_energy_j < loose.gpu_energy_j,
        "capping must reduce GPU energy: {} vs {}",
        tight.gpu_energy_j,
        loose.gpu_energy_j
    );
    assert!(!loose.completed.is_empty() && !tight.completed.is_empty());
}

#[test]
fn fleet_serves_and_completes_jobs() {
    let report = run_fleet(&small_fleet(3, 0.8, Policy::LeastLoaded, 7));
    assert!(!report.completed.is_empty(), "no jobs completed");
    assert_eq!(report.nodes_fallen_back, 0);
    assert!(report.mean_wait_s() >= 0.0);
    assert!(report.gpu_energy_j > 0.0 && report.total_energy_j > report.gpu_energy_j);
    // Completion ids are unique.
    let mut ids: Vec<u64> = report.completed.iter().map(|r| r.spec.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), report.completed.len());
}

#[test]
fn faulty_node_falls_back_and_the_scheduler_routes_around_it() {
    let mut cfg = FleetConfig::homogeneous(3, 0.85, Policy::RoundRobin, SimDuration::from_secs(90), 2026);
    // Node 0's sensing is heavily faulted and its actuation path is
    // fully broken (every reclock silently dropped), so its hardened
    // controller must engage the best-performance fallback (PR-1 seam);
    // the others stay clean.
    let mut plan = FaultPlan::with_intensity(555, 1.0);
    plan.actuation = greengpu_hw::faults::ActuationFaults {
        drop_prob: 1.0,
        offset_prob: 0.0,
        delay_prob: 0.0,
    };
    cfg.nodes[0] = NodeConfig::default_node().with_fault(plan);
    let report = run_fleet(&cfg);

    assert_eq!(report.nodes_fallen_back, 1, "node 0 must engage its fallback");
    let fallback_time_s = report
        .trace
        .rows
        .iter()
        .find(|r| r.healthy_nodes < 3)
        .expect("fallback must appear in telemetry")
        .time_s;
    // After the fallback is visible, nothing new is dispatched to node 0.
    for rec in report.completed.iter().filter(|r| r.node == 0) {
        let started = rec.started.saturating_since(greengpu_sim::SimTime::ZERO).as_secs_f64();
        assert!(
            started <= fallback_time_s,
            "job {} dispatched to the fallen-back node at {started}s (fallback at {fallback_time_s}s)",
            rec.spec.id
        );
    }
    // The healthy nodes keep the fleet serving.
    let healthy_completed: u64 = report.per_node_completed[1] + report.per_node_completed[2];
    assert!(healthy_completed > 0, "healthy nodes must keep completing jobs");
    // A pinned-peak fallback node shows up as cap violations, not silence.
    assert!(report.cap_violations > 0);
}
