//! Failure-lifecycle acceptance tests: same-interval cap reclamation,
//! job conservation under crashes, warm-beats-cold restart regret,
//! breaker cycling, and byte determinism of chaotic runs — plus pins for
//! the fleet-config validation satellites.

use greengpu_cluster::job::JobSpec;
use greengpu_cluster::power::mw;
use greengpu_cluster::{
    run_fleet, BreakerState, CircuitBreaker, FleetConfig, LifecycleParams, Node, NodeConfig, NodeState, Policy,
};
use greengpu_hw::ChaosPlan;
use greengpu_sim::{SimDuration, SimTime};

const SEED: u64 = 11;

fn chaotic_fleet(checkpoint: Option<u64>, seconds: u64) -> FleetConfig {
    let lifecycle = match checkpoint {
        None => LifecycleParams::default().cold_restarts(),
        Some(k) => LifecycleParams::default().with_checkpoint_period(k),
    };
    FleetConfig::homogeneous(4, 0.80, Policy::LeastLoaded, SimDuration::from_secs(seconds), SEED)
        .with_chaos(
            ChaosPlan::crashes_only(SEED ^ 0xC4A05, 0.03, (2.0, 6.0))
                .with_thermal(0.005, (3.0, 8.0))
                .with_blackouts(0.005, (2.0, 5.0)),
        )
        .with_lifecycle(lifecycle)
}

/// Acceptance: a crashed node's milliwatts are reclaimed the very
/// interval its crash lands — the first re-apportionment caps it at 0.
#[test]
fn crashed_nodes_cap_is_reclaimed_within_one_interval() {
    let r = run_fleet(&chaotic_fleet(Some(10), 120));
    assert!(r.crashes >= 3, "chaos must actually crash nodes, got {}", r.crashes);
    assert_eq!(r.crash_records.len() as u64, r.crashes);
    for rec in &r.crash_records {
        assert!(
            rec.cap_before_mw > 0,
            "node {} held no budget before its crash at {} s",
            rec.node,
            rec.at_s
        );
        assert_eq!(
            rec.cap_after_mw,
            Some(0),
            "node {}'s cap was not reclaimed at the first tick after its crash at {} s",
            rec.node,
            rec.at_s
        );
    }
}

/// Acceptance: crashes lose jobs to the retry queue, never silently.
/// Every admitted job is completed, dead-lettered, or still in flight.
#[test]
fn jobs_are_conserved_through_crashes() {
    for checkpoint in [None, Some(5)] {
        let r = run_fleet(&chaotic_fleet(checkpoint, 120));
        assert!(r.jobs_lost > 0, "crashes must interrupt some jobs");
        assert_eq!(
            r.admitted,
            r.completed.len() as u64 + r.dead_letter.len() as u64 + r.in_flight_at_end,
            "conservation: admitted != completed + dead-lettered + in-flight"
        );
        assert!(
            r.jobs_retried <= r.jobs_lost * u64::from(LifecycleParams::default().max_retries),
            "retries must respect the per-job budget"
        );
        assert!(
            !r.completed.is_empty(),
            "the fleet must still make progress under chaos"
        );
    }
}

/// Acceptance: a warm restart re-reaches the pre-crash argmax pair in
/// strictly fewer control intervals than a cold restart. Two identical
/// nodes, identically driven; only one checkpoints before the crash.
#[test]
fn warm_restart_recovers_strictly_faster_than_cold() {
    let mk = || {
        let mut n = Node::new(0, &NodeConfig::default_node(), &["kmeans".to_string()], 1);
        n.set_lifecycle(1.0, 1);
        n
    };
    let job = |id: u64| JobSpec {
        id,
        workload: "kmeans".to_string(),
        arrival: SimTime::ZERO,
        size: 50.0,
        deadline: None,
        tenant: 0,
    };
    let mut warm = mk();
    let mut cold = mk();
    let cap = mw(0.8 * warm.platform().gpu().spec().peak_power_w());

    // Identical warm-up: 30 capped one-second intervals of kmeans.
    let mut t = SimTime::ZERO;
    for node in [&mut warm, &mut cold] {
        node.dispatch(job(0), t);
    }
    for k in 1..=30u64 {
        let next = SimTime::from_secs(k);
        for node in [&mut warm, &mut cold] {
            node.advance(t, next);
            node.control_tick(next, cap);
        }
        t = next;
    }
    let target = warm.controller().desired_pair();
    assert_eq!(
        target,
        cold.controller().desired_pair(),
        "identical drive, identical argmax"
    );

    // Only one node checkpoints; both crash and restart identically.
    warm.take_checkpoint();
    for node in [&mut warm, &mut cold] {
        node.crash(t, 2.0);
    }
    while warm.state() != NodeState::Up || cold.state() != NodeState::Up {
        t += SimDuration::from_secs_f64(1.0);
        for node in [&mut warm, &mut cold] {
            node.lifecycle_tick(t);
        }
    }
    assert_eq!(warm.warm_restarts(), 1);
    assert_eq!(cold.cold_restarts(), 1);

    // Identical post-restart drive until both learners re-reach the
    // pre-crash argmax (or the horizon runs out for the cold one).
    for node in [&mut warm, &mut cold] {
        node.dispatch(job(1), t);
    }
    for _ in 0..60u64 {
        let next = t + SimDuration::from_secs_f64(1.0);
        for node in [&mut warm, &mut cold] {
            node.lifecycle_tick(next);
            node.advance(t, next);
            node.control_tick(next, cap);
        }
        t = next;
        if !warm.recoveries().is_empty() && !cold.recoveries().is_empty() {
            break;
        }
    }
    let w = warm.recoveries().first().expect("warm node must recover").intervals;
    match cold.recoveries().first() {
        Some(rec) => assert!(
            w < rec.intervals,
            "warm restart must recover strictly faster: warm {} vs cold {}",
            w,
            rec.intervals
        ),
        // Not recovering inside the horizon is also strictly slower.
        None => assert!(w < 60, "warm restart must recover inside the horizon"),
    }
}

/// Acceptance: same seed, same config ⇒ byte-identical trace CSVs, even
/// under chaos; a different seed moves the failures.
#[test]
fn chaotic_runs_are_byte_deterministic() {
    let a = run_fleet(&chaotic_fleet(Some(10), 60));
    let b = run_fleet(&chaotic_fleet(Some(10), 60));
    assert_eq!(
        a.trace.to_table("t").to_csv(),
        b.trace.to_table("t").to_csv(),
        "same seed must reproduce the chaotic trace bytes"
    );
    assert_eq!(a.crash_records, b.crash_records);
    assert_eq!(a.recoveries, b.recoveries);

    let mut other = chaotic_fleet(Some(10), 60);
    other.seed ^= 0xDEAD;
    other.chaos = other.chaos.map(|mut p| {
        p.seed ^= 0xDEAD;
        p
    });
    let c = run_fleet(&other);
    assert_ne!(
        a.trace.to_table("t").to_csv(),
        c.trace.to_table("t").to_csv(),
        "a different seed must actually change the run"
    );
}

/// The scheduler's breaker opens on a crash, blocks dispatch while dark,
/// half-opens after the cooldown, and closes again on success — visible
/// in the fleet telemetry and counters.
#[test]
fn breakers_cycle_open_and_closed_around_crashes() {
    let r = run_fleet(&chaotic_fleet(Some(10), 120));
    assert_eq!(
        r.breaker_trips, r.crashes,
        "every crash trips its node's breaker exactly once"
    );
    assert!(
        r.trace.rows.iter().any(|row| row.open_breakers > 0),
        "some interval must show an open breaker"
    );
    assert!(
        r.trace.rows.last().map(|row| row.open_breakers) == Some(0)
            || r.trace.rows.iter().rev().take(5).any(|row| row.open_breakers == 0),
        "breakers must close again once nodes return"
    );
    assert!(
        r.trace.rows.iter().any(|row| row.up_nodes < 4),
        "some interval must show a node out of service"
    );
}

/// Unit walk of the breaker FSM against virtual time (the pure half of
/// the cycling assertion above).
#[test]
fn breaker_walks_the_full_cycle() {
    let mut b = CircuitBreaker::new(2.0, 3);
    assert_eq!(b.state(), BreakerState::Closed);
    b.record_failure(SimTime::from_secs(10));
    assert_eq!(b.state(), BreakerState::Open);
    b.tick(SimTime::from_secs(12));
    assert_eq!(b.state(), BreakerState::HalfOpen);
    b.record_success();
    assert_eq!(b.state(), BreakerState::Closed);
}

/// Satellite pin: the fleet config refuses zero nodes and non-positive
/// budgets with field-naming errors (and `run_fleet` would panic on
/// them, not mis-run).
#[test]
fn fleet_config_rejects_zero_nodes_and_bad_budgets() {
    let good = FleetConfig::homogeneous(2, 0.8, Policy::RoundRobin, SimDuration::from_secs(10), 1);
    assert!(good.try_validate().is_ok());

    let mut no_nodes = good.clone();
    no_nodes.nodes.clear();
    let err = no_nodes.try_validate().expect_err("empty fleet must be refused");
    assert!(err.contains("nodes"), "{err}");

    for bad_budget in [0.0, -5.0, f64::NAN, f64::INFINITY] {
        let mut cfg = good.clone();
        cfg.budget_w = bad_budget;
        let err = cfg.try_validate().expect_err("bad budget must be refused");
        assert!(err.contains("budget_w"), "{err}");
    }
}

/// Satellite pin: chaos and lifecycle parameters are validated through
/// the same field-naming path.
#[test]
fn fleet_config_validates_chaos_and_lifecycle() {
    let good = FleetConfig::homogeneous(2, 0.8, Policy::RoundRobin, SimDuration::from_secs(10), 1);

    let mut bad_chaos = good.clone();
    bad_chaos.chaos = Some(ChaosPlan::crashes_only(1, -0.5, (2.0, 6.0)));
    let err = bad_chaos
        .try_validate()
        .expect_err("negative crash rate must be refused");
    assert!(err.contains("chaos") && err.contains("crash_rate_per_s"), "{err}");

    let mut bad_lifecycle = good;
    bad_lifecycle.lifecycle.checkpoint_period = Some(0);
    let err = bad_lifecycle
        .try_validate()
        .expect_err("zero checkpoint period must be refused");
    assert!(err.contains("lifecycle") && err.contains("checkpoint_period"), "{err}");
}
