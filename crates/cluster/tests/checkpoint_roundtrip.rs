//! Checkpoint round-trip properties: `restore(snapshot(s))` reproduces
//! learner state bit-for-bit for every checkpointable layer — WMA weight
//! tables, bandit statistics, the Tier-1 division ratio, and the full
//! controller JSON — and corrupted or truncated checkpoints are rejected
//! without mutating the target.

use greengpu::{
    DivisionController, DivisionParams, Exp3Params, Exp3Policy, FreqPolicy, GreenGpuConfig, GreenGpuController,
    PolicySpec, UcbParams, UcbPolicy, WmaParams, WmaScaler, CHECKPOINT_VERSION,
};
use proptest::prelude::*;

const N_CORE: usize = 6;
const N_MEM: usize = 6;

/// Bit-exact weight-table comparison (ordinary `==` would accept `-0.0`
/// vs `0.0` and reject differing NaN payloads).
fn wma_weights_bits(s: &WmaScaler) -> Vec<u64> {
    let mut bits = Vec::with_capacity(N_CORE * N_MEM);
    for i in 0..N_CORE {
        for j in 0..N_MEM {
            bits.push(s.weight(i, j).to_bits());
        }
    }
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// WMA: snapshot → restore into a *fresh* scaler reproduces the
    /// weight table bit-for-bit, and both copies then decide identically.
    #[test]
    fn wma_snapshot_round_trips_bit_exactly(
        drives in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..40),
        probes in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..8),
    ) {
        let mut warm = WmaScaler::new(N_CORE, N_MEM, WmaParams::default());
        for &(uc, um) in &drives {
            warm.observe(uc, um);
        }
        let snap = warm.snapshot();
        let mut restored = WmaScaler::new(N_CORE, N_MEM, WmaParams::default());
        restored.restore(&snap).expect("own snapshot must restore");
        prop_assert_eq!(wma_weights_bits(&warm), wma_weights_bits(&restored));
        prop_assert_eq!(warm.intervals(), restored.intervals());
        prop_assert_eq!(warm.empty_mask_fallbacks(), restored.empty_mask_fallbacks());
        prop_assert_eq!(warm.argmax(), restored.argmax());
        for &(uc, um) in &probes {
            prop_assert_eq!(warm.observe(uc, um), restored.observe(uc, um));
        }
    }

    /// EXP3: the snapshot carries the weights *and* the RNG stream
    /// position, so a restored copy — even one built from a different
    /// seed — replays the identical decision sequence.
    #[test]
    fn exp3_snapshot_round_trips_the_rng_position(
        drives in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..40),
        probes in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..12),
    ) {
        let all = |_: usize, _: usize| true;
        let mut warm = Exp3Policy::new(N_CORE, N_MEM, Exp3Params::default(), 42);
        for &(uc, um) in &drives {
            warm.decide(uc, um, &all);
        }
        let snap = warm.snapshot();
        // Different construction seed: only the snapshot state may matter.
        let mut restored = Exp3Policy::new(N_CORE, N_MEM, Exp3Params::default(), 7);
        restored.restore(&snap).expect("own snapshot must restore");
        prop_assert_eq!(warm.preferred(), restored.preferred());
        prop_assert_eq!(&warm.snapshot(), &restored.snapshot(), "state must serialize identically");
        for &(uc, um) in &probes {
            prop_assert_eq!(warm.decide(uc, um, &all), restored.decide(uc, um, &all));
        }
    }

    /// UCB1: counts, means, and the step counter survive bit-for-bit.
    #[test]
    fn ucb_snapshot_round_trips_bit_exactly(
        drives in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..40),
        probes in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..12),
    ) {
        let all = |_: usize, _: usize| true;
        let mut warm = UcbPolicy::new(N_CORE, N_MEM, UcbParams::default());
        for &(uc, um) in &drives {
            warm.decide(uc, um, &all);
        }
        let snap = warm.snapshot();
        let mut restored = UcbPolicy::new(N_CORE, N_MEM, UcbParams::default());
        restored.restore(&snap).expect("own snapshot must restore");
        prop_assert_eq!(warm.preferred(), restored.preferred());
        prop_assert_eq!(&warm.snapshot(), &restored.snapshot());
        for &(uc, um) in &probes {
            prop_assert_eq!(warm.decide(uc, um, &all), restored.decide(uc, um, &all));
        }
    }

    /// Tier-1 division: the ratio, hold state, and oscillation-guard
    /// rates survive, so a restored controller resumes the same walk.
    #[test]
    fn division_snapshot_round_trips_the_ratio(
        drives in proptest::collection::vec((0.1f64..10.0, 0.1f64..10.0), 1..30),
        probes in proptest::collection::vec((0.1f64..10.0, 0.1f64..10.0), 1..6),
    ) {
        let mut warm = DivisionController::new(0.2, DivisionParams::default());
        for &(tc, tg) in &drives {
            warm.update(tc, tg);
        }
        let snap = warm.snapshot();
        let mut restored = DivisionController::new(0.2, DivisionParams::default());
        restored.restore(&snap).expect("own snapshot must restore");
        prop_assert_eq!(warm.share().to_bits(), restored.share().to_bits());
        prop_assert_eq!(warm.holds(), restored.holds());
        prop_assert_eq!(warm.moves(), restored.moves());
        for &(tc, tg) in &probes {
            prop_assert_eq!(warm.update(tc, tg).to_bits(), restored.update(tc, tg).to_bits());
        }
    }

    /// Truncating a valid controller checkpoint at *any* interior byte
    /// makes it unrestorable — the strict parser refuses prefixes.
    #[test]
    fn truncated_checkpoints_are_always_rejected(cut_frac in 0.01f64..0.99) {
        let ctl = GreenGpuController::with_policy(
            GreenGpuConfig::scaling_only(),
            PolicySpec::default().build(N_CORE, N_MEM, 1, None).expect("valid"),
        );
        let cp = ctl.snapshot();
        let cut = ((cp.len() as f64 * cut_frac) as usize).clamp(1, cp.len() - 1);
        let mut target = GreenGpuController::with_policy(
            GreenGpuConfig::scaling_only(),
            PolicySpec::default().build(N_CORE, N_MEM, 1, None).expect("valid"),
        );
        prop_assert!(target.restore(&cp[..cut]).is_err(), "prefix of {cut} bytes must not parse");
    }
}

#[test]
fn controller_checkpoint_round_trips_and_restores_idempotently() {
    let mut ctl = GreenGpuController::with_policy(
        GreenGpuConfig::scaling_only(),
        PolicySpec::default().build(N_CORE, N_MEM, 1, None).expect("valid"),
    );
    let cp = ctl.snapshot();
    assert!(cp.contains(&format!("\"version\":{CHECKPOINT_VERSION}")));
    ctl.restore(&cp).expect("own checkpoint restores");
    assert_eq!(
        ctl.snapshot(),
        cp,
        "restore(snapshot) must be the identity on the state"
    );
}

#[test]
fn version_and_policy_mismatches_are_named() {
    let mut ctl = GreenGpuController::with_policy(
        GreenGpuConfig::scaling_only(),
        PolicySpec::default().build(N_CORE, N_MEM, 1, None).expect("valid"),
    );
    let cp = ctl.snapshot();

    let future = cp.replace(
        &format!("\"version\":{CHECKPOINT_VERSION}"),
        &format!("\"version\":{}", CHECKPOINT_VERSION + 1),
    );
    let err = ctl.restore(&future).expect_err("future version must be refused");
    assert!(err.contains("version"), "{err}");

    let mut exp3 = GreenGpuController::with_policy(
        GreenGpuConfig::scaling_only(),
        PolicySpec::Exp3(Exp3Params::default())
            .build(N_CORE, N_MEM, 1, None)
            .expect("valid"),
    );
    let err = exp3.restore(&cp).expect_err("wrong policy family must be refused");
    assert!(err.contains("policy"), "{err}");
}

#[test]
fn garbage_checkpoints_never_mutate_the_target() {
    let mut ctl = GreenGpuController::with_policy(
        GreenGpuConfig::scaling_only(),
        PolicySpec::default().build(N_CORE, N_MEM, 1, None).expect("valid"),
    );
    let before = ctl.snapshot();
    for garbage in [
        "",
        "not json",
        "{}",
        "{\"version\":1}",
        "[1,2,3]",
        "{\"version\":1,\"policy\":\"wma\",\"state\":{\"weights\":[1,2]},\"division\":null}",
    ] {
        assert!(ctl.restore(garbage).is_err(), "{garbage:?} must be rejected");
        assert_eq!(ctl.snapshot(), before, "failed restore must leave state untouched");
    }
}
