//! Workspace discovery and the end-to-end run.

use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::findings::Finding;
use crate::rules::{self, checkpoint, Context};
use crate::source::SourceFile;

/// Directories never scanned: vendored shims carry their own style, and
/// the lint fixtures are violations *on purpose*.
const SKIP_PREFIXES: &[&str] = &["vendor/", "target/", "crates/lint/tests/fixtures/"];

/// Markdown documents the contract rule reads.
const DOC_FILES: &[&str] = &["EXPERIMENTS.md", "DESIGN.md"];

/// The outcome of one full run.
pub struct RunReport {
    /// Findings that survived the baseline.
    pub findings: Vec<Finding>,
    /// How many findings the baseline suppressed.
    pub suppressed: usize,
    /// Baseline entries that matched nothing (stale — remove them).
    pub stale: Vec<String>,
}

/// Loads every scannable file under `root`.
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src", "tests", "examples", "benches"] {
        collect_rs(&root.join(top), &mut paths);
    }
    let mut files = Vec::new();
    let mut rels: Vec<String> = paths
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .filter(|rel| !SKIP_PREFIXES.iter().any(|s| rel.starts_with(s)))
        .collect();
    rels.sort();
    for rel in rels {
        let content = fs::read_to_string(root.join(&rel)).map_err(|e| format!("read {rel}: {e}"))?;
        files.push(SourceFile::new(&rel, &content));
    }
    for doc in DOC_FILES {
        if let Ok(content) = fs::read_to_string(root.join(doc)) {
            files.push(SourceFile::new(doc, &content));
        }
    }
    if files.is_empty() {
        return Err(format!("no sources found under {}", root.display()));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Reads the baseline at `path`; a missing file is an empty baseline.
pub fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match fs::read_to_string(path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) => Ok(Baseline::default()),
    }
}

/// Runs every rule over `root` against `baseline`.
pub fn run(root: &Path, baseline: &Baseline) -> Result<RunReport, String> {
    let files = load_workspace(root)?;
    let ctx = Context {
        files: &files,
        baseline,
    };
    let raw = rules::run_all(&ctx);
    let (findings, suppressed, stale) = baseline.apply(raw);
    let stale = stale
        .into_iter()
        .map(|s| format!("[{}] {} — {:?}", s.rule, s.path, s.snippet))
        .collect();
    Ok(RunReport {
        findings,
        suppressed,
        stale,
    })
}

/// Recomputes the checkpoint fingerprint section of `baseline` from the
/// sources under `root` (the `--update-baseline` path). Returns the new
/// serialized baseline, or `None` when the workspace has no checkpoint
/// surface.
pub fn refresh_checkpoint(root: &Path, baseline: &Baseline) -> Result<Option<String>, String> {
    let files = load_workspace(root)?;
    let Some(state) = checkpoint::observe(&files) else {
        return Ok(None);
    };
    let mut updated = baseline.clone();
    updated.checkpoint_version = Some(state.version);
    updated.checkpoint_fingerprint = Some(state.fingerprint);
    Ok(Some(updated.to_toml()))
}

/// Walks up from `start` to the first directory holding `Cargo.toml`
/// with a `crates/` sibling — the workspace root.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
