//! The checked-in suppression file (`lint-baseline.toml`).
//!
//! A tiny TOML subset — `key = value` pairs, one `[checkpoint]` table and
//! repeated `[[suppress]]` tables, string/integer values — parsed by hand
//! like everything else in this workspace. A suppression matches a
//! finding by `(rule, path, snippet)`: line numbers churn on every edit,
//! the offending line's text does not.

use crate::findings::Finding;

/// One `[[suppress]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule name the entry silences.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Trimmed source line this entry matches.
    pub snippet: String,
    /// Mandatory justification.
    pub reason: String,
}

/// The whole baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// The checkpoint schema version the fingerprint was taken at.
    pub checkpoint_version: Option<u64>,
    /// FNV-1a fingerprint of the snapshot/restore field sets.
    pub checkpoint_fingerprint: Option<String>,
    /// Suppressed findings.
    pub suppressions: Vec<Suppression>,
}

impl Baseline {
    /// Parses the baseline text. Errors name the offending line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut b = Baseline::default();
        #[derive(PartialEq)]
        enum Section {
            Top,
            Checkpoint,
            Suppress,
        }
        let mut section = Section::Top;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = i + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[suppress]]" {
                b.suppressions.push(Suppression {
                    rule: String::new(),
                    path: String::new(),
                    snippet: String::new(),
                    reason: String::new(),
                });
                section = Section::Suppress;
                continue;
            }
            if line == "[checkpoint]" {
                section = Section::Checkpoint;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {lineno}: unknown section {line}"));
            }
            let Some(eq) = line.find('=') else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            let key = line[..eq].trim();
            let value = line[eq + 1..].trim();
            match section {
                Section::Top => match key {
                    "version" => {}
                    _ => return Err(format!("line {lineno}: unknown top-level key {key}")),
                },
                Section::Checkpoint => match key {
                    "version" => {
                        b.checkpoint_version = Some(
                            value
                                .parse()
                                .map_err(|_| format!("line {lineno}: version must be an integer"))?,
                        )
                    }
                    "fingerprint" => b.checkpoint_fingerprint = Some(unquote(value, lineno)?),
                    _ => return Err(format!("line {lineno}: unknown checkpoint key {key}")),
                },
                Section::Suppress => {
                    let Some(entry) = b.suppressions.last_mut() else {
                        return Err(format!("line {lineno}: key outside a [[suppress]] table"));
                    };
                    let v = unquote(value, lineno)?;
                    match key {
                        "rule" => entry.rule = v,
                        "path" => entry.path = v,
                        "snippet" => entry.snippet = v,
                        "reason" => entry.reason = v,
                        _ => return Err(format!("line {lineno}: unknown suppress key {key}")),
                    }
                }
            }
        }
        for (i, s) in b.suppressions.iter().enumerate() {
            if s.rule.is_empty() || s.path.is_empty() || s.snippet.is_empty() {
                return Err(format!("suppress entry {} is missing rule/path/snippet", i + 1));
            }
            if s.reason.is_empty() {
                return Err(format!(
                    "suppress entry {} ({} in {}) has no reason — every suppression must say why",
                    i + 1,
                    s.rule,
                    s.path
                ));
            }
        }
        Ok(b)
    }

    /// Serializes back to TOML (used by `--update-baseline`).
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# greengpu-lint baseline — pre-existing findings, each with a reason.\n\
             # Remove entries as the underlying code is fixed; never add one without\n\
             # a reason. `cargo run -p greengpu-lint` must exit 0 against this file.\n\
             version = 1\n",
        );
        if let (Some(v), Some(fp)) = (self.checkpoint_version, &self.checkpoint_fingerprint) {
            out.push_str(&format!(
                "\n[checkpoint]\nversion = {v}\nfingerprint = \"{}\"\n",
                quote(fp)
            ));
        }
        for s in &self.suppressions {
            out.push_str(&format!(
                "\n[[suppress]]\nrule = \"{}\"\npath = \"{}\"\nsnippet = \"{}\"\nreason = \"{}\"\n",
                quote(&s.rule),
                quote(&s.path),
                quote(&s.snippet),
                quote(&s.reason)
            ));
        }
        out
    }

    /// Splits `findings` into (kept, n_suppressed), flagging which
    /// suppressions never matched anything (stale entries).
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize, Vec<&Suppression>) {
        let mut used = vec![false; self.suppressions.len()];
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            let hit = self
                .suppressions
                .iter()
                .position(|s| s.rule == f.rule && s.path == f.path && s.snippet == f.snippet);
            match hit {
                Some(i) => {
                    used[i] = true;
                    suppressed += 1;
                }
                None => kept.push(f),
            }
        }
        let stale = self
            .suppressions
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(s, _)| s)
            .collect();
        (kept, suppressed, stale)
    }
}

fn unquote(v: &str, lineno: usize) -> Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: expected a quoted string, got {v}"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn quote(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
version = 1

[checkpoint]
version = 1
fingerprint = "abcd1234"

[[suppress]]
rule = "panic_freedom"
path = "crates/cluster/src/fleet.rs"
snippet = "panic!(\"invalid fleet config: {msg}\");"
reason = "validated-config entry point"
"#;

    #[test]
    fn parses_and_round_trips() {
        let b = Baseline::parse(SAMPLE).expect("parse");
        assert_eq!(b.checkpoint_version, Some(1));
        assert_eq!(b.checkpoint_fingerprint.as_deref(), Some("abcd1234"));
        assert_eq!(b.suppressions.len(), 1);
        assert_eq!(b.suppressions[0].snippet, r#"panic!("invalid fleet config: {msg}");"#);
        let again = Baseline::parse(&b.to_toml()).expect("reparse");
        assert_eq!(again, b);
    }

    #[test]
    fn missing_reason_is_rejected() {
        let bad = "[[suppress]]\nrule = \"x\"\npath = \"y\"\nsnippet = \"z\"\n";
        assert!(Baseline::parse(bad).unwrap_err().contains("no reason"));
    }

    #[test]
    fn apply_matches_on_snippet_and_reports_stale() {
        let b = Baseline::parse(SAMPLE).expect("parse");
        let hit = Finding {
            rule: "panic_freedom",
            path: "crates/cluster/src/fleet.rs".into(),
            line: 99,
            message: "m".into(),
            snippet: r#"panic!("invalid fleet config: {msg}");"#.into(),
        };
        let miss = Finding {
            snippet: "other".into(),
            ..hit.clone()
        };
        let (kept, n, stale) = b.apply(vec![hit, miss]);
        assert_eq!((kept.len(), n, stale.len()), (1, 1, 0));
        let (_, _, stale) = b.apply(vec![]);
        assert_eq!(stale.len(), 1);
    }
}
