//! `greengpu-lint` — the workspace's static invariant checker.
//!
//! The compiler proves memory safety; it cannot prove that a fleet CSV
//! is byte-identical per seed, that milliwatts never silently become
//! watts, or that a controller degrades instead of panicking. Those are
//! *project* invariants — the ones every GreenGPU result rests on — and
//! this crate machine-checks them on every build:
//!
//! | rule | invariant |
//! |---|---|
//! | `determinism` | no wall clocks / hash-order iteration in seeded crates |
//! | `rng_discipline` | every RNG traces to a config seed |
//! | `panic_freedom` | controller paths hold-on-invalid, never abort |
//! | `float_eq` | no `==`/`!=` against float literals |
//! | `unit_safety` | power identifiers carry `_w`/`_mw`, units never mix bare |
//! | `checkpoint_version` | snapshot field changes bump `CHECKPOINT_VERSION` |
//! | `contract_drift` | CSV headers match EXPERIMENTS.md; DESIGN.md numbering is contiguous |
//! | `test_hygiene` | every seam-trait method is referenced from a test |
//!
//! Pre-existing findings live in `lint-baseline.toml` (keyed by
//! rule/path/snippet, each with a reason); point escapes use
//! `// lint:allow(rule) reason` on or above the offending line. Both are
//! themselves linted — a reason-less escape is a finding.
//!
//! The analyzer is a hand-rolled lexer plus token rules (see
//! [`lexer`]) with **zero dependencies**, so it builds and runs even
//! when the rest of the workspace does not. Run it as
//! `cargo run -p greengpu-lint`; see DESIGN.md §11 for the rule
//! catalogue and the baseline workflow.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

pub use baseline::Baseline;
pub use findings::Finding;
pub use workspace::{find_root, load_baseline, load_workspace, run, RunReport};
