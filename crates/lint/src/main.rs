//! The `greengpu-lint` binary.
//!
//! ```text
//! greengpu-lint [--root DIR] [--baseline FILE] [--json FILE]
//!               [--update-baseline] [--list-rules] [--quiet]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use greengpu_lint::findings::to_json;
use greengpu_lint::rules::all_rules;
use greengpu_lint::workspace::{find_root, load_baseline, refresh_checkpoint, run};

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    update_baseline: bool,
    list_rules: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        json: None,
        update_baseline: false,
        list_rules: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let path_arg = |it: &mut dyn Iterator<Item = String>| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--root" => args.root = Some(path_arg(&mut it)?),
            "--baseline" => args.baseline = Some(path_arg(&mut it)?),
            "--json" => args.json = Some(path_arg(&mut it)?),
            "--update-baseline" => args.update_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "greengpu-lint — static invariant checker\n\n\
                     USAGE: greengpu-lint [--root DIR] [--baseline FILE] [--json FILE]\n\
                     \x20                    [--update-baseline] [--list-rules] [--quiet]\n\n\
                     Exit 0 when clean against the baseline, 1 on findings, 2 on errors."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("greengpu-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let args = parse_args()?;

    if args.list_rules {
        for rule in all_rules() {
            println!("{:<20} {}", rule.name(), rule.describe());
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_root(&cwd).ok_or("no workspace root found (run from the repo, or pass --root)")?
        }
    };
    let baseline_path = args.baseline.unwrap_or_else(|| root.join("lint-baseline.toml"));
    let baseline = load_baseline(&baseline_path)?;

    if args.update_baseline {
        match refresh_checkpoint(&root, &baseline)? {
            Some(toml) => {
                std::fs::write(&baseline_path, toml).map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
                println!("updated checkpoint fingerprint in {}", baseline_path.display());
            }
            None => println!("no checkpoint surface found; baseline unchanged"),
        }
        return Ok(ExitCode::SUCCESS);
    }

    let report = run(&root, &baseline)?;

    if let Some(json_path) = &args.json {
        let json = to_json(&report.findings, report.suppressed);
        if json_path.as_os_str() == "-" {
            print!("{json}");
        } else {
            std::fs::write(json_path, json).map_err(|e| format!("write {}: {e}", json_path.display()))?;
        }
    }

    if !args.quiet {
        for f in &report.findings {
            println!("{f}");
        }
        for s in &report.stale {
            eprintln!("note: stale baseline entry (matched nothing): {s}");
        }
        println!(
            "greengpu-lint: {} finding(s), {} suppressed by baseline",
            report.findings.len(),
            report.suppressed
        );
    }

    Ok(if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
