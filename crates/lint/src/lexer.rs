//! A minimal Rust lexer — just enough structure for line/token rules.
//!
//! The rules in this crate never need types or full syntax; they need to
//! tell *identifiers* from *string literals* (so `"Instant::now"` inside a
//! lint message is not a finding), to skip comments, and to know which
//! line every token sits on. This lexer produces exactly that: a flat
//! token stream plus the `lint:` directives found in comments, in one
//! pass, with no external dependencies — the same hand-rolled approach as
//! `greengpu_sim::json`.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `fn`, `as`, …).
    Ident,
    /// An integer literal (`42`, `0xE3`, `1_000u64`).
    Int,
    /// A float literal (`0.5`, `1e-3`, `2f64`).
    Float,
    /// A string literal (content, unquoted, escapes left as written).
    Str,
    /// A char literal.
    Char,
    /// A lifetime or loop label (`'a`).
    Lifetime,
    /// A single punctuation character (`==` arrives as two `=` tokens).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text (string literals carry their *content*).
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A `lint:` directive found in a comment.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// `allow` or `contract`.
    pub kind: DirectiveKind,
    /// The parenthesized argument (rule or contract name).
    pub arg: String,
    /// Trailing free text (the reason for an allow).
    pub reason: String,
}

/// Directive discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `// lint:allow(rule) reason` — suppress findings of `rule` on this
    /// line and the next.
    Allow,
    /// `// lint:contract(name)` — the literal list that follows is
    /// checked against the matching contract block in EXPERIMENTS.md.
    Contract,
    /// A `lint:` comment that parsed as neither — always a finding.
    Malformed,
}

/// Lexer output: the token stream and every comment directive.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub toks: Vec<Tok>,
    /// All `lint:` directives, in source order.
    pub directives: Vec<Directive>,
}

/// Tokenizes `src`. Never fails: unterminated constructs consume to EOF.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    let push = |out: &mut Lexed, kind: TokKind, text: String, line: u32| {
        out.toks.push(Tok { kind, text, line });
    };

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments. Only plain `//` comments carry directives —
        // doc comments (`///`, `//!`) *describe* the directive syntax
        // and must not trigger it.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let is_doc = i + 2 < n && (b[i + 2] == '/' || b[i + 2] == '!');
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            if !is_doc {
                let text: String = b[start..i].iter().collect();
                scan_directive(&text, line, &mut out.directives);
            }
            continue;
        }
        // Block comments, nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings: r"…", r#"…"#, br#"…"# …
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let mut j = i;
            if b[j] == 'b' {
                j += 1;
            }
            j += 1; // past 'r'
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            j += 1; // past opening quote
            let start = j;
            let tok_line = line;
            'raw: while j < n {
                if b[j] == '\n' {
                    line += 1;
                } else if b[j] == '"' {
                    let mut k = 0;
                    while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        let text: String = b[start..j].iter().collect();
                        push(&mut out, TokKind::Str, text, tok_line);
                        j += 1 + hashes;
                        break 'raw;
                    }
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // Plain / byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let start = j;
            let tok_line = line;
            while j < n {
                if b[j] == '\\' {
                    j += 2;
                    continue;
                }
                if b[j] == '\n' {
                    line += 1;
                }
                if b[j] == '"' {
                    break;
                }
                j += 1;
            }
            let text: String = b[start..j.min(n)].iter().collect();
            push(&mut out, TokKind::Str, text, tok_line);
            i = (j + 1).min(n);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            let mut j = i + 1;
            let mut ident = String::new();
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                ident.push(b[j]);
                j += 1;
            }
            if !ident.is_empty() && (j >= n || b[j] != '\'') {
                push(&mut out, TokKind::Lifetime, ident, line);
                i = j;
                continue;
            }
            // Char literal: consume to the closing quote (escape-aware).
            let mut j = i + 1;
            let start = j;
            while j < n {
                if b[j] == '\\' {
                    j += 2;
                    continue;
                }
                if b[j] == '\'' {
                    break;
                }
                j += 1;
            }
            let text: String = b[start..j.min(n)].iter().collect();
            push(&mut out, TokKind::Char, text, line);
            i = (j + 1).min(n);
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'o' | 'b') {
                i += 2;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                    i += 1;
                }
                // A '.' continues the number only before another digit
                // (so `0..n` and `1.max(2)` stay integers).
                if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                } else if i < n
                    && b[i] == '.'
                    && (i + 1 >= n || !(b[i + 1] == '.' || b[i + 1].is_alphanumeric() || b[i + 1] == '_'))
                {
                    // Trailing-dot float like `1.`
                    is_float = true;
                    i += 1;
                }
                if i < n && (b[i] == 'e' || b[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (b[j] == '+' || b[j] == '-') {
                        j += 1;
                    }
                    if j < n && b[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Type suffix.
                let suffix_start = i;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let suffix: String = b[suffix_start..i].iter().collect();
                if suffix == "f32" || suffix == "f64" {
                    is_float = true;
                }
            }
            let text: String = b[start..i].iter().collect();
            let kind = if is_float { TokKind::Float } else { TokKind::Int };
            push(&mut out, kind, text, line);
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            push(&mut out, TokKind::Ident, text, line);
            continue;
        }
        // Everything else: one punct char at a time.
        push(&mut out, TokKind::Punct, c.to_string(), line);
        i += 1;
    }
    out
}

/// `r"`, `r#`, `br"`, `br#` ahead?
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= b.len() || b[j] != 'r' {
            return false;
        }
    }
    if b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

/// Parses `lint:allow(rule) reason` / `lint:contract(name)` out of one
/// comment's text, recording malformed `lint:` mentions as such.
fn scan_directive(comment: &str, line: u32, out: &mut Vec<Directive>) {
    let Some(pos) = comment.find("lint:") else {
        return;
    };
    let rest = &comment[pos + "lint:".len()..];
    for (kw, kind) in [("allow", DirectiveKind::Allow), ("contract", DirectiveKind::Contract)] {
        if let Some(tail) = rest.strip_prefix(kw) {
            let tail = tail.trim_start();
            if let Some(tail) = tail.strip_prefix('(') {
                if let Some(close) = tail.find(')') {
                    let arg = tail[..close].trim().to_string();
                    let reason = tail[close + 1..].trim().to_string();
                    if !arg.is_empty() {
                        out.push(Directive {
                            line,
                            kind,
                            arg,
                            reason,
                        });
                        return;
                    }
                }
            }
        }
    }
    out.push(Directive {
        line,
        kind: DirectiveKind::Malformed,
        arg: String::new(),
        reason: String::new(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_not_idents() {
        let l = lex(r#"let x = "Instant::now"; y.unwrap();"#);
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "y", "unwrap"]);
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "Instant::now"));
    }

    #[test]
    fn comments_are_skipped_but_directives_found() {
        let l = lex("// lint:allow(panic_freedom) startup only\nlet a = 1; /* unwrap */\n");
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(l.directives.len(), 1);
        assert_eq!(l.directives[0].arg, "panic_freedom");
        assert_eq!(l.directives[0].reason, "startup only");
        assert_eq!(l.directives[0].line, 1);
    }

    #[test]
    fn numbers_classify() {
        let l = lex("0.5 1e-3 2f64 42 0xE3 1_000 0..9 1.max(2)");
        let kinds: Vec<TokKind> = l
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            [
                TokKind::Float,
                TokKind::Float,
                TokKind::Float,
                TokKind::Int,
                TokKind::Int,
                TokKind::Int,
                TokKind::Int,
                TokKind::Int,
                TokKind::Int,
                TokKind::Int,
            ]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn raw_strings_and_lines() {
        let l = lex("let s = r#\"a \"quoted\" b\"#;\nlet t = 2;");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("quoted")));
        let t2 = l.toks.iter().find(|t| t.is_ident("t")).expect("t");
        assert_eq!(t2.line, 2);
    }

    #[test]
    fn malformed_directive_is_recorded() {
        let l = lex("// lint:allow panic please\n");
        assert_eq!(l.directives.len(), 1);
        assert_eq!(l.directives[0].kind, DirectiveKind::Malformed);
    }
}
