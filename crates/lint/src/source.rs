//! The per-file model every rule consumes.

use crate::lexer::{lex, Directive, DirectiveKind, Tok};

/// Where a file sits in the workspace — rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of a library or binary crate: rules apply in full.
    Lib,
    /// `tests/`: exempt from code rules, counts as test coverage.
    TestDir,
    /// `benches/` or `examples/`: exempt from code rules, does *not*
    /// count as test coverage.
    Aux,
    /// A markdown document (EXPERIMENTS.md, DESIGN.md).
    Doc,
}

/// One lexed source file plus everything rules ask about it.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// The `crates/<name>` component, or `"suite"` for the root crate.
    pub crate_name: String,
    /// Location class.
    pub kind: FileKind,
    /// Raw lines (for snippets and doc rules).
    pub lines: Vec<String>,
    /// Token stream (empty for docs).
    pub toks: Vec<Tok>,
    /// Comment directives.
    pub directives: Vec<Directive>,
    /// `test_lines[i]` is true when 1-based line `i+1` is inside a
    /// `#[cfg(test)]` module or a `#[test]` function.
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Builds the model from raw text.
    pub fn new(rel_path: &str, content: &str) -> SourceFile {
        let crate_name = crate_of(rel_path);
        let kind = kind_of(rel_path);
        let lines: Vec<String> = content.lines().map(str::to_string).collect();
        let (toks, directives, test_lines) = if kind == FileKind::Doc {
            (Vec::new(), Vec::new(), Vec::new())
        } else {
            let lexed = lex(content);
            let test_lines = mark_test_lines(&lexed.toks, lines.len());
            (lexed.toks, lexed.directives, test_lines)
        };
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name,
            kind,
            lines,
            toks,
            directives,
            test_lines,
        }
    }

    /// True when 1-based `line` is exempt from code rules (test module,
    /// test function, or the whole file for `tests/`/`benches/`).
    pub fn is_exempt(&self, line: u32) -> bool {
        if self.kind != FileKind::Lib {
            return true;
        }
        self.test_lines.get(line as usize - 1).copied().unwrap_or(false)
    }

    /// True when 1-based `line` counts as *test* code for coverage
    /// purposes (a `tests/` file or a `#[cfg(test)]` region).
    pub fn is_test_region(&self, line: u32) -> bool {
        self.kind == FileKind::TestDir || self.test_lines.get(line as usize - 1).copied().unwrap_or(false)
    }

    /// The trimmed text of 1-based `line` (empty when out of range).
    pub fn snippet(&self, line: u32) -> &str {
        self.lines.get(line as usize - 1).map(|l| l.trim()).unwrap_or("")
    }

    /// True when an `allow(rule)` directive with a reason covers `line`
    /// (directive on the same line or the line above).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.directives.iter().any(|d| {
            d.kind == DirectiveKind::Allow
                && d.arg == rule
                && !d.reason.is_empty()
                && (d.line == line || d.line + 1 == line)
        })
    }
}

/// `crates/<name>/…` → `<name>`; everything else is the root crate.
fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "suite".to_string()
}

fn kind_of(rel_path: &str) -> FileKind {
    if rel_path.ends_with(".md") {
        return FileKind::Doc;
    }
    let in_dir = |d: &str| {
        rel_path.split('/').any(|seg| seg == d) && !rel_path.split('/').take_while(|s| *s != d).any(|s| s == "src")
    };
    if in_dir("tests") {
        FileKind::TestDir
    } else if in_dir("benches") || in_dir("examples") {
        FileKind::Aux
    } else {
        FileKind::Lib
    }
}

/// Finds the token index of the delimiter matching `open_idx` (which must
/// hold `(`, `[`, or `{`). Returns the last token on imbalance.
pub fn match_delim(toks: &[Tok], open_idx: usize) -> usize {
    let (open, close) = match toks[open_idx].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        _ => ('{', '}'),
    };
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Marks line ranges covered by `#[cfg(test)]` items and `#[test]` fns.
fn mark_test_lines(toks: &[Tok], n_lines: usize) -> Vec<bool> {
    let mut marked = vec![false; n_lines];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let close = match_delim(toks, i + 1);
            let inner = &toks[i + 2..close];
            let is_cfg_test = inner.len() >= 4
                && inner[0].is_ident("cfg")
                && inner.iter().any(|t| t.is_ident("test") || t.is_ident("bench"));
            let is_test_attr = inner.len() == 1 && inner[0].is_ident("test");
            if is_cfg_test || is_test_attr {
                // Skip further attributes, then find the item's body.
                let mut j = close + 1;
                while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
                    j = match_delim(toks, j + 1) + 1;
                }
                // Mark from the attribute to the end of the item's brace
                // block (or its `;` for block-less items like `use`).
                let mut k = j;
                let mut end_line = toks[i].line;
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        let body_close = match_delim(toks, k);
                        end_line = toks[body_close].line;
                        k = body_close;
                        break;
                    }
                    if toks[k].is_punct(';') {
                        end_line = toks[k].line;
                        break;
                    }
                    k += 1;
                }
                for line in toks[i].line..=end_line {
                    if let Some(slot) = marked.get_mut(line as usize - 1) {
                        *slot = true;
                    }
                }
                i = k.max(close) + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
pub fn live() { x.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
";

    #[test]
    fn cfg_test_region_is_exempt() {
        let f = SourceFile::new("crates/greengpu/src/x.rs", SRC);
        assert!(!f.is_exempt(1));
        assert!(f.is_exempt(4));
        assert!(f.is_exempt(6));
        assert!(f.is_test_region(6));
        assert!(!f.is_test_region(1));
    }

    #[test]
    fn tests_dir_is_whole_file_exempt() {
        let f = SourceFile::new("crates/greengpu/tests/x.rs", "fn a() { b.unwrap(); }");
        assert!(f.is_exempt(1));
        assert!(f.is_test_region(1));
        assert_eq!(f.crate_name, "greengpu");
    }

    #[test]
    fn allow_covers_same_and_next_line() {
        let src = "// lint:allow(float_eq) exact sentinel\nlet a = x == 0.0;\nlet b = y == 0.0;\n";
        let f = SourceFile::new("crates/sim/src/x.rs", src);
        assert!(f.allowed("float_eq", 2));
        assert!(!f.allowed("float_eq", 3));
        assert!(!f.allowed("panic_freedom", 2));
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let f = SourceFile::new("crates/sim/src/x.rs", "let a = x == 0.0; // lint:allow(float_eq)\n");
        assert!(!f.allowed("float_eq", 1));
    }

    #[test]
    fn kind_classification() {
        assert_eq!(kind_of("crates/hw/src/gpu.rs"), FileKind::Lib);
        assert_eq!(kind_of("crates/hw/tests/t.rs"), FileKind::TestDir);
        assert_eq!(kind_of("crates/bench/benches/b.rs"), FileKind::Aux);
        assert_eq!(kind_of("examples/demo.rs"), FileKind::Aux);
        assert_eq!(kind_of("EXPERIMENTS.md"), FileKind::Doc);
        assert_eq!(kind_of("src/lib.rs"), FileKind::Lib);
    }
}
