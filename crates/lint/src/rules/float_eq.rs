//! Rule `float_eq`: no `==`/`!=` against float literals.
//!
//! Exact float comparison is occasionally *correct* (a `0.0` sentinel
//! that is only ever assigned, never computed) — but each such site must
//! say so with `lint:allow(float_eq) reason`. Everything else wants an
//! epsilon or an integer representation (the fleet apportioner's
//! integer milliwatts exist for exactly this reason).
//!
//! Lexical approximation: only comparisons with a float *literal* on
//! either side are detectable without types. That already catches the
//! dangerous idiom (`x == 0.3`-style threshold drift).

use super::{emit, Context, Rule};
use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::FileKind;

/// The rule.
pub struct FloatEq;

impl Rule for FloatEq {
    fn name(&self) -> &'static str {
        "float_eq"
    }

    fn describe(&self) -> &'static str {
        "no ==/!= against f32/f64 literals — compare with an epsilon or use integer units"
    }

    fn check(&self, ctx: &Context, out: &mut Vec<Finding>) {
        for file in ctx.files {
            if file.kind != FileKind::Lib {
                continue;
            }
            let toks = &file.toks;
            for i in 1..toks.len().saturating_sub(1) {
                let (a, b) = (&toks[i], &toks[i + 1]);
                let eq = a.is_punct('=') && b.is_punct('=');
                let ne = a.is_punct('!') && b.is_punct('=');
                if !(eq || ne) {
                    continue;
                }
                // `==` must not be the tail of `<=`, `>=`, `!=`, `..=`.
                if eq && toks[i - 1].kind == TokKind::Punct && "<>!=.".contains(&toks[i - 1].text) {
                    continue;
                }
                let lhs_float = toks[i - 1].kind == TokKind::Float;
                let rhs_float = toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Float);
                if (lhs_float || rhs_float) && !file.is_exempt(a.line) {
                    let op = if eq { "==" } else { "!=" };
                    emit(
                        out,
                        file,
                        self.name(),
                        a.line,
                        format!("float `{op}` comparison — use an epsilon, integer units, or justify with lint:allow"),
                    );
                }
            }
        }
    }
}
