//! Rule `test_hygiene`: the pluggable seams stay tested.
//!
//! `FreqPolicy`, `SensorSource`, and `FreqActuator` are the workspace's
//! extension points — third implementations plug in behind them, so an
//! untested method on one of these traits is an unspecified contract.
//! Every method declared on a seam trait must be referenced from at
//! least one test (a `tests/` file or a `#[cfg(test)]` region) somewhere
//! in the workspace.

use super::{emit, Context, Rule};
use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::{match_delim, FileKind};

/// The seam traits whose surface must be exercised.
const SEAM_TRAITS: &[&str] = &["FreqPolicy", "SensorSource", "FreqActuator"];

/// The rule.
pub struct TestHygiene;

impl Rule for TestHygiene {
    fn name(&self) -> &'static str {
        "test_hygiene"
    }

    fn describe(&self) -> &'static str {
        "every method on the FreqPolicy/SensorSource/FreqActuator seams is referenced from at least one test"
    }

    fn check(&self, ctx: &Context, out: &mut Vec<Finding>) {
        // 1. Collect (trait, method, decl site) from seam definitions.
        let mut methods: Vec<(String, String, usize, u32)> = Vec::new(); // (trait, fn, file idx, line)
        for (fi, file) in ctx.files.iter().enumerate() {
            if file.kind != FileKind::Lib {
                continue;
            }
            let toks = &file.toks;
            for i in 0..toks.len() {
                if !toks[i].is_ident("trait")
                    || !toks
                        .get(i + 1)
                        .is_some_and(|n| SEAM_TRAITS.iter().any(|s| n.is_ident(s)))
                {
                    continue;
                }
                let trait_name = toks[i + 1].text.clone();
                let Some(open) = (i..toks.len()).find(|&k| toks[k].is_punct('{')) else {
                    continue;
                };
                let close = match_delim(toks, open);
                // Walk the body at depth 1: `fn name` introduces a
                // method; skip nested braces (default bodies).
                let mut k = open + 1;
                while k < close {
                    if toks[k].is_punct('{') {
                        k = match_delim(toks, k) + 1;
                        continue;
                    }
                    if toks[k].is_ident("fn") {
                        if let Some(name) = toks.get(k + 1).filter(|t| t.kind == TokKind::Ident) {
                            methods.push((trait_name.clone(), name.text.clone(), fi, name.line));
                        }
                        k += 2;
                        continue;
                    }
                    k += 1;
                }
            }
        }
        // 2. For each method, look for an identifier reference in any
        // test region anywhere in the workspace.
        for (trait_name, method, fi, line) in methods {
            let referenced = ctx.files.iter().any(|f| {
                (f.kind == FileKind::TestDir || f.kind == FileKind::Lib)
                    && f.toks
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text == method && f.is_test_region(t.line))
            });
            if !referenced {
                emit(
                    out,
                    &ctx.files[fi],
                    self.name(),
                    line,
                    format!(
                        "seam method `{trait_name}::{method}` is never referenced from any test — the contract is unspecified"
                    ),
                );
            }
        }
    }
}
