//! Rule `checkpoint_version`: editing a snapshot/restore field set
//! without bumping `CHECKPOINT_VERSION` breaks warm restarts silently.
//!
//! The restore path *rejects* checkpoints whose version does not match,
//! so forgetting the bump does not corrupt state — it quietly turns every
//! restart cold (or worse, accepts an old layout that happens to parse).
//! The rule fingerprints the string literals inside every
//! `snapshot`/`restore`/`checkpoint_data`/`restore_checkpoint` body (the
//! JSON field keys) and compares `(CHECKPOINT_VERSION, fingerprint)`
//! against the committed baseline:
//!
//! * fields changed, version unchanged → **bump the version**;
//! * version or fields changed vs the baseline → **rerun with
//!   `--update-baseline`** so the change is a visible diff in review.

use super::{Context, Rule};
use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::{match_delim, FileKind, SourceFile};

/// Crates that participate in learner checkpointing. The phase
/// detector's snapshot nests inside the contextual policies' state, so
/// its field set is part of the same wire format.
const SCOPE: &[&str] = &["greengpu", "phase", "policy", "cluster"];

/// Function names whose bodies define the checkpoint wire format.
const SNAPSHOT_FNS: &[&str] = &["snapshot", "restore", "checkpoint_data", "restore_checkpoint"];

/// The rule.
pub struct CheckpointVersion;

/// The observed checkpoint state: the `CHECKPOINT_VERSION` literal, the
/// field-set fingerprint, and where the version const lives.
pub struct CheckpointState {
    /// Value of the `CHECKPOINT_VERSION` const.
    pub version: u64,
    /// FNV-1a 64 hex over the sorted, deduplicated field literals.
    pub fingerprint: String,
    /// File declaring the const (findings anchor here).
    pub decl_path: String,
    /// Line of the const.
    pub decl_line: u32,
}

/// Scans `files` for the checkpoint surface. `None` when the workspace
/// has no `CHECKPOINT_VERSION` const (nothing to version).
pub fn observe(files: &[SourceFile]) -> Option<CheckpointState> {
    let mut version = None;
    let mut literals: Vec<String> = Vec::new();
    for file in files {
        if file.kind != FileKind::Lib || !SCOPE.contains(&file.crate_name.as_str()) {
            continue;
        }
        let toks = &file.toks;
        for i in 0..toks.len() {
            if toks[i].is_ident("CHECKPOINT_VERSION") && version.is_none() {
                // const CHECKPOINT_VERSION: u64 = <int>;
                if let Some(eq) = toks[i..].iter().take(8).position(|t| t.is_punct('=')) {
                    if let Some(v) = toks.get(i + eq + 1).filter(|t| t.kind == TokKind::Int) {
                        version = Some((parse_int(&v.text), file.rel_path.clone(), toks[i].line));
                    }
                }
            }
            // fn <snapshot-name> … { body }
            if toks[i].is_ident("fn")
                && toks
                    .get(i + 1)
                    .is_some_and(|n| SNAPSHOT_FNS.iter().any(|s| n.is_ident(s)) && !file.is_exempt(n.line))
            {
                let Some(open) = (i..toks.len()).find(|&k| toks[k].is_punct('{') || toks[k].is_punct(';')) else {
                    continue;
                };
                if toks[open].is_punct(';') {
                    continue; // trait method declaration, no body
                }
                let close = match_delim(toks, open);
                for t in &toks[open..close] {
                    if t.kind == TokKind::Str {
                        literals.push(t.text.clone());
                    }
                }
            }
        }
    }
    let (version, decl_path, decl_line) = version?;
    literals.sort();
    literals.dedup();
    Some(CheckpointState {
        version,
        fingerprint: fnv1a(&literals.join("\n")),
        decl_path,
        decl_line,
    })
}

/// Integer literal text → value (type suffixes tolerated, 0 on garbage).
fn parse_int(text: &str) -> u64 {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x") {
        let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        u64::from_str_radix(&digits, 16).unwrap_or(0)
    } else {
        let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().unwrap_or(0)
    }
}

/// FNV-1a 64-bit, rendered as 16 hex digits.
pub fn fnv1a(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

impl Rule for CheckpointVersion {
    fn name(&self) -> &'static str {
        "checkpoint_version"
    }

    fn describe(&self) -> &'static str {
        "snapshot/restore field-set changes require a CHECKPOINT_VERSION bump (fingerprint vs baseline)"
    }

    fn check(&self, ctx: &Context, out: &mut Vec<Finding>) {
        let Some(state) = observe(ctx.files) else {
            return;
        };
        let push = |out: &mut Vec<Finding>, message: String| {
            out.push(Finding {
                rule: "checkpoint_version",
                path: state.decl_path.clone(),
                line: state.decl_line,
                message,
                snippet: String::new(),
            });
        };
        match (ctx.baseline.checkpoint_version, &ctx.baseline.checkpoint_fingerprint) {
            (Some(bv), Some(bf)) => {
                if *bf != state.fingerprint && bv == state.version {
                    push(
                        out,
                        format!(
                            "checkpoint field set changed (fingerprint {} → {}) but CHECKPOINT_VERSION is still {} — bump it, then run `greengpu-lint --update-baseline`",
                            bf, state.fingerprint, state.version
                        ),
                    );
                } else if *bf != state.fingerprint || bv != state.version {
                    push(
                        out,
                        format!(
                            "checkpoint surface moved (version {} → {}) — run `greengpu-lint --update-baseline` to record it",
                            bv, state.version
                        ),
                    );
                }
            }
            _ => push(
                out,
                "checkpoint surface is not baselined — run `greengpu-lint --update-baseline`".to_string(),
            ),
        }
    }
}
