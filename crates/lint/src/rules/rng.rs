//! Rule `rng_discipline`: every RNG must trace to a config seed.
//!
//! `Pcg32::new(seed, STREAM)` with a *named* root seed is the workspace
//! contract — per-node and per-channel streams all derive from the one
//! seed the experiment publishes. A literal root seed buried in library
//! code silently forks that provenance: the run is still deterministic,
//! but no longer reproducible *from the config*.

use super::{emit, Context, Rule};
use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::FileKind;

/// RNG types whose constructors are checked.
const RNG_TYPES: &[&str] = &["Pcg32", "SplitMix64"];

/// Constructor names whose *first argument* is a root seed.
const SEED_CTORS: &[&str] = &["new", "seeded", "from_state"];

/// The rule.
pub struct RngDiscipline;

impl Rule for RngDiscipline {
    fn name(&self) -> &'static str {
        "rng_discipline"
    }

    fn describe(&self) -> &'static str {
        "RNG constructors must take a named seed (config-traceable), never an integer literal, outside tests"
    }

    fn check(&self, ctx: &Context, out: &mut Vec<Finding>) {
        for file in ctx.files {
            if file.kind != FileKind::Lib {
                continue;
            }
            let toks = &file.toks;
            for i in 0..toks.len() {
                if !(RNG_TYPES.iter().any(|t| toks[i].is_ident(t))) {
                    continue;
                }
                // Pattern: Type :: ctor ( <int literal>
                let Some(w) = toks.get(i + 1..i + 6) else { continue };
                if !(w[0].is_punct(':') && w[1].is_punct(':')) {
                    continue;
                }
                if !SEED_CTORS.iter().any(|c| w[2].is_ident(c)) || !w[3].is_punct('(') {
                    continue;
                }
                if w[4].kind != TokKind::Int || file.is_exempt(toks[i].line) {
                    continue;
                }
                emit(
                    out,
                    file,
                    self.name(),
                    toks[i].line,
                    format!(
                        "`{}::{}({}, …)` hardcodes a root seed — take it from the config or a named `SEED` constant",
                        toks[i].text, w[2].text, w[4].text
                    ),
                );
            }
        }
    }
}
