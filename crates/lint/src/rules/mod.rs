//! The rule registry and shared context.

use crate::baseline::Baseline;
use crate::findings::Finding;
use crate::lexer::DirectiveKind;
use crate::source::SourceFile;

pub mod checkpoint;
pub mod contract;
pub mod determinism;
pub mod float_eq;
pub mod hygiene;
pub mod panic;
pub mod rng;
pub mod units;

/// Everything a rule can look at.
pub struct Context<'a> {
    /// Every scanned file, sources and docs alike.
    pub files: &'a [SourceFile],
    /// The committed baseline (checkpoint fingerprints live here).
    pub baseline: &'a Baseline,
}

/// One static-invariant rule.
pub trait Rule {
    /// Stable snake_case name used in `lint:allow(...)` and the baseline.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Appends findings (pre-suppression) to `out`.
    fn check(&self, ctx: &Context, out: &mut Vec<Finding>);
}

/// The full rule set, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(determinism::Determinism),
        Box::new(rng::RngDiscipline),
        Box::new(panic::PanicFreedom),
        Box::new(float_eq::FloatEq),
        Box::new(units::UnitSafety),
        Box::new(checkpoint::CheckpointVersion),
        Box::new(contract::ContractDrift),
        Box::new(hygiene::TestHygiene),
    ]
}

/// Emits a finding unless an inline `lint:allow` covers it.
pub(crate) fn emit(out: &mut Vec<Finding>, file: &SourceFile, rule: &'static str, line: u32, message: String) {
    if file.allowed(rule, line) {
        return;
    }
    out.push(Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        message,
        snippet: file.snippet(line).to_string(),
    });
}

/// Validates the `lint:` directives themselves: malformed syntax, unknown
/// rule names, and reason-less allows are findings (rule
/// `lint_directive`) — the escape hatch polices itself.
pub fn check_directives(ctx: &Context, out: &mut Vec<Finding>) {
    let rule_names: Vec<&'static str> = all_rules().iter().map(|r| r.name()).collect();
    for file in ctx.files {
        for d in &file.directives {
            let message = match d.kind {
                DirectiveKind::Malformed => {
                    "malformed lint directive — use `// lint:allow(rule) reason` or `// lint:contract(name)`"
                        .to_string()
                }
                DirectiveKind::Allow if !rule_names.contains(&d.arg.as_str()) => {
                    format!("lint:allow names unknown rule {:?}", d.arg)
                }
                DirectiveKind::Allow if d.reason.is_empty() => {
                    format!("lint:allow({}) has no reason — say why the escape is sound", d.arg)
                }
                _ => continue,
            };
            out.push(Finding {
                rule: "lint_directive",
                path: file.rel_path.clone(),
                line: d.line,
                message,
                snippet: file.snippet(d.line).to_string(),
            });
        }
    }
}

/// Runs every rule plus directive validation, returning findings sorted
/// by path/line/rule (pre-suppression).
pub fn run_all(ctx: &Context) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in all_rules() {
        rule.check(ctx, &mut out);
    }
    check_directives(ctx, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}
