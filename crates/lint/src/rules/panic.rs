//! Rule `panic_freedom`: controller paths degrade, they do not abort.
//!
//! The hardening contract since the fault-injection PR: invalid input
//! holds the last known good state, empty feasible sets fall back to the
//! lowest-power pair, failed restores cold-start. A stray `unwrap()` in a
//! controller path turns a recoverable sensor glitch into a dead node.

use super::{emit, Context, Rule};
use crate::findings::Finding;
use crate::lexer::TokKind;
use crate::source::FileKind;

/// Crates whose library code sits on controller paths.
pub const SCOPE: &[&str] = &["greengpu", "cluster", "policy", "phase", "runtime", "tenancy"];

/// The rule.
pub struct PanicFreedom;

impl Rule for PanicFreedom {
    fn name(&self) -> &'static str {
        "panic_freedom"
    }

    fn describe(&self) -> &'static str {
        "no unwrap()/expect()/panic!/unguarded arithmetic indexing in controller-crate library code"
    }

    fn check(&self, ctx: &Context, out: &mut Vec<Finding>) {
        for file in ctx.files {
            if file.kind != FileKind::Lib || !SCOPE.contains(&file.crate_name.as_str()) {
                continue;
            }
            let toks = &file.toks;
            for i in 0..toks.len() {
                let t = &toks[i];
                if file.is_exempt(t.line) {
                    continue;
                }
                // `.unwrap()` / `.expect(` — method calls only, so
                // `unwrap_or` and friends stay legal.
                if (t.is_ident("unwrap") || t.is_ident("expect"))
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    emit(
                        out,
                        file,
                        self.name(),
                        t.line,
                        format!(
                            "`.{}()` on a controller path — degrade (hold last-known-good, `unwrap_or`, `let-else`) instead of aborting",
                            t.text
                        ),
                    );
                    continue;
                }
                // panic!/unreachable!/todo!/unimplemented!
                if ["panic", "unreachable", "todo", "unimplemented"]
                    .iter()
                    .any(|m| t.is_ident(m))
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                {
                    emit(
                        out,
                        file,
                        self.name(),
                        t.line,
                        format!(
                            "`{}!` on a controller path — return a `Result` or hold state instead",
                            t.text
                        ),
                    );
                    continue;
                }
                // Arithmetic indexing `xs[i + 1]` / `xs[i - 1]`: the
                // classic off-by-one panic. Plain `xs[i]` is accepted —
                // flagging every index would drown the signal.
                if t.is_punct('[')
                    && i > 0
                    && toks[i - 1].kind == TokKind::Ident
                    && toks.get(i + 1).is_some_and(|a| a.kind == TokKind::Ident)
                    && toks.get(i + 2).is_some_and(|o| o.is_punct('+') || o.is_punct('-'))
                    && toks.get(i + 3).is_some_and(|b| b.kind == TokKind::Int)
                    && toks.get(i + 4).is_some_and(|c| c.is_punct(']'))
                {
                    emit(
                        out,
                        file,
                        self.name(),
                        t.line,
                        format!(
                            "unguarded arithmetic index `{}[{} {} {}]` — use `.get(..)` or prove the bound with a guard",
                            toks[i - 1].text, toks[i + 1].text, toks[i + 2].text, toks[i + 3].text
                        ),
                    );
                }
            }
        }
    }
}
