//! Rule `contract_drift`: code and documentation state the same facts.
//!
//! Two checks:
//!
//! 1. **Column contracts.** A `// lint:contract(name)` marker in code
//!    names the CSV header list that follows (a `&[…]` of string
//!    literals or one comma-separated literal). EXPERIMENTS.md declares
//!    the same list in a fenced block opened with <code>```contract:name</code>.
//!    The two must match element-for-element, and neither side may be
//!    orphaned — so renaming a telemetry column without updating the
//!    published schema (or vice versa) fails the build.
//! 2. **Section numbering.** DESIGN.md `## N.` headings must run 1..K
//!    contiguously and `### N.M` subsections must nest contiguously —
//!    stale cross-references start with a skipped number.

use super::{Context, Rule};
use crate::findings::Finding;
use crate::lexer::{DirectiveKind, TokKind};
use crate::source::{FileKind, SourceFile};

/// The rule.
pub struct ContractDrift;

/// One side of a named contract.
struct ContractSide {
    path: String,
    line: u32,
    columns: Vec<String>,
}

/// Collects `lint:contract` lists from code.
fn code_contracts(files: &[SourceFile]) -> Vec<(String, ContractSide)> {
    let mut out = Vec::new();
    for file in files {
        for d in &file.directives {
            if d.kind != DirectiveKind::Contract {
                continue;
            }
            // String literals in the statement after the marker line —
            // everything up to the first `;` at bracket depth zero, so
            // array types like `[&str; 3]` don't end the scan early.
            let Some(start) = file.toks.iter().position(|t| t.line > d.line) else {
                continue;
            };
            let mut literals: Vec<String> = Vec::new();
            let mut depth = 0i64;
            for t in &file.toks[start..] {
                match t.text.as_str() {
                    "[" | "(" | "{" => depth += 1,
                    // Dropping below the marker's own depth means the
                    // enclosing expression (e.g. a call the marker sits
                    // inside) closed — the list is over.
                    "]" | ")" | "}" => {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                if t.kind == TokKind::Str {
                    literals.push(t.text.clone());
                }
            }
            // A single literal with commas is itself the column list.
            let columns: Vec<String> = if literals.len() == 1 && literals[0].contains(',') {
                literals[0].split(',').map(|s| s.trim().to_string()).collect()
            } else {
                literals
            };
            out.push((
                d.arg.clone(),
                ContractSide {
                    path: file.rel_path.clone(),
                    line: d.line,
                    columns,
                },
            ));
        }
    }
    out
}

/// Collects ```contract:name fenced blocks from markdown docs.
fn doc_contracts(files: &[SourceFile]) -> Vec<(String, ContractSide)> {
    let mut out = Vec::new();
    for file in files {
        if file.kind != FileKind::Doc {
            continue;
        }
        let mut i = 0;
        while i < file.lines.len() {
            let line = file.lines[i].trim();
            if let Some(name) = line.strip_prefix("```contract:") {
                let name = name.trim().to_string();
                let open_line = (i + 1) as u32;
                let mut body = String::new();
                i += 1;
                while i < file.lines.len() && !file.lines[i].trim().starts_with("```") {
                    body.push_str(&file.lines[i]);
                    body.push('\n');
                    i += 1;
                }
                let columns = body
                    .split([',', '\n'])
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                out.push((
                    name,
                    ContractSide {
                        path: file.rel_path.clone(),
                        line: open_line,
                        columns,
                    },
                ));
            }
            i += 1;
        }
    }
    out
}

/// Checks DESIGN.md-style numbered headings for contiguity.
fn check_headings(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut top = 0u32;
    let mut sub = 0u32;
    for (i, raw) in file.lines.iter().enumerate() {
        let line = (i + 1) as u32;
        let mut fail = |msg: String| {
            out.push(Finding {
                rule: "contract_drift",
                path: file.rel_path.clone(),
                line,
                message: msg,
                snippet: raw.trim().to_string(),
            });
        };
        if let Some(rest) = raw.strip_prefix("## ") {
            if let Some(n) = leading_number(rest) {
                if n != top + 1 {
                    fail(format!(
                        "section heading `## {n}.` breaks contiguity — expected `## {}.`",
                        top + 1
                    ));
                }
                top = n;
                sub = 0;
            }
        } else if let Some(rest) = raw.strip_prefix("### ") {
            if let Some((maj, min)) = leading_pair(rest) {
                if maj != top {
                    fail(format!("subsection `### {maj}.{min}` sits under section {top}"));
                } else if min != sub + 1 {
                    fail(format!(
                        "subsection `### {maj}.{min}` breaks contiguity — expected `### {maj}.{}`",
                        sub + 1
                    ));
                }
                sub = min;
            }
        }
    }
}

/// `"4. Models"` → `Some(4)` (requires the trailing dot).
fn leading_number(s: &str) -> Option<u32> {
    let digits: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() || !s[digits.len()..].starts_with('.') {
        return None;
    }
    // `4.1` is a pair, not a top-level number.
    if s[digits.len() + 1..].starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// `"4.1 GPU timing"` → `Some((4, 1))`.
fn leading_pair(s: &str) -> Option<(u32, u32)> {
    let maj: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
    let rest = s.get(maj.len()..)?.strip_prefix('.')?;
    let min: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if maj.is_empty() || min.is_empty() {
        return None;
    }
    Some((maj.parse().ok()?, min.parse().ok()?))
}

impl Rule for ContractDrift {
    fn name(&self) -> &'static str {
        "contract_drift"
    }

    fn describe(&self) -> &'static str {
        "CSV header lists match their EXPERIMENTS.md contract blocks; DESIGN.md sections number contiguously"
    }

    fn check(&self, ctx: &Context, out: &mut Vec<Finding>) {
        let code = code_contracts(ctx.files);
        let docs = doc_contracts(ctx.files);
        for (name, c) in &code {
            match docs.iter().find(|(n, _)| n == name) {
                None => out.push(Finding {
                    rule: "contract_drift",
                    path: c.path.clone(),
                    line: c.line,
                    message: format!("contract `{name}` has no ```contract:{name}``` block in EXPERIMENTS.md"),
                    snippet: String::new(),
                }),
                Some((_, d)) if d.columns != c.columns => out.push(Finding {
                    rule: "contract_drift",
                    path: c.path.clone(),
                    line: c.line,
                    message: format!(
                        "contract `{name}` drifted: code says [{}], {} says [{}]",
                        c.columns.join(", "),
                        d.path,
                        d.columns.join(", ")
                    ),
                    snippet: String::new(),
                }),
                Some(_) => {}
            }
        }
        for (name, d) in &docs {
            if !code.iter().any(|(n, _)| n == name) {
                out.push(Finding {
                    rule: "contract_drift",
                    path: d.path.clone(),
                    line: d.line,
                    message: format!("doc contract `{name}` has no `lint:contract({name})` marker in code"),
                    snippet: String::new(),
                });
            }
        }
        for file in ctx.files {
            if file.kind == FileKind::Doc && file.rel_path.ends_with("DESIGN.md") {
                check_headings(file, out);
            }
        }
    }
}
