//! Rule `determinism`: no wall clocks or env-dependent iteration in the
//! crates whose outputs must be byte-identical per seed.
//!
//! Every experiment CSV, checkpoint, and golden trace in this workspace
//! is asserted byte-identical for a fixed seed. A single `Instant::now`
//! or `HashMap` iteration in those paths breaks that silently — results
//! still *look* right, they just stop being reproducible.

use super::{emit, Context, Rule};
use crate::findings::Finding;
use crate::source::FileKind;

/// Crates whose library code must be wall-clock- and hash-order-free.
pub const SCOPE: &[&str] = &[
    "sim", "cluster", "policy", "phase", "greengpu", "repro", "runtime", "tenancy",
];

/// Forbidden identifier → what to use instead.
const FORBIDDEN: &[(&str, &str)] = &[
    (
        "Instant",
        "take a `Clock`/simulated-time parameter (`greengpu_runtime::clock`)",
    ),
    ("SystemTime", "thread `SimTime` through from the caller"),
    ("UNIX_EPOCH", "thread `SimTime` through from the caller"),
    ("HashMap", "use `BTreeMap` — iteration order feeds deterministic output"),
    ("HashSet", "use `BTreeSet` — iteration order feeds deterministic output"),
    ("thread_rng", "use a seeded `Pcg32` stream derived from the config seed"),
    ("RandomState", "use `BTreeMap`/`BTreeSet` — hashing is process-seeded"),
];

/// The rule.
pub struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn describe(&self) -> &'static str {
        "no wall clocks (Instant/SystemTime) or hash-order iteration (HashMap/HashSet) in deterministic crates"
    }

    fn check(&self, ctx: &Context, out: &mut Vec<Finding>) {
        for file in ctx.files {
            if file.kind != FileKind::Lib || !SCOPE.contains(&file.crate_name.as_str()) {
                continue;
            }
            for t in &file.toks {
                if file.is_exempt(t.line) {
                    continue;
                }
                if let Some((name, fix)) = FORBIDDEN.iter().find(|(name, _)| t.is_ident(name)) {
                    emit(
                        out,
                        file,
                        self.name(),
                        t.line,
                        format!("`{name}` is nondeterministic here — {fix}"),
                    );
                }
            }
        }
    }
}
