//! Rule `unit_safety`: power values carry their unit in the name and
//! never cross the milliwatt/watt boundary without a visible conversion.
//!
//! The fleet apportioner does exact integer-milliwatt accounting while
//! the controller layer reports watts as `f64`; one silent `_mw`/`_w`
//! mix-up is a 1000× budget error that every downstream table happily
//! formats. Three lexical checks:
//!
//! 1. an `_mw` identifier and a `_w` identifier on the same expression
//!    line with no conversion evidence (a `1000` factor or a
//!    `*_to_*`/`from_*` helper) is a mixed-unit expression;
//! 2. a bare `as` cast directly on a power identifier with no conversion
//!    evidence launders the unit through the type system;
//! 3. a `let` binding or typed field/parameter whose name says
//!    power/watt/milliwatt must end in `_w` or `_mw`.

use super::{emit, Context, Rule};
use crate::findings::Finding;
use crate::lexer::{Tok, TokKind};
use crate::source::FileKind;

/// The rule.
pub struct UnitSafety;

fn milli_suffixed(t: &Tok) -> bool {
    t.kind == TokKind::Ident && t.text.ends_with("_mw")
}

fn watt_suffixed(t: &Tok) -> bool {
    t.kind == TokKind::Ident && t.text.ends_with("_w") && !t.text.ends_with("_mw")
}

/// A `1000` factor or a named conversion helper on the line —
/// `mw`/`mw_floor` are the workspace's blessed watt→milliwatt converters
/// (`crates/cluster/src/power.rs`).
fn conversion_evidence(line_toks: &[&Tok]) -> bool {
    line_toks.iter().any(|t| {
        (t.kind == TokKind::Int && matches!(t.text.replace('_', "").as_str(), "1000"))
            || (t.kind == TokKind::Float && matches!(t.text.replace('_', "").as_str(), "1000.0" | "1e3" | "1.0e3"))
            || (t.kind == TokKind::Ident
                && (matches!(t.text.as_str(), "mw" | "mw_floor")
                    || t.text.contains("_to_")
                    || t.text.starts_with("from_")
                    || t.text.contains("milli")))
    })
}

/// Power-adjacent names that are *not* watt-valued: utilization shares,
/// ratios, energies, and grids keep their own suffixes; `watts` *is* the
/// unit.
fn naming_exempt(name: &str) -> bool {
    matches!(name, "watts" | "milliwatts")
        || ["_util", "_frac", "_ratio", "_j", "_map", "_grid", "_model"]
            .iter()
            .any(|s| name.ends_with(s))
}

impl Rule for UnitSafety {
    fn name(&self) -> &'static str {
        "unit_safety"
    }

    fn describe(&self) -> &'static str {
        "power identifiers end in _w/_mw and never mix units without an explicit 1000 conversion"
    }

    fn check(&self, ctx: &Context, out: &mut Vec<Finding>) {
        for file in ctx.files {
            if file.kind != FileKind::Lib {
                continue;
            }
            let toks = &file.toks;
            // Group token indices by line for the mixing check.
            let mut by_line: Vec<(u32, Vec<&Tok>)> = Vec::new();
            for t in toks {
                match by_line.last_mut() {
                    Some((line, v)) if *line == t.line => v.push(t),
                    _ => by_line.push((t.line, vec![t])),
                }
            }
            for (line, lt) in &by_line {
                if file.is_exempt(*line) {
                    continue;
                }
                let saw_milli = lt.iter().any(|t| milli_suffixed(t));
                let saw_plain_w = lt.iter().any(|t| watt_suffixed(t));
                // A `fn` signature carrying both units is a converter's
                // parameter list, not a mixed-unit expression.
                let is_signature = lt.iter().any(|t| t.is_ident("fn"));
                if saw_milli && saw_plain_w && !is_signature && !conversion_evidence(lt) {
                    emit(
                        out,
                        file,
                        self.name(),
                        *line,
                        "`_mw` and `_w` identifiers mix on one line with no `1000` conversion in sight — a 1000× accounting bug"
                            .to_string(),
                    );
                }
            }
            for i in 0..toks.len() {
                let t = &toks[i];
                if file.is_exempt(t.line) {
                    continue;
                }
                // Bare `as` cast on a power identifier.
                if (milli_suffixed(t) || watt_suffixed(t)) && toks.get(i + 1).is_some_and(|n| n.is_ident("as")) {
                    let lt: Vec<&Tok> = toks.iter().filter(|x| x.line == t.line).collect();
                    if !conversion_evidence(&lt) {
                        emit(
                            out,
                            file,
                            self.name(),
                            t.line,
                            format!(
                                "bare `{} as …` cast — convert units explicitly (×/÷ 1000) or keep the unit type",
                                t.text
                            ),
                        );
                    }
                    continue;
                }
                // Unsuffixed power-valued declarations.
                if t.kind == TokKind::Ident
                    && (t.text.contains("power") || t.text.contains("watt"))
                    && !t.text.ends_with("_w")
                    && !t.text.ends_with("_mw")
                    && !t.text.ends_with("_kw")
                    && !naming_exempt(&t.text)
                    && t.text
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit())
                {
                    // `name:` introduces a binding/field; `name::` is a
                    // module path and stays legal.
                    let typed = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                        && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'));
                    let declared = (i > 0 && (toks[i - 1].is_ident("let") || toks[i - 1].is_ident("mut"))) || typed;
                    if declared {
                        emit(
                            out,
                            file,
                            self.name(),
                            t.line,
                            format!("power-valued binding `{}` lacks a `_w`/`_mw` unit suffix", t.text),
                        );
                    }
                }
            }
        }
    }
}
