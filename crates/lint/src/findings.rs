//! Findings and their rendering.

use std::fmt;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (`panic_freedom`, …).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human message.
    pub message: String,
    /// The trimmed offending source line (the baseline key).
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON report (stable field order, one finding per
/// array element) for the CI artifact.
pub fn to_json(findings: &[Finding], suppressed: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"findings\": {},\n", findings.len()));
    out.push_str(&format!("  \"suppressed\": {suppressed},\n"));
    out.push_str("  \"items\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}{}\n",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.snippet),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_escaped_and_counted() {
        let f = Finding {
            rule: "float_eq",
            path: "a/b.rs".into(),
            line: 3,
            message: "no `==` on floats".into(),
            snippet: "x == \"q\"".into(),
        };
        let j = to_json(&[f], 2);
        assert!(j.contains("\"findings\": 1"));
        assert!(j.contains("\"suppressed\": 2"));
        assert!(j.contains("x == \\\"q\\\""));
    }
}
