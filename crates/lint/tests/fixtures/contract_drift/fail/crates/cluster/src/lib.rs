//! Fixture: a CSV header bound to the experiment docs.
// lint:contract(cols)
pub const HEADER: [&str; 3] = ["interval", "time_s", "energy_j"];
