//! Fixture: aborting accessor on a controller path.
pub fn first(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap()
}
