//! Fixture: the same accessor degrading to a default.
pub fn first(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap_or(0.0)
}
