//! Fixture: a justified escape.
pub fn exact(x: f64) -> bool {
    // lint:allow(float_eq) exact-zero sentinel set only from literals
    x == 0.0
}
