//! Fixture: escape hatches used wrong.
// lint:allow(float_eq)
pub fn exact(x: f64) -> bool {
    x == 0.0
}

// lint:allow(no_such_rule) the rule name is wrong
pub fn other(x: f64) -> f64 {
    x + 1.0
}
