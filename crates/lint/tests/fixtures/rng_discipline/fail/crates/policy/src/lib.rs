//! Fixture: RNG seeded from a bare literal in library code.
pub struct Pcg32 {
    state: u64,
}

impl Pcg32 {
    pub fn seeded(seed: u64) -> Self {
        Pcg32 { state: seed }
    }

    pub fn state(&self) -> u64 {
        self.state
    }
}

pub fn policy_rng() -> Pcg32 {
    Pcg32::seeded(42)
}
