//! Fixture: the seed is threaded in from config.
pub struct Pcg32 {
    state: u64,
}

impl Pcg32 {
    pub fn seeded(seed: u64) -> Self {
        Pcg32 { state: seed }
    }

    pub fn state(&self) -> u64 {
        self.state
    }
}

pub fn policy_rng(seed: u64) -> Pcg32 {
    Pcg32::seeded(seed)
}
