//! Fixture: a snapshot surface guarded by CHECKPOINT_VERSION.
pub const CHECKPOINT_VERSION: u64 = 1;

pub fn snapshot() -> Vec<(&'static str, f64)> {
    vec![("weights", 1.0), ("ratio", 0.5)]
}
