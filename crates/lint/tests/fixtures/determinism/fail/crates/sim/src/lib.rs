//! Fixture: wall-clock read inside a seeded crate.
use std::time::Instant;

pub fn elapsed_s() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
