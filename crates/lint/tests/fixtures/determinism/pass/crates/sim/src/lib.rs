//! Fixture: time arrives as simulated-clock parameters.
pub fn step(now_s: f64, dt_s: f64) -> f64 {
    now_s + dt_s
}
