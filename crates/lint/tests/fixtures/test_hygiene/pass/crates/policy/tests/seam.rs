//! Exercises the FreqPolicy seam.

pub trait FreqPolicy {
    fn decide(&mut self) -> usize;
}

struct Fixed;

impl FreqPolicy for Fixed {
    fn decide(&mut self) -> usize {
        3
    }
}

#[test]
fn decide_returns_the_fixed_level() {
    let mut p = Fixed;
    assert_eq!(p.decide(), 3);
}
