//! Fixture: a seam trait whose methods need test coverage.
pub trait FreqPolicy {
    fn decide(&mut self) -> usize;
}

pub struct Fixed;

impl FreqPolicy for Fixed {
    fn decide(&mut self) -> usize {
        3
    }
}
