//! Fixture: the boundary crossing shows its 1000 factor.
pub fn headroom_mw(cap_mw: u64, draw_w: f64) -> u64 {
    cap_mw.saturating_sub((draw_w * 1000.0) as u64)
}
