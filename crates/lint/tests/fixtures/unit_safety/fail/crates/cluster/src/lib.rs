//! Fixture: milliwatts and watts mixed with no conversion.
pub fn headroom(cap_mw: u64, draw_w: f64) -> f64 {
    cap_mw as f64 - draw_w
}
