//! The dogfood test: the workspace itself must lint clean against the
//! committed `lint-baseline.toml`, with no stale baseline entries. This
//! is the same check CI runs — if it fails here, fix the finding, add a
//! reasoned `// lint:allow(rule)`, or (for pre-existing debt) extend the
//! baseline with a reason.

use std::path::Path;

use greengpu_lint::{load_baseline, run};

#[test]
fn workspace_lints_clean_against_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root");
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );

    let baseline = load_baseline(&root.join("lint-baseline.toml")).expect("baseline parses");
    let report = run(root, &baseline).expect("lint runs");

    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.findings.is_empty(),
        "the workspace has {} unbaselined lint finding(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
    assert!(
        report.stale.is_empty(),
        "the baseline has stale entries (fixed code — remove them):\n{}",
        report.stale.join("\n")
    );
}
