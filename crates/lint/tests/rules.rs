//! End-to-end rule tests: every rule has a failing fixture that trips it
//! and a passing fixture that runs clean, exercised through the real
//! binary so exit codes and output formats are covered too.

use std::path::PathBuf;
use std::process::{Command, Output};

/// All rules with a fixture pair under `tests/fixtures/<rule>/{pass,fail}`.
const RULES: &[&str] = &[
    "determinism",
    "rng_discipline",
    "panic_freedom",
    "float_eq",
    "unit_safety",
    "checkpoint_version",
    "contract_drift",
    "test_hygiene",
    "lint_directive",
];

fn fixture(rule: &str, variant: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(variant)
}

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_greengpu-lint"))
        .args(args)
        .output()
        .expect("spawn greengpu-lint")
}

#[test]
fn every_fail_fixture_trips_its_rule() {
    for rule in RULES {
        let root = fixture(rule, "fail");
        let out = lint(&["--root", root.to_str().expect("utf-8 path")]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{rule}/fail should exit 1\nstdout:\n{stdout}\nstderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "{rule}/fail should report a [{rule}] finding, got:\n{stdout}"
        );
    }
}

#[test]
fn every_pass_fixture_runs_clean() {
    for rule in RULES {
        let root = fixture(rule, "pass");
        let out = lint(&["--root", root.to_str().expect("utf-8 path")]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{rule}/pass should exit 0\nstdout:\n{}\nstderr:\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn json_report_carries_the_findings() {
    let root = fixture("float_eq", "fail");
    let out = lint(&["--root", root.to_str().expect("utf-8 path"), "--json", "-", "--quiet"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stdout.contains("\"rule\": \"float_eq\""),
        "JSON missing the finding:\n{stdout}"
    );
    assert!(stdout.contains("\"findings\": 1"), "JSON missing the count:\n{stdout}");
}

#[test]
fn unknown_arguments_exit_2() {
    let out = lint(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
}

#[test]
fn list_rules_names_every_rule() {
    let out = lint(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in RULES {
        if *rule == "lint_directive" {
            continue; // the meta-rule is built in, not listed
        }
        assert!(stdout.contains(rule), "--list-rules is missing {rule}:\n{stdout}");
    }
}
