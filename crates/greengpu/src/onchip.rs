//! On-chip controller cost model (paper §VI).
//!
//! The paper sketches a hardware implementation of the frequency-scaling
//! tier: the N×M weight table in 8-bit registers (36 bytes for 6×6), the
//! fixed-coefficient multiplies of Eqs. 1–3 reduced to shift-add logic, and
//! — citing Mathew et al.'s sparse-tree adder \[17\] — "scaled to 8-bit and
//! current 65nm technology, the adder … only consumes 0.001 mm² and
//! 12.5×10⁻⁹ J each invocation". This module turns that sketch into an
//! accounting model: adder invocations per observe interval, controller
//! energy over a run, and the comparison against the savings the
//! controller produces — the paper's "negligible" claim, quantified.

/// Per-invocation cost of the paper's 8-bit shift-add unit at 65 nm.
pub const ADDER_ENERGY_J: f64 = 12.5e-9;

/// Area of the adder, mm² (65 nm, from the paper's §VI).
pub const ADDER_AREA_MM2: f64 = 0.001;

/// Hardware cost model of the on-chip WMA controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnchipModel {
    /// Core frequency levels (`N`).
    pub n_core: usize,
    /// Memory frequency levels (`M`).
    pub n_mem: usize,
}

impl OnchipModel {
    /// The paper's 6×6 testbed.
    pub fn testbed() -> Self {
        OnchipModel { n_core: 6, n_mem: 6 }
    }

    /// Weight-table storage in bytes (8 bits per pair).
    pub fn table_bytes(&self) -> usize {
        self.n_core * self.n_mem
    }

    /// Shift-add invocations per observe interval.
    ///
    /// Per interval the controller computes `N` core losses and `M` memory
    /// losses (each: one subtract + one coefficient multiply folded to a
    /// shift-add ⇒ 2 invocations), combines them into `N·M` total losses
    /// (one shift-add each for the φ fold), and performs `N·M` weight
    /// updates (multiply-shift ⇒ 1) plus the argmax scan (`N·M − 1`
    /// compares, counted as adds).
    pub fn adds_per_interval(&self) -> u64 {
        let nm = (self.n_core * self.n_mem) as u64;
        let losses = 2 * (self.n_core + self.n_mem) as u64;
        losses + nm /* φ fold */ + nm /* weight update */ + (nm - 1) /* argmax */
    }

    /// Controller energy per observe interval, joules.
    pub fn energy_per_interval_j(&self) -> f64 {
        self.adds_per_interval() as f64 * ADDER_ENERGY_J
    }

    /// Controller energy over a run of `intervals` observe intervals,
    /// joules.
    pub fn controller_energy_j(&self, intervals: u64) -> f64 {
        intervals as f64 * self.energy_per_interval_j()
    }

    /// The controller-overhead fraction: controller energy divided by the
    /// energy the scaling tier saved.
    pub fn overhead_fraction(&self, intervals: u64, saving_j: f64) -> f64 {
        assert!(saving_j > 0.0, "needs a positive saving to compare against");
        self.controller_energy_j(intervals) / saving_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{run_best_performance_with, run_with_config};
    use crate::GreenGpuConfig;
    use greengpu_runtime::RunConfig;
    use greengpu_workloads::kmeans::KMeans;

    #[test]
    fn testbed_table_is_36_bytes() {
        assert_eq!(OnchipModel::testbed().table_bytes(), 36);
    }

    #[test]
    fn adds_per_interval_is_order_hundred() {
        // 6×6: 24 loss adds + 36 folds + 36 updates + 35 compares = 131.
        let m = OnchipModel::testbed();
        assert_eq!(m.adds_per_interval(), 131);
        // That is well within one microsecond of a single 4 GHz adder —
        // nothing like a bottleneck at a 3 s interval.
    }

    #[test]
    fn controller_energy_is_nanojoule_scale() {
        let m = OnchipModel::testbed();
        let per_interval = m.energy_per_interval_j();
        assert!(per_interval < 2e-6, "per-interval {per_interval} J");
    }

    #[test]
    fn controller_overhead_is_negligible_vs_savings() {
        // The paper's claim, end to end: run the scaling tier on kmeans,
        // count its intervals, and compare the on-chip controller energy
        // against the measured saving.
        let base = run_best_performance_with(&mut KMeans::paper(2), RunConfig::sweep());
        let ours = run_with_config(
            &mut KMeans::paper(2),
            GreenGpuConfig::scaling_only(),
            RunConfig::sweep(),
        );
        let saving = base.gpu_energy_j - ours.gpu_energy_j;
        assert!(saving > 0.0);
        let intervals = (ours.total_time.as_secs_f64() / 3.0).ceil() as u64;
        let overhead = OnchipModel::testbed().overhead_fraction(intervals, saving);
        assert!(
            overhead < 1e-6,
            "controller overhead {overhead} of the saving — should be parts-per-million"
        );
    }

    #[test]
    fn scales_with_table_dimensions() {
        let small = OnchipModel { n_core: 2, n_mem: 2 };
        let big = OnchipModel { n_core: 12, n_mem: 12 };
        assert!(big.adds_per_interval() > small.adds_per_interval() * 10);
        assert_eq!(small.table_bytes(), 4);
        assert_eq!(big.table_bytes(), 144);
    }

    #[test]
    #[should_panic(expected = "positive saving")]
    fn zero_saving_panics() {
        OnchipModel::testbed().overhead_fraction(100, 0.0);
    }
}
