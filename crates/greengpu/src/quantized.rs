//! The 8-bit fixed-point WMA table — the paper's §VI hardware sketch.
//!
//! The paper argues the frequency-scaling tier is cheap enough to move
//! on-chip: "Because the loss factor value is between 0 and 1, 8-bit
//! precision is accurate enough for the purpose of picking up the largest
//! weight. For our testbed with 6 core frequency levels and 6 memory
//! levels, we only need a 36 bytes table (6x6x8)", with the fixed-α
//! multiplies reduced to shift-add logic.
//!
//! [`QuantizedWma`] implements exactly that: `u8` weights, `u8` losses,
//! integer multiply-shift updates. The unit tests check its decisions
//! against the `f64` reference scaler.

use crate::wma::{table1_loss, WmaParams};

/// Fixed-point scale: values in `[0, 1]` map to `[0, 255]`.
const ONE: u16 = 255;

/// The hardware-feasible 8-bit WMA table.
#[derive(Debug, Clone)]
pub struct QuantizedWma {
    n_core: usize,
    n_mem: usize,
    /// 8-bit weights — 36 bytes for the paper's 6×6 testbed.
    weights: Vec<u8>,
    /// Pre-quantized parameters.
    alpha_core_q: u16,
    alpha_mem_q: u16,
    phi_q: u16,
    one_minus_beta_q: u16,
    ucmean_q: Vec<u16>,
    ummean_q: Vec<u16>,
}

fn quantize(x: f64) -> u16 {
    debug_assert!((0.0..=1.0).contains(&x));
    (x * f64::from(ONE)).round() as u16
}

/// Fixed-point multiply of two `[0,255]`-scaled values: `(a·b + 128) >> 8`
/// — the shift-add structure the paper's adder citation supports.
fn fxmul(a: u16, b: u16) -> u16 {
    ((u32::from(a) * u32::from(b) + 128) >> 8) as u16
}

impl QuantizedWma {
    /// Builds the table for `n_core × n_mem` levels.
    pub fn new(n_core: usize, n_mem: usize, params: WmaParams) -> Self {
        assert!(n_core >= 2 && n_mem >= 2);
        params.validate();
        let linmap_q = |n: usize| -> Vec<u16> { (0..n).map(|i| quantize(i as f64 / (n - 1) as f64)).collect() };
        QuantizedWma {
            n_core,
            n_mem,
            weights: vec![u8::MAX; n_core * n_mem],
            alpha_core_q: quantize(params.alpha_core),
            alpha_mem_q: quantize(params.alpha_mem),
            phi_q: quantize(params.phi),
            one_minus_beta_q: quantize(1.0 - params.beta),
            ucmean_q: linmap_q(n_core),
            ummean_q: linmap_q(n_mem),
        }
    }

    /// Size of the weight storage in bytes (the paper's "36 bytes table").
    pub fn table_bytes(&self) -> usize {
        self.weights.len()
    }

    /// Weight of pair `(i, j)` as raw 8-bit value.
    pub fn weight(&self, i: usize, j: usize) -> u8 {
        self.weights[i * self.n_mem + j]
    }

    fn level_loss_q(u_q: u16, umean_q: u16, alpha_q: u16) -> u16 {
        let (le, lp) = table1_loss(f64::from(u_q), f64::from(umean_q));
        // Integer form: le/lp are already in the 0-255 domain.
        let le = le as u16;
        let lp = lp as u16;
        fxmul(alpha_q, le) + fxmul(ONE - alpha_q, lp)
    }

    /// One interval: quantizes the utilizations, updates all weights with
    /// integer arithmetic, renormalizes so the max is 255, and returns the
    /// argmax pair (ties toward lower levels).
    pub fn observe(&mut self, u_core: f64, u_mem: f64) -> (usize, usize) {
        let uc_q = quantize(u_core.clamp(0.0, 1.0));
        let um_q = quantize(u_mem.clamp(0.0, 1.0));
        let core_losses: Vec<u16> = (0..self.n_core)
            .map(|i| Self::level_loss_q(uc_q, self.ucmean_q[i], self.alpha_core_q))
            .collect();
        let mem_losses: Vec<u16> = (0..self.n_mem)
            .map(|j| Self::level_loss_q(um_q, self.ummean_q[j], self.alpha_mem_q))
            .collect();
        let mut max_w: u8 = 0;
        for (i, &cl) in core_losses.iter().enumerate() {
            for (j, &ml) in mem_losses.iter().enumerate() {
                let total = fxmul(self.phi_q, cl) + fxmul(ONE - self.phi_q, ml);
                let decay = ONE - fxmul(self.one_minus_beta_q, total.min(ONE));
                let w = &mut self.weights[i * self.n_mem + j];
                *w = fxmul(u16::from(*w), decay) as u8;
                max_w = max_w.max(*w);
            }
        }
        // Renormalize: scale so the max returns to 255 (integer rounding).
        if max_w > 0 && max_w < u8::MAX {
            let scale = (u32::from(ONE) << 8) / u32::from(max_w);
            for w in &mut self.weights {
                *w = (((u32::from(*w) * scale) >> 8) as u16).min(u16::from(u8::MAX)) as u8;
            }
        }
        self.argmax()
    }

    /// Current argmax pair.
    pub fn argmax(&self) -> (usize, usize) {
        let mut best = (0, 0);
        let mut best_w = 0u8;
        let mut first = true;
        for i in 0..self.n_core {
            for j in 0..self.n_mem {
                let w = self.weights[i * self.n_mem + j];
                if first || w > best_w {
                    best_w = w;
                    best = (i, j);
                    first = false;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wma::WmaScaler;
    use greengpu_sim::Pcg32;

    #[test]
    fn table_is_36_bytes_for_the_testbed() {
        let q = QuantizedWma::new(6, 6, WmaParams::default());
        assert_eq!(q.table_bytes(), 36);
    }

    #[test]
    fn extremes_match_float_scaler() {
        let mut q = QuantizedWma::new(6, 6, WmaParams::default());
        let mut f = WmaScaler::new(6, 6, WmaParams::default());
        for _ in 0..5 {
            assert_eq!(q.observe(1.0, 1.0), f.observe(1.0, 1.0));
        }
        let mut q = QuantizedWma::new(6, 6, WmaParams::default());
        let mut f = WmaScaler::new(6, 6, WmaParams::default());
        for _ in 0..5 {
            assert_eq!(q.observe(0.0, 0.0), f.observe(0.0, 0.0));
        }
    }

    #[test]
    fn decisions_track_float_scaler_on_stationary_utilization() {
        // 8-bit precision should land within one level of the reference on
        // steady signatures.
        for &(uc, um) in &[(0.6, 0.08), (0.33, 0.70), (0.85, 0.85), (0.15, 0.95)] {
            let mut q = QuantizedWma::new(6, 6, WmaParams::default());
            let mut f = WmaScaler::new(6, 6, WmaParams::default());
            let mut qp = (0, 0);
            let mut fp = (0, 0);
            for _ in 0..10 {
                qp = q.observe(uc, um);
                fp = f.observe(uc, um);
            }
            assert!(
                qp.0.abs_diff(fp.0) <= 1 && qp.1.abs_diff(fp.1) <= 1,
                "({uc},{um}): quantized {qp:?} vs float {fp:?}"
            );
        }
    }

    #[test]
    fn decisions_track_float_scaler_on_noisy_traces() {
        let mut rng = Pcg32::seeded(42);
        let mut agree = 0;
        let mut total = 0;
        for _ in 0..20 {
            let base_c = rng.next_f64();
            let base_m = rng.next_f64();
            let mut q = QuantizedWma::new(6, 6, WmaParams::default());
            let mut f = WmaScaler::new(6, 6, WmaParams::default());
            let mut qp = (0, 0);
            let mut fp = (0, 0);
            for _ in 0..30 {
                let uc = (base_c + rng.uniform(-0.05, 0.05)).clamp(0.0, 1.0);
                let um = (base_m + rng.uniform(-0.05, 0.05)).clamp(0.0, 1.0);
                qp = q.observe(uc, um);
                fp = f.observe(uc, um);
            }
            total += 2;
            agree += usize::from(qp.0.abs_diff(fp.0) <= 1) + usize::from(qp.1.abs_diff(fp.1) <= 1);
        }
        assert!(
            agree as f64 / total as f64 > 0.9,
            "quantized disagreed too often: {agree}/{total}"
        );
    }

    #[test]
    fn weights_never_all_collapse_to_zero() {
        let mut q = QuantizedWma::new(6, 6, WmaParams::default());
        let mut rng = Pcg32::seeded(7);
        for _ in 0..10_000 {
            q.observe(rng.next_f64(), rng.next_f64());
        }
        let max = (0..6)
            .flat_map(|i| (0..6).map(move |j| (i, j)))
            .map(|(i, j)| q.weight(i, j))
            .max()
            .unwrap();
        assert!(max >= 128, "renormalization failed, max weight {max}");
    }

    #[test]
    fn fxmul_is_a_unit_scaled_product() {
        assert_eq!(fxmul(255, 255), 254); // (255·255+128)>>8 = 254 ≈ 1.0·1.0
        assert_eq!(fxmul(0, 255), 0);
        assert_eq!(fxmul(128, 128), 64); // ≈ 0.5·0.5
    }
}
