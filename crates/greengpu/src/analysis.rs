//! Utilization-trace analysis — recovering Table II from measurements.
//!
//! The paper classifies its workloads "based on the utilization trace
//! analysis" (§III-A) and identifies QG and SC "as high fluctuation
//! workloads by studying the utilization traces of our workloads" (§VI).
//! This module implements that analysis: given a run's utilization traces,
//! it computes windowed statistics and assigns the Table II class — so the
//! inventory can be *measured* rather than asserted.

use greengpu_runtime::RunReport;
use greengpu_sim::{SimDuration, SimTime, StepTrace};
use greengpu_workloads::UtilClass;

/// Windowed statistics of one utilization signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilStats {
    /// Time-weighted mean utilization.
    pub mean: f64,
    /// Standard deviation of the 1 Hz window means.
    pub stddev: f64,
    /// Robust swing of the 1 Hz windows (p95 − p5), resistant to single
    /// outlier windows.
    pub swing: f64,
}

/// The measured Table II row of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredProfile {
    /// GPU core utilization statistics.
    pub core: UtilStats,
    /// GPU memory utilization statistics.
    pub mem: UtilStats,
    /// Classified core class.
    pub core_class: UtilClass,
    /// Classified memory class.
    pub mem_class: UtilClass,
}

/// Swing threshold above which a signal is classified as fluctuating —
/// fitted to separate QG/SC from the phase-stable workloads, as the paper
/// does by inspection.
pub const FLUCTUATION_SWING: f64 = 0.35;

/// Computes windowed statistics of a utilization trace over `[from, to)`.
pub fn util_stats(trace: &StepTrace, from: SimTime, to: SimTime) -> UtilStats {
    let mean = trace.mean(from, to);
    // 1 Hz windows — the cadence a real nvidia-smi poll would log.
    let fine = sample_means(trace, from, to, SimDuration::from_secs(1));
    let stddev = if fine.is_empty() {
        0.0
    } else {
        let m = fine.iter().sum::<f64>() / fine.len() as f64;
        (fine.iter().map(|x| (x - m).powi(2)).sum::<f64>() / fine.len() as f64).sqrt()
    };
    let swing = if fine.len() < 2 {
        0.0
    } else {
        let mut sorted = fine.clone();
        sorted.sort_by(f64::total_cmp);
        greengpu_sim::stats::percentile_sorted(&sorted, 95.0) - greengpu_sim::stats::percentile_sorted(&sorted, 5.0)
    };
    UtilStats { mean, stddev, swing }
}

fn sample_means(trace: &StepTrace, from: SimTime, to: SimTime, window: SimDuration) -> Vec<f64> {
    let mut out = Vec::new();
    let mut a = from;
    while a + window <= to {
        let b = a + window;
        out.push(trace.mean(a, b));
        a = b;
    }
    out
}

/// Classifies a mean utilization into the Table II bands, with the
/// fluctuation override.
///
/// ```
/// use greengpu::analysis::{classify, UtilStats};
/// use greengpu_workloads::UtilClass;
///
/// let stats = UtilStats { mean: 0.61, stddev: 0.02, swing: 0.05 };
/// assert_eq!(classify(&stats), UtilClass::Medium);
/// let swinging = UtilStats { mean: 0.5, stddev: 0.3, swing: 0.6 };
/// assert_eq!(classify(&swinging), UtilClass::Fluctuating);
/// ```
pub fn classify(stats: &UtilStats) -> UtilClass {
    if stats.swing > FLUCTUATION_SWING {
        return UtilClass::Fluctuating;
    }
    if stats.mean < 0.40 {
        UtilClass::Low
    } else if stats.mean < 0.70 {
        UtilClass::Medium
    } else {
        UtilClass::High
    }
}

/// Analyzes a completed run's GPU traces into a measured Table II row.
///
/// Pass a run executed at *peak clocks* (best-performance) — the class
/// definitions assume unthrottled hardware, as in the paper's Table II.
/// Fluctuation is a *workload-level* label (the paper writes one
/// "utilizations highly fluctuate" row per workload): if either domain
/// swings past the threshold, both classes read fluctuating.
pub fn measure_profile(report: &RunReport) -> MeasuredProfile {
    let end = SimTime::ZERO + report.total_time;
    let core = util_stats(report.platform.gpu().u_core_trace(), SimTime::ZERO, end);
    let mem = util_stats(report.platform.gpu().u_mem_trace(), SimTime::ZERO, end);
    let fluctuating = core.swing.max(mem.swing) > FLUCTUATION_SWING;
    let (core_class, mem_class) = if fluctuating {
        (UtilClass::Fluctuating, UtilClass::Fluctuating)
    } else {
        (classify(&core), classify(&mem))
    };
    MeasuredProfile {
        core,
        mem,
        core_class,
        mem_class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::run_best_performance_with;
    use greengpu_runtime::RunConfig;
    use greengpu_workloads::registry;

    #[test]
    fn stats_of_a_constant_signal() {
        let trace = StepTrace::with_initial(0.6);
        let s = util_stats(&trace, SimTime::ZERO, SimTime::from_secs(30));
        assert!((s.mean - 0.6).abs() < 1e-12);
        assert!(s.stddev < 1e-12);
        assert!(s.swing < 1e-12);
        assert_eq!(classify(&s), UtilClass::Medium);
    }

    #[test]
    fn stats_of_an_alternating_signal_flag_fluctuation() {
        let mut trace = StepTrace::with_initial(0.1);
        for k in 0..10 {
            trace.set(SimTime::from_secs(6 * k), if k % 2 == 0 { 0.9 } else { 0.1 });
        }
        let s = util_stats(&trace, SimTime::ZERO, SimTime::from_secs(60));
        assert!(s.swing > FLUCTUATION_SWING, "swing {}", s.swing);
        assert_eq!(classify(&s), UtilClass::Fluctuating);
    }

    #[test]
    fn class_boundaries() {
        let mk = |mean: f64| UtilStats {
            mean,
            stddev: 0.0,
            swing: 0.0,
        };
        assert_eq!(classify(&mk(0.1)), UtilClass::Low);
        assert_eq!(classify(&mk(0.55)), UtilClass::Medium);
        assert_eq!(classify(&mk(0.9)), UtilClass::High);
    }

    #[test]
    fn measured_classes_recover_table2_for_the_whole_suite() {
        // The closing-the-loop check: run every workload at peak clocks and
        // let the trace analysis recover its Table II classes — the same
        // procedure the paper used to build the table.
        for name in registry::TABLE2_NAMES {
            let mut wl = registry::by_name(name, 4).expect("registered");
            let expected_core = wl.profile().core_class;
            let expected_mem = wl.profile().mem_class;
            let report = run_best_performance_with(wl.as_mut(), RunConfig::sweep());
            let measured = measure_profile(&report);
            assert_eq!(
                measured.core_class, expected_core,
                "{name}: core measured {:?} (mean {:.2}, swing {:.2})",
                measured.core_class, measured.core.mean, measured.core.swing
            );
            assert_eq!(
                measured.mem_class, expected_mem,
                "{name}: mem measured {:?} (mean {:.2}, swing {:.2})",
                measured.mem_class, measured.mem.mean, measured.mem.swing
            );
        }
    }

    #[test]
    fn fluctuating_workloads_have_the_largest_swings() {
        let swing_of = |name: &str| {
            let mut wl = registry::by_name(name, 4).expect("registered");
            let report = run_best_performance_with(wl.as_mut(), RunConfig::sweep());
            let m = measure_profile(&report);
            m.core.swing.max(m.mem.swing)
        };
        let qg = swing_of("QG");
        let sc = swing_of("streamcluster");
        for stable in ["kmeans", "hotspot", "lud", "PF"] {
            let s = swing_of(stable);
            assert!(qg > s, "QG swing {qg} vs {stable} {s}");
            assert!(sc > s, "SC swing {sc} vs {stable} {s}");
        }
    }
}
