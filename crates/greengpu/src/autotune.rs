//! Automated WMA parameter fitting — the paper's named future work.
//!
//! §V-A closes: "Please note currently we derive α, β, and φ from manual
//! tuning due to the lack of accurate, general, and scalable
//! performance/performance model for GPUs, which could be our future
//! direction." With the simulated testbed that model exists, so the
//! manual tuning can be automated: grid-search the loss parameters on a
//! calibration workload set, scoring each candidate by total energy-delay
//! product (energy with a performance term — the same trade-off α itself
//! encodes).

use crate::baselines::{run_best_performance_with, run_with_config};
use crate::coordinator::GreenGpuConfig;
use crate::wma::WmaParams;
use greengpu_runtime::RunConfig;
use greengpu_workloads::Workload;

/// The search grid. Defaults bracket the paper's manual values.
#[derive(Debug, Clone)]
pub struct TuneGrid {
    /// Candidate `α_core` values.
    pub alpha_core: Vec<f64>,
    /// Candidate `α_mem` values.
    pub alpha_mem: Vec<f64>,
    /// Candidate `φ` values.
    pub phi: Vec<f64>,
}

impl Default for TuneGrid {
    fn default() -> Self {
        TuneGrid {
            alpha_core: vec![0.05, 0.15, 0.30],
            alpha_mem: vec![0.02, 0.10, 0.25],
            phi: vec![0.15, 0.30, 0.60],
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone, Copy)]
pub struct TunePoint {
    /// The parameters evaluated (β and λ stay at their defaults — they
    /// shape adaptation speed, not the steady-state levels).
    pub params: WmaParams,
    /// Summed *normalized* energy-delay product over the calibration set
    /// (each workload's EDP divided by its best-performance EDP, so every
    /// workload counts equally regardless of its absolute scale).
    pub score_edp: f64,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Every evaluated point.
    pub points: Vec<TunePoint>,
    /// Index of the best point.
    pub best: usize,
}

impl TuneResult {
    /// The winning parameters.
    pub fn best_params(&self) -> WmaParams {
        self.points[self.best].params
    }

    /// The winning score.
    pub fn best_score(&self) -> f64 {
        self.points[self.best].score_edp
    }

    /// Score of an explicit parameter set previously evaluated in the
    /// grid, if present.
    pub fn score_of(&self, params: &WmaParams) -> Option<f64> {
        self.points
            .iter()
            .find(|p| {
                (p.params.alpha_core - params.alpha_core).abs() < 1e-12
                    && (p.params.alpha_mem - params.alpha_mem).abs() < 1e-12
                    && (p.params.phi - params.phi).abs() < 1e-12
            })
            .map(|p| p.score_edp)
    }
}

/// Grid-searches the WMA parameters over a calibration workload set,
/// scoring candidates by the summed per-workload-normalized energy-delay
/// product of scaling-only runs. `make_set` must deterministically produce
/// the same calibration workloads on every call (fresh instances).
pub fn tune<F>(mut make_set: F, grid: &TuneGrid) -> TuneResult
where
    F: FnMut() -> Vec<Box<dyn Workload>>,
{
    // Candidate-independent normalization baselines.
    let baselines: Vec<f64> = make_set()
        .into_iter()
        .map(|mut wl| run_best_performance_with(wl.as_mut(), RunConfig::sweep()).edp())
        .collect();
    let mut points = Vec::new();
    for &alpha_core in &grid.alpha_core {
        for &alpha_mem in &grid.alpha_mem {
            for &phi in &grid.phi {
                let params = WmaParams {
                    alpha_core,
                    alpha_mem,
                    phi,
                    ..WmaParams::default()
                };
                let mut score = 0.0;
                for (mut wl, &base) in make_set().into_iter().zip(&baselines) {
                    let cfg = GreenGpuConfig {
                        wma_params: params,
                        ..GreenGpuConfig::scaling_only()
                    };
                    let report = run_with_config(wl.as_mut(), cfg, RunConfig::sweep());
                    score += report.edp() / base;
                }
                points.push(TunePoint {
                    params,
                    score_edp: score,
                });
            }
        }
    }
    let best = points
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.score_edp.total_cmp(&b.1.score_edp))
        .map(|(i, _)| i)
        .unwrap_or(0);
    TuneResult { points, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu_workloads::registry;

    fn calibration_set() -> Vec<Box<dyn Workload>> {
        // A mixed set: compute-heavy, memory-heavy, low-utilization.
        ["kmeans", "streamcluster", "PF"]
            .iter()
            .map(|n| registry::by_name(n, 12).expect("registered"))
            .collect()
    }

    #[test]
    fn grid_covers_all_combinations() {
        let grid = TuneGrid::default();
        let result = tune(calibration_set, &grid);
        assert_eq!(result.points.len(), 27);
        assert!(result
            .points
            .iter()
            .all(|p| p.score_edp.is_finite() && p.score_edp > 0.0));
    }

    #[test]
    fn autotuned_parameters_match_or_beat_the_paper_defaults() {
        // The paper's manually tuned values should be near-optimal in this
        // landscape; the autotuner must find something at least as good,
        // and the default must not be far from the winner.
        let grid = TuneGrid::default();
        let result = tune(calibration_set, &grid);
        let default_score = result
            .score_of(&WmaParams::default())
            .expect("default params are on the grid");
        assert!(result.best_score() <= default_score + 1e-9);
        let gap = default_score / result.best_score() - 1.0;
        assert!(
            gap < 0.05,
            "paper defaults are {:.1}% off the grid optimum — landscape inconsistent",
            gap * 100.0
        );
    }

    #[test]
    fn tuned_phi_rejects_the_degenerate_extremes() {
        // Any interior φ produces the same steady-state level picks (the
        // loss is separable per domain), but the exact extremes blind one
        // domain entirely — the coordination ablation's failure mode. Given
        // the choice, the autotuner must take the interior value.
        let grid = TuneGrid {
            phi: vec![0.0, 0.30, 1.0],
            ..TuneGrid::default()
        };
        let result = tune(calibration_set, &grid);
        let phi = result.best_params().phi;
        assert!(
            (phi - 0.30).abs() < 1e-9,
            "expected the interior φ to win over the degenerate extremes, got {phi}"
        );
    }

    #[test]
    fn empty_grid_dimension_degrades_to_no_points() {
        let grid = TuneGrid {
            alpha_core: vec![],
            ..TuneGrid::default()
        };
        // Panic-freedom contract: a degenerate grid yields an empty
        // result instead of aborting the tuning run.
        let result = tune(calibration_set, &grid);
        assert!(result.points.is_empty());
        assert_eq!(result.best, 0);
    }
}
