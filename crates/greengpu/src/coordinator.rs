//! The two-tier GreenGPU controller (paper §IV, Fig. 3).
//!
//! Wires the WMA GPU scaler, the ondemand CPU governor, and the division
//! controller into one [`Controller`] the runtime can drive. The frequency
//! scaling tier runs on a short fixed period (3 s in the paper's trace);
//! the division tier runs once per iteration, which the workloads size to
//! be ≳ 40× longer so the DVFS loop settles inside each division interval
//! and the tiers do not destructively interact.

use crate::division::{DivisionController, DivisionParams, ModelBasedDivision};
use crate::governors::CpuGovernor;
use crate::policy::WmaPolicy;
use crate::wma::{WmaParams, WmaScaler};
use greengpu_hw::{
    CleanSensors, DirectActuator, FaultPlan, FaultyActuator, FaultySensor, FreqActuator, Platform, SensorSource,
};
use greengpu_policy::{FreqPolicy, PolicyTelemetry};
use greengpu_runtime::{Controller, IterationInfo};
use greengpu_sim::{SimDuration, SimTime};

/// Format version written into every controller checkpoint; restores
/// reject any other version (bump on incompatible schema changes).
/// Version 2: the contextual policies' nested detector/inner snapshots
/// joined the policy-state schema.
pub const CHECKPOINT_VERSION: u64 = 2;

/// Which division algorithm tier 1 runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivisionAlgo {
    /// The paper's one-step-per-iteration heuristic with the oscillation
    /// safeguard (§V-B).
    Stepwise,
    /// The Qilin-style model jump: calibrate on the first iteration, jump
    /// to the predicted balance, then refine step-wise (the §V-B
    /// "sophisticated global algorithm" integration).
    ModelBased,
}

/// Which CPU governor tier 2 runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GovernorKind {
    /// The paper's choice: the Linux ondemand governor.
    Ondemand,
    /// Pin the peak P-state.
    Performance,
    /// Pin the lowest P-state.
    Powersave,
    /// The Linux conservative governor (one step per sample).
    Conservative,
    /// Utilization-proportional selection (Wu et al.-style).
    Proportional,
}

impl GovernorKind {
    fn build(self) -> CpuGovernor {
        match self {
            GovernorKind::Ondemand => CpuGovernor::default(),
            GovernorKind::Performance => CpuGovernor::Performance,
            GovernorKind::Powersave => CpuGovernor::Powersave,
            GovernorKind::Conservative => CpuGovernor::conservative(),
            GovernorKind::Proportional => CpuGovernor::proportional(),
        }
    }
}

/// Hardening knobs: how the controller reacts to sensor garbage and
/// failed actuations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustnessParams {
    /// Read-back verification retries per actuation before it counts as
    /// failed.
    pub max_retries: u32,
    /// Consecutive failed actuations before the controller falls back to
    /// best-performance (peak clocks, division frozen).
    pub fallback_after: u32,
}

impl Default for RobustnessParams {
    fn default() -> Self {
        RobustnessParams {
            max_retries: 2,
            fallback_after: 5,
        }
    }
}

/// Which tiers are enabled — the axes of the paper's §VII comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreenGpuConfig {
    /// Tier-1 workload division on/off.
    pub division: bool,
    /// Tier-2 GPU core+memory scaling on/off.
    pub gpu_scaling: bool,
    /// Tier-2 CPU ondemand governor on/off.
    pub cpu_scaling: bool,
    /// Initial CPU share for the division tier (paper traces use 30 %).
    pub initial_share: f64,
    /// Frequency-scaling invocation period (paper trace: 3 s).
    pub dvfs_period: SimDuration,
    /// Division tuning.
    pub division_params: DivisionParams,
    /// WMA tuning.
    pub wma_params: WmaParams,
    /// Division algorithm (paper heuristic or model-based jump).
    pub division_algo: DivisionAlgo,
    /// CPU governor (the paper uses ondemand).
    pub governor: GovernorKind,
    /// Sensor/actuation hardening knobs.
    pub robustness: RobustnessParams,
}

impl Default for GreenGpuConfig {
    fn default() -> Self {
        GreenGpuConfig {
            division: true,
            gpu_scaling: true,
            cpu_scaling: true,
            initial_share: 0.30,
            dvfs_period: SimDuration::from_secs(3),
            division_params: DivisionParams::default(),
            wma_params: WmaParams::default(),
            division_algo: DivisionAlgo::Stepwise,
            governor: GovernorKind::Ondemand,
            robustness: RobustnessParams::default(),
        }
    }
}

impl GreenGpuConfig {
    /// The full holistic configuration (both tiers).
    pub fn holistic() -> Self {
        GreenGpuConfig::default()
    }

    /// Division tier only — the paper's *Division* baseline (frequency
    /// scaling disabled; clocks stay wherever the platform pinned them).
    pub fn division_only() -> Self {
        GreenGpuConfig {
            gpu_scaling: false,
            cpu_scaling: false,
            ..GreenGpuConfig::default()
        }
    }

    /// Frequency-scaling tier only — the paper's *Frequency-scaling*
    /// baseline (all work stays on the GPU).
    pub fn scaling_only() -> Self {
        GreenGpuConfig {
            division: false,
            initial_share: 0.0,
            ..GreenGpuConfig::default()
        }
    }
}

/// Tier-1 implementation selected by [`DivisionAlgo`].
enum DivisionImpl {
    Stepwise(DivisionController),
    ModelBased(ModelBasedDivision),
}

impl DivisionImpl {
    fn update(&mut self, tc: f64, tg: f64) -> f64 {
        match self {
            DivisionImpl::Stepwise(c) => c.update(tc, tg),
            DivisionImpl::ModelBased(c) => c.update(tc, tg),
        }
    }

    fn share(&self) -> f64 {
        match self {
            DivisionImpl::Stepwise(c) => c.share(),
            DivisionImpl::ModelBased(c) => c.share(),
        }
    }
}

/// The assembled two-tier controller.
///
/// Sensing and actuation go through the [`SensorSource`]/[`FreqActuator`]
/// seam, so the same controller runs against the clean testbed or a
/// fault-injected one. The controller is hardened against bad providers:
/// non-finite utilizations are rejected (holding the last-known-good
/// sample), out-of-range ones are clamped, division updates ignore
/// degenerate iteration times, and every actuation is verified by
/// read-back with bounded retry — after
/// [`RobustnessParams::fallback_after`] consecutive verification failures
/// the controller permanently falls back to best-performance (peak
/// clocks, division frozen) so a broken actuation path degrades to the
/// paper's default baseline instead of stranding low clocks.
pub struct GreenGpuController {
    config: GreenGpuConfig,
    /// The pluggable Tier-2 GPU frequency policy. Defaults to the
    /// paper's WMA scaler (via [`WmaPolicy`]); the policy constructors
    /// accept any [`FreqPolicy`] — switching-aware bandits, the
    /// deadline selector, or an external implementation.
    policy: Box<dyn FreqPolicy>,
    governor: CpuGovernor,
    division: DivisionImpl,
    sensors: Box<dyn SensorSource>,
    actuator: Box<dyn FreqActuator>,
    power_cap_w: Option<f64>,
    cap_masked_intervals: u64,
    last_good_gpu: Option<(f64, f64)>,
    last_good_cpu: Option<f64>,
    consecutive_failures: u32,
    fallback: bool,
    sensor_rejects: u64,
    actuation_failures: u64,
    actuation_retries: u64,
}

impl GreenGpuController {
    /// Builds a controller for a platform with `n_core`×`n_mem` GPU levels
    /// on clean (fault-free) sensors and actuation.
    pub fn new(config: GreenGpuConfig, n_core_levels: usize, n_mem_levels: usize) -> Self {
        GreenGpuController::with_providers(
            config,
            n_core_levels,
            n_mem_levels,
            Box::new(CleanSensors::new()),
            Box::new(DirectActuator),
        )
    }

    /// Builds a controller over explicit sensor/actuator providers,
    /// running the default WMA policy built from `config.wma_params`.
    pub fn with_providers(
        config: GreenGpuConfig,
        n_core_levels: usize,
        n_mem_levels: usize,
        sensors: Box<dyn SensorSource>,
        actuator: Box<dyn FreqActuator>,
    ) -> Self {
        let policy = Box::new(WmaPolicy::new(n_core_levels, n_mem_levels, config.wma_params));
        GreenGpuController::with_policy_providers(config, policy, sensors, actuator)
    }

    /// Builds a controller that drives an arbitrary [`FreqPolicy`] over
    /// explicit sensor/actuator providers — the pluggable Tier-2 seam.
    /// The policy's grid shape determines the level table the controller
    /// selects over; `config.wma_params` is ignored (the policy already
    /// carries its own tuning).
    pub fn with_policy_providers(
        config: GreenGpuConfig,
        policy: Box<dyn FreqPolicy>,
        sensors: Box<dyn SensorSource>,
        actuator: Box<dyn FreqActuator>,
    ) -> Self {
        let division = match config.division_algo {
            DivisionAlgo::Stepwise => {
                DivisionImpl::Stepwise(DivisionController::new(config.initial_share, config.division_params))
            }
            DivisionAlgo::ModelBased => {
                DivisionImpl::ModelBased(ModelBasedDivision::new(config.initial_share, config.division_params))
            }
        };
        GreenGpuController {
            policy,
            governor: config.governor.build(),
            division,
            sensors,
            actuator,
            power_cap_w: None,
            cap_masked_intervals: 0,
            last_good_gpu: None,
            last_good_cpu: None,
            consecutive_failures: 0,
            fallback: false,
            sensor_rejects: 0,
            actuation_failures: 0,
            actuation_retries: 0,
            config,
        }
    }

    /// Builds a controller whose sensors and actuation are wrapped in the
    /// seeded fault injectors configured by `plan`.
    pub fn faulted(config: GreenGpuConfig, n_core_levels: usize, n_mem_levels: usize, plan: &FaultPlan) -> Self {
        GreenGpuController::with_providers(
            config,
            n_core_levels,
            n_mem_levels,
            Box::new(FaultySensor::new(plan)),
            Box::new(FaultyActuator::new(plan)),
        )
    }

    /// Builds a controller driving an arbitrary policy on clean
    /// sensors/actuation.
    pub fn with_policy(config: GreenGpuConfig, policy: Box<dyn FreqPolicy>) -> Self {
        GreenGpuController::with_policy_providers(
            config,
            policy,
            Box::new(CleanSensors::new()),
            Box::new(DirectActuator),
        )
    }

    /// Builds a controller driving an arbitrary policy behind the seeded
    /// fault injectors configured by `plan`.
    pub fn with_policy_faulted(config: GreenGpuConfig, policy: Box<dyn FreqPolicy>, plan: &FaultPlan) -> Self {
        GreenGpuController::with_policy_providers(
            config,
            policy,
            Box::new(FaultySensor::new(plan)),
            Box::new(FaultyActuator::new(plan)),
        )
    }

    /// Builds a controller for the default 6×6 testbed.
    pub fn for_testbed(config: GreenGpuConfig) -> Self {
        GreenGpuController::new(config, 6, 6)
    }

    /// Builds a fault-injected controller for the default 6×6 testbed.
    pub fn for_testbed_faulted(config: GreenGpuConfig, plan: &FaultPlan) -> Self {
        GreenGpuController::faulted(config, 6, 6, plan)
    }

    /// The WMA scaler, when the active policy is the WMA adapter
    /// (inspection/tests); `None` under any other [`FreqPolicy`].
    pub fn wma(&self) -> Option<&WmaScaler> {
        self.policy.as_any().downcast_ref::<WmaPolicy>().map(WmaPolicy::scaler)
    }

    /// The active Tier-2 frequency policy.
    pub fn policy(&self) -> &dyn FreqPolicy {
        self.policy.as_ref()
    }

    /// The pair the active policy would enforce right now — what the
    /// cluster tier uses to estimate a node's desired power draw.
    pub fn desired_pair(&self) -> (usize, usize) {
        self.policy.preferred()
    }

    /// The active policy's per-interval telemetry (cumulative loss,
    /// switches, regret, fallback counts).
    pub fn policy_telemetry(&self) -> &PolicyTelemetry {
        self.policy.telemetry()
    }

    /// The step-wise division controller, when that algorithm is selected
    /// (inspection/tests).
    pub fn division(&self) -> Option<&DivisionController> {
        match &self.division {
            DivisionImpl::Stepwise(c) => Some(c),
            DivisionImpl::ModelBased(_) => None,
        }
    }

    /// The CPU governor (inspection/tests).
    pub fn governor(&self) -> &CpuGovernor {
        &self.governor
    }

    /// Serializes the controller's learner state — the Tier-2 policy's
    /// warm state plus the Tier-1 division ratio — as a versioned JSON
    /// checkpoint string. Sensor/actuator state, hardening counters, and
    /// telemetry are *not* checkpointed: a restarted node gets fresh
    /// providers and fresh counters, only the learned knowledge survives.
    pub fn snapshot(&self) -> String {
        use greengpu_sim::JsonValue;
        let division = match &self.division {
            DivisionImpl::Stepwise(c) => c.snapshot(),
            // The model-based jump recalibrates from its first iteration;
            // there is no warm state worth carrying across a restart.
            DivisionImpl::ModelBased(_) => JsonValue::Null,
        };
        JsonValue::Obj(vec![
            ("version".to_string(), JsonValue::u64(CHECKPOINT_VERSION)),
            ("policy".to_string(), JsonValue::str(self.policy.name())),
            ("state".to_string(), self.policy.snapshot()),
            ("division".to_string(), division),
        ])
        .to_string()
    }

    /// Restores a checkpoint produced by [`GreenGpuController::snapshot`].
    ///
    /// Rejects (with a field-naming error) anything unparsable, any
    /// version other than [`CHECKPOINT_VERSION`], and a policy name that
    /// does not match the live policy. Each layer validates its value
    /// before mutating, so a rejected checkpoint leaves a *fresh*
    /// controller unchanged; on the node-restart path a failure means the
    /// whole controller is discarded for a cold start anyway, so partial
    /// restoration across layers is harmless.
    pub fn restore(&mut self, checkpoint: &str) -> Result<(), String> {
        use greengpu_policy::snap;
        use greengpu_sim::JsonValue;
        let v = JsonValue::parse(checkpoint)?;
        let version = snap::parse_u64(&v, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {version} is not the supported version {CHECKPOINT_VERSION}"
            ));
        }
        let name = snap::field(&v, "policy")?
            .as_str()
            .ok_or_else(|| "policy must be a string".to_string())?;
        if name != self.policy.name() {
            return Err(format!(
                "checkpoint is for policy {name:?}, controller runs {:?}",
                self.policy.name()
            ));
        }
        self.policy.restore(snap::field(&v, "state")?)?;
        let division = snap::field(&v, "division")?;
        match (&mut self.division, division.is_null()) {
            (DivisionImpl::Stepwise(c), false) => c.restore(division)?,
            (DivisionImpl::Stepwise(_), true) => {
                return Err("division must be present for a step-wise controller".to_string());
            }
            (DivisionImpl::ModelBased(_), true) => {}
            (DivisionImpl::ModelBased(_), false) => {
                return Err("division must be null for a model-based controller".to_string());
            }
        }
        Ok(())
    }

    /// Whether the best-performance fallback has engaged.
    pub fn fallback_engaged(&self) -> bool {
        self.fallback
    }

    /// Readings rejected as non-finite (held at last-known-good).
    pub fn sensor_rejects(&self) -> u64 {
        self.sensor_rejects
    }

    /// Actuations whose read-back never verified (after retries).
    pub fn actuation_failures(&self) -> u64 {
        self.actuation_failures
    }

    /// Total read-back verification retries issued.
    pub fn actuation_retries(&self) -> u64 {
        self.actuation_retries
    }

    /// Total faults injected by the providers (0 on clean providers).
    pub fn injection_count(&self) -> usize {
        self.sensors.injection_log().len() + self.actuator.injection_log().len()
    }

    /// The division tier's current CPU share.
    pub fn division_share(&self) -> f64 {
        self.division.share()
    }

    /// Sets (or clears) the GPU board power cap in watts.
    ///
    /// While a cap is set, each DVFS tick restricts the WMA argmax to
    /// frequency pairs whose modeled worst-case board power
    /// (`GpuSpec::power_at_levels_w(core, mem, 1.0, 1.0)`) fits under the
    /// cap. The WMA weight update itself still runs over the full table,
    /// so a transient cap never corrupts what the learner has learned.
    /// The cluster tier re-apportions a fleet budget into these per-node
    /// caps every control interval.
    ///
    /// The best-performance fallback deliberately ignores the cap: a node
    /// whose actuation path is broken pins peak clocks, and the cluster
    /// tier accounts for that as a cap violation and routes around it.
    pub fn set_power_cap_w(&mut self, cap: Option<f64>) {
        self.power_cap_w = cap;
    }

    /// The current GPU board power cap, if any.
    pub fn power_cap_w(&self) -> Option<f64> {
        self.power_cap_w
    }

    /// DVFS intervals in which the cap actually excluded at least one
    /// pair from the argmax (inspection/telemetry).
    pub fn cap_masked_intervals(&self) -> u64 {
        self.cap_masked_intervals
    }

    /// Issues a GPU reclock through the actuator and verifies it by
    /// read-back, retrying up to the configured bound; a persistent
    /// mismatch counts toward the fallback threshold.
    fn actuate_gpu_verified(&mut self, platform: &mut Platform, now: SimTime, core: usize, mem: usize) {
        let mut attempts = 0;
        loop {
            self.actuator.set_gpu_levels(platform, now, core, mem);
            let applied = platform.gpu().core().current_level() == core && platform.gpu().mem().current_level() == mem;
            if applied {
                self.consecutive_failures = 0;
                return;
            }
            if attempts >= self.config.robustness.max_retries {
                break;
            }
            attempts += 1;
            self.actuation_retries += 1;
        }
        self.record_actuation_failure();
    }

    /// Issues a CPU P-state change through the actuator with the same
    /// read-back verification.
    fn actuate_cpu_verified(&mut self, platform: &mut Platform, now: SimTime, level: usize) {
        let mut attempts = 0;
        loop {
            self.actuator.set_cpu_level(platform, now, level);
            if platform.cpu().domain().current_level() == level {
                self.consecutive_failures = 0;
                return;
            }
            if attempts >= self.config.robustness.max_retries {
                break;
            }
            attempts += 1;
            self.actuation_retries += 1;
        }
        self.record_actuation_failure();
    }

    fn record_actuation_failure(&mut self) {
        self.actuation_failures += 1;
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.config.robustness.fallback_after {
            self.fallback = true;
        }
    }

    /// Sense half of the GPU tick: poll, reject non-finite readings,
    /// clamp, and refresh the last-known-good window. Returns the
    /// utilizations a decision would consume (the fresh reading, or the
    /// held last-good on a lost poll).
    fn sense_gpu(&mut self, platform: &Platform, now: SimTime) -> Option<(f64, f64)> {
        let reading = self.sensors.poll_gpu(platform.gpu(), now);
        if reading.u_core.is_finite() && reading.u_mem.is_finite() {
            let good = (reading.u_core.clamp(0.0, 1.0), reading.u_mem.clamp(0.0, 1.0));
            self.last_good_gpu = Some(good);
            Some(good)
        } else {
            // Lost poll: hold the last-known-good window if any.
            self.sensor_rejects += 1;
            self.last_good_gpu
        }
    }

    /// Decide/actuate half of the GPU tick: build the cap mask, consult
    /// the policy, and enforce the chosen pair.
    fn decide_actuate_gpu(&mut self, platform: &mut Platform, now: SimTime, u_core: f64, u_mem: f64) {
        let (core_lvl, mem_lvl) = match self.power_cap_w {
            Some(cap) => {
                let spec = platform.gpu().spec().clone();
                let n_core = spec.core_levels_mhz.len();
                let n_mem = spec.mem_levels_mhz.len();
                let feasible = |i: usize, j: usize| spec.power_at_levels_w(i, j, 1.0, 1.0) <= cap;
                let masked = (0..n_core).any(|i| (0..n_mem).any(|j| !feasible(i, j)));
                if masked {
                    self.cap_masked_intervals += 1;
                }
                self.policy.decide(u_core, u_mem, &feasible)
            }
            None => self.policy.decide(u_core, u_mem, &|_, _| true),
        };
        self.actuate_gpu_verified(platform, now, core_lvl, mem_lvl);
    }

    /// Sense half of the CPU tick, mirroring [`Self::sense_gpu`].
    fn sense_cpu(&mut self, platform: &Platform, now: SimTime) -> Option<f64> {
        let reading = self.sensors.poll_cpu(platform.cpu(), now);
        if reading.util.is_finite() {
            let good = reading.util.clamp(0.0, 1.0);
            self.last_good_cpu = Some(good);
            Some(good)
        } else {
            self.sensor_rejects += 1;
            self.last_good_cpu
        }
    }

    /// Govern half of the CPU tick: ask the governor for a target P-state
    /// and enforce it.
    fn govern_cpu(&mut self, platform: &mut Platform, now: SimTime, util: f64) {
        if let Some(level) = self.governor.desired_level(platform, util) {
            self.governor.note_transition();
            self.actuate_cpu_verified(platform, now, level);
        }
    }

    /// One DVFS tick on the event-driven fleet engine's *parked* fast
    /// path. Sensing always runs in full — the sensor windows (and
    /// reject counters) must advance exactly as on
    /// [`Controller::on_dvfs_tick`] — but the decide/actuate half of
    /// each domain is skipped when the freshly resolved utilization is
    /// bit-equal to the previous tick's. With the policy at a decision
    /// fixed point (certified by the caller via
    /// [`Self::decision_fingerprint`]) and an unchanged cap, the same
    /// observation reproduces the same weights and the same (already
    /// enforced) levels, so the skip is an identity. The moment either
    /// domain resolves anything else, its full half runs and `false`
    /// comes back so the caller un-parks the node.
    ///
    /// Returns `true` when both domains skipped (the node may stay
    /// parked).
    pub fn on_dvfs_tick_quiescent(&mut self, platform: &mut Platform, now: SimTime) -> bool {
        if self.fallback {
            // Fallback re-pins peak clocks every tick; never quiescent.
            self.on_dvfs_tick(platform, now);
            return false;
        }
        let mut quiet = true;
        if self.config.gpu_scaling {
            let prev = self.last_good_gpu;
            let utils = self.sense_gpu(platform, now);
            if let Some((u_core, u_mem)) = utils {
                if prev != utils {
                    quiet = false;
                    self.decide_actuate_gpu(platform, now, u_core, u_mem);
                }
            }
        }
        if self.config.cpu_scaling && !self.fallback {
            let prev = self.last_good_cpu;
            let util = self.sense_cpu(platform, now);
            if let Some(util) = util {
                if prev != Some(util) {
                    quiet = false;
                    self.govern_cpu(platform, now, util);
                }
            }
        }
        quiet
    }

    /// A bit-exact fingerprint of every piece of controller state that
    /// can influence a future decision, or `None` when no fixed point
    /// can be certified (fallback engaged, or the policy declines — see
    /// [`FreqPolicy::decision_fingerprint`]). The fleet's event-driven
    /// engine parks a node only after two consecutive identical
    /// fingerprints, then drives it with
    /// [`Self::on_dvfs_tick_quiescent`].
    pub fn decision_fingerprint(&self) -> Option<u64> {
        if self.fallback {
            return None;
        }
        let policy_fp = self.policy.decision_fingerprint()?;
        let mut h = greengpu_sim::Fnv64::new();
        h.push_u64(policy_fp);
        match self.last_good_gpu {
            Some((c, m)) => {
                h.push_bool(true);
                h.push_f64(c);
                h.push_f64(m);
            }
            None => h.push_bool(false),
        }
        match self.last_good_cpu {
            Some(u) => {
                h.push_bool(true);
                h.push_f64(u);
            }
            None => h.push_bool(false),
        }
        h.push_u64(u64::from(self.consecutive_failures));
        match self.power_cap_w {
            Some(cap) => {
                h.push_bool(true);
                h.push_f64(cap);
            }
            None => h.push_bool(false),
        }
        Some(h.finish())
    }
}

impl Controller for GreenGpuController {
    fn initial_share(&self) -> f64 {
        if self.config.division {
            self.config.initial_share
        } else {
            0.0
        }
    }

    fn checkpoint(&self) -> Option<String> {
        Some(self.snapshot())
    }

    fn restore_checkpoint(&mut self, checkpoint: &str) -> Result<(), String> {
        self.restore(checkpoint)
    }

    fn dvfs_period(&self) -> Option<SimDuration> {
        if self.config.gpu_scaling || self.config.cpu_scaling {
            Some(self.config.dvfs_period)
        } else {
            None
        }
    }

    fn on_dvfs_tick(&mut self, platform: &mut Platform, now: SimTime) {
        if self.fallback {
            // Best-performance fallback: keep commanding peak clocks in
            // case the actuation path recovers intermittently; decisions
            // no longer consume (possibly garbage) sensor data.
            let core_peak = platform.gpu().core().peak_level();
            let mem_peak = platform.gpu().mem().peak_level();
            self.actuator.set_gpu_levels(platform, now, core_peak, mem_peak);
            let cpu_peak = platform.cpu().domain().peak_level();
            self.actuator.set_cpu_level(platform, now, cpu_peak);
            return;
        }
        if self.config.gpu_scaling {
            if let Some((u_core, u_mem)) = self.sense_gpu(platform, now) {
                self.decide_actuate_gpu(platform, now, u_core, u_mem);
            }
        }
        if self.config.cpu_scaling && !self.fallback {
            if let Some(util) = self.sense_cpu(platform, now) {
                self.govern_cpu(platform, now, util);
            }
        }
    }

    fn on_iteration_end(&mut self, info: &IterationInfo, _platform: &mut Platform, _now: SimTime) -> f64 {
        if !self.config.division {
            return 0.0;
        }
        if self.fallback {
            // Division frozen in fallback: no moves on a broken platform.
            return self.division.share();
        }
        let (tc_s, tg_s) = self.sensors.observe_iteration(info.tc_s, info.tg_s);
        self.division.update(tc_s, tg_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_enable_the_right_tiers() {
        let h = GreenGpuConfig::holistic();
        assert!(h.division && h.gpu_scaling && h.cpu_scaling);
        let d = GreenGpuConfig::division_only();
        assert!(d.division && !d.gpu_scaling && !d.cpu_scaling);
        let s = GreenGpuConfig::scaling_only();
        assert!(!s.division && s.gpu_scaling);
    }

    #[test]
    fn scaling_only_pins_share_to_zero() {
        let ctl = GreenGpuController::for_testbed(GreenGpuConfig::scaling_only());
        assert_eq!(ctl.initial_share(), 0.0);
    }

    #[test]
    fn division_only_disables_the_dvfs_loop() {
        let ctl = GreenGpuController::for_testbed(GreenGpuConfig::division_only());
        assert_eq!(ctl.dvfs_period(), None);
    }

    #[test]
    fn holistic_uses_three_second_period() {
        let ctl = GreenGpuController::for_testbed(GreenGpuConfig::holistic());
        assert_eq!(ctl.dvfs_period(), Some(SimDuration::from_secs(3)));
    }

    #[test]
    fn dvfs_tick_actuates_gpu_levels_from_sensors() {
        let mut platform = Platform::default_testbed();
        let mut ctl = GreenGpuController::for_testbed(GreenGpuConfig::scaling_only());
        // Saturate both domains for a window, then tick: the scaler must
        // push both levels to the peak.
        platform.set_gpu_activity(SimTime::ZERO, 1.0, 1.0);
        ctl.on_dvfs_tick(&mut platform, SimTime::from_secs(3));
        assert_eq!(platform.gpu().core().current_level(), 5);
        assert_eq!(platform.gpu().mem().current_level(), 5);
    }

    #[test]
    fn power_cap_masks_the_enforced_pair() {
        let mut platform = Platform::default_testbed();
        let mut ctl = GreenGpuController::for_testbed(GreenGpuConfig::scaling_only());
        let spec = platform.gpu().spec().clone();
        // A cap between the floor pair and the peak pair: saturated
        // utilization would normally drive both levels to the peak, but
        // the cap must keep the enforced pair's modeled power under it.
        let cap = 0.7 * spec.power_at_levels_w(5, 5, 1.0, 1.0);
        ctl.set_power_cap_w(Some(cap));
        platform.set_gpu_activity(SimTime::ZERO, 1.0, 1.0);
        for k in 1..=5 {
            ctl.on_dvfs_tick(&mut platform, SimTime::from_secs(3 * k));
        }
        let (i, j) = (
            platform.gpu().core().current_level(),
            platform.gpu().mem().current_level(),
        );
        assert!(
            spec.power_at_levels_w(i, j, 1.0, 1.0) <= cap,
            "enforced pair ({i},{j}) exceeds the cap"
        );
        assert!((i, j) != (5, 5), "cap had no effect");
        assert!(ctl.cap_masked_intervals() > 0);
        // Lifting the cap restores the uncapped policy.
        ctl.set_power_cap_w(None);
        ctl.on_dvfs_tick(&mut platform, SimTime::from_secs(30));
        assert_eq!(platform.gpu().core().current_level(), 5);
        assert_eq!(platform.gpu().mem().current_level(), 5);
    }

    #[test]
    fn iteration_end_moves_division() {
        let mut platform = Platform::default_testbed();
        let mut ctl = GreenGpuController::for_testbed(GreenGpuConfig::holistic());
        let info = IterationInfo {
            index: 0,
            cpu_share: 0.30,
            tc_s: 10.0,
            tg_s: 2.0,
        };
        let next = ctl.on_iteration_end(&info, &mut platform, SimTime::from_secs(10));
        assert_eq!(next, 0.25, "slower CPU sheds one step");
    }
}

#[cfg(test)]
mod governor_integration_tests {
    use super::*;
    use crate::baselines::run_with_config;
    use greengpu_runtime::{CommMode, RunConfig};
    use greengpu_workloads::streamcluster::StreamCluster;

    fn async_cfg() -> RunConfig {
        let mut cfg = RunConfig::sweep();
        cfg.comm_mode = CommMode::Async;
        cfg
    }

    #[test]
    fn powersave_governor_floors_the_cpu() {
        let cfg = GreenGpuConfig {
            governor: GovernorKind::Powersave,
            ..GreenGpuConfig::scaling_only()
        };
        let report = run_with_config(&mut StreamCluster::paper(1), cfg, async_cfg());
        assert_eq!(report.platform.cpu().domain().current_level(), 0);
    }

    #[test]
    fn performance_governor_pins_the_peak() {
        let cfg = GreenGpuConfig {
            governor: GovernorKind::Performance,
            ..GreenGpuConfig::scaling_only()
        };
        let report = run_with_config(&mut StreamCluster::paper(1), cfg, async_cfg());
        assert_eq!(report.platform.cpu().domain().current_level(), 3);
    }

    #[test]
    fn throttling_governors_save_cpu_energy_under_async_comm() {
        let run = |kind: GovernorKind| {
            let cfg = GreenGpuConfig {
                governor: kind,
                ..GreenGpuConfig::scaling_only()
            };
            run_with_config(&mut StreamCluster::paper(2), cfg, async_cfg())
        };
        let perf = run(GovernorKind::Performance);
        for kind in [
            GovernorKind::Ondemand,
            GovernorKind::Conservative,
            GovernorKind::Proportional,
        ] {
            let throttled = run(kind);
            assert!(
                throttled.cpu_energy_j < perf.cpu_energy_j,
                "{kind:?}: {} vs performance {}",
                throttled.cpu_energy_j,
                perf.cpu_energy_j
            );
            // Same GPU-side work and time regardless of the CPU governor.
            assert_eq!(throttled.total_time, perf.total_time);
        }
    }

    #[test]
    fn model_based_division_through_the_coordinator() {
        use greengpu_workloads::hotspot::Hotspot;
        let cfg = GreenGpuConfig {
            division_algo: DivisionAlgo::ModelBased,
            gpu_scaling: false,
            cpu_scaling: false,
            ..GreenGpuConfig::default()
        };
        let report = run_with_config(&mut Hotspot::paper(3), cfg, RunConfig::sweep());
        // The jump reaches the balance region by iteration 2.
        let second = &report.iterations[1];
        assert!(
            (0.45..=0.60).contains(&second.cpu_share),
            "model jump landed at {}",
            second.cpu_share
        );
    }
}
