//! The two-tier GreenGPU controller (paper §IV, Fig. 3).
//!
//! Wires the WMA GPU scaler, the ondemand CPU governor, and the division
//! controller into one [`Controller`] the runtime can drive. The frequency
//! scaling tier runs on a short fixed period (3 s in the paper's trace);
//! the division tier runs once per iteration, which the workloads size to
//! be ≳ 40× longer so the DVFS loop settles inside each division interval
//! and the tiers do not destructively interact.

use crate::division::{DivisionController, DivisionParams, ModelBasedDivision};
use crate::governors::CpuGovernor;
use crate::wma::{WmaParams, WmaScaler};
use greengpu_hw::{Platform, Smi};
use greengpu_runtime::{Controller, IterationInfo};
use greengpu_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which division algorithm tier 1 runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivisionAlgo {
    /// The paper's one-step-per-iteration heuristic with the oscillation
    /// safeguard (§V-B).
    Stepwise,
    /// The Qilin-style model jump: calibrate on the first iteration, jump
    /// to the predicted balance, then refine step-wise (the §V-B
    /// "sophisticated global algorithm" integration).
    ModelBased,
}

/// Which CPU governor tier 2 runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GovernorKind {
    /// The paper's choice: the Linux ondemand governor.
    Ondemand,
    /// Pin the peak P-state.
    Performance,
    /// Pin the lowest P-state.
    Powersave,
    /// The Linux conservative governor (one step per sample).
    Conservative,
    /// Utilization-proportional selection (Wu et al.-style).
    Proportional,
}

impl GovernorKind {
    fn build(self) -> CpuGovernor {
        match self {
            GovernorKind::Ondemand => CpuGovernor::default(),
            GovernorKind::Performance => CpuGovernor::Performance,
            GovernorKind::Powersave => CpuGovernor::Powersave,
            GovernorKind::Conservative => CpuGovernor::conservative(),
            GovernorKind::Proportional => CpuGovernor::proportional(),
        }
    }
}

/// Which tiers are enabled — the axes of the paper's §VII comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GreenGpuConfig {
    /// Tier-1 workload division on/off.
    pub division: bool,
    /// Tier-2 GPU core+memory scaling on/off.
    pub gpu_scaling: bool,
    /// Tier-2 CPU ondemand governor on/off.
    pub cpu_scaling: bool,
    /// Initial CPU share for the division tier (paper traces use 30 %).
    pub initial_share: f64,
    /// Frequency-scaling invocation period (paper trace: 3 s).
    pub dvfs_period: SimDuration,
    /// Division tuning.
    pub division_params: DivisionParams,
    /// WMA tuning.
    pub wma_params: WmaParams,
    /// Division algorithm (paper heuristic or model-based jump).
    pub division_algo: DivisionAlgo,
    /// CPU governor (the paper uses ondemand).
    pub governor: GovernorKind,
}

impl Default for GreenGpuConfig {
    fn default() -> Self {
        GreenGpuConfig {
            division: true,
            gpu_scaling: true,
            cpu_scaling: true,
            initial_share: 0.30,
            dvfs_period: SimDuration::from_secs(3),
            division_params: DivisionParams::default(),
            wma_params: WmaParams::default(),
            division_algo: DivisionAlgo::Stepwise,
            governor: GovernorKind::Ondemand,
        }
    }
}

impl GreenGpuConfig {
    /// The full holistic configuration (both tiers).
    pub fn holistic() -> Self {
        GreenGpuConfig::default()
    }

    /// Division tier only — the paper's *Division* baseline (frequency
    /// scaling disabled; clocks stay wherever the platform pinned them).
    pub fn division_only() -> Self {
        GreenGpuConfig {
            gpu_scaling: false,
            cpu_scaling: false,
            ..GreenGpuConfig::default()
        }
    }

    /// Frequency-scaling tier only — the paper's *Frequency-scaling*
    /// baseline (all work stays on the GPU).
    pub fn scaling_only() -> Self {
        GreenGpuConfig {
            division: false,
            initial_share: 0.0,
            ..GreenGpuConfig::default()
        }
    }
}

/// Tier-1 implementation selected by [`DivisionAlgo`].
enum DivisionImpl {
    Stepwise(DivisionController),
    ModelBased(ModelBasedDivision),
}

impl DivisionImpl {
    fn update(&mut self, tc: f64, tg: f64) -> f64 {
        match self {
            DivisionImpl::Stepwise(c) => c.update(tc, tg),
            DivisionImpl::ModelBased(c) => c.update(tc, tg),
        }
    }
}

/// The assembled two-tier controller.
pub struct GreenGpuController {
    config: GreenGpuConfig,
    wma: WmaScaler,
    governor: CpuGovernor,
    division: DivisionImpl,
    gpu_smi: Smi,
    cpu_smi: Smi,
}

impl GreenGpuController {
    /// Builds a controller for a platform with `n_core`×`n_mem` GPU levels.
    pub fn new(config: GreenGpuConfig, n_core_levels: usize, n_mem_levels: usize) -> Self {
        let division = match config.division_algo {
            DivisionAlgo::Stepwise => {
                DivisionImpl::Stepwise(DivisionController::new(config.initial_share, config.division_params))
            }
            DivisionAlgo::ModelBased => {
                DivisionImpl::ModelBased(ModelBasedDivision::new(config.initial_share, config.division_params))
            }
        };
        GreenGpuController {
            wma: WmaScaler::new(n_core_levels, n_mem_levels, config.wma_params),
            governor: config.governor.build(),
            division,
            gpu_smi: Smi::new(),
            cpu_smi: Smi::new(),
            config,
        }
    }

    /// Builds a controller for the default 6×6 testbed.
    pub fn for_testbed(config: GreenGpuConfig) -> Self {
        GreenGpuController::new(config, 6, 6)
    }

    /// The WMA scaler (inspection/tests).
    pub fn wma(&self) -> &WmaScaler {
        &self.wma
    }

    /// The step-wise division controller, when that algorithm is selected
    /// (inspection/tests).
    pub fn division(&self) -> Option<&DivisionController> {
        match &self.division {
            DivisionImpl::Stepwise(c) => Some(c),
            DivisionImpl::ModelBased(_) => None,
        }
    }

    /// The CPU governor (inspection/tests).
    pub fn governor(&self) -> &CpuGovernor {
        &self.governor
    }
}

impl Controller for GreenGpuController {
    fn initial_share(&self) -> f64 {
        if self.config.division {
            self.config.initial_share
        } else {
            0.0
        }
    }

    fn dvfs_period(&self) -> Option<SimDuration> {
        if self.config.gpu_scaling || self.config.cpu_scaling {
            Some(self.config.dvfs_period)
        } else {
            None
        }
    }

    fn on_dvfs_tick(&mut self, platform: &mut Platform, now: SimTime) {
        if self.config.gpu_scaling {
            let reading = self.gpu_smi.poll_gpu(platform.gpu(), now);
            let (core_lvl, mem_lvl) = self.wma.observe(reading.u_core, reading.u_mem);
            platform.set_gpu_levels(now, core_lvl, mem_lvl);
        }
        if self.config.cpu_scaling {
            let reading = self.cpu_smi.poll_cpu(platform.cpu(), now);
            self.governor.tick(platform, reading.util, now);
        }
    }

    fn on_iteration_end(&mut self, info: &IterationInfo, _platform: &mut Platform, _now: SimTime) -> f64 {
        if self.config.division {
            self.division.update(info.tc_s, info.tg_s)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_enable_the_right_tiers() {
        let h = GreenGpuConfig::holistic();
        assert!(h.division && h.gpu_scaling && h.cpu_scaling);
        let d = GreenGpuConfig::division_only();
        assert!(d.division && !d.gpu_scaling && !d.cpu_scaling);
        let s = GreenGpuConfig::scaling_only();
        assert!(!s.division && s.gpu_scaling);
    }

    #[test]
    fn scaling_only_pins_share_to_zero() {
        let ctl = GreenGpuController::for_testbed(GreenGpuConfig::scaling_only());
        assert_eq!(ctl.initial_share(), 0.0);
    }

    #[test]
    fn division_only_disables_the_dvfs_loop() {
        let ctl = GreenGpuController::for_testbed(GreenGpuConfig::division_only());
        assert_eq!(ctl.dvfs_period(), None);
    }

    #[test]
    fn holistic_uses_three_second_period() {
        let ctl = GreenGpuController::for_testbed(GreenGpuConfig::holistic());
        assert_eq!(ctl.dvfs_period(), Some(SimDuration::from_secs(3)));
    }

    #[test]
    fn dvfs_tick_actuates_gpu_levels_from_sensors() {
        let mut platform = Platform::default_testbed();
        let mut ctl = GreenGpuController::for_testbed(GreenGpuConfig::scaling_only());
        // Saturate both domains for a window, then tick: the scaler must
        // push both levels to the peak.
        platform.set_gpu_activity(SimTime::ZERO, 1.0, 1.0);
        ctl.on_dvfs_tick(&mut platform, SimTime::from_secs(3));
        assert_eq!(platform.gpu().core().current_level(), 5);
        assert_eq!(platform.gpu().mem().current_level(), 5);
    }

    #[test]
    fn iteration_end_moves_division() {
        let mut platform = Platform::default_testbed();
        let mut ctl = GreenGpuController::for_testbed(GreenGpuConfig::holistic());
        let info = IterationInfo {
            index: 0,
            cpu_share: 0.30,
            tc_s: 10.0,
            tg_s: 2.0,
        };
        let next = ctl.on_iteration_end(&info, &mut platform, SimTime::from_secs(10));
        assert_eq!(next, 0.25, "slower CPU sheds one step");
    }
}

#[cfg(test)]
mod governor_integration_tests {
    use super::*;
    use crate::baselines::run_with_config;
    use greengpu_runtime::{CommMode, RunConfig};
    use greengpu_workloads::streamcluster::StreamCluster;

    fn async_cfg() -> RunConfig {
        let mut cfg = RunConfig::sweep();
        cfg.comm_mode = CommMode::Async;
        cfg
    }

    #[test]
    fn powersave_governor_floors_the_cpu() {
        let cfg = GreenGpuConfig {
            governor: GovernorKind::Powersave,
            ..GreenGpuConfig::scaling_only()
        };
        let report = run_with_config(&mut StreamCluster::paper(1), cfg, async_cfg());
        assert_eq!(report.platform.cpu().domain().current_level(), 0);
    }

    #[test]
    fn performance_governor_pins_the_peak() {
        let cfg = GreenGpuConfig {
            governor: GovernorKind::Performance,
            ..GreenGpuConfig::scaling_only()
        };
        let report = run_with_config(&mut StreamCluster::paper(1), cfg, async_cfg());
        assert_eq!(report.platform.cpu().domain().current_level(), 3);
    }

    #[test]
    fn throttling_governors_save_cpu_energy_under_async_comm() {
        let run = |kind: GovernorKind| {
            let cfg = GreenGpuConfig {
                governor: kind,
                ..GreenGpuConfig::scaling_only()
            };
            run_with_config(&mut StreamCluster::paper(2), cfg, async_cfg())
        };
        let perf = run(GovernorKind::Performance);
        for kind in [GovernorKind::Ondemand, GovernorKind::Conservative, GovernorKind::Proportional] {
            let throttled = run(kind);
            assert!(
                throttled.cpu_energy_j < perf.cpu_energy_j,
                "{kind:?}: {} vs performance {}",
                throttled.cpu_energy_j,
                perf.cpu_energy_j
            );
            // Same GPU-side work and time regardless of the CPU governor.
            assert_eq!(throttled.total_time, perf.total_time);
        }
    }

    #[test]
    fn model_based_division_through_the_coordinator() {
        use greengpu_workloads::hotspot::Hotspot;
        let cfg = GreenGpuConfig {
            division_algo: DivisionAlgo::ModelBased,
            gpu_scaling: false,
            cpu_scaling: false,
            ..GreenGpuConfig::default()
        };
        let report = run_with_config(&mut Hotspot::paper(3), cfg, RunConfig::sweep());
        // The jump reaches the balance region by iteration 2.
        let second = &report.iterations[1];
        assert!(
            (0.45..=0.60).contains(&second.cpu_share),
            "model jump landed at {}",
            second.cpu_share
        );
    }
}
