//! The coordinated GPU core/memory frequency scaler (paper §V-A).
//!
//! A Weighted-Majority-Algorithm (Littlestone & Warmuth) learner over the
//! `N×M` table of (core level, memory level) pairs. Every interval it:
//!
//! 1. reads core and memory utilizations `u_c`, `u_m` from the smi sensor;
//! 2. charges every level a loss from Table I — *performance loss*
//!    `u − umean[i]` when the level's suitable utilization is below the
//!    observed one, *energy loss* `umean[i] − u` otherwise — folded with
//!    `α` (Eqs. 1–2);
//! 3. combines core and memory losses with `φ` (Eq. 3);
//! 4. updates every pair's weight multiplicatively with `β` (Eq. 4);
//! 5. enforces the argmax pair.
//!
//! `umean` follows the Dhiman–Rosing linear map: the peak level suits
//! 100 % utilization, the lowest suits 0 %, intermediate levels are evenly
//! spaced.
//!
//! Two reproduction notes (documented in DESIGN.md): the paper initializes
//! weights "to an equal value (e.g., 0)", which is degenerate under a
//! multiplicative update — we use 1.0 (still equal); and weights are
//! renormalized by the maximum each interval to prevent underflow, which
//! cannot change the argmax.

/// Tuning constants of the scaler (paper's fitted values as defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WmaParams {
    /// Energy-vs-performance trade-off for the core domain (`α_c`); the
    /// paper derives 0.15 experimentally.
    pub alpha_core: f64,
    /// Trade-off for the memory domain (`α_m = 0.02`).
    pub alpha_mem: f64,
    /// Core/memory loss balance (`φ = 0.3`).
    pub phi: f64,
    /// History smoothing (`β = 0.2`).
    pub beta: f64,
    /// Log-domain forgetting factor `λ ∈ (0, 1]` applied before each
    /// update (`w ← w^λ · (1 − (1−β)·loss)`).
    ///
    /// **Reproduction note** (see DESIGN.md): Eq. 4 verbatim (`λ = 1`)
    /// gives the weight table unbounded memory — a pair that was heavily
    /// penalized during one workload phase cannot be re-selected for
    /// hundreds of intervals, contradicting the responsiveness the paper
    /// demonstrates in Fig. 5 ("it can adjust the GPU core and memory
    /// frequencies directly to the best levels according to the
    /// utilizations"). `λ = 0.8` bounds the effective history to ~5
    /// intervals while keeping Eq. 4's noise filtering. The ablation bench
    /// sweeps this knob.
    pub history: f64,
}

impl Default for WmaParams {
    fn default() -> Self {
        WmaParams {
            alpha_core: 0.15,
            alpha_mem: 0.02,
            phi: 0.3,
            beta: 0.2,
            history: 0.8,
        }
    }
}

impl WmaParams {
    /// Checks parameter ranges (`α, φ ∈ [0,1]`, `β ∈ (0,1)`,
    /// `history ∈ (0,1]`), naming the offending field in the error —
    /// the non-panicking form config paths (repro CLI, cluster node
    /// configs) report to the user.
    pub fn try_validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("alpha_core", self.alpha_core),
            ("alpha_mem", self.alpha_mem),
            ("phi", self.phi),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if !(self.beta > 0.0 && self.beta < 1.0) {
            return Err(format!("beta must be in (0,1), got {}", self.beta));
        }
        if !(self.history > 0.0 && self.history <= 1.0) {
            return Err(format!("history must be in (0,1], got {}", self.history));
        }
        Ok(())
    }

    /// Validates parameter ranges, panicking with the
    /// [`WmaParams::try_validate`] message on failure.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            panic!("{msg}");
        }
    }
}

/// The per-level loss of Table I.
///
/// Returns `(energy_loss, performance_loss)` for observed utilization `u`
/// against a level's suitable utilization `umean`.
pub fn table1_loss(u: f64, umean: f64) -> (f64, f64) {
    if u > umean {
        (0.0, u - umean)
    } else {
        (umean - u, 0.0)
    }
}

/// The online WMA frequency scaler over an `N×M` core/memory pair table.
///
/// ```
/// use greengpu::wma::{WmaParams, WmaScaler};
///
/// let mut scaler = WmaScaler::new(6, 6, WmaParams::default());
/// // kmeans-like signature: medium core, low memory utilization.
/// let mut pair = (0, 0);
/// for _ in 0..10 {
///     pair = scaler.observe(0.6, 0.08);
/// }
/// assert_eq!(pair.0, 3, "core level matches umean 0.6 (464 MHz)");
/// assert!(pair.1 <= 1, "memory throttles deep");
/// ```
#[derive(Debug, Clone)]
pub struct WmaScaler {
    params: WmaParams,
    n_core: usize,
    n_mem: usize,
    /// Row-major `n_core × n_mem` weights.
    weights: Vec<f64>,
    /// Suitable utilization per core level.
    ucmean: Vec<f64>,
    /// Suitable utilization per memory level.
    ummean: Vec<f64>,
    intervals: u64,
    /// Intervals whose feasible set was empty and the selection degraded
    /// to the lowest-power pair `(0, 0)`.
    empty_mask_fallbacks: u64,
}

impl WmaScaler {
    /// Creates a scaler for `n_core` core levels and `n_mem` memory levels
    /// (6×6 on the paper's testbed).
    pub fn new(n_core: usize, n_mem: usize, params: WmaParams) -> Self {
        assert!(n_core >= 2 && n_mem >= 2, "need at least two levels per domain");
        params.validate();
        let linmap = |n: usize| -> Vec<f64> { (0..n).map(|i| i as f64 / (n - 1) as f64).collect() };
        WmaScaler {
            params,
            n_core,
            n_mem,
            weights: vec![1.0; n_core * n_mem],
            ucmean: linmap(n_core),
            ummean: linmap(n_mem),
            intervals: 0,
            empty_mask_fallbacks: 0,
        }
    }

    /// The `umean` table for the core domain.
    pub fn ucmean(&self) -> &[f64] {
        &self.ucmean
    }

    /// The `umean` table for the memory domain.
    pub fn ummean(&self) -> &[f64] {
        &self.ummean
    }

    /// Weight of pair `(i, j)`.
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.weights[i * self.n_mem + j]
    }

    /// Number of observe intervals processed.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Number of intervals whose feasible set was empty, degrading the
    /// selection to the lowest-power pair `(0, 0)` — surfaced so capped
    /// runs can report how often the cap was tighter than any pair.
    pub fn empty_mask_fallbacks(&self) -> u64 {
        self.empty_mask_fallbacks
    }

    /// The loss charged to core level `i` under utilization `u_core`
    /// (Eq. 1).
    pub fn core_loss(&self, i: usize, u_core: f64) -> f64 {
        let (le, lp) = table1_loss(u_core, self.ucmean[i]);
        self.params.alpha_core * le + (1.0 - self.params.alpha_core) * lp
    }

    /// The loss charged to memory level `j` under utilization `u_mem`
    /// (Eq. 2).
    pub fn mem_loss(&self, j: usize, u_mem: f64) -> f64 {
        let (le, lp) = table1_loss(u_mem, self.ummean[j]);
        self.params.alpha_mem * le + (1.0 - self.params.alpha_mem) * lp
    }

    /// The combined loss of pair `(i, j)` (Eq. 3).
    pub fn total_loss(&self, i: usize, j: usize, u_core: f64, u_mem: f64) -> f64 {
        self.params.phi * self.core_loss(i, u_core) + (1.0 - self.params.phi) * self.mem_loss(j, u_mem)
    }

    /// One interval of Algorithm 1: reads the utilizations, updates all
    /// weights (Eq. 4), renormalizes, and returns the argmax
    /// `(core_level, mem_level)` pair to enforce next.
    ///
    /// Ties break toward lower (more energy-saving) levels.
    ///
    /// Non-finite utilizations (a lost `nvidia-smi` poll) are rejected
    /// without touching the weight table — `NaN.clamp()` is still NaN, and
    /// one NaN loss would zero every weight permanently. The current
    /// argmax is returned unchanged.
    pub fn observe(&mut self, u_core: f64, u_mem: f64) -> (usize, usize) {
        self.observe_masked(u_core, u_mem, |_, _| true)
    }

    /// [`WmaScaler::observe`] restricted to a *feasible set* of pairs — the
    /// power-capping seam used by the cluster tier.
    ///
    /// The weight update runs over the **full** table (learning is never
    /// distorted by a transient cap), but the returned argmax only
    /// considers pairs for which `feasible(core, mem)` is true — e.g.
    /// pairs whose modeled board power fits the node's current power cap.
    /// An empty feasible set degrades to `(0, 0)`, the lowest-power pair,
    /// which is the closest enforceable point to any cap.
    pub fn observe_masked<F>(&mut self, u_core: f64, u_mem: f64, feasible: F) -> (usize, usize)
    where
        F: Fn(usize, usize) -> bool,
    {
        if !(u_core.is_finite() && u_mem.is_finite()) {
            return self.select_masked(&feasible);
        }
        let u_core = u_core.clamp(0.0, 1.0);
        let u_mem = u_mem.clamp(0.0, 1.0);
        let one_minus_beta = 1.0 - self.params.beta;
        let mut max_w = 0.0f64;
        for i in 0..self.n_core {
            for j in 0..self.n_mem {
                let loss = self.total_loss(i, j, u_core, u_mem);
                debug_assert!((0.0..=1.0 + 1e-12).contains(&loss), "loss out of [0,1]");
                let w = &mut self.weights[i * self.n_mem + j];
                *w = w.powf(self.params.history) * (1.0 - one_minus_beta * loss);
                max_w = max_w.max(*w);
            }
        }
        // Renormalize by the max so weights never underflow; the argmax is
        // unaffected.
        if max_w > 0.0 {
            for w in &mut self.weights {
                *w /= max_w;
            }
        }
        self.intervals += 1;
        self.select_masked(&feasible)
    }

    /// Masked argmax that counts the empty-feasible-set degradation to
    /// `(0, 0)`.
    fn select_masked<F>(&mut self, feasible: F) -> (usize, usize)
    where
        F: Fn(usize, usize) -> bool,
    {
        match self.argmax_masked(feasible) {
            Some(pair) => pair,
            None => {
                self.empty_mask_fallbacks += 1;
                (0, 0)
            }
        }
    }

    /// The current best pair without updating.
    pub fn argmax(&self) -> (usize, usize) {
        self.argmax_masked(|_, _| true).unwrap_or((0, 0))
    }

    /// The best pair among those `feasible` admits, without updating;
    /// `None` when the feasible set is empty. Ties break toward lower
    /// (more energy-saving) levels, exactly like [`WmaScaler::argmax`].
    pub fn argmax_masked<F>(&self, feasible: F) -> Option<(usize, usize)>
    where
        F: Fn(usize, usize) -> bool,
    {
        let mut best = None;
        let mut best_w = f64::NEG_INFINITY;
        for i in 0..self.n_core {
            for j in 0..self.n_mem {
                if !feasible(i, j) {
                    continue;
                }
                let w = self.weights[i * self.n_mem + j];
                if w > best_w {
                    best_w = w;
                    best = Some((i, j));
                }
            }
        }
        best
    }

    /// Resets the table to the uniform initial state.
    pub fn reset(&mut self) {
        self.weights.iter_mut().for_each(|w| *w = 1.0);
        self.intervals = 0;
        self.empty_mask_fallbacks = 0;
    }

    /// Serializes the learner's warm state for checkpointing: the weight
    /// table plus the interval counters. The `umean` maps are derived
    /// from the grid shape at construction and are not stored.
    pub fn snapshot(&self) -> greengpu_sim::JsonValue {
        use greengpu_sim::JsonValue;
        JsonValue::Obj(vec![
            ("weights".to_string(), JsonValue::f64_array(&self.weights)),
            ("intervals".to_string(), JsonValue::u64(self.intervals)),
            (
                "empty_mask_fallbacks".to_string(),
                JsonValue::u64(self.empty_mask_fallbacks),
            ),
        ])
    }

    /// Restores state captured by [`WmaScaler::snapshot`]. Validates the
    /// whole value before mutating anything, so a failed restore leaves
    /// the scaler unchanged.
    pub fn restore(&mut self, state: &greengpu_sim::JsonValue) -> Result<(), String> {
        use greengpu_policy::snap;
        let weights = snap::parse_f64_vec(snap::field(state, "weights")?, "weights", self.weights.len())?;
        if weights.iter().any(|&w| !(0.0..=1.0).contains(&w)) {
            return Err("weights must lie in [0, 1] (max-renormalized table)".to_string());
        }
        let intervals = snap::parse_u64(state, "intervals")?;
        let fallbacks = snap::parse_u64(state, "empty_mask_fallbacks")?;
        self.weights = weights;
        self.intervals = intervals;
        self.empty_mask_fallbacks = fallbacks;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> WmaScaler {
        WmaScaler::new(6, 6, WmaParams::default())
    }

    #[test]
    fn umean_is_the_linear_map() {
        let s = scaler();
        assert_eq!(s.ucmean(), &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]);
        assert_eq!(s.ummean(), &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]);
    }

    #[test]
    fn table1_loss_matches_the_paper_table() {
        // u > umean → pure performance loss.
        let (le, lp) = table1_loss(0.9, 0.6);
        assert!(le == 0.0 && (lp - 0.3).abs() < 1e-12);
        // u < umean → pure energy loss.
        let (le, lp) = table1_loss(0.2, 0.6);
        assert!((le - 0.4).abs() < 1e-12 && lp == 0.0);
        // u == umean → no loss.
        assert_eq!(table1_loss(0.5, 0.5), (0.0, 0.0));
    }

    #[test]
    fn full_utilization_selects_peak_pair() {
        let mut s = scaler();
        for _ in 0..10 {
            s.observe(1.0, 1.0);
        }
        assert_eq!(s.argmax(), (5, 5));
    }

    #[test]
    fn idle_utilization_selects_lowest_pair() {
        let mut s = scaler();
        for _ in 0..10 {
            s.observe(0.0, 0.0);
        }
        assert_eq!(s.argmax(), (0, 0));
    }

    #[test]
    fn medium_core_low_mem_selects_matched_levels() {
        // The kmeans signature: u_core ≈ 0.6, u_mem ≈ 0.08.
        let mut s = scaler();
        for _ in 0..10 {
            s.observe(0.6, 0.08);
        }
        let (i, j) = s.argmax();
        assert_eq!(i, 3, "core level should match umean 0.6");
        assert!(j <= 1, "memory should throttle deep, got {j}");
    }

    #[test]
    fn masked_argmax_respects_the_feasible_set() {
        let mut s = scaler();
        for _ in 0..10 {
            s.observe(1.0, 1.0);
        }
        // The unmasked winner is the peak pair; a mask excluding it must
        // yield the best pair *inside* the feasible set.
        assert_eq!(s.argmax(), (5, 5));
        let best = s.argmax_masked(|i, j| i + j <= 7).expect("non-empty mask");
        assert!(best.0 + best.1 <= 7, "masked argmax escaped the mask: {best:?}");
    }

    #[test]
    fn empty_mask_degrades_to_lowest_pair() {
        let mut s = scaler();
        assert_eq!(s.argmax_masked(|_, _| false), None);
        assert_eq!(s.observe_masked(1.0, 1.0, |_, _| false), (0, 0));
    }

    #[test]
    fn all_infeasible_intervals_are_counted_and_learning_continues() {
        let mut s = scaler();
        assert_eq!(s.empty_mask_fallbacks(), 0);
        for _ in 0..5 {
            assert_eq!(s.observe_masked(1.0, 1.0, |_, _| false), (0, 0));
        }
        assert_eq!(s.empty_mask_fallbacks(), 5);
        // The weight update still ran every interval: once the cap lifts
        // the scaler selects what it learned during the blackout.
        assert_eq!(s.intervals(), 5);
        assert_eq!(s.argmax(), (5, 5));
        // A feasible interval does not bump the counter.
        s.observe_masked(1.0, 1.0, |_, _| true);
        assert_eq!(s.empty_mask_fallbacks(), 5);
        s.reset();
        assert_eq!(s.empty_mask_fallbacks(), 0);
    }

    #[test]
    fn nan_under_empty_mask_still_counts_the_fallback() {
        // Both degradations at once: a lost sensor poll *and* a cap no
        // pair fits. The weight table must be untouched (NaN path), the
        // fallback counted, and (0, 0) returned.
        let mut s = scaler();
        for _ in 0..8 {
            s.observe(0.6, 0.08);
        }
        let before: Vec<f64> = (0..6)
            .flat_map(|i| (0..6).map(move |j| (i, j)))
            .map(|(i, j)| s.weight(i, j))
            .collect();
        assert_eq!(s.observe_masked(f64::NAN, 0.5, |_, _| false), (0, 0));
        assert_eq!(s.empty_mask_fallbacks(), 1);
        assert_eq!(s.intervals(), 8, "NaN interval must not count as processed");
        let after: Vec<f64> = (0..6)
            .flat_map(|i| (0..6).map(move |j| (i, j)))
            .map(|(i, j)| s.weight(i, j))
            .collect();
        assert_eq!(before, after);
        // NaN under a *non-empty* mask holds the masked argmax and does
        // not bump the counter.
        let held = s.observe_masked(f64::NAN, 0.5, |i, j| i <= 1 && j <= 1);
        assert!(held.0 <= 1 && held.1 <= 1);
        assert_eq!(s.empty_mask_fallbacks(), 1);
    }

    #[test]
    fn try_validate_names_the_offending_field() {
        let ok = WmaParams::default();
        assert!(ok.try_validate().is_ok());
        let cases = [
            (WmaParams { alpha_core: -0.1, ..ok }, "alpha_core"),
            (WmaParams { alpha_mem: 1.5, ..ok }, "alpha_mem"),
            (WmaParams { phi: 2.0, ..ok }, "phi"),
            (WmaParams { beta: 1.0, ..ok }, "beta"),
            (WmaParams { beta: f64::NAN, ..ok }, "beta"),
            (WmaParams { history: 0.0, ..ok }, "history"),
        ];
        for (bad, field) in cases {
            let err = bad.try_validate().unwrap_err();
            assert!(err.contains(field), "{err:?} should name {field}");
        }
    }

    #[test]
    fn all_true_mask_matches_unmasked_observe() {
        let mut a = scaler();
        let mut b = scaler();
        for k in 0..12 {
            let u = (k as f64) / 11.0;
            let pa = a.observe(u, 1.0 - u);
            let pb = b.observe_masked(u, 1.0 - u, |_, _| true);
            assert_eq!(pa, pb);
        }
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(a.weight(i, j).to_bits(), b.weight(i, j).to_bits());
            }
        }
    }

    #[test]
    fn mask_never_distorts_learning() {
        // Weights after masked observations must equal weights after the
        // same unmasked observations: the mask only affects selection.
        let mut masked = scaler();
        let mut free = scaler();
        for _ in 0..10 {
            masked.observe_masked(1.0, 1.0, |i, j| i <= 2 && j <= 2);
            free.observe(1.0, 1.0);
        }
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(masked.weight(i, j).to_bits(), free.weight(i, j).to_bits());
            }
        }
        // And once the cap lifts, the scaler immediately selects what it
        // learned.
        assert_eq!(masked.argmax(), (5, 5));
    }

    #[test]
    fn streamcluster_signature_selects_408_and_820() {
        // Fig. 5: u_core ≈ 0.28-0.4 → level 2 (408 MHz); u_mem ≈ 0.67-0.79
        // → level 4 (820 MHz).
        let mut s = scaler();
        for _ in 0..10 {
            s.observe(0.33, 0.70);
        }
        assert_eq!(s.argmax(), (2, 4));
    }

    #[test]
    fn performance_bias_picks_level_above_utilization() {
        // α small → perf loss dominates → the chosen umean sits at or
        // above the observed utilization.
        let mut s = scaler();
        for u in [0.15, 0.35, 0.55, 0.75] {
            s.reset();
            for _ in 0..5 {
                s.observe(u, u);
            }
            let (i, j) = s.argmax();
            assert!(s.ucmean()[i] >= u - 1e-9, "core level {i} below u {u}");
            assert!(s.ummean()[j] >= u - 1e-9, "mem level {j} below u {u}");
        }
    }

    #[test]
    fn weights_stay_normalized_and_positive() {
        let mut s = scaler();
        for k in 0..1000 {
            let u = (k % 10) as f64 / 10.0;
            s.observe(u, 1.0 - u);
        }
        let max = (0..6)
            .flat_map(|i| (0..6).map(move |j| (i, j)))
            .map(|(i, j)| s.weight(i, j))
            .fold(0.0, f64::max);
        assert!((max - 1.0).abs() < 1e-12, "max weight must be renormalized to 1");
        for i in 0..6 {
            for j in 0..6 {
                let w = s.weight(i, j);
                assert!(w >= 0.0 && w.is_finite());
            }
        }
    }

    #[test]
    fn adapts_to_workload_change() {
        // Converge on a core-heavy signature, then switch to memory-heavy:
        // the argmax must follow within a few intervals (the paper's Fig. 5
        // ramp behaviour).
        let mut s = scaler();
        for _ in 0..20 {
            s.observe(0.95, 0.1);
        }
        let before = s.argmax();
        assert_eq!(before.0, 5, "core pinned high");
        for _ in 0..20 {
            s.observe(0.1, 0.95);
        }
        let after = s.argmax();
        assert!(after.0 <= 1, "core should drop, got {}", after.0);
        assert_eq!(after.1, 5, "memory should rise");
    }

    #[test]
    fn history_controls_adaptation_speed() {
        let run = |history: f64| -> u64 {
            let mut s = WmaScaler::new(
                6,
                6,
                WmaParams {
                    history,
                    ..WmaParams::default()
                },
            );
            for _ in 0..50 {
                s.observe(1.0, 1.0);
            }
            // Count intervals until argmax flips after the signature change.
            let mut count = 0;
            while s.argmax() != (0, 0) && count < 5000 {
                s.observe(0.0, 0.0);
                count += 1;
            }
            count
        };
        let bounded = run(0.8);
        let verbatim = run(1.0);
        assert!(
            bounded < 30,
            "bounded history should adapt within tens of intervals, took {bounded}"
        );
        assert!(
            verbatim > 10 * bounded,
            "verbatim Eq. 4 should be dramatically slower: {verbatim} vs {bounded}"
        );
    }

    #[test]
    fn beta_scales_per_interval_penalty() {
        // Larger β → smaller (1−β) → gentler weight decay for the same
        // loss.
        let weight_after_one = |beta: f64| -> f64 {
            let mut s = WmaScaler::new(
                6,
                6,
                WmaParams {
                    beta,
                    ..WmaParams::default()
                },
            );
            s.observe(1.0, 1.0);
            s.weight(0, 0) // heavily penalized pair, relative to max
        };
        assert!(weight_after_one(0.9) > weight_after_one(0.2));
    }

    #[test]
    fn ties_break_toward_lower_levels() {
        // With u exactly on a umean both neighbors can tie in loss shape;
        // a fresh table with u = 0 makes all pure-energy losses strictly
        // ordered, but u = umean[k] gives level k zero loss — unique. Use
        // φ = 0 so core levels are all tied: argmax must take the lowest.
        let mut s = WmaScaler::new(
            6,
            6,
            WmaParams {
                phi: 0.0,
                ..WmaParams::default()
            },
        );
        s.observe(0.5, 0.6);
        let (i, j) = s.argmax();
        assert_eq!(i, 0, "tied core levels must break low");
        assert_eq!(j, 3);
    }

    #[test]
    fn losses_are_bounded_unit_interval() {
        let s = scaler();
        for i in 0..6 {
            for j in 0..6 {
                for u in [0.0, 0.25, 0.5, 0.75, 1.0] {
                    let l = s.total_loss(i, j, u, 1.0 - u);
                    assert!((0.0..=1.0).contains(&l), "loss {l}");
                }
            }
        }
    }

    #[test]
    fn reset_restores_uniform_table() {
        let mut s = scaler();
        s.observe(0.3, 0.9);
        s.reset();
        assert_eq!(s.intervals(), 0);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(s.weight(i, j), 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn invalid_beta_panics() {
        WmaScaler::new(
            6,
            6,
            WmaParams {
                beta: 0.0,
                ..WmaParams::default()
            },
        );
    }

    #[test]
    fn non_finite_utilization_leaves_weights_untouched() {
        let mut s = scaler();
        for _ in 0..10 {
            s.observe(0.6, 0.08);
        }
        let before: Vec<f64> = (0..6)
            .flat_map(|i| (0..6).map(move |j| (i, j)))
            .map(|(i, j)| s.weight(i, j))
            .collect();
        let pair = s.argmax();
        for (uc, um) in [
            (f64::NAN, 0.5),
            (0.5, f64::NAN),
            (f64::INFINITY, 0.5),
            (0.5, f64::NEG_INFINITY),
            (f64::NAN, f64::NAN),
        ] {
            assert_eq!(s.observe(uc, um), pair, "argmax must hold under ({uc}, {um})");
        }
        let after: Vec<f64> = (0..6)
            .flat_map(|i| (0..6).map(move |j| (i, j)))
            .map(|(i, j)| s.weight(i, j))
            .collect();
        assert_eq!(before, after, "weight table must be untouched");
    }

    #[test]
    fn out_of_range_utilization_is_clamped() {
        let mut s = scaler();
        let pair = s.observe(1.7, -0.3);
        assert_eq!(pair, s.argmax());
        // Equivalent to (1.0, 0.0).
        let mut s2 = scaler();
        let pair2 = s2.observe(1.0, 0.0);
        assert_eq!(pair, pair2);
    }
}

/// Independent per-card WMA scalers for the multi-GPU runtime — each card
/// gets its own weight table, as each has its own utilization signature
/// (shares differ, and cards may be heterogeneous).
#[derive(Debug, Clone)]
pub struct PerGpuWma {
    scalers: Vec<WmaScaler>,
}

impl PerGpuWma {
    /// One 6×6 scaler per card with the given parameters.
    pub fn new(n_gpus: usize, params: WmaParams) -> Self {
        PerGpuWma {
            scalers: (0..n_gpus).map(|_| WmaScaler::new(6, 6, params)).collect(),
        }
    }

    /// The scaler for card `i` (inspection/tests).
    pub fn scaler(&self, i: usize) -> &WmaScaler {
        &self.scalers[i]
    }
}

impl greengpu_runtime::multi::MultiScaler for PerGpuWma {
    fn observe(&mut self, gpu_index: usize, u_core: f64, u_mem: f64) -> (usize, usize) {
        self.scalers[gpu_index].observe(u_core, u_mem)
    }
}

#[cfg(test)]
mod per_gpu_tests {
    use super::*;
    use greengpu_runtime::multi::MultiScaler;

    #[test]
    fn cards_learn_independently() {
        let mut s = PerGpuWma::new(2, WmaParams::default());
        for _ in 0..10 {
            s.observe(0, 1.0, 1.0);
            s.observe(1, 0.0, 0.0);
        }
        assert_eq!(s.scaler(0).argmax(), (5, 5));
        assert_eq!(s.scaler(1).argmax(), (0, 0));
    }
}
