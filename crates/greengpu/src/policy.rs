//! The [`FreqPolicy`] seam of the `greengpu` crate: the WMA adapter, the
//! policy registry ([`PolicySpec`]), and the workload→[`PairModel`]
//! prediction helper.
//!
//! [`WmaPolicy`] wraps the paper's [`WmaScaler`] **unchanged** — it
//! delegates every observation to [`WmaScaler::observe_masked`] with the
//! same inputs the coordinator used to pass directly, so a controller
//! built from `PolicySpec::Wma(params)` reproduces the pre-seam
//! controller decision-for-decision. What the adapter adds is the
//! cross-policy telemetry (cumulative loss, switches, regret) every
//! [`FreqPolicy`] carries, so WMA appears in the same head-to-head
//! tables as the bandits and the deadline selector.

use crate::wma::{WmaParams, WmaScaler};
use greengpu_hw::GpuSpec;
use greengpu_policy::telemetry::DecisionTracker;
use greengpu_policy::{
    Contextual, DeadlineParams, DeadlinePolicy, Exp3Params, Exp3Policy, FreqPolicy, LossModel, LossParams, PairModel,
    PhaseDetectorParams, PolicyTelemetry, UcbParams, UcbPolicy,
};
use greengpu_sim::SplitMix64;
use greengpu_workloads::model::phase_gpu_timing;
use greengpu_workloads::Workload;

/// [`FreqPolicy`] adapter over the paper's WMA scaler.
pub struct WmaPolicy {
    scaler: WmaScaler,
    n_core: usize,
    n_mem: usize,
    tracker: DecisionTracker,
}

impl WmaPolicy {
    /// Wraps a fresh `n_core × n_mem` scaler. The telemetry loss model
    /// reuses the WMA's own `α`/`φ` constants so regret is scored on the
    /// exact loss the scaler optimizes.
    pub fn new(n_core: usize, n_mem: usize, params: WmaParams) -> Self {
        let loss = LossParams {
            alpha_core: params.alpha_core,
            alpha_mem: params.alpha_mem,
            phi: params.phi,
        };
        WmaPolicy {
            scaler: WmaScaler::new(n_core, n_mem, params),
            n_core,
            n_mem,
            tracker: DecisionTracker::new(LossModel::new(n_core, n_mem, loss)),
        }
    }

    /// The wrapped scaler (inspection/tests — also reachable through
    /// [`FreqPolicy::as_any`]).
    pub fn scaler(&self) -> &WmaScaler {
        &self.scaler
    }
}

impl FreqPolicy for WmaPolicy {
    fn name(&self) -> &str {
        "wma"
    }

    fn shape(&self) -> (usize, usize) {
        (self.n_core, self.n_mem)
    }

    fn decide(&mut self, u_core: f64, u_mem: f64, feasible: &dyn Fn(usize, usize) -> bool) -> (usize, usize) {
        // Delegate with identical inputs — the scaler owns the NaN
        // rejection and the empty-mask degradation; the adapter only
        // mirrors them into the shared telemetry.
        let pair = self.scaler.observe_masked(u_core, u_mem, feasible);
        let empty = !(0..self.n_core).any(|i| (0..self.n_mem).any(|j| feasible(i, j)));
        if empty {
            self.tracker.note_empty_mask();
        } else if !(u_core.is_finite() && u_mem.is_finite()) {
            self.tracker.note_invalid();
        } else {
            self.tracker.record(u_core, u_mem, pair, 0.0);
        }
        pair
    }

    fn preferred(&self) -> (usize, usize) {
        self.scaler.argmax()
    }

    fn telemetry(&self) -> &PolicyTelemetry {
        self.tracker.telemetry()
    }

    fn reset(&mut self) {
        self.scaler.reset();
        self.tracker.reset();
    }

    fn snapshot(&self) -> greengpu_sim::JsonValue {
        self.scaler.snapshot()
    }

    fn restore(&mut self, state: &greengpu_sim::JsonValue) -> Result<(), String> {
        self.scaler.restore(state)
    }

    fn decision_fingerprint(&self) -> Option<u64> {
        // The scaler's decisions are a pure function of its weight table
        // (ucmean/ummean are static; the interval counter is telemetry),
        // so the weights' exact bit patterns are the whole fingerprint.
        // The tracker mirrors decisions into telemetry and is excluded.
        let mut h = greengpu_sim::Fnv64::new();
        for i in 0..self.n_core {
            for j in 0..self.n_mem {
                h.push_f64(self.scaler.weight(i, j));
            }
        }
        Some(h.finish())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Declarative policy selection — what configs (cluster nodes, the repro
/// CLI) carry instead of a live `Box<dyn FreqPolicy>`.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// The paper's WMA scaler (the default).
    Wma(WmaParams),
    /// Switching-aware EXP3 bandit.
    Exp3(Exp3Params),
    /// Switching-aware UCB bandit.
    Ucb(UcbParams),
    /// Deadline-aware energy-minimizing selection; building it requires
    /// a [`PairModel`] (see [`PolicySpec::build`]).
    Deadline(DeadlineParams),
    /// Phase-conditioned EXP3: one inner bandit per phase the detector
    /// discovers. The wrapper's switching accounting and the telemetry
    /// loss model reuse the inner parameters' own `switching`/`loss`.
    ContextualExp3 {
        /// Parameters every inner bandit is built with.
        inner: Exp3Params,
        /// Phase-detector tuning (`max_phases` bounds the inner count;
        /// [`PhaseDetectorParams::disabled`] is the detector-off
        /// ablation).
        detector: PhaseDetectorParams,
        /// Optional per-level clock tables `(core, mem)` enabling
        /// clock-invariant detection ([`Contextual::with_level_caps`]);
        /// `None` feeds the detector raw utilizations.
        levels: Option<(Vec<f64>, Vec<f64>)>,
    },
    /// Phase-conditioned UCB: one inner bandit per detected phase.
    ContextualUcb {
        /// Parameters every inner bandit is built with.
        inner: UcbParams,
        /// Phase-detector tuning.
        detector: PhaseDetectorParams,
        /// Optional per-level clock tables `(core, mem)` for
        /// clock-invariant detection.
        levels: Option<(Vec<f64>, Vec<f64>)>,
    },
}

impl Default for PolicySpec {
    fn default() -> Self {
        PolicySpec::Wma(WmaParams::default())
    }
}

impl PolicySpec {
    /// The policy's stable name (matches [`FreqPolicy::name`] of the
    /// built instance, modulo the bandits' `-nosw` ablation suffix).
    pub fn kind(&self) -> &'static str {
        match self {
            PolicySpec::Wma(_) => "wma",
            PolicySpec::Exp3(_) => "exp3",
            PolicySpec::Ucb(_) => "ucb",
            PolicySpec::Deadline(_) => "deadline",
            PolicySpec::ContextualExp3 { .. } => "ctx-exp3",
            PolicySpec::ContextualUcb { .. } => "ctx-ucb",
        }
    }

    /// Non-panicking parameter check, naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        match self {
            PolicySpec::Wma(p) => p.try_validate(),
            PolicySpec::Exp3(p) => p.try_validate(),
            PolicySpec::Ucb(p) => p.try_validate(),
            PolicySpec::Deadline(p) => p.try_validate(),
            PolicySpec::ContextualExp3 { inner, detector, .. } => {
                inner.try_validate()?;
                detector.try_validate()
            }
            PolicySpec::ContextualUcb { inner, detector, .. } => {
                inner.try_validate()?;
                detector.try_validate()
            }
        }
    }

    /// Builds the live policy for an `n_core × n_mem` grid. Randomized
    /// policies derive their streams from `seed`; the deadline selector
    /// requires `model` (errors without one), every other variant
    /// ignores it.
    pub fn build(
        &self,
        n_core: usize,
        n_mem: usize,
        seed: u64,
        model: Option<&PairModel>,
    ) -> Result<Box<dyn FreqPolicy>, String> {
        self.try_validate()?;
        match self {
            PolicySpec::Wma(p) => Ok(Box::new(WmaPolicy::new(n_core, n_mem, *p))),
            PolicySpec::Exp3(p) => Ok(Box::new(Exp3Policy::new(n_core, n_mem, *p, seed))),
            PolicySpec::Ucb(p) => Ok(Box::new(UcbPolicy::new(n_core, n_mem, *p))),
            PolicySpec::Deadline(p) => {
                let model = model.ok_or_else(|| {
                    "deadline policy requires a PairModel (predicted per-pair time/energy)".to_string()
                })?;
                if model.shape() != (n_core, n_mem) {
                    return Err(format!(
                        "PairModel shape {:?} does not match grid {}x{}",
                        model.shape(),
                        n_core,
                        n_mem
                    ));
                }
                Ok(Box::new(DeadlinePolicy::new(model.clone(), *p)))
            }
            PolicySpec::ContextualExp3 {
                inner,
                detector,
                levels,
            } => {
                // Inner seeds derive from the run seed through the same
                // SplitMix64 expansion the rest of the suite uses, so
                // every phase's bandit gets an independent stream that
                // is still a pure function of `seed`.
                let mut root = SplitMix64::new(seed);
                let seeds: Vec<u64> = (0..detector.max_phases).map(|_| root.next_u64()).collect();
                let mut ctx = Contextual::new(n_core, n_mem, *detector, inner.switching, inner.loss, |k| {
                    Exp3Policy::new(n_core, n_mem, *inner, seeds[k])
                })?;
                if let Some((core, mem)) = levels {
                    ctx = ctx.with_level_caps(core, mem)?;
                }
                Ok(Box::new(ctx))
            }
            PolicySpec::ContextualUcb {
                inner,
                detector,
                levels,
            } => {
                let mut ctx = Contextual::new(n_core, n_mem, *detector, inner.switching, inner.loss, |_| {
                    UcbPolicy::new(n_core, n_mem, *inner)
                })?;
                if let Some((core, mem)) = levels {
                    ctx = ctx.with_level_caps(core, mem)?;
                }
                Ok(Box::new(ctx))
            }
        }
    }
}

/// Predicts a workload's per-pair time/energy grid from its first
/// iteration's phase costs on `spec` — the same
/// [`phase_gpu_timing`] model the simulator advances with, so the
/// deadline selector's predictions agree with the simulation by
/// construction. Phase utilizations feed the activity-dependent power
/// model, and host-floor gaps are charged at idle activity.
pub fn pair_model_for(workload: &dyn Workload, spec: &GpuSpec) -> PairModel {
    let phases = workload.phases(0);
    let n_core = spec.core_levels_mhz.len();
    let n_mem = spec.mem_levels_mhz.len();
    let mut time_s = vec![0.0; n_core * n_mem];
    let mut energy_j = vec![0.0; n_core * n_mem];
    for i in 0..n_core {
        for j in 0..n_mem {
            let mut t_total = 0.0;
            let mut e_total = 0.0;
            for cost in &phases {
                let t = phase_gpu_timing(&cost.gpu, spec, spec.core_levels_mhz[i], spec.mem_levels_mhz[j]);
                let p = spec.power_at_levels_w(i, j, t.u_core, t.u_mem);
                t_total += t.wall_s;
                e_total += p * t.wall_s;
            }
            time_s[i * n_mem + j] = t_total;
            energy_j[i * n_mem + j] = e_total;
        }
    }
    // lint:allow(panic_freedom) construction-time model build from finite spec grids, not a control path
    PairModel::from_grids(n_core, n_mem, time_s, energy_j).expect("model grids are finite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu_hw::calib::geforce_8800_gtx;
    use greengpu_workloads::kmeans::KMeans;

    const ALL: fn(usize, usize) -> bool = |_, _| true;

    #[test]
    fn wma_policy_reproduces_the_bare_scaler() {
        // The adapter must be byte-identical to driving the scaler
        // directly — the seed reproduction depends on it.
        let mut policy = WmaPolicy::new(6, 6, WmaParams::default());
        let mut bare = WmaScaler::new(6, 6, WmaParams::default());
        for k in 0..40 {
            let u = (k % 7) as f64 / 6.0;
            assert_eq!(policy.decide(u, 1.0 - u, &ALL), bare.observe(u, 1.0 - u));
        }
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(policy.scaler().weight(i, j).to_bits(), bare.weight(i, j).to_bits());
            }
        }
        assert_eq!(policy.preferred(), bare.argmax());
    }

    #[test]
    fn wma_policy_telemetry_counts_edge_cases() {
        let mut policy = WmaPolicy::new(6, 6, WmaParams::default());
        policy.decide(0.6, 0.6, &ALL);
        policy.decide(f64::NAN, 0.6, &ALL);
        policy.decide(0.6, 0.6, &|_, _| false);
        let t = policy.telemetry();
        assert_eq!(t.intervals, 1);
        assert_eq!(t.invalid_inputs, 1);
        assert_eq!(t.empty_mask_fallbacks, 1);
        policy.reset();
        assert_eq!(policy.telemetry(), &PolicyTelemetry::default());
        assert_eq!(policy.scaler().intervals(), 0);
    }

    #[test]
    fn spec_builds_every_policy_kind() {
        let spec = geforce_8800_gtx();
        let model = pair_model_for(&KMeans::small(1), &spec);
        let specs = [
            PolicySpec::default(),
            PolicySpec::Exp3(Exp3Params::default()),
            PolicySpec::Ucb(UcbParams::default()),
            PolicySpec::Deadline(DeadlineParams {
                time_budget_s: model.peak_time_s() * 1.5,
                ..DeadlineParams::default()
            }),
            PolicySpec::ContextualExp3 {
                inner: Exp3Params::default(),
                detector: PhaseDetectorParams::default(),
                levels: Some((spec.core_levels_mhz.clone(), spec.mem_levels_mhz.clone())),
            },
            PolicySpec::ContextualUcb {
                inner: UcbParams::default(),
                detector: PhaseDetectorParams::disabled(),
                levels: None,
            },
        ];
        for s in &specs {
            assert!(s.try_validate().is_ok(), "{}", s.kind());
            let mut p = s.build(6, 6, 42, Some(&model)).expect("buildable");
            let (i, j) = p.decide(0.5, 0.5, &ALL);
            assert!(i < 6 && j < 6);
        }
    }

    #[test]
    fn deadline_spec_requires_a_model() {
        let spec = PolicySpec::Deadline(DeadlineParams::default());
        let err = spec.build(6, 6, 1, None).err().expect("must refuse");
        assert!(err.contains("PairModel"), "{err}");
    }

    #[test]
    fn spec_validation_propagates_field_names() {
        let bad = PolicySpec::Wma(WmaParams {
            beta: 0.0,
            ..WmaParams::default()
        });
        let err = bad.try_validate().unwrap_err();
        assert!(err.contains("beta"), "{err}");
        assert!(bad.build(6, 6, 1, None).is_err());
        let bad_detector = PolicySpec::ContextualUcb {
            inner: UcbParams::default(),
            detector: PhaseDetectorParams {
                max_phases: 0,
                ..PhaseDetectorParams::default()
            },
            levels: None,
        };
        let err = bad_detector.try_validate().unwrap_err();
        assert!(err.contains("max_phases"), "{err}");
        let bad_levels = PolicySpec::ContextualUcb {
            inner: UcbParams::default(),
            detector: PhaseDetectorParams::default(),
            levels: Some((vec![1.0, 2.0], vec![1.0, 2.0])),
        };
        let err = bad_levels
            .build(6, 6, 1, None)
            .err()
            .expect("must refuse short level tables");
        assert!(err.contains("levels"), "{err}");
    }

    #[test]
    fn pair_model_matches_grid_shape_and_orders_time() {
        let spec = geforce_8800_gtx();
        let model = pair_model_for(&KMeans::small(1), &spec);
        assert_eq!(model.shape(), (6, 6));
        // Peak levels are never slower than the floor levels.
        assert!(model.peak_time_s() <= model.time_s(0, 0));
        for i in 0..6 {
            for j in 0..6 {
                assert!(model.time_s(i, j) > 0.0);
                assert!(model.energy_j(i, j) > 0.0);
            }
        }
    }
}
