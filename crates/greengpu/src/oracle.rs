//! Static frequency oracles — how close does the WMA learner get?
//!
//! The paper positions the WMA scaler as a light-weight online heuristic
//! and notes it "can be integrated with other sophisticated global optimal
//! algorithms (e.g., \[9\]) … at the cost of more complicated implementation
//! and higher runtime overheads" (§V-B). This module provides the upper
//! bound those algorithms chase: exhaustive search over all N×M static
//! (core, memory) frequency pairs, and the *regret* of the online scaler
//! against it — the optimality-gap measurement the paper leaves implicit.

use crate::baselines::{run_pinned, run_with_config};
use crate::coordinator::GreenGpuConfig;
use greengpu_policy::PairModel;
use greengpu_runtime::RunConfig;
use greengpu_workloads::Workload;

/// One point of the exhaustive frequency search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OraclePoint {
    /// Core level index.
    pub core: usize,
    /// Memory level index.
    pub mem: usize,
    /// GPU-side energy, joules.
    pub gpu_energy_j: f64,
    /// Execution time, seconds.
    pub time_s: f64,
}

/// Result of an exhaustive static frequency search.
#[derive(Debug, Clone)]
pub struct FrequencyOracle {
    /// All N×M points.
    pub points: Vec<OraclePoint>,
    /// Index of the selected optimum in `points`.
    pub best: usize,
    /// The slowdown budget used for the constrained optimum.
    pub max_slowdown: f64,
}

impl FrequencyOracle {
    /// The selected optimal point.
    pub fn best_point(&self) -> &OraclePoint {
        &self.points[self.best]
    }

    /// The peak-frequency reference point.
    pub fn peak_point(&self) -> &OraclePoint {
        self.points
            .iter()
            .max_by_key(|p| (p.core, p.mem))
            // lint:allow(panic_freedom) points is non-empty by construction (the full grid is swept)
            .expect("non-empty search")
    }

    /// The measured min-EDP point: argmin of `energy × time` over the
    /// swept grid (ties toward lower levels via sweep order). This is
    /// the trace-driven ground truth [`analytical_sweet_spot`] is
    /// cross-checked against on constant-phase traces.
    pub fn min_edp_point(&self) -> &OraclePoint {
        self.points
            .iter()
            .min_by(|a, b| (a.gpu_energy_j * a.time_s).total_cmp(&(b.gpu_energy_j * b.time_s)))
            // lint:allow(panic_freedom) points is non-empty by construction (the full grid is swept)
            .expect("non-empty search")
    }
}

/// The analytical sweet spot: the min-EDP `(core, mem)` pair predicted
/// in closed form from a phase's roofline [`PairModel`] — per-pair wall
/// time from the overlap-aware roofline, energy from the calibrated
/// power split — with *no trace execution*. Ties go to lower levels
/// (row-major order), matching [`FrequencyOracle::min_edp_point`].
///
/// Because a phase's utilization signature is scale-free (duration
/// jitter moves `ops` and `bytes` together), one signature's sweet spot
/// is the exact dynamic comparator for every interval that phase is
/// live — the per-phase oracle the contextual policies chase.
pub fn analytical_sweet_spot(model: &PairModel) -> (usize, usize) {
    let (n_core, n_mem) = model.shape();
    let mut best = (0, 0);
    let mut best_edp = f64::INFINITY;
    for i in 0..n_core {
        for j in 0..n_mem {
            let edp = model.energy_j(i, j) * model.time_s(i, j);
            if edp < best_edp {
                best_edp = edp;
                best = (i, j);
            }
        }
    }
    best
}

/// Exhaustively evaluates every static (core, memory) pair on a fresh
/// workload from `make`, selecting the minimum GPU energy among points
/// within `max_slowdown` of the peak-frequency run — the same
/// "save energy with only negligible performance degradation" objective
/// the paper's scaler targets.
pub fn frequency_oracle<F>(mut make: F, levels: (usize, usize), max_slowdown: f64) -> FrequencyOracle
where
    F: FnMut() -> Box<dyn Workload>,
{
    assert!(max_slowdown >= 0.0);
    let (n_core, n_mem) = levels;
    let mut points = Vec::with_capacity(n_core * n_mem);
    for core in 0..n_core {
        for mem in 0..n_mem {
            let mut wl = make();
            let report = run_pinned(wl.as_mut(), core, mem, RunConfig::sweep());
            points.push(OraclePoint {
                core,
                mem,
                gpu_energy_j: report.gpu_energy_j,
                time_s: report.total_time.as_secs_f64(),
            });
        }
    }
    // An absent peak point (impossible for a full sweep) degrades to an
    // unconstrained budget rather than aborting.
    let peak_time = points
        .iter()
        .find(|p| p.core == n_core - 1 && p.mem == n_mem - 1)
        .map_or(f64::INFINITY, |p| p.time_s);
    let budget = peak_time * (1.0 + max_slowdown);
    let best = points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.time_s <= budget)
        .min_by(|a, b| a.1.gpu_energy_j.total_cmp(&b.1.gpu_energy_j))
        .map(|(i, _)| i)
        .unwrap_or(0);
    FrequencyOracle {
        points,
        best,
        max_slowdown,
    }
}

/// The online scaler's regret against the static oracle for one workload.
#[derive(Debug, Clone, Copy)]
pub struct WmaRegret {
    /// Oracle GPU energy, joules.
    pub oracle_energy_j: f64,
    /// Online WMA run GPU energy, joules.
    pub wma_energy_j: f64,
    /// Oracle time, seconds.
    pub oracle_time_s: f64,
    /// WMA time, seconds.
    pub wma_time_s: f64,
}

impl WmaRegret {
    /// Fractional energy regret (`0` = matches the oracle; negative means
    /// the online run beat the *constrained* oracle by spending time).
    pub fn energy_regret(&self) -> f64 {
        self.wma_energy_j / self.oracle_energy_j - 1.0
    }

    /// Fractional time difference vs the oracle point.
    pub fn time_delta(&self) -> f64 {
        self.wma_time_s / self.oracle_time_s - 1.0
    }
}

/// Measures the WMA scaler's regret against the constrained static oracle
/// on fresh workloads from `make`.
pub fn wma_regret<F>(mut make: F, max_slowdown: f64) -> WmaRegret
where
    F: FnMut() -> Box<dyn Workload>,
{
    let oracle = frequency_oracle(&mut make, (6, 6), max_slowdown);
    let mut wl = make();
    let online = run_with_config(wl.as_mut(), GreenGpuConfig::scaling_only(), RunConfig::sweep());
    WmaRegret {
        oracle_energy_j: oracle.best_point().gpu_energy_j,
        wma_energy_j: online.gpu_energy_j,
        oracle_time_s: oracle.best_point().time_s,
        wma_time_s: online.total_time.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu_workloads::kmeans::KMeans;
    use greengpu_workloads::pathfinder::Pathfinder;
    use greengpu_workloads::registry;

    #[test]
    fn oracle_covers_all_36_pairs() {
        let oracle = frequency_oracle(|| Box::new(KMeans::paper(1)), (6, 6), 0.05);
        assert_eq!(oracle.points.len(), 36);
        let best = oracle.best_point();
        assert!(best.gpu_energy_j > 0.0 && best.time_s > 0.0);
    }

    #[test]
    fn oracle_beats_or_ties_peak_clocks() {
        let oracle = frequency_oracle(|| Box::new(KMeans::paper(1)), (6, 6), 0.05);
        assert!(oracle.best_point().gpu_energy_j <= oracle.peak_point().gpu_energy_j);
    }

    #[test]
    fn oracle_respects_the_time_budget() {
        let oracle = frequency_oracle(|| Box::new(Pathfinder::paper(1)), (6, 6), 0.05);
        let budget = oracle.peak_point().time_s * 1.05;
        assert!(oracle.best_point().time_s <= budget + 1e-9);
    }

    #[test]
    fn zero_budget_still_selects_something() {
        let oracle = frequency_oracle(|| Box::new(KMeans::paper(1)), (6, 6), 0.0);
        // The peak pair always qualifies.
        assert!(oracle.best_point().time_s <= oracle.peak_point().time_s + 1e-9);
    }

    #[test]
    fn oracle_for_low_utilization_workload_throttles_deep() {
        // PF idles in host gaps; the oracle should find a point well below
        // peak clocks.
        let oracle = frequency_oracle(|| Box::new(Pathfinder::paper(1)), (6, 6), 0.05);
        let best = oracle.best_point();
        assert!(best.core < 5 || best.mem < 5, "oracle stayed at peak for PF");
        let saving = 1.0 - best.gpu_energy_j / oracle.peak_point().gpu_energy_j;
        assert!(saving > 0.10, "PF oracle saving {saving}");
    }

    #[test]
    fn analytical_sweet_spot_matches_exhaustive_search_on_constant_phases() {
        // The acceptance check for the analytical oracle: on traces
        // whose phase signature never changes, the closed-form model
        // argmin must name the same pair the trace-driven exhaustive
        // sweep measures as min-EDP. Covers a compute-heavy constant
        // phase (training pinned to its forward stage — phase_period ≥
        // iterations keeps the stage fixed while duration jitter still
        // varies) and two stationary Table II workloads.
        use crate::policy::pair_model_for;
        use greengpu_hw::calib::geforce_8800_gtx;
        use greengpu_workloads::training::TrainingLoop;
        let spec = geforce_8800_gtx();
        type MakeWorkload = Box<dyn Fn() -> Box<dyn Workload>>;
        let cases: Vec<(&str, MakeWorkload)> = vec![
            (
                "training-forward",
                Box::new(|| Box::new(TrainingLoop::with_params(64, 3, 3, 0.25, 1))),
            ),
            (
                "kmeans",
                Box::new(|| registry::by_name_small("kmeans", 1).expect("registered")),
            ),
            ("PF", Box::new(|| registry::by_name_small("PF", 1).expect("registered"))),
        ];
        for (name, make) in cases {
            let model = pair_model_for(make().as_ref(), &spec);
            let predicted = analytical_sweet_spot(&model);
            let oracle = frequency_oracle(&*make, (6, 6), 0.05);
            let measured = oracle.min_edp_point();
            assert_eq!(
                predicted,
                (measured.core, measured.mem),
                "{name}: analytical {predicted:?} vs measured ({}, {})",
                measured.core,
                measured.mem
            );
        }
    }

    #[test]
    fn min_edp_point_is_the_grid_minimum() {
        let oracle = frequency_oracle(|| Box::new(KMeans::small(1)), (6, 6), 0.05);
        let best = oracle.min_edp_point();
        let best_edp = best.gpu_energy_j * best.time_s;
        for p in &oracle.points {
            assert!(p.gpu_energy_j * p.time_s >= best_edp - 1e-9);
        }
    }

    #[test]
    fn wma_regret_is_small_across_the_suite() {
        // The headline validation of the online learner: within ~8 % energy
        // of the constrained static oracle on every stationary workload.
        for name in ["kmeans", "lud", "PF", "hotspot", "srad_v2"] {
            let regret = wma_regret(|| registry::by_name(name, 3).expect("registered"), 0.05);
            assert!(
                regret.energy_regret() < 0.08,
                "{name}: WMA regret {} vs oracle",
                regret.energy_regret()
            );
        }
    }
}
