//! The Linux `ondemand` CPU governor (paper §IV).
//!
//! GreenGPU deliberately reuses the stock kernel policy for the CPU side
//! rather than inventing one: "If CPU utilization rises above a upper
//! utilization threshold value, the ondemand governor increases the CPU
//! frequency to the highest available frequency. When CPU utilization falls
//! below a low utilization threshold, the governor sets the CPU to run at
//! the next lowest frequency." (first shipped in linux-2.6.9).

use greengpu_hw::Platform;
use greengpu_sim::SimTime;

/// The ondemand governor with the classic thresholds.
///
/// ```
/// use greengpu::ondemand::OndemandGovernor;
/// use greengpu_hw::Platform;
/// use greengpu_sim::SimTime;
///
/// let mut platform = Platform::default_testbed(); // CPU at peak
/// let mut governor = OndemandGovernor::default();
/// governor.tick(&mut platform, 0.05, SimTime::from_secs(1)); // idle sample
/// assert_eq!(platform.cpu().domain().current_level(), 2, "stepped down once");
/// governor.tick(&mut platform, 0.95, SimTime::from_secs(2)); // busy sample
/// assert_eq!(platform.cpu().domain().current_level(), 3, "jumped to peak");
/// ```
#[derive(Debug, Clone)]
pub struct OndemandGovernor {
    /// Jump-to-max threshold (kernel default 80 %).
    pub up_threshold: f64,
    /// Step-down threshold.
    pub down_threshold: f64,
    transitions: u64,
}

impl Default for OndemandGovernor {
    fn default() -> Self {
        OndemandGovernor {
            up_threshold: 0.80,
            down_threshold: 0.30,
            transitions: 0,
        }
    }
}

impl OndemandGovernor {
    /// Creates a governor with explicit thresholds.
    pub fn new(up_threshold: f64, down_threshold: f64) -> Self {
        assert!(
            0.0 < down_threshold && down_threshold < up_threshold && up_threshold <= 1.0,
            "thresholds must satisfy 0 < down < up <= 1"
        );
        OndemandGovernor {
            up_threshold,
            down_threshold,
            transitions: 0,
        }
    }

    /// The level the policy would move to from `current` (peak level
    /// `peak`) under utilization `util`, or `None` to hold. Pure — lets a
    /// coordinator route the actuation through a verifying/faulted path.
    /// A non-finite `util` compares false on both thresholds and holds.
    pub fn desired_level(&self, current: usize, peak: usize, util: f64) -> Option<usize> {
        if util > self.up_threshold {
            if current != peak {
                return Some(peak);
            }
        } else if util < self.down_threshold && current > 0 {
            return Some(current - 1);
        }
        None
    }

    /// One governor sample: applies the threshold policy to the CPU given
    /// its windowed utilization.
    pub fn tick(&mut self, platform: &mut Platform, util: f64, now: SimTime) {
        let current = platform.cpu().domain().current_level();
        let peak = platform.cpu().domain().peak_level();
        if let Some(level) = self.desired_level(current, peak, util) {
            platform.set_cpu_level(now, level);
            self.transitions += 1;
        }
    }

    /// Records an externally-applied transition (a coordinator that used
    /// [`OndemandGovernor::desired_level`] and actuated elsewhere).
    pub fn note_transition(&mut self) {
        self.transitions += 1;
    }

    /// Number of frequency transitions performed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_utilization_jumps_to_peak() {
        let mut p = Platform::new(
            greengpu_hw::calib::geforce_8800_gtx(),
            greengpu_hw::calib::phenom_ii_x2(),
            0,
            0,
            0, // CPU at lowest P-state
        );
        let mut g = OndemandGovernor::default();
        g.tick(&mut p, 0.95, SimTime::from_secs(1));
        assert_eq!(p.cpu().domain().current_level(), 3, "must jump straight to peak");
        assert_eq!(g.transitions(), 1);
    }

    #[test]
    fn low_utilization_steps_down_one_level_at_a_time() {
        let mut p = Platform::default_testbed(); // CPU at peak (level 3)
        let mut g = OndemandGovernor::default();
        for expected in [2usize, 1, 0, 0] {
            g.tick(&mut p, 0.05, SimTime::from_secs(1));
            assert_eq!(p.cpu().domain().current_level(), expected);
        }
        assert_eq!(g.transitions(), 3, "saturates at the floor");
    }

    #[test]
    fn midband_utilization_holds_level() {
        let mut p = Platform::default_testbed();
        p.set_cpu_level(SimTime::ZERO, 2);
        let mut g = OndemandGovernor::default();
        g.tick(&mut p, 0.55, SimTime::from_secs(1));
        assert_eq!(p.cpu().domain().current_level(), 2);
        assert_eq!(g.transitions(), 0);
    }

    #[test]
    fn spin_wait_defeats_the_governor() {
        // The paper's §VII-A observation: synchronized communication keeps
        // utilization at 100 %, so ondemand never throttles — motivating
        // the Fig. 6c emulation.
        let mut p = Platform::default_testbed();
        let mut g = OndemandGovernor::default();
        for _ in 0..10 {
            g.tick(&mut p, 1.0, SimTime::from_secs(1));
        }
        assert_eq!(p.cpu().domain().current_level(), 3);
        assert_eq!(g.transitions(), 0);
    }

    #[test]
    fn ticking_at_peak_with_high_util_is_a_noop() {
        let mut p = Platform::default_testbed();
        let mut g = OndemandGovernor::default();
        g.tick(&mut p, 0.9, SimTime::from_secs(1));
        assert_eq!(g.transitions(), 0, "already at peak");
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn inverted_thresholds_panic() {
        OndemandGovernor::new(0.3, 0.8);
    }
}
