//! The paper's baselines and run helpers (§VII).
//!
//! * **best-performance** — both GPU domains pinned at the peak levels,
//!   all work on the GPU (this is also the Rodinia *default* runtime
//!   configuration the 21.04 % headline is measured against).
//! * **Frequency-scaling** — tier 2 only (all work on the GPU).
//! * **Division** — tier 1 only (clocks pinned at peak).
//! * **GreenGPU** — the holistic two-tier controller.
//! * **static division** — a fixed CPU share at peak clocks (the Fig. 2
//!   sweep and the §VII-B exhaustive search are built from these).

use crate::coordinator::{GreenGpuConfig, GreenGpuController};
use greengpu_hw::{FaultPlan, Platform};
use greengpu_policy::{FreqPolicy, PolicyTelemetry};
use greengpu_runtime::{FixedController, HeteroRuntime, RunConfig, RunReport};
use greengpu_workloads::Workload;

/// Runs the *best-performance* baseline: peak clocks, all work on the GPU.
pub fn run_best_performance(workload: &mut dyn Workload) -> RunReport {
    run_best_performance_with(workload, RunConfig::default())
}

/// *best-performance* with an explicit run config.
pub fn run_best_performance_with(workload: &mut dyn Workload, config: RunConfig) -> RunReport {
    let mut controller = FixedController::gpu_only();
    HeteroRuntime::new(Platform::best_performance_testbed(), config).run(workload, &mut controller)
}

/// Runs all work on the GPU with both GPU domains pinned at explicit
/// levels — the Fig. 1 frequency sweeps are built from these.
pub fn run_pinned(workload: &mut dyn Workload, core_lvl: usize, mem_lvl: usize, config: RunConfig) -> RunReport {
    let platform = Platform::new(
        greengpu_hw::calib::geforce_8800_gtx(),
        greengpu_hw::calib::phenom_ii_x2(),
        core_lvl,
        mem_lvl,
        3,
    );
    let mut controller = FixedController::gpu_only();
    HeteroRuntime::new(platform, config).run(workload, &mut controller)
}

/// Runs a static division at peak clocks (one point of the Fig. 2 sweep).
pub fn run_static_division(workload: &mut dyn Workload, cpu_share: f64, config: RunConfig) -> RunReport {
    let mut controller = FixedController::new(cpu_share);
    HeteroRuntime::new(Platform::best_performance_testbed(), config).run(workload, &mut controller)
}

/// Runs the full holistic GreenGPU controller. The GPU starts at the
/// driver-default lowest levels, as in the paper's traces.
pub fn run_greengpu(workload: &mut dyn Workload) -> RunReport {
    run_with_config(workload, GreenGpuConfig::holistic(), RunConfig::default())
}

/// Runs the *Frequency-scaling* baseline (tier 2 only).
pub fn run_scaling_only(workload: &mut dyn Workload) -> RunReport {
    run_with_config(workload, GreenGpuConfig::scaling_only(), RunConfig::default())
}

/// Runs the *Division* baseline (tier 1 only, clocks pinned at peak).
pub fn run_division_only(workload: &mut dyn Workload) -> RunReport {
    let mut controller = GreenGpuController::for_testbed(GreenGpuConfig::division_only());
    HeteroRuntime::new(Platform::best_performance_testbed(), RunConfig::default()).run(workload, &mut controller)
}

/// Runs an arbitrary GreenGPU configuration. Scaling-enabled configs start
/// the GPU at the driver-default lowest levels; otherwise clocks pin at
/// the peak.
pub fn run_with_config(workload: &mut dyn Workload, cfg: GreenGpuConfig, run_config: RunConfig) -> RunReport {
    let platform = if cfg.gpu_scaling {
        Platform::default_testbed()
    } else {
        Platform::best_performance_testbed()
    };
    run_on_platform(workload, cfg, run_config, platform)
}

/// Runs a GreenGPU configuration on an explicit platform — the entry point
/// for what-if hardware (e.g. the DVFS-capable card variant).
pub fn run_on_platform(
    workload: &mut dyn Workload,
    cfg: GreenGpuConfig,
    run_config: RunConfig,
    platform: Platform,
) -> RunReport {
    let n_core = platform.gpu().spec().core_levels_mhz.len();
    let n_mem = platform.gpu().spec().mem_levels_mhz.len();
    let mut controller = GreenGpuController::new(cfg, n_core, n_mem);
    HeteroRuntime::new(platform, run_config).run(workload, &mut controller)
}

/// A policy run's report plus the policy's decision telemetry.
pub struct PolicyOutcome {
    /// The run report (energy, time, iteration trace).
    pub report: RunReport,
    /// The policy's display name ([`FreqPolicy::name`]).
    pub policy: String,
    /// Decision telemetry: cumulative loss, switches, regret, fallbacks.
    pub telemetry: PolicyTelemetry,
}

/// Runs a GreenGPU configuration with an arbitrary Tier-2 frequency
/// policy — the head-to-head entry point of the `policies` experiment.
/// Platform choice matches [`run_with_config`], so
/// `run_with_policy(w, cfg, rc, Box::new(WmaPolicy::new(6, 6, cfg.wma_params)))`
/// reproduces that function byte-for-byte.
pub fn run_with_policy(
    workload: &mut dyn Workload,
    cfg: GreenGpuConfig,
    run_config: RunConfig,
    policy: Box<dyn FreqPolicy>,
) -> PolicyOutcome {
    let platform = if cfg.gpu_scaling {
        Platform::default_testbed()
    } else {
        Platform::best_performance_testbed()
    };
    let mut controller = GreenGpuController::with_policy(cfg, policy);
    let report = HeteroRuntime::new(platform, run_config).run(workload, &mut controller);
    PolicyOutcome {
        report,
        policy: controller.policy().name().to_string(),
        telemetry: controller.policy_telemetry().clone(),
    }
}

/// A faulted run's report plus the controller's robustness statistics.
pub struct FaultedOutcome {
    /// The run report (ground-truth energy — meter faults distort only
    /// the observed series, never the accounting).
    pub report: RunReport,
    /// Whether the best-performance fallback engaged during the run.
    pub fallback_engaged: bool,
    /// Actuations whose read-back never verified.
    pub actuation_failures: u64,
    /// Sensor readings rejected as non-finite.
    pub sensor_rejects: u64,
    /// Total faults injected across all channels.
    pub injections: usize,
}

/// Runs a GreenGPU configuration behind the seeded fault injectors of
/// `plan`. Platform choice matches [`run_with_config`], so a clean plan
/// reproduces that function byte-for-byte.
pub fn run_greengpu_faulted(
    workload: &mut dyn Workload,
    cfg: GreenGpuConfig,
    run_config: RunConfig,
    plan: &FaultPlan,
) -> FaultedOutcome {
    let platform = if cfg.gpu_scaling {
        Platform::default_testbed()
    } else {
        Platform::best_performance_testbed()
    };
    let n_core = platform.gpu().spec().core_levels_mhz.len();
    let n_mem = platform.gpu().spec().mem_levels_mhz.len();
    let mut controller = GreenGpuController::faulted(cfg, n_core, n_mem, plan);
    let report = HeteroRuntime::new(platform, run_config).run(workload, &mut controller);
    FaultedOutcome {
        report,
        fallback_engaged: controller.fallback_engaged(),
        actuation_failures: controller.actuation_failures(),
        sensor_rejects: controller.sensor_rejects(),
        injections: controller.injection_count(),
    }
}

/// One row of a static-division search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPoint {
    /// CPU share of this run.
    pub cpu_share: f64,
    /// Whole-system energy, joules.
    pub energy_j: f64,
    /// Total execution time, seconds.
    pub time_s: f64,
}

/// The §VII-B exhaustive search: static divisions from 0 to `max_share`
/// in `step` increments at peak clocks, using a factory so each run gets a
/// fresh workload. Returns all points and the index of the
/// energy-minimum.
pub fn static_search<F>(mut make_workload: F, step: f64, max_share: f64) -> (Vec<StaticPoint>, usize)
where
    F: FnMut() -> Box<dyn Workload>,
{
    assert!(step > 0.0 && step <= 0.5, "unreasonable search step");
    let mut points = Vec::new();
    let mut share = 0.0;
    while share <= max_share + 1e-9 {
        let mut wl = make_workload();
        let report = run_static_division(wl.as_mut(), share.min(max_share), RunConfig::sweep());
        points.push(StaticPoint {
            cpu_share: share.min(max_share),
            energy_j: report.total_energy_j(),
            time_s: report.total_time.as_secs_f64(),
        });
        share += step;
    }
    let best = points
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.energy_j.total_cmp(&b.1.energy_j))
        .map(|(i, _)| i)
        .unwrap_or(0);
    (points, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu_workloads::hotspot::Hotspot;
    use greengpu_workloads::kmeans::KMeans;
    use greengpu_workloads::streamcluster::StreamCluster;

    #[test]
    fn greengpu_beats_best_performance_on_kmeans() {
        let green = run_greengpu(&mut KMeans::small(1));
        let base = run_best_performance(&mut KMeans::small(1));
        assert!(
            green.total_energy_j() < base.total_energy_j(),
            "green {} vs base {}",
            green.total_energy_j(),
            base.total_energy_j()
        );
        // Functional results are identical regardless of policy.
        assert!((green.digest - base.digest).abs() / base.digest.abs() < 1e-9);
    }

    #[test]
    fn holistic_beats_both_single_tiers_on_hotspot() {
        // The Fig. 8 ordering: GreenGPU < Division-only < Frequency-scaling
        // (hotspot's division headroom dwarfs its scaling headroom).
        let green = run_greengpu(&mut Hotspot::small(1)).total_energy_j();
        let division = run_division_only(&mut Hotspot::small(1)).total_energy_j();
        let scaling = run_scaling_only(&mut Hotspot::small(1)).total_energy_j();
        assert!(green < division, "green {green} vs division {division}");
        assert!(green < scaling, "green {green} vs scaling {scaling}");
        assert!(division < scaling, "division {division} vs scaling {scaling}");
    }

    #[test]
    fn scaling_only_saves_gpu_energy_with_small_slowdown() {
        // The Fig. 6 envelope: positive GPU energy saving, bounded time
        // overhead.
        let base = run_best_performance(&mut StreamCluster::small(2));
        let scaled = run_scaling_only(&mut StreamCluster::small(2));
        let saving = 1.0 - scaled.gpu_energy_j / base.gpu_energy_j;
        assert!(saving > 0.0, "no GPU energy saving: {saving}");
        let slowdown = scaled.total_time.as_secs_f64() / base.total_time.as_secs_f64() - 1.0;
        assert!(slowdown < 0.10, "slowdown {slowdown}");
    }

    #[test]
    fn static_search_finds_interior_minimum_for_kmeans() {
        let (points, best) = static_search(|| Box::new(KMeans::small(3)), 0.05, 0.90);
        assert_eq!(points.len(), 19);
        let best_share = points[best].cpu_share;
        assert!(
            (0.05..=0.30).contains(&best_share),
            "kmeans energy minimum at {best_share}"
        );
        // The sweep's endpoints must both be worse than the minimum.
        assert!(points[best].energy_j < points[0].energy_j);
        assert!(points[best].energy_j < points.last().unwrap().energy_j);
    }

    #[test]
    fn dynamic_division_is_close_to_static_optimum() {
        // §VII-B: the dynamic algorithm reaches ~99 % of the static
        // optimum's saving for hotspot; allow a slightly wider band here.
        // Use a long run (30 iterations) so convergence overhead
        // amortizes as it does in §VII-B.
        let make = || Hotspot::with_params(4, 32, 32, 1024.0, 4, 3.0e6, 30);
        let (points, best) = static_search(|| Box::new(make()), 0.05, 0.90);
        let optimum = points[best].energy_j;
        let baseline = points[0].energy_j; // all-GPU
        let dynamic = run_division_only(&mut make()).total_energy_j();
        let opt_saving = 1.0 - optimum / baseline;
        let dyn_saving = 1.0 - dynamic / baseline;
        assert!(
            dyn_saving > 0.90 * opt_saving,
            "dynamic saving {dyn_saving} vs optimal {opt_saving}"
        );
    }

    #[test]
    fn division_converges_to_hotspot_fifty_fifty() {
        let report = run_division_only(&mut Hotspot::small(5));
        let last = report.iterations.last().unwrap();
        assert!(
            (0.45..=0.55).contains(&last.cpu_share),
            "hotspot settled at {}",
            last.cpu_share
        );
    }
}
