//! Alternative CPU governors.
//!
//! The paper adopts `ondemand` for the CPU tier but explicitly notes that
//! "other more sophisticated DVFS-based processor power management
//! strategies, such as \[10\], \[28\], \[25\], can also be integrated into
//! GreenGPU for even more energy savings" (§IV). This module provides that
//! integration point: the classic Linux governor family plus a
//! proportional (utilization-tracking) policy in the spirit of Wu et
//! al.'s formal online frequency control \[28\].

use crate::ondemand::OndemandGovernor;
use greengpu_hw::Platform;
use greengpu_sim::SimTime;

/// A pluggable CPU frequency policy.
#[derive(Debug, Clone)]
pub enum CpuGovernor {
    /// The kernel default the paper uses: jump to max above the up
    /// threshold, step down below the low threshold.
    Ondemand(OndemandGovernor),
    /// Pin the peak P-state (the kernel `performance` governor).
    Performance,
    /// Pin the lowest P-state (the kernel `powersave` governor).
    Powersave,
    /// Step one level *up or down* per sample based on thresholds (the
    /// kernel `conservative` governor — gentler than ondemand's jump).
    Conservative {
        /// Step-up threshold.
        up_threshold: f64,
        /// Step-down threshold.
        down_threshold: f64,
    },
    /// Track utilization proportionally: select the lowest P-state whose
    /// relative frequency covers the observed utilization plus headroom —
    /// a simplified formal-control policy after Wu et al. \[28\].
    Proportional {
        /// Utilization headroom factor (e.g. 1.1 → provision 10 % above
        /// the observed utilization).
        headroom: f64,
    },
}

impl Default for CpuGovernor {
    fn default() -> Self {
        CpuGovernor::Ondemand(OndemandGovernor::default())
    }
}

impl CpuGovernor {
    /// The conservative governor with kernel-default thresholds.
    pub fn conservative() -> Self {
        CpuGovernor::Conservative {
            up_threshold: 0.80,
            down_threshold: 0.20,
        }
    }

    /// The proportional governor with 10 % headroom.
    pub fn proportional() -> Self {
        CpuGovernor::Proportional { headroom: 1.1 }
    }

    /// The P-state the policy wants given the windowed utilization, or
    /// `None` to hold the current one. Pure — a coordinator can route the
    /// actuation through a verifying or fault-injected path. Non-finite
    /// utilizations fail every threshold comparison and hold (except
    /// `Performance`/`Powersave`, which pin unconditionally).
    pub fn desired_level(&self, platform: &Platform, util: f64) -> Option<usize> {
        match self {
            CpuGovernor::Ondemand(g) => {
                let current = platform.cpu().domain().current_level();
                let peak = platform.cpu().domain().peak_level();
                g.desired_level(current, peak, util)
            }
            CpuGovernor::Performance => Some(platform.cpu().domain().peak_level()),
            CpuGovernor::Powersave => Some(0),
            CpuGovernor::Conservative {
                up_threshold,
                down_threshold,
            } => {
                let current = platform.cpu().domain().current_level();
                let peak = platform.cpu().domain().peak_level();
                if util > *up_threshold && current < peak {
                    Some(current + 1)
                } else if util < *down_threshold && current > 0 {
                    Some(current - 1)
                } else {
                    None
                }
            }
            CpuGovernor::Proportional { headroom } => {
                if !util.is_finite() {
                    return None;
                }
                let spec = platform.cpu().spec();
                let &peak_mhz = spec.levels_mhz.last()?;
                let demand_mhz = (util * *headroom).clamp(0.0, 1.0) * peak_mhz;
                let level = spec
                    .levels_mhz
                    .iter()
                    .position(|&mhz| mhz >= demand_mhz)
                    .unwrap_or(spec.levels_mhz.len() - 1);
                Some(level)
            }
        }
    }

    /// One governor sample at `now` given the windowed utilization.
    pub fn tick(&mut self, platform: &mut Platform, util: f64, now: SimTime) {
        if let Some(level) = self.desired_level(platform, util) {
            platform.set_cpu_level(now, level);
            self.note_transition();
        }
    }

    /// Records that a level from [`CpuGovernor::desired_level`] was
    /// actuated (only the ondemand variant keeps a transition counter).
    pub fn note_transition(&mut self) {
        if let CpuGovernor::Ondemand(g) = self {
            g.note_transition();
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            CpuGovernor::Ondemand(_) => "ondemand",
            CpuGovernor::Performance => "performance",
            CpuGovernor::Powersave => "powersave",
            CpuGovernor::Conservative { .. } => "conservative",
            CpuGovernor::Proportional { .. } => "proportional",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform_at(level: usize) -> Platform {
        let mut p = Platform::default_testbed();
        p.set_cpu_level(SimTime::ZERO, level);
        p
    }

    #[test]
    fn performance_pins_peak() {
        let mut p = platform_at(0);
        let mut g = CpuGovernor::Performance;
        g.tick(&mut p, 0.0, SimTime::from_secs(1));
        assert_eq!(p.cpu().domain().current_level(), 3);
    }

    #[test]
    fn powersave_pins_floor() {
        let mut p = platform_at(3);
        let mut g = CpuGovernor::Powersave;
        g.tick(&mut p, 1.0, SimTime::from_secs(1));
        assert_eq!(p.cpu().domain().current_level(), 0);
    }

    #[test]
    fn conservative_steps_one_level_each_way() {
        let mut p = platform_at(1);
        let mut g = CpuGovernor::conservative();
        g.tick(&mut p, 0.95, SimTime::from_secs(1));
        assert_eq!(p.cpu().domain().current_level(), 2, "one step up, not a jump");
        g.tick(&mut p, 0.05, SimTime::from_secs(2));
        g.tick(&mut p, 0.05, SimTime::from_secs(3));
        assert_eq!(p.cpu().domain().current_level(), 0);
        // Saturates at both ends.
        g.tick(&mut p, 0.05, SimTime::from_secs(4));
        assert_eq!(p.cpu().domain().current_level(), 0);
    }

    #[test]
    fn conservative_vs_ondemand_ramp_speed() {
        // ondemand jumps straight to peak; conservative takes a step per
        // sample — the defining difference.
        let mut p1 = platform_at(0);
        let mut p2 = platform_at(0);
        let mut od = CpuGovernor::default();
        let mut cons = CpuGovernor::conservative();
        od.tick(&mut p1, 0.95, SimTime::from_secs(1));
        cons.tick(&mut p2, 0.95, SimTime::from_secs(1));
        assert_eq!(p1.cpu().domain().current_level(), 3);
        assert_eq!(p2.cpu().domain().current_level(), 1);
    }

    #[test]
    fn proportional_tracks_utilization() {
        let mut g = CpuGovernor::proportional();
        // Levels: 800, 1300, 2100, 2800 MHz. util 0.4 × 1.1 → 1232 MHz
        // demand → level 1 (1300).
        let mut p = platform_at(3);
        g.tick(&mut p, 0.40, SimTime::from_secs(1));
        assert_eq!(p.cpu().domain().current_level(), 1);
        // util 0.9 → 2772 MHz demand → level 3.
        g.tick(&mut p, 0.90, SimTime::from_secs(2));
        assert_eq!(p.cpu().domain().current_level(), 3);
        // idle → floor.
        g.tick(&mut p, 0.0, SimTime::from_secs(3));
        assert_eq!(p.cpu().domain().current_level(), 0);
    }

    #[test]
    fn proportional_saturates_demand_above_peak() {
        let mut g = CpuGovernor::proportional();
        let mut p = platform_at(0);
        g.tick(&mut p, 1.0, SimTime::from_secs(1));
        assert_eq!(p.cpu().domain().current_level(), 3);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CpuGovernor::default().name(), "ondemand");
        assert_eq!(CpuGovernor::Performance.name(), "performance");
        assert_eq!(CpuGovernor::Powersave.name(), "powersave");
        assert_eq!(CpuGovernor::conservative().name(), "conservative");
        assert_eq!(CpuGovernor::proportional().name(), "proportional");
    }
}
