//! The workload-division tier (paper §V-B).
//!
//! `r` is the CPU's share of each iteration. After each iteration the
//! controller compares the CPU time `tc` and GPU time `tg`: if the CPU was
//! slower it gives work back to the GPU (one fixed step, 5 % on the paper's
//! testbed), otherwise it takes one step of work from the GPU.
//!
//! Because divisions are discrete, the ratio can oscillate around a
//! non-representable optimum (the paper's 12.5/87.5 example); the safeguard
//! linearly extrapolates both sides' next-iteration times under the
//! candidate ratio and *holds* the current ratio if the comparison would
//! flip.

/// Division tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivisionParams {
    /// Ratio step per iteration (paper: 5 %, platform-dependent).
    pub step: f64,
    /// Lower clamp for `r`.
    pub min_share: f64,
    /// Upper clamp for `r` (the GPU thread must keep some work; the paper
    /// sweeps CPU shares up to 90 %).
    pub max_share: f64,
    /// Whether the oscillation safeguard is active (ablation knob).
    pub safeguard: bool,
}

impl Default for DivisionParams {
    fn default() -> Self {
        DivisionParams {
            step: 0.05,
            min_share: 0.0,
            max_share: 0.90,
            safeguard: true,
        }
    }
}

/// The division controller state.
///
/// The ratio lives on an integer grid of `step` multiples (`r = k·step`),
/// mirroring the discrete chunk sizes of the real port and keeping the
/// arithmetic exact over arbitrarily many iterations.
///
/// ```
/// use greengpu::division::{DivisionController, DivisionParams};
///
/// // Equal-speed sides (the hotspot case): converge to 50/50.
/// let mut ctl = DivisionController::new(0.30, DivisionParams::default());
/// for _ in 0..10 {
///     let r = ctl.share();
///     ctl.update(r * 100.0, (1.0 - r) * 100.0); // tc, tg of this iteration
/// }
/// assert!((ctl.share() - 0.50).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct DivisionController {
    params: DivisionParams,
    /// Ratio in units of `step`.
    k: i64,
    k_min: i64,
    k_max: i64,
    held: u64,
    moves: u64,
    /// Last observed CPU seconds per unit share (`tc / r`), for
    /// extrapolating from `r = 0`.
    tc_rate: Option<f64>,
    /// Last observed GPU seconds per unit share (`tg / (1 − r)`).
    tg_rate: Option<f64>,
}

/// When a predicted flip would hold the ratio at a point whose slower side
/// exceeds the candidate's predicted slower side by this factor, the hold
/// is overridden — parking at a grossly imbalanced division (e.g. 5 % CPU
/// on a CPU 1000× too slow) would defeat the tier's purpose.
const ESCAPE_FACTOR: f64 = 1.1;

impl DivisionController {
    /// Creates a controller starting at `initial` CPU share (rounded to
    /// the step grid). The paper starts its traces at 30 % for faster
    /// convergence but shows the algorithm converges from any initial
    /// ratio.
    pub fn new(initial: f64, params: DivisionParams) -> Self {
        assert!(params.step > 0.0 && params.step < 1.0, "step out of range");
        assert!(
            params.min_share <= initial && initial <= params.max_share,
            "initial share outside clamp range"
        );
        DivisionController {
            k: (initial / params.step).round() as i64,
            k_min: (params.min_share / params.step).round() as i64,
            k_max: (params.max_share / params.step).round() as i64,
            params,
            held: 0,
            moves: 0,
            tc_rate: None,
            tg_rate: None,
        }
    }

    /// Current CPU share.
    pub fn share(&self) -> f64 {
        self.k as f64 * self.params.step
    }

    /// Times the safeguard held the ratio.
    pub fn holds(&self) -> u64 {
        self.held
    }

    /// Times the ratio moved.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Serializes the Tier-1 warm state: the grid position `k` (the
    /// division ratio is `k · step`), the hold/move counters, and the
    /// last observed per-share rates the `r = 0` extrapolation needs.
    pub fn snapshot(&self) -> greengpu_sim::JsonValue {
        use greengpu_sim::JsonValue;
        let rate = |r: Option<f64>| r.map_or(JsonValue::Null, JsonValue::f64);
        JsonValue::Obj(vec![
            ("k".to_string(), JsonValue::i64(self.k)),
            ("held".to_string(), JsonValue::u64(self.held)),
            ("moves".to_string(), JsonValue::u64(self.moves)),
            ("tc_rate".to_string(), rate(self.tc_rate)),
            ("tg_rate".to_string(), rate(self.tg_rate)),
        ])
    }

    /// Restores state captured by [`DivisionController::snapshot`].
    /// Validates everything (including that `k` lies inside this
    /// controller's clamp range) before mutating anything.
    pub fn restore(&mut self, state: &greengpu_sim::JsonValue) -> Result<(), String> {
        use greengpu_policy::snap;
        let k = snap::field(state, "k")?
            .as_i64()
            .ok_or_else(|| "k must be an integer".to_string())?;
        if !(self.k_min..=self.k_max).contains(&k) {
            return Err(format!(
                "k = {k} outside the clamp range [{}, {}]",
                self.k_min, self.k_max
            ));
        }
        let held = snap::parse_u64(state, "held")?;
        let moves = snap::parse_u64(state, "moves")?;
        let rate = |name: &str| -> Result<Option<f64>, String> {
            let v = snap::field(state, name)?;
            if v.is_null() {
                return Ok(None);
            }
            let r = v.as_f64().ok_or_else(|| format!("{name} must be a number or null"))?;
            if r <= 0.0 {
                return Err(format!("{name} must be positive, got {r}"));
            }
            Ok(Some(r))
        };
        let tc_rate = rate("tc_rate")?;
        let tg_rate = rate("tg_rate")?;
        self.k = k;
        self.held = held;
        self.moves = moves;
        self.tc_rate = tc_rate;
        self.tg_rate = tg_rate;
        Ok(())
    }

    /// One division decision from the measured iteration times. Returns
    /// the share for the next iteration.
    ///
    /// Degenerate measurements — non-finite, negative, or both-zero times
    /// (a broken or wrapped timer) — carry no ordering information and
    /// hold the current ratio rather than moving on garbage.
    pub fn update(&mut self, tc_s: f64, tg_s: f64) -> f64 {
        if !(tc_s.is_finite() && tg_s.is_finite()) || tc_s < 0.0 || tg_s < 0.0 {
            return self.share();
        }
        if tc_s == tg_s {
            return self.share();
        }
        // Slower CPU → shed work to the GPU; slower GPU → take work.
        let candidate_k = if tc_s > tg_s {
            (self.k - 1).max(self.k_min)
        } else {
            (self.k + 1).min(self.k_max)
        };
        if candidate_k == self.k {
            return self.share(); // clamped at a bound
        }
        let r = self.share();
        // Remember per-unit-share rates for extrapolation from the bounds.
        if r > 0.0 {
            self.tc_rate = Some(tc_s / r);
        }
        if r < 1.0 {
            self.tg_rate = Some(tg_s / (1.0 - r));
        }
        if self.params.safeguard {
            // Linear extrapolation of both sides under the candidate ratio
            // (tc ∝ r, tg ∝ 1−r), using remembered rates at the bounds.
            let candidate = candidate_k as f64 * self.params.step;
            let preds = self
                .tc_rate
                .zip(self.tg_rate)
                .map(|(tcr, tgr)| (tcr * candidate, tgr * (1.0 - candidate)));
            if let Some((tc_pred, tg_pred)) = preds {
                // A strict sign reversal of the imbalance predicts
                // oscillation; a predicted tie is the ideal landing spot
                // and may proceed.
                if (tc_s - tg_s) * (tc_pred - tg_pred) < 0.0 {
                    // The candidate would overshoot — but if the *current*
                    // point is grossly worse than the candidate's predicted
                    // balance, parking here is wrong; escape.
                    let current_worst = tc_s.max(tg_s);
                    let pred_worst = tc_pred.max(tg_pred);
                    if current_worst <= pred_worst * ESCAPE_FACTOR {
                        // Keep the current division (paper §V-B).
                        self.held += 1;
                        return self.share();
                    }
                }
            }
        }
        self.k = candidate_k;
        self.moves += 1;
        self.share()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ideal linear testbed: tc = r·C, tg = (1−r)·G.
    fn converge(mut ctl: DivisionController, c: f64, g: f64, iters: usize) -> Vec<f64> {
        let mut trace = vec![ctl.share()];
        for _ in 0..iters {
            let r = ctl.share();
            let next = ctl.update(r * c, (1.0 - r) * g);
            trace.push(next);
        }
        trace
    }

    #[test]
    fn converges_to_fifty_fifty_for_symmetric_sides() {
        // The hotspot case (§VII-B): equal full-side times → 50/50.
        let ctl = DivisionController::new(0.30, DivisionParams::default());
        let trace = converge(ctl, 100.0, 100.0, 20);
        assert!((trace.last().unwrap() - 0.50).abs() < 1e-12);
    }

    #[test]
    fn converges_to_twenty_eighty_for_kmeans_like_ratio() {
        // tc_full/tg_full ≈ 4.5 → balance near 0.18 → settles on the 0.20
        // grid point (paper: kmeans converges to 20/80).
        let ctl = DivisionController::new(0.30, DivisionParams::default());
        let trace = converge(ctl, 4.5, 1.0, 20);
        let settled = *trace.last().unwrap();
        assert!((settled - 0.20).abs() < 1e-12, "trace {trace:?}");
    }

    #[test]
    fn converges_regardless_of_initial_ratio() {
        // The paper's Fig. 7 claim: the initial division does not matter.
        for initial in [0.0, 0.10, 0.30, 0.50, 0.70, 0.90] {
            let ctl = DivisionController::new(initial, DivisionParams::default());
            let trace = converge(ctl, 1.0, 1.0, 40);
            assert!(
                (trace.last().unwrap() - 0.50).abs() < 1e-12,
                "from {initial}: {trace:?}"
            );
        }
    }

    #[test]
    fn safeguard_prevents_oscillation_on_off_grid_optimum() {
        // Optimum at 12.5 % (the paper's example): without the safeguard
        // the ratio ping-pongs 0.10 ↔ 0.15 forever; with it the ratio
        // freezes on one of the two.
        let params = DivisionParams::default();
        let mut ctl = DivisionController::new(0.10, params);
        let (c, g) = (7.0, 1.0); // balance r* = 1/8 = 0.125
        let mut trace = Vec::new();
        for _ in 0..30 {
            let r = ctl.share();
            trace.push(r);
            ctl.update(r * c, (1.0 - r) * g);
        }
        let tail = &trace[10..];
        assert!(
            tail.windows(2).all(|w| w[0] == w[1]),
            "ratio still moving late in the run: {tail:?}"
        );
        assert!(ctl.holds() > 0, "safeguard never engaged");
    }

    #[test]
    fn without_safeguard_the_same_case_oscillates() {
        let params = DivisionParams {
            safeguard: false,
            ..DivisionParams::default()
        };
        let mut ctl = DivisionController::new(0.10, params);
        let (c, g) = (7.0, 1.0);
        let mut trace = Vec::new();
        for _ in 0..30 {
            let r = ctl.share();
            trace.push(r);
            ctl.update(r * c, (1.0 - r) * g);
        }
        let tail = &trace[10..];
        assert!(
            tail.windows(2).any(|w| w[0] != w[1]),
            "expected oscillation without safeguard: {tail:?}"
        );
    }

    #[test]
    fn share_is_clamped_at_bounds() {
        let mut ctl = DivisionController::new(0.0, DivisionParams::default());
        // GPU always slower → r should rise; CPU always slower from r=0 is
        // impossible (tc=0), so drive from the top bound too.
        for _ in 0..40 {
            let r = ctl.share();
            ctl.update(r * 1.0, 1.0);
        }
        assert!(ctl.share() <= 0.90 + 1e-12);
        let mut ctl = DivisionController::new(0.90, DivisionParams::default());
        for _ in 0..40 {
            let r = ctl.share();
            ctl.update(r * 100.0, (1.0 - r) * 1.0);
        }
        assert!(ctl.share() >= 0.0);
    }

    #[test]
    fn equal_times_hold_the_ratio() {
        let mut ctl = DivisionController::new(0.40, DivisionParams::default());
        assert_eq!(ctl.update(5.0, 5.0), 0.40);
        assert_eq!(ctl.moves(), 0);
    }

    #[test]
    fn zero_cpu_share_with_slower_gpu_takes_work() {
        // From r = 0 (all-GPU), tc = 0 < tg: the controller must start
        // pulling work onto the CPU.
        let mut ctl = DivisionController::new(0.0, DivisionParams::default());
        let r = ctl.update(0.0, 10.0);
        assert!((r - 0.05).abs() < 1e-12);
    }

    #[test]
    fn paper_worst_case_convergence_is_ten_steps_from_fifty() {
        // §VII-B: "in the worst case, we need 10 iterations if we start
        // from the 50% division point" — 10 steps of 5 % reach 0 %.
        let ctl = DivisionController::new(0.50, DivisionParams::default());
        let trace = converge(ctl, 1000.0, 1.0, 10); // CPU vastly slower
        assert_eq!(*trace.last().unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "initial share outside")]
    fn invalid_initial_share_panics() {
        DivisionController::new(0.95, DivisionParams::default());
    }

    #[test]
    fn degenerate_times_hold_the_ratio() {
        let mut ctl = DivisionController::new(0.30, DivisionParams::default());
        // Establish some rate history first.
        ctl.update(3.0, 7.0);
        let settled = ctl.share();
        let moves = ctl.moves();
        for (tc, tg) in [
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (f64::INFINITY, 1.0),
            (1.0, f64::NEG_INFINITY),
            (-1.0, 1.0),
            (1.0, -1.0),
            (0.0, 0.0),
        ] {
            assert_eq!(ctl.update(tc, tg), settled, "({tc}, {tg}) must hold");
        }
        assert_eq!(ctl.moves(), moves, "no move may come from garbage timing");
    }

    #[test]
    fn smaller_steps_converge_slower() {
        let count_moves = |step: f64| -> usize {
            let mut ctl = DivisionController::new(
                0.50,
                DivisionParams {
                    step,
                    ..DivisionParams::default()
                },
            );
            let (c, g) = (4.0, 1.0);
            let mut n = 0;
            loop {
                let r = ctl.share();
                let before = r;
                ctl.update(r * c, (1.0 - r) * g);
                if ctl.share() == before {
                    break;
                }
                n += 1;
                assert!(n < 1000);
            }
            n
        };
        assert!(count_moves(0.01) > count_moves(0.05), "fine steps need more iterations");
    }
}

/// Model-based division — the "sophisticated global algorithm" integration
/// point of §V-B, in the spirit of Qilin's adaptive mapping (Luk et al.).
///
/// Instead of walking one 5 % step per iteration, the first iteration's
/// measurements calibrate per-unit-share rates for both sides, and the
/// controller *jumps* directly to the grid point nearest the predicted
/// time-balance ratio `r* = tg_rate / (tc_rate + tg_rate)`. Subsequent
/// iterations refine step-wise with the standard safeguard. Compared with
/// the paper's heuristic this converges in one move at the cost of trusting
/// the linear extrapolation globally.
#[derive(Debug, Clone)]
pub struct ModelBasedDivision {
    params: DivisionParams,
    initial: f64,
    inner: Option<DivisionController>,
}

impl ModelBasedDivision {
    /// Creates a controller that probes at `initial` and then jumps.
    pub fn new(initial: f64, params: DivisionParams) -> Self {
        assert!(params.min_share <= initial && initial <= params.max_share);
        ModelBasedDivision {
            params,
            initial,
            inner: None,
        }
    }

    /// Current CPU share.
    pub fn share(&self) -> f64 {
        self.inner.as_ref().map_or(self.initial, |c| c.share())
    }

    /// Whether the calibration jump has happened.
    pub fn jumped(&self) -> bool {
        self.inner.is_some()
    }

    /// One division decision. The first call performs the model jump;
    /// later calls refine step-wise.
    ///
    /// Degenerate measurements (non-finite or negative times) hold the
    /// current share and — before the jump — preserve the calibration
    /// opportunity for the next good iteration.
    pub fn update(&mut self, tc_s: f64, tg_s: f64) -> f64 {
        if !(tc_s.is_finite() && tg_s.is_finite()) || tc_s < 0.0 || tg_s < 0.0 {
            return self.share();
        }
        match &mut self.inner {
            Some(ctl) => ctl.update(tc_s, tg_s),
            None => {
                let r = self.initial;
                // Per-unit-share rates from the probe iteration. A probe at
                // a bound gives no information for that side; fall back to
                // step-wise refinement from the probe point.
                let target = if r > 0.0 && r < 1.0 && tc_s > 0.0 && tg_s > 0.0 {
                    let tc_rate = tc_s / r;
                    let tg_rate = tg_s / (1.0 - r);
                    (tg_rate / (tc_rate + tg_rate)).clamp(self.params.min_share, self.params.max_share)
                } else {
                    r
                };
                // Snap to the step grid.
                let snapped = (target / self.params.step).round() * self.params.step;
                let snapped = snapped.clamp(self.params.min_share, self.params.max_share);
                self.inner = Some(DivisionController::new(snapped, self.params));
                snapped
            }
        }
    }
}

#[cfg(test)]
mod model_based_tests {
    use super::*;

    #[test]
    fn jumps_to_the_balance_point_in_one_iteration() {
        // tc = r·C, tg = (1−r)·G with C/G = 4.5 → balance at 0.1818 →
        // nearest grid point 0.20.
        let mut ctl = ModelBasedDivision::new(0.50, DivisionParams::default());
        assert!(!ctl.jumped());
        let r = ctl.update(0.5 * 4.5, 0.5 * 1.0);
        assert!((r - 0.20).abs() < 1e-12, "jumped to {r}");
        assert!(ctl.jumped());
    }

    #[test]
    fn refines_stepwise_after_the_jump() {
        let mut ctl = ModelBasedDivision::new(0.50, DivisionParams::default());
        ctl.update(2.25, 0.5); // jump to 0.20
                               // The model was slightly wrong: at 0.20 the CPU is still slower.
        let r = ctl.update(1.2, 0.8);
        assert!((r - 0.15).abs() < 1e-12, "refined to {r}");
    }

    #[test]
    fn probe_at_zero_falls_back_to_stepwise() {
        let mut ctl = ModelBasedDivision::new(0.0, DivisionParams::default());
        let r = ctl.update(0.0, 10.0);
        assert_eq!(r, 0.0, "no information at the bound — stay for refinement");
        // Next update behaves step-wise.
        let r = ctl.update(0.0, 10.0);
        assert!((r - 0.05).abs() < 1e-12);
    }

    #[test]
    fn converges_faster_than_stepwise_from_a_bad_start() {
        let (c, g) = (1.0, 1.0); // balance at 0.50
        let run = |mut step: Box<dyn FnMut(f64, f64) -> f64>, start: f64| -> usize {
            let mut r = start;
            for i in 0..40 {
                let next = step(r * c, (1.0 - r) * g);
                if (next - 0.50).abs() < 1e-12 && (r - 0.50).abs() < 1e-12 {
                    return i;
                }
                r = next;
            }
            40
        };
        let mut model = ModelBasedDivision::new(0.05, DivisionParams::default());
        let mut stepwise = DivisionController::new(0.05, DivisionParams::default());
        let model_iters = run(Box::new(move |tc, tg| model.update(tc, tg)), 0.05);
        let step_iters = run(Box::new(move |tc, tg| stepwise.update(tc, tg)), 0.05);
        assert!(model_iters < step_iters, "model {model_iters} vs stepwise {step_iters}");
    }

    #[test]
    fn degenerate_probe_preserves_the_calibration() {
        let mut ctl = ModelBasedDivision::new(0.50, DivisionParams::default());
        assert_eq!(ctl.update(f64::NAN, 1.0), 0.50);
        assert!(!ctl.jumped(), "garbage probe must not consume the jump");
        // The next good iteration still calibrates and jumps.
        let r = ctl.update(0.5 * 4.5, 0.5 * 1.0);
        assert!((r - 0.20).abs() < 1e-12);
        assert!(ctl.jumped());
    }

    #[test]
    fn jump_respects_the_share_clamps() {
        // Balance at 0.98 — beyond max_share; must clamp to 0.90.
        let mut ctl = ModelBasedDivision::new(0.50, DivisionParams::default());
        let r = ctl.update(0.5 * 0.02, 0.5 * 1.0);
        assert!(r <= 0.90 + 1e-12, "jumped past the clamp: {r}");
    }
}
