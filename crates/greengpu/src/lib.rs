//! # greengpu — holistic energy management for GPU-CPU heterogeneous nodes
//!
//! Reproduction of *GreenGPU: A Holistic Approach to Energy Efficiency in
//! GPU-CPU Heterogeneous Architectures* (Ma, Li, Chen, Zhang, Wang —
//! ICPP 2012). GreenGPU is a two-tier runtime framework:
//!
//! * **Tier 1 — workload division** ([`division`]): each iteration's work
//!   is split between CPU and GPU; the ratio moves one 5 % step per
//!   iteration toward whichever side finished first, with a linear
//!   extrapolation safeguard against oscillation, so both sides finish
//!   approximately together and idle-wait energy is minimized.
//! * **Tier 2 — coordinated frequency scaling** ([`wma`]): a Weighted
//!   Majority Algorithm learner over the N×M table of (GPU-core,
//!   GPU-memory) frequency pairs, driven by windowed utilizations, with the
//!   Table I loss function; the CPU is scaled by the Linux `ondemand`
//!   governor ([`ondemand`]).
//!
//! [`coordinator::GreenGpuController`] wires both tiers into a
//! [`greengpu_runtime::Controller`]; [`baselines`] provides the paper's
//! comparison points (best-performance, division-only,
//! frequency-scaling-only, static divisions, and the exhaustive static
//! search of §VII-B). [`quantized`] implements the paper's §VI hardware
//! sketch: the same WMA over an 8-bit fixed-point weight table.
//!
//! ## Quickstart
//!
//! ```
//! use greengpu::baselines;
//! use greengpu_workloads::kmeans::KMeans;
//!
//! // Run kmeans under full GreenGPU and under the Rodinia default
//! // (all-GPU, peak clocks) and compare energy.
//! let green = baselines::run_greengpu(&mut KMeans::small(1));
//! let default = baselines::run_best_performance(&mut KMeans::small(1));
//! assert!(green.total_energy_j() < default.total_energy_j());
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod autotune;
pub mod baselines;
pub mod coordinator;
pub mod division;
pub mod governors;
pub mod onchip;
pub mod ondemand;
pub mod oracle;
pub mod policy;
pub mod quantized;
pub mod wma;

pub use baselines::{run_greengpu_faulted, run_with_policy, FaultedOutcome};
pub use coordinator::{
    DivisionAlgo, GovernorKind, GreenGpuConfig, GreenGpuController, RobustnessParams, CHECKPOINT_VERSION,
};
pub use division::{DivisionController, DivisionParams, ModelBasedDivision};
pub use governors::CpuGovernor;
pub use ondemand::OndemandGovernor;
pub use policy::{pair_model_for, PolicySpec, WmaPolicy};
// Re-export the policy crate's surface so consumers need only `greengpu`.
pub use greengpu_policy::{
    Contextual, DeadlineParams, DeadlinePolicy, Exp3Params, Exp3Policy, FreqPolicy, PairModel, PhaseDetectorParams,
    PolicyTelemetry, SwitchingParams, UcbParams, UcbPolicy,
};
pub use wma::{WmaParams, WmaScaler};
