//! Property-based tests for the GreenGPU controllers.

use greengpu::division::{DivisionController, DivisionParams};
use greengpu::quantized::QuantizedWma;
use greengpu::wma::{table1_loss, WmaParams, WmaScaler};
use greengpu::{GreenGpuConfig, GreenGpuController};
use greengpu_hw::{FaultPlan, Platform};
use greengpu_runtime::{Controller, IterationInfo};
use greengpu_sim::{Pcg32, SimDuration, SimTime};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = WmaParams> {
    (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.01..0.99f64, 0.1..1.0f64).prop_map(
        |(alpha_core, alpha_mem, phi, beta, history)| WmaParams {
            alpha_core,
            alpha_mem,
            phi,
            beta,
            history,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn table1_losses_are_complementary_and_bounded(u in 0.0..1.0f64, umean in 0.0..1.0f64) {
        let (le, lp) = table1_loss(u, umean);
        // Exactly one side is charged.
        prop_assert!(le == 0.0 || lp == 0.0);
        prop_assert!(le >= 0.0 && lp >= 0.0);
        prop_assert!((le + lp - (u - umean).abs()).abs() < 1e-12);
    }

    #[test]
    fn wma_is_stable_for_any_valid_params(params in arb_params(),
                                          us in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..100)) {
        let mut s = WmaScaler::new(6, 6, params);
        for (uc, um) in us {
            let (i, j) = s.observe(uc, um);
            prop_assert!(i < 6 && j < 6);
        }
        // Weights survive normalization for any parameterization.
        let max = (0..6).flat_map(|i| (0..6).map(move |j| (i, j)))
            .map(|(i, j)| s.weight(i, j))
            .fold(f64::MIN, f64::max);
        prop_assert!((max - 1.0).abs() < 1e-9, "max weight {max}");
    }

    #[test]
    fn wma_zero_loss_level_always_wins_eventually(level in 0usize..6) {
        // Feeding exactly umean[level] must converge the corresponding
        // domain to that level (its loss is zero, everyone else decays).
        let u = level as f64 / 5.0;
        let mut s = WmaScaler::new(6, 6, WmaParams::default());
        let mut pair = (0, 0);
        for _ in 0..40 {
            pair = s.observe(u, u);
        }
        prop_assert_eq!(pair, (level, level));
    }

    #[test]
    fn quantized_agrees_with_float_within_one_level(seed in any::<u64>(),
                                                    base_c in 0.0..1.0f64, base_m in 0.0..1.0f64) {
        let mut q = QuantizedWma::new(6, 6, WmaParams::default());
        let mut f = WmaScaler::new(6, 6, WmaParams::default());
        let mut rng = Pcg32::seeded(seed);
        let mut qp = (0, 0);
        let mut fp = (0, 0);
        for _ in 0..25 {
            let uc = (base_c + rng.uniform(-0.03, 0.03)).clamp(0.0, 1.0);
            let um = (base_m + rng.uniform(-0.03, 0.03)).clamp(0.0, 1.0);
            qp = q.observe(uc, um);
            fp = f.observe(uc, um);
        }
        prop_assert!(qp.0.abs_diff(fp.0) <= 1, "core: quantized {qp:?} vs float {fp:?}");
        prop_assert!(qp.1.abs_diff(fp.1) <= 1, "mem: quantized {qp:?} vs float {fp:?}");
    }

    #[test]
    fn division_never_leaves_bounds_or_grid(updates in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..200),
                                            initial_steps in 0usize..19) {
        let mut ctl = DivisionController::new(initial_steps as f64 * 0.05, DivisionParams::default());
        for (tc, tg) in updates {
            let r = ctl.update(tc, tg);
            prop_assert!((0.0..=0.90 + 1e-12).contains(&r));
            let k = r / 0.05;
            prop_assert!((k - k.round()).abs() < 1e-9, "share off grid: {r}");
        }
    }

    #[test]
    fn division_moves_toward_the_slower_side(tc in 0.01..100.0f64, tg in 0.01..100.0f64) {
        prop_assume!((tc - tg).abs() > 1e-9);
        let mut ctl = DivisionController::new(
            0.45,
            DivisionParams {
                safeguard: false,
                ..DivisionParams::default()
            },
        );
        let before = ctl.share();
        let after = ctl.update(tc, tg);
        if tc > tg {
            prop_assert!(after < before, "CPU slower but share rose");
        } else {
            prop_assert!(after > before, "GPU slower but share fell");
        }
    }

    #[test]
    fn hardened_controller_survives_arbitrary_fault_sequences(fault_seed in any::<u64>(),
                                                             intensity in 0.0..1.0f64,
                                                             ticks in 1usize..60,
                                                             times in proptest::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..30)) {
        // Drive the full two-tier controller directly against a platform
        // through seeded fault injectors of arbitrary seed and intensity,
        // interleaving DVFS ticks with iteration reports (some of them
        // garbage). The controller must never panic and every invariant
        // must hold at every step.
        let plan = FaultPlan::with_intensity(fault_seed, intensity);
        let mut ctl = GreenGpuController::for_testbed_faulted(GreenGpuConfig::holistic(), &plan);
        let mut platform = Platform::default_testbed();
        let n_core = platform.gpu().spec().core_levels_mhz.len();
        let n_mem = platform.gpu().spec().mem_levels_mhz.len();
        let n_cpu = platform.cpu().spec().levels_mhz.len();
        let mut now = SimTime::ZERO;
        let mut iter = times.iter().cycle();
        for k in 0..ticks {
            now += SimDuration::from_secs(3);
            ctl.on_dvfs_tick(&mut platform, now);
            // Frequency levels stay valid after every actuation.
            prop_assert!(platform.gpu().core().current_level() < n_core);
            prop_assert!(platform.gpu().mem().current_level() < n_mem);
            prop_assert!(platform.cpu().domain().current_level() < n_cpu);
            // WMA weights stay in (0, 1] whatever the sensors fed it.
            let wma = ctl.wma().expect("default controller runs the WMA policy");
            for i in 0..n_core {
                for j in 0..n_mem {
                    let w = wma.weight(i, j);
                    prop_assert!(w > 0.0 && w <= 1.0, "weight[{i}][{j}] = {w}");
                }
            }
            // Every other tick, report an iteration — every fourth one
            // with non-finite garbage the hardening must reject.
            if k % 2 == 0 {
                let &(tc, tg) = iter.next().unwrap();
                let (tc, tg) = if k % 4 == 0 { (f64::NAN, f64::INFINITY) } else { (tc, tg) };
                let info = IterationInfo { index: k, cpu_share: ctl.division_share(), tc_s: tc, tg_s: tg };
                let r = ctl.on_iteration_end(&info, &mut platform, now);
                // The share stays on the 5 % grid inside [0, 0.90].
                prop_assert!((0.0..=0.90 + 1e-12).contains(&r), "share {r}");
                let steps = r / 0.05;
                prop_assert!((steps - steps.round()).abs() < 1e-9, "share off grid: {r}");
            }
        }
    }

    #[test]
    fn safeguard_only_ever_holds_never_reverses(updates in proptest::collection::vec((0.0..10.0f64, 0.0..10.0f64), 1..100)) {
        // With and without safeguard, the *direction* of any move matches
        // the slower side; the safeguard can only convert moves into holds.
        let mut with = DivisionController::new(0.45, DivisionParams::default());
        let mut without = DivisionController::new(
            0.45,
            DivisionParams {
                safeguard: false,
                ..DivisionParams::default()
            },
        );
        for &(tc, tg) in &updates {
            let wb = with.share();
            let wa = with.update(tc, tg);
            if (wa - wb).abs() > 1e-12 {
                // A move with the safeguard must match the unsafeguarded
                // direction rule.
                let expected_up = tc < tg;
                prop_assert_eq!(wa > wb, expected_up);
            }
            without.update(tc, tg);
        }
        prop_assert!(with.moves() <= without.moves() + updates.len() as u64);
    }
}
