//! `repro` — regenerate the GreenGPU paper's tables and figures.
//!
//! ```text
//! repro [--experiment <id>|all] [--seed <u64>] [--csv <dir>]
//!
//!   ids: table1 table2 fig1 fig2 fig5 fig6 fig7 fig8 static_search
//! ```
//!
//! Prints markdown to stdout; `--csv <dir>` additionally writes each table
//! as CSV for plotting.

use greengpu_repro::experiments::{run_by_id, ALL_IDS, DEFAULT_SEED};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    experiment: String,
    seed: u64,
    csv_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        experiment: "all".to_string(),
        seed: DEFAULT_SEED,
        csv_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--experiment" | "-e" => {
                args.experiment = it.next().ok_or("--experiment needs a value")?;
            }
            "--seed" | "-s" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--csv" => {
                args.csv_dir = Some(PathBuf::from(it.next().ok_or("--csv needs a directory")?));
            }
            "--help" | "-h" => {
                println!("usage: repro [--experiment <id>|all] [--seed <u64>] [--csv <dir>]");
                println!("experiments: {}", ALL_IDS.join(" "));
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let ids: Vec<&str> = if args.experiment == "all" {
        ALL_IDS.to_vec()
    } else {
        vec![args.experiment.as_str()]
    };

    println!("# GreenGPU reproduction — experiment output (seed {})\n", args.seed);
    for id in ids {
        let Some(output) = run_by_id(id, args.seed) else {
            eprintln!("error: unknown experiment '{id}' (known: {})", ALL_IDS.join(" "));
            return ExitCode::FAILURE;
        };
        print!("{}", output.to_markdown());
        if let Some(dir) = &args.csv_dir {
            if let Err(e) = output.write_csvs(dir) {
                eprintln!("error writing CSVs to {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
