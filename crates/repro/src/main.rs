//! `repro` — regenerate the GreenGPU paper's tables and figures.
//!
//! ```text
//! repro [--experiment <id>|all] [--seed <u64>] [--csv <dir>]
//!       [--nodes <n>] [--seconds <s>] [--engine serial|event|parallel]
//!       [--workers <n>] [--list-experiments]
//! ```
//!
//! Prints markdown to stdout; `--csv <dir>` additionally writes each table
//! as CSV for plotting and appends provenance rows to
//! `<dir>/MANIFEST.csv`. `--nodes`/`--seconds` select a custom
//! small-fleet configuration for the `cluster` and `chaos` experiments
//! (the CI smokes); `--engine`/`--workers` select which fleet engine
//! drives it (all engines are byte-identical per seed — see
//! `crates/cluster/tests/engine_equivalence.rs` — so this is a seam for
//! CI to prove exactly that on real experiment output).

use greengpu_cluster::EngineKind;
use greengpu_repro::experiments::{chaos, cluster, run_by_id, serving, training, ALL_IDS, DEFAULT_SEED};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    experiment: String,
    seed: u64,
    csv_dir: Option<PathBuf>,
    nodes: Option<usize>,
    seconds: Option<u64>,
    engine: Option<String>,
    workers: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        experiment: "all".to_string(),
        seed: DEFAULT_SEED,
        csv_dir: None,
        nodes: None,
        seconds: None,
        engine: None,
        workers: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--experiment" | "-e" => {
                args.experiment = it.next().ok_or("--experiment needs a value")?;
            }
            "--seed" | "-s" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--csv" => {
                args.csv_dir = Some(PathBuf::from(it.next().ok_or("--csv needs a directory")?));
            }
            "--nodes" => {
                args.nodes = Some(
                    it.next()
                        .ok_or("--nodes needs a value")?
                        .parse()
                        .map_err(|e| format!("bad node count: {e}"))?,
                );
            }
            "--seconds" => {
                args.seconds = Some(
                    it.next()
                        .ok_or("--seconds needs a value")?
                        .parse()
                        .map_err(|e| format!("bad horizon: {e}"))?,
                );
            }
            "--engine" => {
                args.engine = Some(it.next().ok_or("--engine needs a value")?);
            }
            "--workers" => {
                args.workers = Some(
                    it.next()
                        .ok_or("--workers needs a value")?
                        .parse()
                        .map_err(|e| format!("bad worker count: {e}"))?,
                );
            }
            "--list-experiments" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--experiment <id>|all] [--seed <u64>] [--csv <dir>]\n\
                     \x20            [--nodes <n>] [--seconds <s>]\n\
                     \x20            [--engine serial|event|parallel] [--workers <n>]\n\
                     \x20            [--list-experiments]"
                );
                println!("experiments: {}", ALL_IDS.join(" "));
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let fleet_flag = args.nodes.is_some() || args.seconds.is_some() || args.engine.is_some() || args.workers.is_some();
    let fleet_experiments = ["cluster", "chaos", "serving", "training"];
    if fleet_flag && !fleet_experiments.contains(&args.experiment.as_str()) {
        return Err(
            "--nodes/--seconds/--engine/--workers only apply to --experiment cluster, chaos, serving, or training"
                .to_string(),
        );
    }
    if args.nodes == Some(0) {
        return Err("--nodes must be at least 1".to_string());
    }
    if args.workers.is_some() && args.engine.as_deref() != Some("parallel") {
        return Err("--workers only applies to --engine parallel".to_string());
    }
    Ok(args)
}

/// Resolves the `--engine`/`--workers` flags into an [`EngineKind`]
/// (serial — the reference — when neither was given).
fn engine_kind(args: &Args) -> Result<EngineKind, String> {
    match &args.engine {
        None => Ok(EngineKind::Serial),
        Some(name) => EngineKind::from_flag(name, args.workers.unwrap_or(4)),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let engine = match engine_kind(&args) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let ids: Vec<&str> = if args.experiment == "all" {
        ALL_IDS.to_vec()
    } else {
        vec![args.experiment.as_str()]
    };

    println!("# GreenGPU reproduction — experiment output (seed {})\n", args.seed);
    for id in ids {
        let custom = args.nodes.is_some() || args.seconds.is_some() || args.engine.is_some();
        let output = if custom && id == "cluster" {
            Some(cluster::run_custom(
                args.seed,
                args.nodes.unwrap_or(3),
                args.seconds.unwrap_or(30),
                engine,
            ))
        } else if custom && id == "chaos" {
            Some(chaos::run_custom(
                args.seed,
                args.nodes.unwrap_or(3),
                args.seconds.unwrap_or(30),
                engine,
            ))
        } else if custom && id == "serving" {
            Some(serving::run_custom(
                args.seed,
                args.nodes.unwrap_or(3),
                args.seconds.unwrap_or(30),
                engine,
            ))
        } else if custom && id == "training" {
            Some(training::run_custom(
                args.seed,
                args.nodes.unwrap_or(3),
                args.seconds.unwrap_or(30),
                engine,
            ))
        } else {
            run_by_id(id, args.seed)
        };
        let Some(output) = output else {
            eprintln!(
                "error: unknown experiment '{id}'\nvalid experiments:\n  {}",
                ALL_IDS.join("\n  ")
            );
            return ExitCode::FAILURE;
        };
        print!("{}", output.to_markdown());
        if let Some(dir) = &args.csv_dir {
            if let Err(e) = output.write_csvs(dir, args.seed) {
                eprintln!("error writing CSVs to {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
