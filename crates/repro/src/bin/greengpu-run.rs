//! `greengpu-run` — run any workload under any policy on the simulated
//! testbed.
//!
//! ```text
//! greengpu-run --workload kmeans [--policy greengpu] [--seed 42]
//!              [--governor ondemand] [--division-algo stepwise]
//!              [--small] [--json]
//!
//! workloads: bfs lud nbody PF QG srad_v2 hotspot kmeans streamcluster
//! policies:  greengpu division scaling default static:<pct> pinned:<core>,<mem>
//! governors: ondemand performance powersave conservative proportional
//! ```

use greengpu::{DivisionAlgo, GovernorKind};
use greengpu_repro::experiments::DEFAULT_SEED;
use greengpu_repro::policies::run_policy;
use greengpu_repro::summary::ReportSummary;
use greengpu_runtime::{RunConfig, RunReport};
use greengpu_workloads::registry;
use std::process::ExitCode;

struct Args {
    workload: String,
    policy: String,
    seed: u64,
    governor: GovernorKind,
    division_algo: DivisionAlgo,
    small: bool,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: String::new(),
        policy: "greengpu".to_string(),
        seed: DEFAULT_SEED,
        governor: GovernorKind::Ondemand,
        division_algo: DivisionAlgo::Stepwise,
        small: false,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workload" | "-w" => args.workload = it.next().ok_or("--workload needs a value")?,
            "--policy" | "-p" => args.policy = it.next().ok_or("--policy needs a value")?,
            "--seed" | "-s" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--governor" | "-g" => {
                args.governor = match it.next().ok_or("--governor needs a value")?.as_str() {
                    "ondemand" => GovernorKind::Ondemand,
                    "performance" => GovernorKind::Performance,
                    "powersave" => GovernorKind::Powersave,
                    "conservative" => GovernorKind::Conservative,
                    "proportional" => GovernorKind::Proportional,
                    other => return Err(format!("unknown governor {other}")),
                }
            }
            "--division-algo" => {
                args.division_algo = match it.next().ok_or("--division-algo needs a value")?.as_str() {
                    "stepwise" => DivisionAlgo::Stepwise,
                    "model" | "model-based" => DivisionAlgo::ModelBased,
                    other => return Err(format!("unknown division algorithm {other}")),
                }
            }
            "--small" => args.small = true,
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!("usage: greengpu-run --workload <name> [--policy <p>] [--seed <n>]");
                println!("                    [--governor <g>] [--division-algo <a>] [--small] [--json]");
                println!("workloads: {}", registry::TABLE2_NAMES.join(" "));
                println!("policies:  greengpu division scaling default static:<pct> pinned:<core>,<mem>");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.workload.is_empty() {
        return Err("--workload is required (see --help)".to_string());
    }
    Ok(args)
}

fn execute(args: &Args) -> Result<RunReport, String> {
    let mut workload = if args.small {
        registry::by_name_small(&args.workload, args.seed)
    } else {
        registry::by_name(&args.workload, args.seed)
    }
    .ok_or_else(|| {
        format!(
            "unknown workload '{}' (known: {})",
            args.workload,
            registry::TABLE2_NAMES.join(" ")
        )
    })?;
    run_policy(
        workload.as_mut(),
        &args.policy,
        args.governor,
        args.division_algo,
        RunConfig::default(),
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match execute(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = ReportSummary::from_report(&args.workload, &args.policy, args.seed, &report);
    if args.json {
        println!("{}", summary.to_json_pretty());
    } else {
        println!("workload   {}", summary.workload);
        println!(
            "policy     {} (governor {:?}, division {:?})",
            summary.policy, args.governor, args.division_algo
        );
        println!("time       {:.1} s", summary.total_time_s);
        println!(
            "energy     {:.0} J total ({:.0} J GPU / {:.0} J CPU-side), mean {:.1} W",
            summary.total_energy_j, summary.gpu_energy_j, summary.cpu_energy_j, summary.mean_power_w
        );
        println!(
            "final clks core {} MHz / mem {} MHz / cpu {} MHz",
            summary.final_core_mhz, summary.final_mem_mhz, summary.final_cpu_mhz
        );
        if let Some(last) = summary.iterations.last() {
            println!(
                "division   settled at {:.0}% CPU ({} iterations)",
                last.cpu_share * 100.0,
                summary.iterations.len()
            );
        }
    }
    ExitCode::SUCCESS
}
