//! Cluster — the fleet-scale power-budget scheduler sweep.
//!
//! Not a paper figure: the ICPP 2012 testbed is one node. This experiment
//! runs the `greengpu-cluster` tier — N nodes, each driven by the paper's
//! hardened two-tier controller, under one fleet watt budget — across
//! nodes × budget × placement policy, on the hotspot/kmeans mix. Four
//! tables come out:
//!
//! 1. the homogeneous sweep (throughput, latency, energy/job, cap
//!    compliance per configuration);
//! 2. a heterogeneous fleet (half the cards down-clocked) comparing the
//!    placement policies where they actually differ;
//! 3. a fault-composition check (PR-1 seam): one node's actuation path
//!    broken, its controller falls back, the scheduler routes around it;
//! 4. a representative per-interval trace of one capped fleet.
//!
//! Everything derives from the one seed, so the CSVs are byte-identical
//! across runs.

use super::ExperimentOutput;
use greengpu_cluster::{run_fleet, EngineKind, FleetConfig, FleetReport, NodeConfig, Policy};
use greengpu_hw::faults::ActuationFaults;
use greengpu_hw::FaultPlan;
use greengpu_sim::{table::fnum, SimDuration, Table};

/// Fleet sizes swept.
pub const NODE_COUNTS: [usize; 3] = [2, 4, 8];
/// Budget fractions of aggregate peak-pair power swept. The floor pair
/// models ≈60 % of peak, so 0.65 is already a tight envelope.
pub const BUDGET_FRACS: [f64; 3] = [0.65, 0.80, 1.00];
/// Sweep horizon, seconds.
pub const HORIZON_S: u64 = 120;

const SUMMARY_HEADERS: [&str; 12] = [
    "nodes",
    "budget_frac",
    "policy",
    "completed",
    "rejected",
    "deadline_misses",
    "mean_wait_s",
    "mean_turnaround_s",
    "gpu_energy_per_job_j",
    "mean_gpu_power_w",
    "peak_queue_depth",
    "cap_violations",
];

fn summary_row(table: &mut Table, nodes: usize, frac: f64, policy: Policy, r: &FleetReport) {
    table.row(&[
        nodes.to_string(),
        fnum(frac, 2),
        policy.name().to_string(),
        r.completed.len().to_string(),
        r.rejected.to_string(),
        r.deadline_misses.to_string(),
        fnum(r.mean_wait_s(), 3),
        fnum(r.mean_turnaround_s(), 3),
        fnum(r.gpu_energy_per_job_j(), 1),
        fnum(r.trace.mean_gpu_power_w(), 3),
        r.trace.peak_queue_depth().to_string(),
        r.cap_violations.to_string(),
    ]);
}

/// A half-default, half-down-clocked fleet of `n` nodes.
fn hetero_nodes(n: usize) -> Vec<NodeConfig> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                NodeConfig::default_node()
            } else {
                NodeConfig::downclocked()
            }
        })
        .collect()
}

/// The full sweep behind `--experiment cluster`.
pub fn run(seed: u64) -> ExperimentOutput {
    let horizon = SimDuration::from_secs(HORIZON_S);

    // Table 1: homogeneous nodes × budget × policy.
    let mut sweep = Table::new(
        format!("Fleet sweep — hotspot/kmeans mix, {HORIZON_S} s horizon"),
        &SUMMARY_HEADERS,
    );
    let mut loose_4rr_energy = None;
    let mut tight_4rr_energy = None;
    for &n in &NODE_COUNTS {
        for (fi, &frac) in BUDGET_FRACS.iter().enumerate() {
            for &policy in &Policy::ALL {
                let cfg = FleetConfig::homogeneous(n, frac, policy, horizon, seed);
                let r = run_fleet(&cfg);
                if n == 4 && policy == Policy::RoundRobin {
                    // Index into BUDGET_FRACS, not float equality: last
                    // entry is the loose 1.00 budget, first the tight 0.65.
                    if fi == BUDGET_FRACS.len() - 1 {
                        loose_4rr_energy = Some(r.gpu_energy_j);
                    } else if fi == 0 {
                        tight_4rr_energy = Some(r.gpu_energy_j);
                    }
                }
                summary_row(&mut sweep, n, frac, policy, &r);
            }
        }
    }

    // Table 2: heterogeneous fleet, where placement actually matters.
    let mut hetero = Table::new(
        format!("Heterogeneous fleet (every other card down-clocked) — 4 nodes, 0.80 budget, {HORIZON_S} s"),
        &SUMMARY_HEADERS,
    );
    let mut hetero_energy_per_job = Vec::new();
    for &policy in &Policy::ALL {
        let cfg = FleetConfig::from_nodes(hetero_nodes(4), 0.80, policy, horizon, seed);
        let r = run_fleet(&cfg);
        hetero_energy_per_job.push((policy, r.gpu_energy_per_job_j()));
        summary_row(&mut hetero, 4, 0.80, policy, &r);
    }

    // Table 3: fault composition — node 0's reclocks are all dropped.
    let mut faults = Table::new(
        "Fault composition — 3 nodes, 0.85 budget, node 0's actuation path broken",
        &[
            "scenario",
            "completed",
            "node0_completed",
            "nodes_fallen_back",
            "cap_violations",
            "mean_gpu_power_w",
        ],
    );
    let mut fault_note = String::new();
    for broken in [false, true] {
        let mut cfg = FleetConfig::homogeneous(3, 0.85, Policy::RoundRobin, horizon, seed);
        if broken {
            let mut plan = FaultPlan::with_intensity(seed ^ 0xFA_0157, 1.0);
            plan.actuation = ActuationFaults {
                drop_prob: 1.0,
                offset_prob: 0.0,
                delay_prob: 0.0,
            };
            cfg.nodes[0] = NodeConfig::default_node().with_fault(plan);
        }
        let r = run_fleet(&cfg);
        if broken {
            fault_note = format!(
                "fault composition: with node 0's actuation broken, {} controller(s) fell back \
                 and the healthy nodes completed {} jobs ({} cap-violation node-intervals, all \
                 attributable to the pinned-peak fallback).",
                r.nodes_fallen_back,
                r.per_node_completed[1] + r.per_node_completed[2],
                r.cap_violations,
            );
        }
        faults.row(&[
            if broken { "node0 broken" } else { "clean" }.to_string(),
            r.completed.len().to_string(),
            r.per_node_completed[0].to_string(),
            r.nodes_fallen_back.to_string(),
            r.cap_violations.to_string(),
            fnum(r.trace.mean_gpu_power_w(), 3),
        ]);
    }

    // Table 4: one capped fleet's per-interval trace.
    let trace_cfg = FleetConfig::homogeneous(3, 0.75, Policy::EnergyAware, SimDuration::from_secs(60), seed);
    let trace_run = run_fleet(&trace_cfg);
    let trace = trace_run
        .trace
        .to_table("Per-interval trace — 3 nodes, 0.75 budget, energy-aware, 60 s");

    let mut notes = Vec::new();
    if let (Some(loose), Some(tight)) = (loose_4rr_energy, tight_4rr_energy) {
        notes.push(format!(
            "capping works: tightening a 4-node round-robin fleet's budget from 1.00 to 0.65 of \
             aggregate peak cuts GPU energy by {} (hierarchical caps + WMA feasible-set masking).",
            super::pct(1.0 - tight / loose),
        ));
    }
    if let (Some((_, rr)), Some((_, ea))) = (
        hetero_energy_per_job.iter().find(|(p, _)| *p == Policy::RoundRobin),
        hetero_energy_per_job.iter().find(|(p, _)| *p == Policy::EnergyAware),
    ) {
        notes.push(format!(
            "on the heterogeneous fleet the energy-aware policy spends {} J/job vs round-robin's \
             {} J/job (oracle estimates prefer the efficient cards when deadlines permit).",
            fnum(*ea, 1),
            fnum(*rr, 1),
        ));
    }
    notes.push(fault_note);
    notes.push(format!(
        "the capped trace stays feasible throughout: max_pair_over_cap_w is 0.000 in every \
         interval and the summed caps never exceed the {} W budget.",
        fnum(trace_cfg.budget_w, 3),
    ));

    ExperimentOutput {
        id: "cluster",
        title: "Fleet-scale power-budget scheduler (cluster tier)",
        tables: vec![sweep, hetero, faults, trace],
        notes,
    }
}

/// A single small fleet for the CI smoke: `nodes` default nodes at 0.80
/// budget under the least-loaded policy for `seconds` simulated seconds,
/// driven by `engine` (every engine is byte-identical per seed — the CI
/// parallel-vs-serial byte-compare rides on this seam). Emits the
/// summary and the full trace.
pub fn run_custom(seed: u64, nodes: usize, seconds: u64, engine: EngineKind) -> ExperimentOutput {
    let horizon = SimDuration::from_secs(seconds);
    let cfg = FleetConfig::homogeneous(nodes, 0.80, Policy::LeastLoaded, horizon, seed).with_engine(engine);
    let r = run_fleet(&cfg);
    let mut summary = Table::new(
        format!("Cluster smoke — {nodes} nodes, 0.80 budget, {seconds} s"),
        &SUMMARY_HEADERS,
    );
    summary_row(&mut summary, nodes, 0.80, Policy::LeastLoaded, &r);
    let trace = r.trace.to_table("Cluster smoke — per-interval trace");
    ExperimentOutput {
        id: "cluster",
        title: "Fleet-scale power-budget scheduler (smoke configuration)",
        tables: vec![summary, trace],
        notes: vec![format!(
            "smoke: {} completed, {} rejected, {} cap-violation node-intervals over {seconds} s.",
            r.completed.len(),
            r.rejected,
            r.cap_violations,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_configuration_is_deterministic_and_sane() {
        let a = run_custom(7, 3, 30, EngineKind::Serial);
        let b = run_custom(7, 3, 30, EngineKind::Parallel { workers: 2 });
        let csv = |o: &ExperimentOutput| o.tables.iter().map(Table::to_csv).collect::<Vec<_>>();
        assert_eq!(
            csv(&a),
            csv(&b),
            "same seed must reproduce the smoke bytes, engine-independently"
        );
        assert_eq!(a.tables.len(), 2);
        // 30 one-second intervals of trace.
        assert_eq!(a.tables[1].to_csv().lines().count(), 31);
    }

    #[test]
    fn hetero_nodes_alternate() {
        let nodes = hetero_nodes(4);
        assert_eq!(nodes.len(), 4);
        assert!(nodes[1].gpu.name.contains("down-clocked"));
        assert!(!nodes[0].gpu.name.contains("down-clocked"));
        assert!(nodes[1].gpu.core_levels_mhz[0] < nodes[0].gpu.core_levels_mhz[0]);
    }
}
