//! Table I (the WMA loss function) and Table II (the workload inventory).

use super::ExperimentOutput;
use greengpu::analysis::measure_profile;
use greengpu::baselines::run_best_performance_with;
use greengpu::wma::{table1_loss, WmaParams, WmaScaler};
use greengpu_runtime::RunConfig;
use greengpu_sim::{table::fnum, Table};
use greengpu_workloads::registry;

/// Table I: the loss function, demonstrated numerically on the 6-level
/// `umean` grid for a few observed utilizations.
pub fn table1() -> ExperimentOutput {
    let mut spec = Table::new(
        "Table I — loss function definition",
        &["condition", "energy loss (l_ie)", "performance loss (l_ip)"],
    );
    spec.row(&["u > umean[i]".into(), "0".into(), "u - umean[i]".into()]);
    spec.row(&["u < umean[i]".into(), "umean[i] - u".into(), "0".into()]);
    spec.row(&[
        "combined".into(),
        "l_i = α·l_ie + (1-α)·l_ip".into(),
        "α_c=0.15, α_m=0.02, φ=0.3, β=0.2".into(),
    ]);

    let scaler = WmaScaler::new(6, 6, WmaParams::default());
    let mut demo = Table::new(
        "Core-domain loss per level (α_c = 0.15)",
        &[
            "u \\ level",
            "0 (umean 0.0)",
            "1 (0.2)",
            "2 (0.4)",
            "3 (0.6)",
            "4 (0.8)",
            "5 (1.0)",
        ],
    );
    for u in [0.0, 0.3, 0.6, 0.9] {
        let mut cells = vec![fnum(u, 1)];
        for i in 0..6 {
            cells.push(fnum(scaler.core_loss(i, u), 3));
        }
        demo.row(&cells);
    }

    let mut notes = Vec::new();
    let (le, lp) = table1_loss(0.9, 0.6);
    notes.push(format!(
        "Sanity: u=0.9 vs umean=0.6 gives (energy, performance) loss = ({le:.2}, {lp:.2}) — pure performance loss, as Table I specifies."
    ));
    notes.push(
        "The argmin-loss level for any utilization is the lowest level whose umean covers it — the paper's \"directly to the best levels\" behaviour.".to_string(),
    );

    ExperimentOutput {
        id: "table1",
        title: "Loss function used in the GPU frequency scaling algorithm",
        tables: vec![spec, demo],
        notes,
    }
}

/// Table II: the workload suite with its enlargements and utilization
/// classes — both the declared registry rows and the classes *measured*
/// from peak-clock utilization traces (the paper's own procedure).
pub fn table2(seed: u64) -> ExperimentOutput {
    let mut t = Table::new(
        "Table II — workloads used in the experiments",
        &["Workload", "Enlargement", "Description", "Divisible"],
    );
    for w in registry::all_workloads(seed) {
        let p = w.profile();
        t.row(&[
            p.name.to_string(),
            p.enlargement.clone(),
            p.description.to_string(),
            if p.divisible { "yes" } else { "no" }.to_string(),
        ]);
    }

    // The measured version: run each workload at peak clocks and recover
    // its classes from the utilization traces.
    let mut measured = Table::new(
        "Table II (measured) — classes recovered from peak-clock utilization traces",
        &[
            "Workload",
            "u_core mean",
            "u_mem mean",
            "swing",
            "measured classes",
            "matches",
        ],
    );
    let mut matches = 0;
    for mut w in registry::all_workloads(seed) {
        let expected = (w.profile().core_class, w.profile().mem_class);
        let name = w.profile().name;
        let report = run_best_performance_with(w.as_mut(), RunConfig::sweep());
        let m = measure_profile(&report);
        let ok = (m.core_class, m.mem_class) == expected;
        if ok {
            matches += 1;
        }
        measured.row(&[
            name.to_string(),
            fnum(m.core.mean, 2),
            fnum(m.mem.mean, 2),
            fnum(m.core.swing.max(m.mem.swing), 2),
            format!("{:?} / {:?}", m.core_class, m.mem_class),
            if ok { "✓" } else { "✗" }.to_string(),
        ]);
    }

    ExperimentOutput {
        id: "table2",
        title: "Summary of workloads used in the (simulated) hardware experiments",
        tables: vec![t, measured],
        notes: vec![
            "All nine Rodinia/CUDA-SDK workloads are re-implemented functionally in Rust; utilization classes are verified against this table by the workload test suites.".to_string(),
            format!("Trace analysis recovers the declared classes for {matches}/9 workloads — the paper's own classification procedure, closed-loop."),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_spec_and_demo() {
        let out = table1();
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].len(), 3);
        assert_eq!(out.tables[1].len(), 4);
    }

    #[test]
    fn table2_lists_all_nine() {
        let out = table2(1);
        assert_eq!(out.tables[0].len(), 9);
        let md = out.to_markdown();
        assert!(md.contains("988040 data points"));
        assert!(md.contains("streamcluster"));
    }

    #[test]
    fn table2_measured_classes_all_match() {
        let out = table2(1);
        assert_eq!(out.tables[1].len(), 9);
        let csv = out.tables[1].to_csv();
        assert!(!csv.contains('✗'), "a measured class diverged:\n{csv}");
    }
}
