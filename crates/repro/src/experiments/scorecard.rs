//! The paper-claims scorecard: every quantitative claim from the paper's
//! evaluation, measured on the simulated testbed and judged against an
//! acceptance band.
//!
//! This is the machine-checkable version of EXPERIMENTS.md's summary
//! table: reproduction targets are *shapes and classes*, so each claim
//! carries an explicit band rather than an exact number.

use super::{fig6, pct, ExperimentOutput};
use greengpu::baselines::{run_best_performance_with, run_with_config, static_search};
use greengpu::GreenGpuConfig;
use greengpu_runtime::RunConfig;
use greengpu_sim::{table::fnum, SimTime, Table};
use greengpu_workloads::hotspot::Hotspot;
use greengpu_workloads::kmeans::KMeans;
use greengpu_workloads::nbody::NBody;
use greengpu_workloads::streamcluster::StreamCluster;

/// One measured claim.
pub struct Claim {
    /// Where the paper makes it.
    pub source: &'static str,
    /// What the paper reports.
    pub paper: String,
    /// What we measured.
    pub measured: String,
    /// Whether the measurement falls in the acceptance band.
    pub pass: bool,
}

fn claim(source: &'static str, paper: impl Into<String>, measured: impl Into<String>, pass: bool) -> Claim {
    Claim {
        source,
        paper: paper.into(),
        measured: measured.into(),
        pass,
    }
}

/// Evaluates every claim. Deterministic for a given seed.
pub fn evaluate(seed: u64) -> Vec<Claim> {
    let mut claims = Vec::new();
    let sweep = RunConfig::sweep;

    // ---- Fig. 1: the §III-A case study ------------------------------
    {
        let t = |core: usize, mem: usize, wl: &mut dyn greengpu_workloads::Workload| {
            greengpu::baselines::run_pinned(wl, core, mem, sweep())
                .total_time
                .as_secs_f64()
        };
        let nb_peak = t(5, 5, &mut NBody::paper(seed));
        let nb_mem_floor = t(5, 0, &mut NBody::paper(seed));
        let stretch = nb_mem_floor / nb_peak;
        claims.push(claim(
            "Fig. 1a (nbody, mem 500 MHz)",
            "time nearly flat",
            format!("×{}", fnum(stretch, 3)),
            stretch < 1.05,
        ));
        let sc_peak = t(5, 5, &mut StreamCluster::paper(seed));
        let sc_mem_floor = t(5, 0, &mut StreamCluster::paper(seed));
        let stretch = sc_mem_floor / sc_peak;
        claims.push(claim(
            "Fig. 1a (SC, mem 500 MHz)",
            "memory-bounded: time suffers",
            format!("×{}", fnum(stretch, 3)),
            stretch > 1.10,
        ));
        let sc_410 = t(2, 5, &mut StreamCluster::paper(seed));
        let stretch = sc_410 / sc_peak;
        claims.push(claim(
            "Fig. 1d (SC, core 408 MHz)",
            "negligible performance loss",
            format!("×{}", fnum(stretch, 3)),
            stretch < 1.05,
        ));
        let nb_core_floor = t(0, 5, &mut NBody::paper(seed));
        let stretch = nb_core_floor / nb_peak;
        claims.push(claim(
            "Fig. 1c (nbody, core 296 MHz)",
            "core-bounded: time suffers",
            format!("×{}", fnum(stretch, 3)),
            stretch > 1.5,
        ));
    }

    // ---- Fig. 2 / §VII-B: division sweeps ---------------------------
    {
        let (points, best) = static_search(|| Box::new(KMeans::paper(seed)), 0.05, 0.90);
        let share = points[best].cpu_share;
        claims.push(claim(
            "Fig. 2 / §VII-B (kmeans static optimum)",
            "10-15% CPU share",
            format!("{}%", fnum(share * 100.0, 0)),
            (0.075..=0.20).contains(&share),
        ));
        let (points, best) = static_search(|| Box::new(Hotspot::paper(seed)), 0.05, 0.90);
        let share = points[best].cpu_share;
        claims.push(claim(
            "§VII-B (hotspot static optimum)",
            "50/50",
            format!("{}%", fnum(share * 100.0, 0)),
            (0.45..=0.55).contains(&share),
        ));
    }

    // ---- Fig. 5: the SC trace ----------------------------------------
    {
        let ours = run_with_config(&mut StreamCluster::paper(seed), GreenGpuConfig::scaling_only(), sweep());
        let end = SimTime::ZERO + ours.total_time;
        let half = SimTime::from_micros(end.as_micros() / 2);
        let settled_mem = ours.platform.gpu().mem().trace().mean(half, end);
        claims.push(claim(
            "Fig. 5b (SC memory clock)",
            "converges to 820 MHz",
            format!("{} MHz (mean, 2nd half)", fnum(settled_mem, 0)),
            (settled_mem - 820.0).abs() < 25.0,
        ));
    }

    // ---- Fig. 6: scaling savings -------------------------------------
    {
        let rows = fig6::compute(seed);
        let n = rows.len() as f64;
        let avg = rows.iter().map(|r| r.gpu_saving).sum::<f64>() / n;
        let max = rows.iter().map(|r| r.gpu_saving).fold(f64::MIN, f64::max);
        claims.push(claim(
            "Fig. 6a (average GPU saving)",
            "5.97%",
            pct(avg),
            (0.03..0.12).contains(&avg),
        ));
        claims.push(claim(
            "Fig. 6a (max GPU saving)",
            "up to 14.53%",
            pct(max),
            (0.06..0.25).contains(&max),
        ));
        let avg_time = rows.iter().map(|r| r.time_delta).sum::<f64>() / n;
        claims.push(claim(
            "Fig. 6b (execution-time overhead)",
            "+2.95%",
            format!("+{}", pct(avg_time)),
            (-0.01..0.06).contains(&avg_time),
        ));
        let get = |name: &str| rows.iter().find(|r| r.name == name).expect("row").gpu_saving;
        claims.push(claim(
            "Fig. 6 ordering (PF > bfs)",
            "low-utilization saves most, saturated least",
            format!("PF {} vs bfs {}", pct(get("PF")), pct(get("bfs"))),
            get("PF") > get("bfs"),
        ));
    }

    // ---- Fig. 7: division convergence --------------------------------
    {
        let km = run_with_config(&mut KMeans::paper(seed), GreenGpuConfig::division_only(), sweep());
        let share = km.iterations.last().expect("iterations").cpu_share;
        claims.push(claim(
            "Fig. 7a (kmeans division)",
            "converges to 20/80",
            format!("{}%", fnum(share * 100.0, 0)),
            (share - 0.20).abs() < 1e-9,
        ));
        let hs = run_with_config(&mut Hotspot::paper(seed), GreenGpuConfig::division_only(), sweep());
        let share = hs.iterations.last().expect("iterations").cpu_share;
        claims.push(claim(
            "Fig. 7b (hotspot division)",
            "converges exactly to 50/50",
            format!("{}%", fnum(share * 100.0, 0)),
            (share - 0.50).abs() < 1e-9,
        ));
    }

    // ---- Fig. 8: the holistic headline --------------------------------
    {
        let mut savings = Vec::new();
        let mut overheads = Vec::new();
        for make in [
            &(|s| Box::new(Hotspot::paper(s)) as Box<dyn greengpu_workloads::Workload>)
                as &dyn Fn(u64) -> Box<dyn greengpu_workloads::Workload>,
            &(|s| Box::new(KMeans::paper(s)) as Box<dyn greengpu_workloads::Workload>),
        ] {
            let base = run_best_performance_with(make(seed).as_mut(), sweep());
            let green = run_with_config(make(seed).as_mut(), GreenGpuConfig::holistic(), sweep());
            let division = run_with_config(make(seed).as_mut(), GreenGpuConfig::division_only(), sweep());
            let scaling = run_with_config(make(seed).as_mut(), GreenGpuConfig::scaling_only(), sweep());
            savings.push(1.0 - green.total_energy_j() / base.total_energy_j());
            overheads.push(green.total_time.as_secs_f64() / division.total_time.as_secs_f64() - 1.0);
            assert!(green.total_energy_j() <= division.total_energy_j() * 1.001);
            assert!(green.total_energy_j() <= scaling.total_energy_j() * 1.001);
        }
        let headline = savings.iter().sum::<f64>() / savings.len() as f64;
        claims.push(claim(
            "Fig. 8 headline (vs Rodinia default)",
            "21.04% average",
            pct(headline),
            (0.12..0.40).contains(&headline),
        ));
        let overhead = overheads.iter().cloned().fold(f64::MIN, f64::max);
        claims.push(claim(
            "§VII-C (holistic time vs division-only)",
            "+1.7%",
            format!("{}{}", if overhead >= 0.0 { "+" } else { "" }, pct(overhead)),
            overhead.abs() < 0.05,
        ));
    }

    claims
}

/// Runs the scorecard experiment.
pub fn run(seed: u64) -> ExperimentOutput {
    let claims = evaluate(seed);
    let mut t = Table::new(
        "Paper-claims scorecard (machine-checked acceptance bands)",
        &["claim", "paper", "measured", "verdict"],
    );
    let mut passed = 0;
    for c in &claims {
        if c.pass {
            passed += 1;
        }
        t.row(&[
            c.source.to_string(),
            c.paper.clone(),
            c.measured.clone(),
            if c.pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "scorecard",
        title: "Every quantitative claim, measured and judged",
        tables: vec![t],
        notes: vec![format!(
            "{passed}/{} claims within their acceptance bands.",
            claims.len()
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_passes() {
        let claims = evaluate(7);
        let failures: Vec<&Claim> = claims.iter().filter(|c| !c.pass).collect();
        assert!(
            failures.is_empty(),
            "failed claims: {:?}",
            failures
                .iter()
                .map(|c| format!("{} (paper {}, measured {})", c.source, c.paper, c.measured))
                .collect::<Vec<_>>()
        );
        assert!(claims.len() >= 12, "scorecard shrank to {}", claims.len());
    }

    #[test]
    fn scorecard_is_seed_stable() {
        // Claims must pass for several seeds — the acceptance bands are not
        // tuned to one lucky draw.
        for seed in [1, 42, 20_120_910] {
            let claims = evaluate(seed);
            assert!(claims.iter().all(|c| c.pass), "seed {seed} broke a claim");
        }
    }
}
