//! §VII-B — exhaustive static-division search vs the dynamic algorithm.
//!
//! The paper tests every static division from 0/100 to 100/0 CPU/GPU in
//! steps of 5 and compares: kmeans' energy minimum is 15/85 while the
//! dynamic algorithm converges to 20/80; hotspot's minimum is 50/50 and
//! the dynamic algorithm lands exactly there, capturing 99 % of the
//! maximum saving with 5.45 % longer execution than the optimal static
//! division.

use super::{pct, signed_pct, ExperimentOutput};
use greengpu::baselines::{run_with_config, static_search};
use greengpu::GreenGpuConfig;
use greengpu_runtime::RunConfig;
use greengpu_sim::{table::fnum, Table};
use greengpu_workloads::hotspot::Hotspot;
use greengpu_workloads::kmeans::KMeans;
use greengpu_workloads::Workload;

/// Comparison of dynamic division against the static oracle for one
/// workload.
pub struct SearchResult {
    /// Workload name.
    pub name: &'static str,
    /// Energy-minimum static CPU share.
    pub optimal_share: f64,
    /// Static-optimal energy, joules.
    pub optimal_energy_j: f64,
    /// Static-optimal time, seconds.
    pub optimal_time_s: f64,
    /// All-GPU (0 % share) energy, joules.
    pub gpu_only_energy_j: f64,
    /// Dynamic algorithm's converged share.
    pub dynamic_share: f64,
    /// Dynamic algorithm's energy, joules.
    pub dynamic_energy_j: f64,
    /// Dynamic algorithm's time, seconds.
    pub dynamic_time_s: f64,
}

impl SearchResult {
    /// Fraction of the maximum possible saving the dynamic algorithm
    /// captured (paper: 99 % for hotspot).
    pub fn saving_capture(&self) -> f64 {
        let max_saving = self.gpu_only_energy_j - self.optimal_energy_j;
        let dyn_saving = self.gpu_only_energy_j - self.dynamic_energy_j;
        dyn_saving / max_saving
    }

    /// Execution-time overhead vs the optimal static division (paper:
    /// +5.45 %).
    pub fn time_overhead(&self) -> f64 {
        self.dynamic_time_s / self.optimal_time_s - 1.0
    }
}

/// Runs the search for one workload factory.
pub fn search<F>(name: &'static str, mut make: F) -> SearchResult
where
    F: FnMut() -> Box<dyn Workload>,
{
    let (points, best) = static_search(|| make(), 0.05, 0.90);
    let dynamic = run_with_config(make().as_mut(), GreenGpuConfig::division_only(), RunConfig::sweep());
    SearchResult {
        name,
        optimal_share: points[best].cpu_share,
        optimal_energy_j: points[best].energy_j,
        optimal_time_s: points[best].time_s,
        gpu_only_energy_j: points[0].energy_j,
        dynamic_share: dynamic.iterations.last().expect("iterations").cpu_share,
        dynamic_energy_j: dynamic.total_energy_j(),
        dynamic_time_s: dynamic.total_time.as_secs_f64(),
    }
}

/// Runs the §VII-B comparison for kmeans and hotspot.
pub fn run(seed: u64) -> ExperimentOutput {
    let km = search("kmeans", || Box::new(KMeans::paper(seed)));
    let hs = search("hotspot", || Box::new(Hotspot::paper(seed)));

    let mut t = Table::new(
        "Static-division search (step 5%) vs the dynamic division algorithm",
        &[
            "workload",
            "optimal static (CPU/GPU)",
            "dynamic converges to",
            "saving captured",
            "time vs optimal",
        ],
    );
    for r in [&km, &hs] {
        t.row(&[
            r.name.to_string(),
            format!(
                "{}/{}",
                fnum(r.optimal_share * 100.0, 0),
                fnum((1.0 - r.optimal_share) * 100.0, 0)
            ),
            format!(
                "{}/{}",
                fnum(r.dynamic_share * 100.0, 0),
                fnum((1.0 - r.dynamic_share) * 100.0, 0)
            ),
            pct(r.saving_capture()),
            signed_pct(r.time_overhead()),
        ]);
    }

    ExperimentOutput {
        id: "static_search",
        title: "§VII-B — how close the light-weight division heuristic gets to the oracle",
        tables: vec![t],
        notes: vec![
            format!(
                "kmeans: optimal {}/{}, dynamic {}/{} (paper: optimal 15/85, dynamic 20/80).",
                fnum(km.optimal_share * 100.0, 0),
                fnum((1.0 - km.optimal_share) * 100.0, 0),
                fnum(km.dynamic_share * 100.0, 0),
                fnum((1.0 - km.dynamic_share) * 100.0, 0)
            ),
            format!(
                "hotspot: optimal {}/{}, dynamic {}/{}, capturing {} of the maximum saving (paper: 50/50 exactly, 99%).",
                fnum(hs.optimal_share * 100.0, 0),
                fnum((1.0 - hs.optimal_share) * 100.0, 0),
                fnum(hs.dynamic_share * 100.0, 0),
                fnum((1.0 - hs.dynamic_share) * 100.0, 0),
                pct(hs.saving_capture())
            ),
            format!(
                "Division-only time overhead vs the optimal static division: kmeans {}, hotspot {} (paper: +5.45% overall).",
                signed_pct(km.time_overhead()),
                signed_pct(hs.time_overhead())
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_matches_paper_optimum_and_convergence() {
        let r = search("kmeans", || Box::new(KMeans::paper(3)));
        // Paper: energy-minimum at 15/85, dynamic at 20/80.
        assert!(
            (0.10..=0.20).contains(&r.optimal_share),
            "kmeans optimal at {}",
            r.optimal_share
        );
        assert!((r.dynamic_share - 0.20).abs() < 1e-9, "dynamic at {}", r.dynamic_share);
    }

    #[test]
    fn hotspot_matches_paper_optimum_and_convergence() {
        let r = search("hotspot", || Box::new(Hotspot::paper(3)));
        assert!(
            (0.45..=0.55).contains(&r.optimal_share),
            "hotspot optimal at {}",
            r.optimal_share
        );
        assert!((r.dynamic_share - 0.50).abs() < 1e-9, "dynamic at {}", r.dynamic_share);
    }

    #[test]
    fn dynamic_captures_most_of_the_possible_saving() {
        let r = search("hotspot", || Box::new(Hotspot::paper(3)));
        // Paper: 99% (we accept ≥85% — the simulated run is shorter, so
        // convergence overhead weighs more).
        assert!(r.saving_capture() > 0.85, "captured {}", r.saving_capture());
    }

    #[test]
    fn dynamic_time_overhead_is_single_digit_percent() {
        let r = search("hotspot", || Box::new(Hotspot::paper(3)));
        // Paper: +5.45%.
        assert!(
            (0.0..0.10).contains(&r.time_overhead()),
            "time overhead {}",
            r.time_overhead()
        );
    }
}
