//! Training — phase-cycling ML workloads under phase-aware policies.
//!
//! Not a paper figure: the ICPP 2012 suite is stationary kernels, but
//! the deployment the paper's scaler targets increasingly looks like ML
//! training — forward/backward/optimizer stages cycling with sharply
//! different compute/memory intensity. This experiment runs the
//! long-horizon [`TrainingLoop`] under every Tier-2 policy and measures
//! who tracks the per-phase sweet spot:
//!
//! 1. **Head-to-head × phase period** (policy × stage length): energy,
//!    time, switches, best-static regret, and *oracle regret* — charged
//!    loss minus the per-interval closed-form sweet-spot pair's loss
//!    (the dynamic comparator the analytical oracle predicts).
//! 2. **Detector ablation**: the contextual bandits with the phase
//!    detector live vs disabled (`max_phases = 1`, one inner — the
//!    same learner stripped of context).
//!
//! The bandit rows run with switching shaping disabled (`-nosw`): the
//! switching penalty freezes a learner on whichever arm its forced
//! exploration happened to end (the one-step gain never amortizes the
//! myopic reclock cost), so the matched contextual-vs-flat comparison
//! is between pure learners; the shaping story lives in the `policies`
//! experiment. The acceptance claim — each contextual bandit ends with
//! strictly lower oracle regret than its context-free counterpart — is
//! asserted at the default seed in this module's tests.
//!
//! `run_custom` (the CI smoke behind `--nodes/--seconds/--engine`)
//! drives a training-only job mix through the fleet tier so the
//! serial/event/parallel engines can be byte-compared on training
//! output.

use super::{signed_pct, ExperimentOutput};
use greengpu::baselines::{run_with_policy, PolicyOutcome};
use greengpu::{
    pair_model_for, DeadlineParams, Exp3Params, FreqPolicy, GreenGpuConfig, PairModel, PhaseDetectorParams, PolicySpec,
    SwitchingParams, UcbParams, WmaParams,
};
use greengpu_cluster::{run_fleet, EngineKind, FleetConfig, Policy};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_runtime::RunConfig;
use greengpu_sim::{table::fnum, SimDuration, SplitMix64, Table};
use greengpu_workloads::training::TrainingLoop;
use std::collections::BTreeMap;

/// Stage lengths swept, in iterations per forward/backward/optimizer
/// stage. Iterations run ≈4–7 s at paper scale, so these span phases of
/// roughly 3 to 20 DVFS intervals.
pub const PHASE_PERIODS: [usize; 3] = [2, 4, 8];

/// The policies of the sweep, in presentation order.
const POLICIES: [&str; 6] = ["wma", "exp3-nosw", "ucb-nosw", "ctx-exp3", "ctx-ucb", "deadline"];

/// Training iterations per run: long enough (≈700 DVFS intervals) for
/// every contextual inner to leave forced exploration of the 36-pair
/// grid (3 inners × 36 arms of cold start) with room to exploit the
/// per-phase structure it bought.
const ITERS: usize = 360;

/// Detector tuning for measured (rather than synthetic) utilization:
/// iterations are not aligned to the 3 s control interval, so boundary
/// intervals average two adjacent stages. A 3-tick window rejects such
/// isolated mixed observations (the fast re-recognition path keeps
/// recurring-phase lag at one tick regardless). The threshold is raised
/// to 0.35 deliberately: every phase slot is another 36-arm cold start,
/// and the optimizer stage is too short-lived (cheap iterations → few
/// control intervals) to ever pay one back, so the coarse threshold
/// folds it into the nearby backward phase — compute-bound forward
/// (share distance ≈ 0.9) still splits off — and the learners run two
/// sweeps instead of three.
fn detector() -> PhaseDetectorParams {
    PhaseDetectorParams {
        window: 3,
        threshold: 0.35,
        min_dwell: 2,
        max_phases: 3,
    }
}

/// The long-horizon training preset every policy runs: paper-scale
/// iteration cost, `period` iterations per stage.
fn training_run(period: usize, seed: u64) -> TrainingLoop {
    TrainingLoop::with_params(128, ITERS, period, 1.0, seed)
}

/// Unshaped bandit parameters — see the module docs for why the
/// matched comparison disables switching shaping.
fn exp3_nosw() -> Exp3Params {
    Exp3Params {
        switching: SwitchingParams::none(),
        ..Exp3Params::default()
    }
}

/// The UCB rows also drop the exploration coefficient to `c = 0.02`
/// (matched on both sides): within one training stage the per-arm loss
/// is essentially deterministic, so one forced sweep already yields
/// exact means and the default radius (sized for the mixed-kernel
/// stream) would keep every learner rotating near-ties forever.
fn ucb_nosw() -> UcbParams {
    UcbParams {
        c: 0.02,
        switching: SwitchingParams::none(),
        ..UcbParams::default()
    }
}

/// Builds one policy instance for the 6×6 grid, optionally overriding
/// the contextual policies' detector (the ablation hook).
fn build_policy(kind: &str, seed: u64, model: &PairModel, detector: PhaseDetectorParams) -> Box<dyn FreqPolicy> {
    // The contextual policies get the testbed's clock tables so phase
    // detection runs on demand shares — utilization is measured at the
    // applied clocks, and without the rescale the bandits' own
    // exploration reclocks masquerade as phase changes.
    let gpu = geforce_8800_gtx();
    let levels = Some((gpu.core_levels_mhz.clone(), gpu.mem_levels_mhz.clone()));
    let spec = match kind {
        "wma" => PolicySpec::Wma(WmaParams::default()),
        "exp3-nosw" => PolicySpec::Exp3(exp3_nosw()),
        "ucb-nosw" => PolicySpec::Ucb(ucb_nosw()),
        "ctx-exp3" => PolicySpec::ContextualExp3 {
            inner: exp3_nosw(),
            detector,
            levels,
        },
        "ctx-ucb" => PolicySpec::ContextualUcb {
            inner: ucb_nosw(),
            detector,
            levels,
        },
        "deadline" => PolicySpec::Deadline(DeadlineParams {
            time_budget_s: model.peak_time_s() * 1.25,
            ..DeadlineParams::default()
        }),
        other => unreachable!("unknown policy {other}"),
    };
    spec.build(6, 6, seed, Some(model)).expect("sweep specs are valid")
}

/// Runs one (policy, phase period) cell.
fn run_cell(kind: &str, period: usize, wl_seed: u64, policy_seed: u64, detector: PhaseDetectorParams) -> PolicyOutcome {
    let gpu = geforce_8800_gtx();
    let model = pair_model_for(&training_run(period, wl_seed), &gpu);
    let policy = build_policy(kind, policy_seed, &model, detector);
    let mut wl = training_run(period, wl_seed);
    run_with_policy(&mut wl, GreenGpuConfig::scaling_only(), RunConfig::sweep(), policy)
}

/// Runs every (policy, period) pair once. Each period gets one derived
/// workload seed (identical across policies) and each policy one
/// derived decision-stream seed.
fn sweep(seed: u64) -> BTreeMap<(usize, String), PolicyOutcome> {
    let mut root = SplitMix64::new(seed);
    let mut out = BTreeMap::new();
    for period in PHASE_PERIODS {
        let wl_seed = root.next_u64();
        for kind in POLICIES {
            let policy_seed = root.next_u64();
            let outcome = run_cell(kind, period, wl_seed, policy_seed, detector());
            out.insert((period, kind.to_string()), outcome);
        }
    }
    out
}

/// Column contract for the head-to-head CSV, pinned against
/// EXPERIMENTS.md by the `contract_drift` lint rule.
// lint:contract(training_head_to_head_columns)
const HEAD_TO_HEAD_COLUMNS: [&str; 9] = [
    "phase_period",
    "policy",
    "GPU energy (kJ)",
    "system energy (kJ)",
    "time (s)",
    "switches",
    "regret",
    "oracle regret",
    "vs wma energy",
];

/// Table 1: the head-to-head sweep across phase periods.
fn head_to_head_table(results: &BTreeMap<(usize, String), PolicyOutcome>) -> Table {
    let mut t = Table::new(
        format!("Training head-to-head (scaling tier, {ITERS} iterations, paper-scale cost)"),
        &HEAD_TO_HEAD_COLUMNS,
    );
    for period in PHASE_PERIODS {
        let wma_energy = results[&(period, "wma".to_string())].report.total_energy_j();
        for kind in POLICIES {
            let o = &results[&(period, kind.to_string())];
            t.row(&[
                period.to_string(),
                o.policy.clone(),
                fnum(o.report.gpu_energy_j / 1e3, 2),
                fnum(o.report.total_energy_j() / 1e3, 2),
                fnum(o.report.total_time.as_secs_f64(), 1),
                o.telemetry.switches.to_string(),
                fnum(o.telemetry.regret, 3),
                fnum(o.telemetry.oracle_regret, 3),
                signed_pct(o.report.total_energy_j() / wma_energy - 1.0),
            ]);
        }
    }
    t
}

/// Table 2: the contextual bandits with the detector live vs disabled.
/// Seeds mirror [`sweep`] exactly so the "on" column is the same run
/// that appears in table 1.
fn detector_ablation_table(seed: u64, results: &BTreeMap<(usize, String), PolicyOutcome>) -> Table {
    let mut t = Table::new(
        "Phase-detector ablation (same contextual learner, detector on vs off)",
        &[
            "phase_period",
            "policy",
            "oracle regret (detector on)",
            "oracle regret (detector off)",
            "switches (on)",
            "switches (off)",
        ],
    );
    let mut root = SplitMix64::new(seed);
    for period in PHASE_PERIODS {
        let wl_seed = root.next_u64();
        let mut seeds = BTreeMap::new();
        for kind in POLICIES {
            seeds.insert(kind, root.next_u64());
        }
        for kind in ["ctx-exp3", "ctx-ucb"] {
            let on = &results[&(period, kind.to_string())];
            let off = run_cell(kind, period, wl_seed, seeds[kind], PhaseDetectorParams::disabled());
            t.row(&[
                period.to_string(),
                on.policy.clone(),
                fnum(on.telemetry.oracle_regret, 3),
                fnum(off.telemetry.oracle_regret, 3),
                on.telemetry.switches.to_string(),
                off.telemetry.switches.to_string(),
            ]);
        }
    }
    t
}

/// Runs the full training experiment.
pub fn run(seed: u64) -> ExperimentOutput {
    let results = sweep(seed);
    ExperimentOutput {
        id: "training",
        title: "Phase-cycling training workloads: contextual bandits vs context-free policies",
        tables: vec![head_to_head_table(&results), detector_ablation_table(seed, &results)],
        notes: vec![
            "Oracle regret charges each policy against the per-interval closed-form sweet-spot pair \
             (the analytical min-EDP oracle), the dynamic comparator that lower-bounds every static pair."
                .to_string(),
            "The contextual bandits keep one inner learner per detected phase; at the default seed each \
             ends with strictly lower oracle regret than its context-free counterpart on every phase period."
                .to_string(),
            "Bandit rows run unshaped (-nosw): switching penalties freeze a 36-arm learner on whichever \
             arm forced exploration ends, which would confound the contextual-vs-flat comparison."
                .to_string(),
            "The detector-off ablation (max_phases = 1) collapses a contextual policy to a single inner — \
             the regret it gives back is what phase awareness alone buys."
                .to_string(),
        ],
    }
}

/// The CI smoke behind `--experiment training --nodes/--seconds/--engine`:
/// a training-only job mix through the fleet tier, so the engines can be
/// byte-compared on training output.
pub fn run_custom(seed: u64, nodes: usize, seconds: u64, engine: EngineKind) -> ExperimentOutput {
    let horizon = SimDuration::from_secs(seconds);
    let mut cfg = FleetConfig::homogeneous(nodes, 0.80, Policy::LeastLoaded, horizon, seed).with_engine(engine);
    cfg.arrivals.mix = vec![("training".to_string(), 1.0)];
    let r = run_fleet(&cfg);
    let mut summary = Table::new(
        format!("Training fleet smoke — {nodes} nodes, 0.80 budget, {seconds} s, training-only mix"),
        &[
            "nodes",
            "completed",
            "rejected",
            "deadline_misses",
            "mean_wait_s",
            "mean_turnaround_s",
            "gpu_energy_per_job_j",
            "cap_violations",
        ],
    );
    summary.row(&[
        nodes.to_string(),
        r.completed.len().to_string(),
        r.rejected.to_string(),
        r.deadline_misses.to_string(),
        fnum(r.mean_wait_s(), 3),
        fnum(r.mean_turnaround_s(), 3),
        fnum(r.gpu_energy_per_job_j(), 1),
        r.cap_violations.to_string(),
    ]);
    let trace = r.trace.to_table("Training fleet smoke — per-interval trace");
    ExperimentOutput {
        id: "training",
        title: "Phase-cycling training workloads (fleet smoke configuration)",
        tables: vec![summary, trace],
        notes: vec![format!(
            "smoke: {} training jobs completed on {} nodes over {} s.",
            r.completed.len(),
            nodes,
            seconds,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::DEFAULT_SEED;

    /// The acceptance cell: at the default seed, each contextual bandit
    /// ends with strictly lower oracle regret than its context-free
    /// counterpart (same inner parameters) on every phase period.
    #[test]
    fn contextual_bandits_beat_context_free_at_default_seed() {
        let results = sweep(DEFAULT_SEED);
        for period in PHASE_PERIODS {
            for (ctx, flat) in [("ctx-exp3", "exp3-nosw"), ("ctx-ucb", "ucb-nosw")] {
                let r_ctx = results[&(period, ctx.to_string())].telemetry.oracle_regret;
                let r_flat = results[&(period, flat.to_string())].telemetry.oracle_regret;
                assert!(
                    r_ctx < r_flat,
                    "period {period}: {ctx} oracle regret {r_ctx} vs {flat} {r_flat}"
                );
            }
        }
    }

    #[test]
    fn head_to_head_covers_every_policy_and_period() {
        let results = sweep(1);
        assert_eq!(results.len(), PHASE_PERIODS.len() * POLICIES.len());
        let csv = head_to_head_table(&results).to_csv();
        assert_eq!(csv.lines().count(), 1 + PHASE_PERIODS.len() * POLICIES.len());
        for kind in [
            "wma",
            "exp3-nosw",
            "ucb-nosw",
            "ctx-exp3-nosw",
            "ctx-ucb-nosw",
            "deadline",
        ] {
            assert!(csv.contains(kind), "{kind} missing from table");
        }
    }

    #[test]
    fn experiment_is_byte_deterministic_per_seed() {
        let a: Vec<String> = run(7).tables.iter().map(|t| t.to_csv()).collect();
        let b: Vec<String> = run(7).tables.iter().map(|t| t.to_csv()).collect();
        assert_eq!(a, b, "same seed must reproduce the CSVs byte-for-byte");
    }

    #[test]
    fn fleet_smoke_is_engine_invariant() {
        let a = run_custom(7, 2, 30, EngineKind::Serial);
        let b = run_custom(7, 2, 30, EngineKind::Parallel { workers: 2 });
        let csv = |o: &ExperimentOutput| o.tables.iter().map(|t| t.to_csv()).collect::<Vec<_>>();
        assert_eq!(csv(&a), csv(&b), "engines must be byte-identical");
        assert!(!a.tables[0].to_csv().is_empty());
    }
}
