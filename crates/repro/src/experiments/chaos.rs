//! Chaos — the fleet failure-lifecycle sweep.
//!
//! Not a paper figure: the ICPP 2012 testbed never crashes. This
//! experiment drives the `greengpu-cluster` failure machinery — seeded
//! crash/thermal/blackout schedules, the node lifecycle FSM, learner
//! checkpointing, circuit breakers, and bounded-retry re-dispatch — and
//! reports what the paper's learners cost to kill and restart. Four
//! tables come out:
//!
//! 1. the chaos sweep: crash rate × checkpoint period × Tier-2 policy
//!    (crashes, warm/cold restarts, jobs lost/retried/dead-lettered,
//!    cap violations, recovery intervals);
//! 2. warm vs cold restart: checkpoint period swept at a fixed crash
//!    rate, isolating how much learner state is worth on restart;
//! 3. the per-crash power audit: every crash's cap before and at the
//!    first re-apportionment after it (reclamation within one interval);
//! 4. a representative per-interval trace of one chaotic fleet.
//!
//! Everything derives from the one seed, so the CSVs are byte-identical
//! across runs.

use super::ExperimentOutput;
use greengpu::{Exp3Params, PolicySpec};
use greengpu_cluster::{run_fleet, EngineKind, FleetConfig, FleetReport, LifecycleParams, NodeConfig, Policy};
use greengpu_hw::ChaosPlan;
use greengpu_sim::{table::fnum, SimDuration, Table};

/// Crash rates swept, per node-second.
pub const CRASH_RATES: [f64; 2] = [0.01, 0.03];
/// Checkpoint periods swept (control ticks); `None` = cold restarts.
pub const CHECKPOINT_PERIODS: [Option<u64>; 4] = [None, Some(5), Some(10), Some(20)];
/// Sweep horizon, seconds.
pub const HORIZON_S: u64 = 120;
/// Fleet size for the sweep.
pub const NODES: usize = 4;
/// Budget fraction of aggregate peak-pair power.
pub const BUDGET_FRAC: f64 = 0.75;

const SWEEP_HEADERS: [&str; 14] = [
    "crash_rate",
    "checkpoint",
    "policy",
    "crashes",
    "warm_restarts",
    "cold_restarts",
    "jobs_lost",
    "jobs_retried",
    "dead_lettered",
    "completed",
    "cap_violations",
    "breaker_trips",
    "warm_recovery_ivals",
    "cold_recovery_ivals",
];

/// Stable CSV label for a checkpoint period.
fn ckpt_label(period: Option<u64>) -> String {
    match period {
        None => "cold".to_string(),
        Some(k) => format!("k{k}"),
    }
}

/// Stable CSV label for an `Option<f64>` metric (`-` when absent).
fn opt_num(v: Option<f64>, decimals: usize) -> String {
    match v {
        Some(x) => fnum(x, decimals),
        None => "-".to_string(),
    }
}

/// A chaos fleet config: crashes at `rate`, plus light thermal and
/// blackout channels so all three failure modes compose in every run.
fn chaos_cfg(rate: f64, period: Option<u64>, policy_spec: &PolicySpec, horizon: SimDuration, seed: u64) -> FleetConfig {
    let nodes: Vec<NodeConfig> = (0..NODES)
        .map(|_| NodeConfig::default_node().with_freq_policy(policy_spec.clone()))
        .collect();
    let lifecycle = match period {
        None => LifecycleParams::default().cold_restarts(),
        Some(k) => LifecycleParams::default().with_checkpoint_period(k),
    };
    FleetConfig::from_nodes(nodes, BUDGET_FRAC, Policy::LeastLoaded, horizon, seed)
        .with_chaos(
            ChaosPlan::crashes_only(seed ^ 0xC4A05, rate, (2.0, 6.0))
                .with_thermal(0.005, (3.0, 8.0))
                .with_blackouts(0.005, (2.0, 5.0)),
        )
        .with_lifecycle(lifecycle)
}

fn sweep_row(table: &mut Table, rate: f64, period: Option<u64>, policy: &str, r: &FleetReport) {
    table.row(&[
        fnum(rate, 3),
        ckpt_label(period),
        policy.to_string(),
        r.crashes.to_string(),
        r.warm_restarts.to_string(),
        r.cold_restarts.to_string(),
        r.jobs_lost.to_string(),
        r.jobs_retried.to_string(),
        r.dead_letter.len().to_string(),
        r.completed.len().to_string(),
        r.cap_violations.to_string(),
        r.breaker_trips.to_string(),
        opt_num(r.mean_recovery_intervals(true), 2),
        opt_num(r.mean_recovery_intervals(false), 2),
    ]);
}

/// The full sweep behind `--experiment chaos`.
pub fn run(seed: u64) -> ExperimentOutput {
    let horizon = SimDuration::from_secs(HORIZON_S);
    let policies: [(&str, PolicySpec); 2] = [
        ("wma", PolicySpec::default()),
        ("exp3", PolicySpec::Exp3(Exp3Params::default())),
    ];

    // Table 1: crash rate × checkpoint (cold vs k10) × policy.
    let mut sweep = Table::new(
        format!("Chaos sweep — {NODES} nodes, {BUDGET_FRAC} budget, {HORIZON_S} s horizon"),
        &SWEEP_HEADERS,
    );
    for &rate in &CRASH_RATES {
        for period in [None, Some(10u64)] {
            for (name, spec) in &policies {
                let cfg = chaos_cfg(rate, period, spec, horizon, seed);
                let r = run_fleet(&cfg);
                sweep_row(&mut sweep, rate, period, name, &r);
            }
        }
    }

    // Table 2: warm vs cold, checkpoint period swept at the high crash
    // rate under the paper's WMA.
    let mut warmcold = Table::new(
        format!(
            "Warm vs cold restart — {NODES} nodes, crash rate {} /node-s, WMA",
            fnum(CRASH_RATES[1], 3)
        ),
        &[
            "checkpoint",
            "crashes",
            "warm_restarts",
            "cold_restarts",
            "restore_failures",
            "warm_recovery_ivals",
            "cold_recovery_ivals",
            "completed",
            "dead_lettered",
        ],
    );
    let mut warm_ivals = None;
    let mut cold_ivals = None;
    for &period in &CHECKPOINT_PERIODS {
        let cfg = chaos_cfg(CRASH_RATES[1], period, &PolicySpec::default(), horizon, seed);
        let r = run_fleet(&cfg);
        if period == Some(5) {
            warm_ivals = r.mean_recovery_intervals(true);
        }
        if period.is_none() {
            cold_ivals = r.mean_recovery_intervals(false);
        }
        warmcold.row(&[
            ckpt_label(period),
            r.crashes.to_string(),
            r.warm_restarts.to_string(),
            r.cold_restarts.to_string(),
            r.restore_failures.to_string(),
            opt_num(r.mean_recovery_intervals(true), 2),
            opt_num(r.mean_recovery_intervals(false), 2),
            r.completed.len().to_string(),
            r.dead_letter.len().to_string(),
        ]);
    }

    // Table 3: the per-crash power audit of one chaotic run.
    let audit_cfg = chaos_cfg(CRASH_RATES[1], Some(10), &PolicySpec::default(), horizon, seed);
    let audit_run = run_fleet(&audit_cfg);
    let mut audit = Table::new(
        "Per-crash power audit — cap before the crash vs first re-apportionment after",
        &["crash", "node", "at_s", "cap_before_mw", "cap_after_mw"],
    );
    let mut reclaimed = 0usize;
    for (i, rec) in audit_run.crash_records.iter().enumerate() {
        if rec.cap_after_mw == Some(0) {
            reclaimed += 1;
        }
        audit.row(&[
            i.to_string(),
            rec.node.to_string(),
            fnum(rec.at_s, 3),
            rec.cap_before_mw.to_string(),
            rec.cap_after_mw.map_or_else(|| "-".to_string(), |c| c.to_string()),
        ]);
    }

    // Table 4: one chaotic fleet's per-interval trace.
    let trace_cfg = chaos_cfg(
        CRASH_RATES[1],
        Some(10),
        &PolicySpec::default(),
        SimDuration::from_secs(60),
        seed,
    );
    let trace_run = run_fleet(&trace_cfg);
    let trace = trace_run
        .trace
        .to_table("Per-interval trace — 4 nodes, chaos, k10 checkpoints, 60 s");

    let mut notes = Vec::new();
    notes.push(format!(
        "cap reclamation: {} of {} crashes saw the dark node's cap drop to 0 mW at the first \
         re-apportionment after the crash (the rest landed after the final tick).",
        reclaimed,
        audit_run.crash_records.len(),
    ));
    if let (Some(w), Some(c)) = (warm_ivals, cold_ivals) {
        notes.push(format!(
            "warm restarts pay off: restoring a k5 checkpoint re-reaches the pre-crash argmax \
             pair in {} intervals on average vs {} cold (the learner re-explores from uniform \
             weights otherwise).",
            fnum(w, 2),
            fnum(c, 2),
        ));
    }
    notes.push(format!(
        "no job silently lost: every admitted job is completed, dead-lettered, or still in \
         flight at the horizon ({} dead-lettered in the audit run after {} retries).",
        audit_run.dead_letter.len(),
        audit_run.jobs_retried,
    ));

    ExperimentOutput {
        id: "chaos",
        title: "Fleet failure lifecycle (chaos harness)",
        tables: vec![sweep, warmcold, audit, trace],
        notes,
    }
}

/// A single small chaotic fleet for the CI smoke: `nodes` default nodes
/// at 0.80 budget under crashes (+ thermal + blackouts) for `seconds`
/// simulated seconds, k5 checkpoints. Emits the summary and the trace.
pub fn run_custom(seed: u64, nodes: usize, seconds: u64, engine: EngineKind) -> ExperimentOutput {
    let horizon = SimDuration::from_secs(seconds);
    let node_cfgs: Vec<NodeConfig> = (0..nodes).map(|_| NodeConfig::default_node()).collect();
    let cfg = FleetConfig::from_nodes(node_cfgs, 0.80, Policy::LeastLoaded, horizon, seed)
        .with_chaos(
            ChaosPlan::crashes_only(seed ^ 0xC4A05, 0.05, (2.0, 5.0))
                .with_thermal(0.01, (2.0, 5.0))
                .with_blackouts(0.01, (2.0, 4.0)),
        )
        .with_lifecycle(LifecycleParams::default().with_checkpoint_period(5))
        .with_engine(engine);
    let r = run_fleet(&cfg);
    let mut summary = Table::new(
        format!("Chaos smoke — {nodes} nodes, 0.80 budget, {seconds} s"),
        &SWEEP_HEADERS,
    );
    sweep_row(&mut summary, 0.05, Some(5), "wma", &r);
    let trace = r.trace.to_table("Chaos smoke — per-interval trace");
    ExperimentOutput {
        id: "chaos",
        title: "Fleet failure lifecycle (smoke configuration)",
        tables: vec![summary, trace],
        notes: vec![format!(
            "smoke: {} crashes ({} warm / {} cold restarts), {} jobs lost, {} retried, {} \
             dead-lettered, {} completed over {seconds} s.",
            r.crashes,
            r.warm_restarts,
            r.cold_restarts,
            r.jobs_lost,
            r.jobs_retried,
            r.dead_letter.len(),
            r.completed.len(),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_configuration_is_deterministic_and_crashes() {
        let a = run_custom(7, 3, 40, EngineKind::Serial);
        let b = run_custom(7, 3, 40, EngineKind::EventDriven);
        let csv = |o: &ExperimentOutput| o.tables.iter().map(Table::to_csv).collect::<Vec<_>>();
        assert_eq!(
            csv(&a),
            csv(&b),
            "same seed must reproduce the smoke bytes, engine-independently"
        );
        assert_eq!(a.tables.len(), 2);
        // The smoke's crash rate (0.05/node-s × 3 nodes × 40 s ≈ 6) must
        // actually exercise the lifecycle.
        let sweep_csv = a.tables[0].to_csv();
        let row: Vec<&str> = sweep_csv.lines().nth(1).expect("one data row").split(',').collect();
        let crashes: u64 = row[3].parse().expect("crashes column");
        assert!(crashes > 0, "smoke must crash at least once: {sweep_csv}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ckpt_label(None), "cold");
        assert_eq!(ckpt_label(Some(10)), "k10");
        assert_eq!(opt_num(None, 2), "-");
        assert_eq!(opt_num(Some(1.5), 2), "1.50");
    }
}
