//! Experiment implementations, one module per paper table/figure.

pub mod ablations;
pub mod chaos;
pub mod cluster;
pub mod fig1;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod policies;
pub mod robustness;
pub mod scorecard;
pub mod serving;
pub mod static_search;
pub mod tables;
pub mod training;

use greengpu_sim::Table;
use std::fmt::Write as _;
use std::path::Path;

/// The rendered result of one experiment: tables plus prose notes
/// comparing against the paper's reported numbers.
pub struct ExperimentOutput {
    /// Experiment identifier (`fig1`, `table2`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Paper-vs-measured commentary lines.
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Renders the full experiment as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            for n in &self.notes {
                let _ = writeln!(out, "- {n}");
            }
            out.push('\n');
        }
        out
    }

    /// Writes each table as `<id>_<n>.csv` under `dir` and records every
    /// file in `<dir>/MANIFEST.csv`, so the numbered outputs stay
    /// attributable to an experiment, seed, and source revision.
    pub fn write_csvs(&self, dir: &Path, seed: u64) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut files = Vec::new();
        for (i, t) in self.tables.iter().enumerate() {
            let name = format!("{}_{}.csv", self.id, i);
            std::fs::write(dir.join(&name), t.to_csv())?;
            files.push(name);
        }
        update_manifest(dir, self.id, &files, seed)
    }
}

/// Header of `results/MANIFEST.csv`.
// lint:contract(manifest_columns)
const MANIFEST_HEADER: &str = "experiment,file,seed,git_describe";

/// `git describe --always --dirty`, or `unknown` outside a work tree.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Merges `files` into `<dir>/MANIFEST.csv`, keyed by (experiment, file)
/// and rewritten sorted so repeated runs converge to the same bytes.
fn update_manifest(dir: &Path, experiment: &str, files: &[String], seed: u64) -> std::io::Result<()> {
    use std::collections::BTreeMap;
    let path = dir.join("MANIFEST.csv");
    let mut rows: BTreeMap<(String, String), (String, String)> = BTreeMap::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() == 4 {
                rows.insert(
                    (cells[0].to_string(), cells[1].to_string()),
                    (cells[2].to_string(), cells[3].to_string()),
                );
            }
        }
    }
    let describe = git_describe();
    for f in files {
        rows.insert(
            (experiment.to_string(), f.clone()),
            (seed.to_string(), describe.clone()),
        );
    }
    let mut out = String::from(MANIFEST_HEADER);
    out.push('\n');
    for ((exp, file), (s, d)) in &rows {
        let _ = writeln!(out, "{exp},{file},{s},{d}");
    }
    std::fs::write(path, out)
}

/// The default deterministic seed used by the `repro` binary.
pub const DEFAULT_SEED: u64 = 20120910; // ICPP 2012 dates

/// All experiment ids in presentation order.
pub const ALL_IDS: [&str; 17] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "static_search",
    "ablations",
    "policies",
    "robustness",
    "cluster",
    "chaos",
    "serving",
    "training",
    "scorecard",
];

/// Runs an experiment by id.
pub fn run_by_id(id: &str, seed: u64) -> Option<ExperimentOutput> {
    Some(match id {
        "table1" => tables::table1(),
        "table2" => tables::table2(seed),
        "fig1" => fig1::run(seed),
        "fig2" => fig2::run(seed),
        "fig5" => fig5::run(seed),
        "fig6" => fig6::run(seed),
        "fig7" => fig7::run(seed),
        "fig8" => fig8::run(seed),
        "static_search" => static_search::run(seed),
        "ablations" => ablations::run(seed),
        "policies" => policies::run(seed),
        "robustness" => robustness::run(seed),
        "cluster" => cluster::run(seed),
        "chaos" => chaos::run(seed),
        "serving" => serving::run(seed),
        "training" => training::run(seed),
        "scorecard" => scorecard::run(seed),
        _ => return None,
    })
}

/// Formats a signed percentage like `+3.21%` / `-4.00%`.
pub(crate) fn signed_pct(frac: f64) -> String {
    format!("{}{:.2}%", if frac >= 0.0 { "+" } else { "" }, frac * 100.0)
}

/// Formats a plain percentage with two decimals.
pub(crate) fn pct(frac: f64) -> String {
    format!("{:.2}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_by_id_covers_all_ids() {
        // Cheap smoke check on the two table experiments (the figure
        // experiments have their own module tests).
        assert!(run_by_id("table1", 1).is_some());
        assert!(run_by_id("nope", 1).is_none());
    }

    #[test]
    fn markdown_render_includes_tables_and_notes() {
        let out = tables::table1();
        let md = out.to_markdown();
        assert!(md.contains("## table1"));
        assert!(md.contains('|'));
    }

    #[test]
    fn write_csvs_updates_the_manifest() {
        let dir = std::env::temp_dir().join(format!("greengpu-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = tables::table1();
        out.write_csvs(&dir, 7).unwrap();
        // A re-run with another seed merges rows instead of duplicating.
        out.write_csvs(&dir, 9).unwrap();
        let manifest = std::fs::read_to_string(dir.join("MANIFEST.csv")).unwrap();
        let lines: Vec<&str> = manifest.lines().collect();
        assert_eq!(lines[0], MANIFEST_HEADER);
        assert_eq!(lines.len(), 1 + out.tables.len());
        assert!(lines[1].starts_with("table1,table1_0.csv,9,"), "{}", lines[1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(signed_pct(0.0321), "+3.21%");
        assert_eq!(signed_pct(-0.04), "-4.00%");
        assert_eq!(pct(0.2104), "21.04%");
    }
}
