//! Experiment implementations, one module per paper table/figure.

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod robustness;
pub mod scorecard;
pub mod static_search;
pub mod tables;

use greengpu_sim::Table;
use std::fmt::Write as _;
use std::path::Path;

/// The rendered result of one experiment: tables plus prose notes
/// comparing against the paper's reported numbers.
pub struct ExperimentOutput {
    /// Experiment identifier (`fig1`, `table2`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Paper-vs-measured commentary lines.
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Renders the full experiment as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            for n in &self.notes {
                let _ = writeln!(out, "- {n}");
            }
            out.push('\n');
        }
        out
    }

    /// Writes each table as `<id>_<n>.csv` under `dir`.
    pub fn write_csvs(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (i, t) in self.tables.iter().enumerate() {
            let path = dir.join(format!("{}_{}.csv", self.id, i));
            std::fs::write(path, t.to_csv())?;
        }
        Ok(())
    }
}

/// The default deterministic seed used by the `repro` binary.
pub const DEFAULT_SEED: u64 = 20120910; // ICPP 2012 dates

/// All experiment ids in presentation order.
pub const ALL_IDS: [&str; 12] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "static_search",
    "ablations",
    "robustness",
    "scorecard",
];

/// Runs an experiment by id.
pub fn run_by_id(id: &str, seed: u64) -> Option<ExperimentOutput> {
    Some(match id {
        "table1" => tables::table1(),
        "table2" => tables::table2(seed),
        "fig1" => fig1::run(seed),
        "fig2" => fig2::run(seed),
        "fig5" => fig5::run(seed),
        "fig6" => fig6::run(seed),
        "fig7" => fig7::run(seed),
        "fig8" => fig8::run(seed),
        "static_search" => static_search::run(seed),
        "ablations" => ablations::run(seed),
        "robustness" => robustness::run(seed),
        "scorecard" => scorecard::run(seed),
        _ => return None,
    })
}

/// Formats a signed percentage like `+3.21%` / `-4.00%`.
pub(crate) fn signed_pct(frac: f64) -> String {
    format!("{}{:.2}%", if frac >= 0.0 { "+" } else { "" }, frac * 100.0)
}

/// Formats a plain percentage with two decimals.
pub(crate) fn pct(frac: f64) -> String {
    format!("{:.2}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_by_id_covers_all_ids() {
        // Cheap smoke check on the two table experiments (the figure
        // experiments have their own module tests).
        assert!(run_by_id("table1", 1).is_some());
        assert!(run_by_id("nope", 1).is_none());
    }

    #[test]
    fn markdown_render_includes_tables_and_notes() {
        let out = tables::table1();
        let md = out.to_markdown();
        assert!(md.contains("## table1"));
        assert!(md.contains('|'));
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(signed_pct(0.0321), "+3.21%");
        assert_eq!(signed_pct(-0.04), "-4.00%");
        assert_eq!(pct(0.2104), "21.04%");
    }
}
